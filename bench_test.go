// Package snug's top-level benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the index):
//
//	Figures 1-3:  set-level capacity-demand characterization
//	              (BenchmarkFigure1Ammp / Figure2Vortex / Figure3Applu)
//	Tables 2-3:   SNUG storage overhead (BenchmarkTable2/3Overhead)
//	Figures 9-11: throughput / AWS / FS over the Table 8 workload classes
//	              (BenchmarkFigure9Throughput / Figure10AWS / Figure11FairSpeedup)
//	Ablations:    index-bit flipping, counter threshold p, shadow depth
//
// The figure benchmarks report their headline numbers as custom metrics
// (e.g. SNUG_avg, DSR_avg) so `go test -bench` output documents the
// reproduced shape next to the timing. Absolute values are expected to
// differ from the paper (synthetic workloads, scaled system); orderings
// and crossovers are the reproduction target — see DESIGN.md.
package main

import (
	"context"
	"fmt"
	"testing"

	"snug/internal/bench"
	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/core"
	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/sweep"
)

// benchCycles keeps individual simulations short enough for -bench runs
// while spanning several SNUG epochs. It aliases the internal/bench run
// length so every benchmark here measures the same amount of simulated
// work as the shared perf-trajectory bodies.
const benchCycles = bench.Cycles

// characterize runs one Figures 1-3 benchmark and reports bucket shares.
func characterize(b *testing.B, bench string) {
	b.Helper()
	var first float64
	for i := 0; i < b.N; i++ {
		chz, err := experiments.Characterize(experiments.CharacterizeOptions{
			Benchmark: bench, Cfg: config.TestScale(),
			Intervals: 40, AccessesPerInterval: 10_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		first = chz.MeanBucketSizes()[0]
	}
	b.ReportMetric(first, "bucket1-4_share")
}

func BenchmarkFigure1Ammp(b *testing.B)   { characterize(b, "ammp") }
func BenchmarkFigure2Vortex(b *testing.B) { characterize(b, "vortex") }
func BenchmarkFigure3Applu(b *testing.B)  { characterize(b, "applu") }

func BenchmarkTable2Overhead(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		o, err := core.ComputeOverhead(core.DefaultOverheadParams())
		if err != nil {
			b.Fatal(err)
		}
		pct = o.Percent()
	}
	b.ReportMetric(pct, "overhead_%")
}

func BenchmarkTable3Overhead(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		cells, err := core.Table3()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, c := range cells {
			if c.Percent > worst {
				worst = c.Percent
			}
		}
	}
	b.ReportMetric(worst, "max_overhead_%")
}

// The figure benchmarks share one body (internal/bench.FigureMetric, also
// behind cmd/bench's perf-trajectory baseline), so all three measure the
// same evaluation work.
func BenchmarkFigure9Throughput(b *testing.B)   { bench.Figure9Throughput(b) }
func BenchmarkFigure10AWS(b *testing.B)         { bench.FigureMetric(b, metrics.MetricAWS) }
func BenchmarkFigure11FairSpeedup(b *testing.B) { bench.FigureMetric(b, metrics.MetricFS) }

// The per-scheme benchmarks share one body (internal/bench.SchemeOnMix),
// so every scheme times the same workload and run length.
func BenchmarkSchemeL2P(b *testing.B)  { bench.SchemeOnMix(b, "L2P") }
func BenchmarkSchemeL2S(b *testing.B)  { bench.SchemeOnMix(b, "L2S") }
func BenchmarkSchemeCC(b *testing.B)   { bench.SchemeOnMix(b, "CC") }
func BenchmarkSchemeDSR(b *testing.B)  { bench.SchemeOnMix(b, "DSR") }
func BenchmarkSchemeSNUG(b *testing.B) { bench.SchemeSNUG(b) }

// scheme8Core times one 8-core scale-out simulation — the scaling study's
// unit of work, tracking the new width axis next to the quad-core numbers.
func scheme8Core(b *testing.B, scheme string) {
	b.Helper()
	cfg, err := config.TestScaleN(8)
	if err != nil {
		b.Fatal(err)
	}
	mix := []string{"ammp", "ammp", "parser", "parser", "swim", "swim", "mesa", "mesa"}
	var tput float64
	for i := 0; i < b.N; i++ {
		r, err := cmp.RunWorkload(cfg, scheme, mix, benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		tput = r.Throughput()
	}
	b.ReportMetric(tput, "throughput")
}

func BenchmarkScheme8CoreL2P(b *testing.B)  { scheme8Core(b, "L2P") }
func BenchmarkScheme8CoreSNUG(b *testing.B) { scheme8Core(b, "SNUG") }

// ablate compares a SNUG variant against the default on the C1 stress
// class (the design choices DESIGN.md calls out).
func ablate(b *testing.B, mutate func(*config.System)) {
	b.Helper()
	mix := []string{"ammp", "ammp", "ammp", "ammp"}
	var ratio float64
	for i := 0; i < b.N; i++ {
		base, err := cmp.RunWorkload(config.TestScale(), "L2P", mix, benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		cfg := config.TestScale()
		mutate(&cfg)
		r, err := cmp.RunWorkload(cfg, "SNUG", mix, benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Throughput() / base.Throughput()
	}
	b.ReportMetric(ratio, "norm_throughput")
}

func BenchmarkAblationDefault(b *testing.B) { ablate(b, func(*config.System) {}) }
func BenchmarkAblationNoIndexFlip(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.IndexFlip = false })
}
func BenchmarkAblationP4(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.PDivisor = 4 })
}
func BenchmarkAblationP16(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.PDivisor = 16 })
}
func BenchmarkAblationShadow8Way(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.ShadowWays = 8 })
}
func BenchmarkAblationKeepStranded(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.DropOnFlip = false })
}

// BenchmarkSweepEngine measures the sweep engine's per-job orchestration
// overhead (seed derivation, scheduling, collection) with no-op jobs — the
// fixed cost the engine adds on top of each simulation.
func BenchmarkSweepEngine(b *testing.B) {
	jobs := make([]sweep.Job, 64)
	for i := range jobs {
		jobs[i] = sweep.Job{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func(seed uint64) (cmp.RunResult, error) {
				return cmp.RunResult{Cycles: int64(seed)}, nil
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(context.Background(), sweep.Options{}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSpeed measures raw simulation throughput in simulated
// cycles per wall-clock second over recorded-and-replayed streams (the
// sweep's steady-state shape); BenchmarkSimulatorSpeedLive is the same
// measurement over live generators. Bodies live in internal/bench, shared
// with cmd/bench's machine-readable baseline.
func BenchmarkSimulatorSpeed(b *testing.B)     { bench.SimulatorSpeed(b) }
func BenchmarkSimulatorSpeedLive(b *testing.B) { bench.SimulatorSpeedLive(b) }

// BenchmarkSNUG16Core tracks replayed 16-core scale-out throughput — the
// shape where the CC occupancy index collapses the per-miss broadcast from
// O(cores × ways) set scans to a counter check per peer.
// BenchmarkSNUG16CoreParallel is the same simulation on the intra-run
// epoch engine (one goroutine per simulated core, byte-identical results);
// the rate gap between the two is the engine's speedup on this host.
func BenchmarkSNUG16Core(b *testing.B)         { bench.SNUG16Core(b) }
func BenchmarkSNUG16CoreParallel(b *testing.B) { bench.SNUG16CoreParallel(b) }

// The layout microbenchmarks pin the packed cache array and the bus
// calendar directly (bodies in internal/bench, gated by cmd/bench -check).
func BenchmarkCacheOps(b *testing.B)      { bench.CacheOps(b) }
func BenchmarkBusContention(b *testing.B) { bench.BusContention(b) }
