// Package snug's top-level benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the index):
//
//	Figures 1-3:  set-level capacity-demand characterization
//	              (BenchmarkFigure1Ammp / Figure2Vortex / Figure3Applu)
//	Tables 2-3:   SNUG storage overhead (BenchmarkTable2/3Overhead)
//	Figures 9-11: throughput / AWS / FS over the Table 8 workload classes
//	              (BenchmarkFigure9Throughput / Figure10AWS / Figure11FairSpeedup)
//	Ablations:    index-bit flipping, counter threshold p, shadow depth
//
// The figure benchmarks report their headline numbers as custom metrics
// (e.g. SNUG_avg, DSR_avg) so `go test -bench` output documents the
// reproduced shape next to the timing. Absolute values are expected to
// differ from the paper (synthetic workloads, scaled system); orderings
// and crossovers are the reproduction target — see DESIGN.md.
package main

import (
	"fmt"
	"testing"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/core"
	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/sweep"
)

// benchCycles keeps individual simulations short enough for -bench runs
// while spanning several SNUG epochs.
const benchCycles = 1_200_000

// characterize runs one Figures 1-3 benchmark and reports bucket shares.
func characterize(b *testing.B, bench string) {
	b.Helper()
	var first float64
	for i := 0; i < b.N; i++ {
		chz, err := experiments.Characterize(experiments.CharacterizeOptions{
			Benchmark: bench, Cfg: config.TestScale(),
			Intervals: 40, AccessesPerInterval: 10_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		first = chz.MeanBucketSizes()[0]
	}
	b.ReportMetric(first, "bucket1-4_share")
}

func BenchmarkFigure1Ammp(b *testing.B)   { characterize(b, "ammp") }
func BenchmarkFigure2Vortex(b *testing.B) { characterize(b, "vortex") }
func BenchmarkFigure3Applu(b *testing.B)  { characterize(b, "applu") }

func BenchmarkTable2Overhead(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		o, err := core.ComputeOverhead(core.DefaultOverheadParams())
		if err != nil {
			b.Fatal(err)
		}
		pct = o.Percent()
	}
	b.ReportMetric(pct, "overhead_%")
}

func BenchmarkTable3Overhead(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		cells, err := core.Table3()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, c := range cells {
			if c.Percent > worst {
				worst = c.Percent
			}
		}
	}
	b.ReportMetric(worst, "max_overhead_%")
}

// figure runs the full Table 8 evaluation once per iteration and reports
// each scheme's cross-class average for the chosen metric.
func figure(b *testing.B, metric metrics.MetricKind) {
	b.Helper()
	var avg map[string]float64
	for i := 0; i < b.N; i++ {
		// Parallelism 0 = GOMAXPROCS, via the sweep engine's default.
		ev, err := experiments.Evaluate(experiments.Options{
			Cfg: config.TestScale(), RunCycles: benchCycles,
		})
		if err != nil {
			b.Fatal(err)
		}
		cs, err := ev.Figure(metric)
		if err != nil {
			b.Fatal(err)
		}
		avg = map[string]float64{}
		last := len(cs.Classes) - 1 // the AVG row
		for _, s := range experiments.FigureSchemes {
			avg[s] = cs.Values[s][last]
		}
	}
	for _, s := range experiments.FigureSchemes {
		b.ReportMetric(avg[s], s+"_avg")
	}
}

func BenchmarkFigure9Throughput(b *testing.B)   { figure(b, metrics.MetricThroughput) }
func BenchmarkFigure10AWS(b *testing.B)         { figure(b, metrics.MetricAWS) }
func BenchmarkFigure11FairSpeedup(b *testing.B) { figure(b, metrics.MetricFS) }

// schemeOnMix times one simulation of a representative mixed workload —
// the per-scheme cost of the simulator itself.
func schemeOnMix(b *testing.B, scheme string) {
	b.Helper()
	bench := []string{"ammp", "parser", "swim", "mesa"}
	var tput float64
	for i := 0; i < b.N; i++ {
		r, err := cmp.RunWorkload(config.TestScale(), scheme, bench, benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		tput = r.Throughput()
	}
	b.ReportMetric(tput, "throughput")
}

func BenchmarkSchemeL2P(b *testing.B)  { schemeOnMix(b, "L2P") }
func BenchmarkSchemeL2S(b *testing.B)  { schemeOnMix(b, "L2S") }
func BenchmarkSchemeCC(b *testing.B)   { schemeOnMix(b, "CC") }
func BenchmarkSchemeDSR(b *testing.B)  { schemeOnMix(b, "DSR") }
func BenchmarkSchemeSNUG(b *testing.B) { schemeOnMix(b, "SNUG") }

// scheme8Core times one 8-core scale-out simulation — the scaling study's
// unit of work, tracking the new width axis next to the quad-core numbers.
func scheme8Core(b *testing.B, scheme string) {
	b.Helper()
	cfg, err := config.TestScaleN(8)
	if err != nil {
		b.Fatal(err)
	}
	bench := []string{"ammp", "ammp", "parser", "parser", "swim", "swim", "mesa", "mesa"}
	var tput float64
	for i := 0; i < b.N; i++ {
		r, err := cmp.RunWorkload(cfg, scheme, bench, benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		tput = r.Throughput()
	}
	b.ReportMetric(tput, "throughput")
}

func BenchmarkScheme8CoreL2P(b *testing.B)  { scheme8Core(b, "L2P") }
func BenchmarkScheme8CoreSNUG(b *testing.B) { scheme8Core(b, "SNUG") }

// ablate compares a SNUG variant against the default on the C1 stress
// class (the design choices DESIGN.md calls out).
func ablate(b *testing.B, mutate func(*config.System)) {
	b.Helper()
	bench := []string{"ammp", "ammp", "ammp", "ammp"}
	var ratio float64
	for i := 0; i < b.N; i++ {
		base, err := cmp.RunWorkload(config.TestScale(), "L2P", bench, benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		cfg := config.TestScale()
		mutate(&cfg)
		r, err := cmp.RunWorkload(cfg, "SNUG", bench, benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Throughput() / base.Throughput()
	}
	b.ReportMetric(ratio, "norm_throughput")
}

func BenchmarkAblationDefault(b *testing.B) { ablate(b, func(*config.System) {}) }
func BenchmarkAblationNoIndexFlip(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.IndexFlip = false })
}
func BenchmarkAblationP4(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.PDivisor = 4 })
}
func BenchmarkAblationP16(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.PDivisor = 16 })
}
func BenchmarkAblationShadow8Way(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.ShadowWays = 8 })
}
func BenchmarkAblationKeepStranded(b *testing.B) {
	ablate(b, func(c *config.System) { c.SNUG.DropOnFlip = false })
}

// BenchmarkSweepEngine measures the sweep engine's per-job orchestration
// overhead (seed derivation, scheduling, collection) with no-op jobs — the
// fixed cost the engine adds on top of each simulation.
func BenchmarkSweepEngine(b *testing.B) {
	jobs := make([]sweep.Job, 64)
	for i := range jobs {
		jobs[i] = sweep.Job{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func(seed uint64) (cmp.RunResult, error) {
				return cmp.RunResult{Cycles: int64(seed)}, nil
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(sweep.Options{}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSpeed measures raw simulation throughput in simulated
// cycles per wall-clock second.
func BenchmarkSimulatorSpeed(b *testing.B) {
	bench := []string{"ammp", "parser", "swim", "mesa"}
	streams, err := cmp.WorkloadStreams(config.TestScale(), bench, benchCycles/32)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := cmp.NewSystem(config.TestScale(), "SNUG", streams)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(100_000)
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}
