module snug

go 1.21
