// Scheme comparison: run one stress-test combination (the paper's C1
// class) under all five L2 organizations and print the three Table 5
// metrics — a miniature of Figures 9-11 for a single workload.
//
//	go run ./examples/scheme_comparison
package main

import (
	"fmt"
	"log"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/metrics"
)

func main() {
	cfg := config.TestScale()
	workload := []string{"ammp", "ammp", "ammp", "ammp"} // C1 stress test
	const cycles = 2_000_000

	baseline, err := cmp.RunWorkload(cfg, "L2P", workload, cycles)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("C1 stress test: 4x ammp, %d cycles (all metrics vs. L2P)\n\n", cycles)
	fmt.Printf("%-10s %11s %8s %8s %8s\n", "scheme", "throughput", "norm", "AWS", "FS")
	fmt.Printf("%-10s %11.4f %8.3f %8.3f %8.3f\n", "L2P", baseline.Throughput(), 1.0, 1.0, 1.0)

	// Schemes are spec strings: CC's spill probability rides in the spec.
	for _, scheme := range []string{"L2S", "CC(75%)", "DSR", "SNUG"} {
		res, err := cmp.RunWorkload(cfg, scheme, workload, cycles)
		if err != nil {
			log.Fatal(err)
		}
		comp, err := metrics.Compare(baseline, res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %11.4f %8.3f %8.3f %8.3f\n",
			res.Scheme, comp.Throughput, comp.ThroughputNorm, comp.AWS, comp.FS)
	}
	fmt.Println("\nIdentical co-scheduled applications have the same demand at both")
	fmt.Println("application and set level, so only set-level grouping (SNUG's")
	fmt.Println("index-bit flipping) finds complementary capacity.")
}
