// Phase adaptivity: watch SNUG's G/T vectors re-latch as vortex moves
// through its program phases (the paper's Figure 2 behaviour), using the
// public monitor state exposed by the SNUG controller.
//
//	go run ./examples/phase_adaptive
package main

import (
	"fmt"
	"log"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/core"
)

func main() {
	cfg := config.TestScale()
	workload := []string{"vortex", "vortex", "gzip", "mesa"}

	streams, err := cmp.WorkloadStreams(cfg, workload, 60_000)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := cmp.NewSystem(cfg, "SNUG", streams)
	if err != nil {
		log.Fatal(err)
	}
	snug := sys.Controller().(*core.SNUG)

	fmt.Println("epoch-by-epoch taker-set counts per core (vortex is phased):")
	fmt.Printf("%-10s %-9s %8s %8s %8s %8s %10s\n",
		"cycles", "stage", workload[0], workload[1], workload[2], workload[3], "spills")
	const step = 250_000
	var res = sys.Run(step)
	for t := int64(step); t <= 3_000_000; t += step {
		counts := make([]int, len(workload))
		for i := range workload {
			counts[i] = snug.Monitor(i).GT().TakerCount()
		}
		fmt.Printf("%-10d %-9s %8d %8d %8d %8d %10d\n",
			t, snug.Stage(), counts[0], counts[1], counts[2], counts[3], snug.Stats().Spills)
		res = sys.Run(step)
	}
	fmt.Printf("\nfinal throughput: %.4f; stage switches: %d; stranded blocks dropped: %d\n",
		res.Throughput(), snug.Stats().StageSwitches, snug.Stats().StrandedDropped)
	fmt.Println("vortex's taker-set count shifts with its phases; the light")
	fmt.Println("co-runners (gzip, mesa) stay almost entirely givers.")
}
