// Quickstart: assemble a quad-core CMP with the SNUG L2 design, run a
// mixed workload, and compare against the private-cache baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"snug/internal/cmp"
	"snug/internal/config"
)

func main() {
	// The scaled test system keeps this example fast; config.Default()
	// gives the paper's full Table 4 machine.
	cfg := config.TestScale()

	// Two capacity-hungry applications with set-level non-uniform demand
	// (class A) co-scheduled with two light ones (class D) — the scenario
	// the paper's introduction motivates.
	workload := []string{"ammp", "parser", "swim", "mesa"}
	const cycles = 2_000_000

	baseline, err := cmp.RunWorkload(cfg, "L2P", workload, cycles)
	if err != nil {
		log.Fatal(err)
	}
	snug, err := cmp.RunWorkload(cfg, "SNUG", workload, cycles)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %v over %d cycles\n\n", workload, cycles)
	fmt.Printf("%-8s %12s %12s %9s\n", "core", "L2P IPC", "SNUG IPC", "speedup")
	for i := range workload {
		b, s := baseline.Cores[i].IPC, snug.Cores[i].IPC
		fmt.Printf("%-8s %12.4f %12.4f %8.2f%%\n", workload[i], b, s, (s/b-1)*100)
	}
	fmt.Printf("\nthroughput: %.4f -> %.4f (%+.2f%%)\n",
		baseline.Throughput(), snug.Throughput(),
		(snug.Throughput()/baseline.Throughput()-1)*100)
	fmt.Printf("SNUG activity: %d spills, %d retrieval hits of %d retrievals\n",
		snug.Report.Spills, snug.Report.RetrievalHits, snug.Report.Retrievals)
}
