// Characterization: reproduce the paper's §2 observation — set-level
// non-uniformity of capacity demand — for three benchmark personalities:
// ammp (strongly non-uniform, Figure 1), vortex (phased, Figure 2) and
// applu (streaming/uniform, Figure 3).
//
//	go run ./examples/characterization
package main

import (
	"fmt"
	"log"
	"os"

	"snug/internal/config"
	"snug/internal/experiments"
	"snug/internal/report"
)

func main() {
	for _, f := range experiments.FigureBenchmarks {
		chz, err := experiments.Characterize(experiments.CharacterizeOptions{
			Benchmark:           f.Benchmark,
			Cfg:                 config.TestScale(),
			Intervals:           100,
			AccessesPerInterval: 10_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Figure %d — %s (%s)", f.Figure, f.Benchmark, f.Note)
		if err := report.WriteCharacterization(os.Stdout, title, chz); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("Each row is a window of sampling intervals; columns are the demand")
	fmt.Println("buckets of Formula (5). ammp keeps a large 1~4 bucket (giver sets)")
	fmt.Println("next to a large deep bucket (taker sets); applu is all shallow.")
}
