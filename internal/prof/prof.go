// Package prof wires the standard runtime/pprof CPU and heap profilers
// into the CLI tools, so perf work on the simulator can be driven by real
// profiles (`go tool pprof <binary> cpu.out`) instead of guesswork. Both
// cmd/snugsim and cmd/experiments expose it as -cpuprofile/-memprofile.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and arranges a
// heap profile into memPath (when non-empty). It returns a stop function
// the caller must run on exit — typically deferred around the command
// body — which flushes the CPU profile and writes the heap snapshot.
// Empty paths make Start and its stop function no-ops.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			// An up-to-date allocation picture needs a collection first —
			// the heap profile reports live objects as of the last GC.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: close %s: %w", memPath, err)
			}
		}
		return nil
	}, nil
}
