// Package cpu models the out-of-order cores of Table 4: an 8-wide
// issue/commit pipeline with a 128-entry RUU window, 64-entry LSQ,
// functional-unit latencies, and a 2-level adaptive branch predictor
// (1024-entry pattern table, 10-bit global history) with BTB and return
// address stack. The model is a timing approximation in the style of
// interval simulation: it tracks per-instruction dispatch, completion and
// in-order commit times under window, width and LSQ constraints, which
// captures how L2 hit/miss latency differences translate into IPC — the
// transfer function the paper's evaluation depends on.
package cpu

// Predictor is a 2-level adaptive (GAp-style) direction predictor: a global
// history register indexes a table of 2-bit saturating counters, XOR-folded
// with the branch PC (gshare variant).
type Predictor struct {
	historyBits uint
	history     uint64
	table       []uint8 // 2-bit counters, weakly-not-taken initialized

	lookups    int64
	mispredict int64
}

// NewPredictor builds a predictor with 2^tableBits... no: tableSize entries
// (power of two) and historyBits of global history.
func NewPredictor(tableSize int, historyBits int) *Predictor {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("cpu: predictor table size must be a positive power of two")
	}
	t := make([]uint8, tableSize)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Predictor{historyBits: uint(historyBits), table: t}
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	idx := p.index(pc)
	p.lookups++
	return p.table[idx] >= 2
}

// Update predicts, trains with the actual outcome, and reports whether the
// pre-update prediction was wrong. It counts as a lookup.
func (p *Predictor) Update(pc uint64, taken bool) (mispredicted bool) {
	idx := p.index(pc)
	p.lookups++
	pred := p.table[idx] >= 2
	mispredicted = pred != taken
	if mispredicted {
		p.mispredict++
	}
	c := p.table[idx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.table[idx] = c
	p.history = ((p.history << 1) | b2u(taken)) & ((1 << p.historyBits) - 1)
	return mispredicted
}

// index folds the PC into the gshare table slot for the current history.
//
//snug:inline
func (p *Predictor) index(pc uint64) uint64 {
	return (pc>>2 ^ p.history) & uint64(len(p.table)-1)
}

// Accuracy returns the fraction of correct predictions (1.0 when no
// branches have been seen).
func (p *Predictor) Accuracy() float64 {
	if p.lookups == 0 {
		return 1
	}
	return 1 - float64(p.mispredict)/float64(p.lookups)
}

// Lookups returns the number of predictions made.
func (p *Predictor) Lookups() int64 { return p.lookups }

// Mispredicts returns the number of mispredictions.
func (p *Predictor) Mispredicts() int64 { return p.mispredict }

// b2u is the branchless bool-to-bit conversion the history shift uses.
//
//snug:inline
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a set-associative branch target buffer tracking which branch PCs
// have been seen; a taken branch missing in the BTB costs a fetch redirect
// even when the direction was predicted correctly.
type BTB struct {
	sets, ways int
	tags       []uint64 // sets*ways, 0 = empty
	use        []uint64
	tick       uint64
	hits       int64
	misses     int64
}

// NewBTB builds a BTB with the given sets and ways.
func NewBTB(sets, ways int) *BTB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("cpu: BTB sets must be a positive power of two and ways positive")
	}
	return &BTB{sets: sets, ways: ways, tags: make([]uint64, sets*ways), use: make([]uint64, sets*ways)}
}

// LookupInsert probes the BTB for pc and installs it if absent, returning
// whether it hit.
func (b *BTB) LookupInsert(pc uint64) bool {
	key := pc>>2 | 1 // never zero
	set := int(key) & (b.sets - 1)
	base := set * b.ways
	b.tick++
	lru, lruUse := base, ^uint64(0)
	for i := base; i < base+b.ways; i++ {
		if b.tags[i] == key {
			b.use[i] = b.tick
			b.hits++
			return true
		}
		if b.use[i] < lruUse {
			lru, lruUse = i, b.use[i]
		}
	}
	b.tags[lru] = key
	b.use[lru] = b.tick
	b.misses++
	return false
}

// HitRate returns the BTB hit fraction (1.0 when unused).
func (b *BTB) HitRate() float64 {
	t := b.hits + b.misses
	if t == 0 {
		return 1
	}
	return float64(b.hits) / float64(t)
}

// RAS is a circular return-address stack. Calls push, returns pop; a
// mismatched pop is a misprediction. The synthetic streams exercise it via
// call/return instruction kinds.
type RAS struct {
	entries []uint64
	top     int
	depth   int
	correct int64
	wrong   int64
}

// NewRAS builds a return-address stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		panic("cpu: RAS size must be positive")
	}
	return &RAS{entries: make([]uint64, n)}
}

// Push records a call's return address.
func (r *RAS) Push(retPC uint64) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = retPC
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts a return target and checks it against the actual target,
// returning whether the prediction was correct. An empty stack always
// mispredicts.
func (r *RAS) Pop(actual uint64) bool {
	if r.depth == 0 {
		r.wrong++
		return false
	}
	pred := r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	if pred == actual {
		r.correct++
		return true
	}
	r.wrong++
	return false
}

// Accuracy returns the fraction of correct return predictions (1.0 when
// unused).
func (r *RAS) Accuracy() float64 {
	t := r.correct + r.wrong
	if t == 0 {
		return 1
	}
	return float64(r.correct) / float64(t)
}
