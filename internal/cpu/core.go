package cpu

import (
	"math"

	"snug/internal/addr"
	"snug/internal/config"
	"snug/internal/isa"
)

// MemFunc resolves one data-memory access: it is called with the cycle the
// access is issued and returns the cycle its data is available. The cache
// hierarchy (internal/cmp) provides this function; the core model is
// hierarchy-agnostic.
//
// MemFunc is the core's continuation point for intra-run parallelism: the
// call may suspend the calling goroutine for arbitrarily long (the epoch
// engine parks the access at a coordinator and blocks here for the
// reply), so the core model must keep all of its state reachable from the
// Core value — no package globals, no state shared between Core instances
// — and a Core must only ever be advanced by one goroutine at a time.
// Both properties hold for this package and are relied on by
// internal/cmp's epoch engine.
type MemFunc func(now int64, a addr.Addr, write bool) (doneAt int64)

// DeferredDone is the one MemFunc return value that is not a completion
// time: a store whose data-available cycle is not yet known. A store's
// completion time feeds nothing but its LSQ entry — commit posts through
// the store buffer at start+1 regardless — so a hierarchy that resolves
// stores asynchronously (the epoch engine parks them at a coordinator and
// runs ahead) may return DeferredDone and supply the real value later,
// through the DrainFunc, the first time the core actually reads LSQ
// values. Loads can never be deferred: their completion time feeds the
// dependence chain and the commit ring immediately.
const DeferredDone int64 = math.MinInt64

// DrainFunc delivers the completion times of the oldest len(dst)
// still-deferred stores, in the order their MemFunc calls returned
// DeferredDone. It may block (the epoch engine waits for the coordinator
// to publish the replies). Installed with SetDrain; never called unless a
// MemFunc returned DeferredDone.
type DrainFunc func(dst []int64)

// Stats aggregates per-core execution statistics.
type Stats struct {
	Instructions int64
	Cycles       int64 // set by the driver at end of run
	KindCount    [isa.NumKinds]int64

	ROBStall int64 // cycles dispatch waited for window space
	LSQStall int64 // cycles dispatch waited for LSQ space
	DepStall int64 // cycles execution waited on the previous result

	BranchMispredicts int64 // direction + BTB + RAS redirects applied
}

// IPC returns committed instructions per cycle (0 when no cycles elapsed).
func (s Stats) IPC() float64 {
	if s.Cycles <= 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Core is the out-of-order timing model. It is advanced in quanta by Run;
// cross-core structures are consulted only through the MemFunc.
type Core struct {
	cfg  config.Core
	pred *Predictor
	btb  *BTB
	ras  *RAS

	// Per-kind latencies and queue bounds, widened once at construction so
	// the per-instruction path does no int64 conversions or config loads.
	// simpleLat maps the non-memory, non-control kinds (ALU/FPU/Mult/Div)
	// to their functional-unit latency, turning four switch arms into one
	// predictable "simple instruction" branch plus a table load.
	aluLat, loadLat     int64
	simpleLat           [isa.KindLoad]int64
	lsqSize             int
	issueWidth, ruuSize int
	commitWidth         int

	clock      int64 // dispatch cycle of the most recent instruction
	fetchAvail int64 // earliest dispatch after a fetch redirect

	issuedAt  int64 // cycle issuedCnt refers to
	issuedCnt int

	commitRing []int64 // commit time of instruction j at j % RUUSize
	robIdx     int     // commitRing slot of the current instruction (wraps at RUUSize)
	lastCommit int64
	commitAt   int64
	commitCnt  int

	lsq []int64 // outstanding memory-op completion times; compacted lazily

	// Deferred-store bookkeeping: lsqPending counts DeferredDone sentinels
	// currently in lsq, drain resolves them (fillBuf is its reusable
	// argument buffer, sized once at SetDrain). Zero/nil on the serial
	// path, which never defers.
	lsqPending int
	drain      DrainFunc
	fillBuf    []int64

	prevComplete int64

	// pend is the decode-ahead buffer Run fills from a BatchStream — one
	// batched decode call amortizes the per-instruction stream dispatch.
	pend     []isa.Instr
	pendHead int
	pendLen  int

	// next is the non-batch fallback's decode target. As a field it lives
	// in the Core's existing allocation; as a Run local its address would
	// escape into the stream.Next interface call and heap-allocate once
	// per Run call (caught by the gcescape compiler contract).
	next isa.Instr

	// kindCount is the per-kind tally with a power-of-two shape so the
	// per-instruction increment needs no bounds check; Stats() folds it
	// into the exported fixed-size array.
	kindCount [16]int64

	stats Stats
}

// NewCore builds a core with the given configuration.
func NewCore(cfg config.Core) *Core {
	c := &Core{
		cfg:         cfg,
		pred:        NewPredictor(cfg.PredictorSize, cfg.HistoryLength),
		btb:         NewBTB(cfg.BTBSets, cfg.BTBWays),
		ras:         NewRAS(cfg.RASEntries),
		commitRing:  make([]int64, cfg.RUUSize),
		lsq:         make([]int64, 0, cfg.LSQSize),
		aluLat:      int64(cfg.ALULat),
		loadLat:     int64(cfg.LoadLat),
		lsqSize:     cfg.LSQSize,
		issueWidth:  cfg.IssueWidth,
		commitWidth: cfg.CommitWidth,
		ruuSize:     cfg.RUUSize,
	}
	c.simpleLat[isa.KindALU] = int64(cfg.ALULat)
	c.simpleLat[isa.KindFPU] = int64(cfg.FPLat)
	c.simpleLat[isa.KindMult] = int64(cfg.MultLat)
	c.simpleLat[isa.KindDiv] = int64(cfg.DivLat)
	return c
}

// Stats returns a snapshot of the core's counters with Cycles set to the
// current clock.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.clock
	copy(s.KindCount[:], c.kindCount[:len(s.KindCount)])
	return s
}

// Clock returns the core's current cycle.
func (c *Core) Clock() int64 { return c.clock }

// SetDrain installs the deferred-store resolver. A hierarchy whose MemFunc
// may return DeferredDone must install one before Run; the serial path
// never defers and needs none.
func (c *Core) SetDrain(d DrainFunc) {
	c.drain = d
	if c.fillBuf == nil {
		c.fillBuf = make([]int64, c.lsqSize)
	}
}

// ResolveDeferred forces any outstanding DeferredDone LSQ entries to their
// real completion times. The epoch engine calls it at the end of a run so
// no sentinel survives into a later run driven without a DrainFunc.
func (c *Core) ResolveDeferred() {
	if c.lsqPending > 0 {
		c.resolveLSQ()
	}
}

// resolveLSQ replaces every DeferredDone sentinel in the LSQ with its real
// completion time. Sentinels sit in lsq in store-program order and the
// DrainFunc delivers values in that same order, so a single in-order scan
// rewrites them; compaction preserves relative order, so the invariant
// survives partial compactions between resolves.
func (c *Core) resolveLSQ() {
	buf := c.fillBuf[:c.lsqPending]
	c.drain(buf)
	k := 0
	for i, t := range c.lsq {
		if t == DeferredDone {
			c.lsq[i] = buf[k]
			k++
		}
	}
	c.lsqPending = 0
}

// Predictor exposes the branch predictor for reporting.
func (c *Core) Predictor() *Predictor { return c.pred }

// pendBatch is the decode-ahead depth of the BatchStream run loop: large
// enough to amortize the batched decode across a whole quantum (~100-200
// instructions at the configured widths), small enough to stay cache-hot.
const pendBatch = 256

// Run advances the core until its dispatch clock reaches the until cycle,
// drawing instructions from stream and resolving memory through mem. It
// returns the number of instructions dispatched during this quantum.
//
// Run may be called in successive slices — Run(b1) then Run(b2) steps the
// exact instruction sequence of Run(b2) — which is how both engines drive
// it: the serial engine on the driving goroutine, the epoch engine on a
// dedicated per-core goroutine whose mem parks at a coordinator (see
// MemFunc). Run itself never touches cross-core state.
//
// Streams implementing isa.BatchStream (trace replays) are consumed
// through a persistent decode-ahead buffer: one NextBatch call decodes
// pendBatch instructions in a tight loop, replacing pendBatch interface
// dispatches. Instructions decoded past a quantum boundary stay buffered
// for the next Run call, so the consumed stream prefix — and therefore
// every simulation result — is identical to the one-at-a-time path.
//
//snug:hotpath
func (c *Core) Run(until int64, stream isa.Stream, mem MemFunc) int64 {
	before := c.stats.Instructions
	if bs, ok := stream.(isa.BatchStream); ok {
		if c.pend == nil {
			//snug:allow gcescape one-time decode-buffer warm-up escapes into c.pend by design
			c.pend = make([]isa.Instr, pendBatch) //snug:allow hotalloc one-time decode-buffer warm-up, never per step
		}
		for c.clock < until {
			if c.pendHead == c.pendLen {
				c.pendLen = bs.NextBatch(c.pend) //snug:allow hotdispatch one dispatch per pendBatch instructions, amortized by design
				c.pendHead = 0
				if c.pendLen == 0 {
					// A finite stream ran dry; the workload streams are
					// endless, but never step stale buffer contents.
					break
				}
			}
			c.step(&c.pend[c.pendHead], mem)
			c.pendHead++
		}
		return c.stats.Instructions - before
	}
	in := &c.next
	for c.clock < until {
		stream.Next(in) //snug:allow hotdispatch generator fallback: only non-batch streams pay the per-instruction dispatch
		c.step(in, mem)
	}
	return c.stats.Instructions - before
}

// step dispatches, executes and commits one instruction in model time.
//
//snug:hotpath
func (c *Core) step(in *isa.Instr, mem MemFunc) {
	// Dispatch: bounded by fetch availability, window space, issue width,
	// and LSQ occupancy for memory operations.
	e := max(c.clock, c.fetchAvail)
	if robFree := c.commitRing[c.robIdx]; robFree > e {
		c.stats.ROBStall += robFree - e
		e = robFree
	}
	kind := in.Kind
	if kind == isa.KindLoad || kind == isa.KindStore {
		e = c.reserveLSQ(e)
	}
	// Issue-width constraint.
	if e < c.issuedAt {
		e = c.issuedAt
	}
	if e == c.issuedAt && c.issuedCnt >= c.issueWidth {
		e++
	}
	if e > c.issuedAt {
		c.issuedAt = e
		c.issuedCnt = 0
	}
	c.issuedCnt++

	// Execute. The dependence stall is computed branchlessly: DepPrev is
	// effectively random per instruction (the generators model dependence
	// chains probabilistically), so a conditional here mispredicts
	// constantly — masking the stall with the flag costs a handful of
	// always-executed ALU ops instead.
	start := e
	dep := max(c.prevComplete-start, 0)
	var depMask int64
	if in.DepPrev {
		depMask = -1
	}
	dep &= depMask
	c.stats.DepStall += dep
	start += dep
	// The simple kinds (ALU/FPU/Mult/Div) — the bulk of the stream — share
	// one predictable branch into a latency table; only memory and control
	// flow take the switch.
	var complete int64
	if kind < isa.KindLoad {
		complete = start + c.simpleLat[kind]
	} else {
		switch kind {
		case isa.KindLoad:
			complete = mem(start+c.loadLat, in.Addr, false)
			c.pushLSQ(complete)
		case isa.KindStore:
			done := mem(start+c.loadLat, in.Addr, true)
			c.pushLSQ(done)
			complete = start + 1 // posted through the store buffer
		case isa.KindBranch:
			complete = start + c.aluLat
			mispred := c.pred.Update(in.PC, in.Taken)
			if in.Taken && !c.btb.LookupInsert(in.PC) {
				mispred = true
			}
			if mispred {
				c.redirect(complete)
			}
		case isa.KindCall:
			complete = start + c.aluLat
			c.ras.Push(in.PC + 4)
			if !c.btb.LookupInsert(in.PC) {
				c.redirect(complete)
			}
		case isa.KindReturn:
			complete = start + c.aluLat
			if !c.ras.Pop(in.Target) {
				c.redirect(complete)
			}
		default:
			complete = start + c.aluLat
		}
	}
	c.prevComplete = complete

	// Commit: in order, bounded by commit width.
	ct := max(complete, c.lastCommit)
	if ct == c.commitAt && c.commitCnt >= c.commitWidth {
		ct++
	}
	if ct > c.commitAt {
		c.commitAt = ct
		c.commitCnt = 0
	}
	c.commitCnt++
	c.lastCommit = ct
	c.commitRing[c.robIdx] = ct

	c.robIdx++
	if c.robIdx == c.ruuSize {
		c.robIdx = 0
	}
	c.clock = e
	c.stats.Instructions++
	c.kindCount[kind&15]++
}

// redirect applies a fetch redirect (branch misprediction) resolved at
// cycle resolved.
//
//snug:inline
func (c *Core) redirect(resolved int64) {
	c.stats.BranchMispredicts++
	avail := resolved + int64(c.cfg.BranchPenalty)
	if avail > c.fetchAvail {
		c.fetchAvail = avail
	}
}

// reserveLSQ frees completed LSQ entries as of cycle e and, if the queue is
// still full, stalls until the earliest outstanding completion. It returns
// the (possibly delayed) dispatch cycle.
//
// The queue is an unsorted completion-time buffer compacted lazily:
// completed entries are dropped only when the buffer reaches capacity.
// That is exact — the un-compacted length only overcounts the live
// occupancy, so a buffer below capacity proves the true queue is below
// capacity too, and compacting at capacity reveals the true state before
// any stall is charged; the stall target (minimum outstanding completion)
// falls out of the same linear pass as a running minimum. The previous
// code paid two O(n) compactions plus an O(n) min scan on every memory op;
// this path is a length check in the common case and one predictable
// linear pass per capacity-fill, amortizing to ~1 slot move per push when
// most entries are short-lived.
//
//snug:hotpath
func (c *Core) reserveLSQ(e int64) int64 {
	if len(c.lsq) < c.lsqSize {
		return e
	}
	// Deferred sentinels must be resolved before any compaction: a
	// compaction pass reads completion times, and DeferredDone would
	// compare as long-completed. The resolve may block (it consumes
	// coordinator replies), but only with the LSQ full of entries whose
	// true values the serial engine would have had in hand already — the
	// values it receives are those exact values, so the stall accounting
	// below is byte-identical to serial.
	if c.lsqPending > 0 {
		c.resolveLSQ()
	}
	min := c.compactLSQ(e)
	if len(c.lsq) < c.lsqSize {
		return e
	}
	// Full of live entries, which all complete after e, so min > e.
	c.stats.LSQStall += min - e
	e = min
	c.compactLSQ(e)
	return e
}

// compactLSQ drops entries whose memory operation completed by cycle e,
// returning the minimum surviving completion time (MaxInt64 when none).
//
//snug:hotpath
//snug:inline
func (c *Core) compactLSQ(e int64) int64 {
	q := c.lsq
	w := 0
	min := int64(math.MaxInt64)
	for _, t := range q {
		if t > e {
			q[w] = t
			w++
			if t < min {
				min = t
			}
		}
	}
	c.lsq = q[:w]
	return min
}

// pushLSQ records an outstanding completion time (or a DeferredDone
// sentinel — the one extra compare is a never-taken branch on the serial
// path).
//
//snug:hotpath
//snug:inline
func (c *Core) pushLSQ(t int64) {
	if t == DeferredDone {
		c.lsqPending++
	}
	c.lsq = append(c.lsq, t) //snug:allow hotalloc capacity stabilizes at lsqSize; compactLSQ keeps len below it
}
