package cpu

import (
	"testing"

	"snug/internal/isa"
)

func TestPredictorLearnsBias(t *testing.T) {
	p := NewPredictor(1024, 10)
	// A strongly biased branch must be predicted correctly after warm-up.
	const pc = 0x400
	for i := 0; i < 512; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("predictor did not learn an always-taken branch")
	}
	if acc := p.Accuracy(); acc < 0.9 {
		t.Fatalf("accuracy %.2f on an always-taken branch", acc)
	}
}

func TestPredictorLearnsAlternation(t *testing.T) {
	// A T/NT alternating branch is captured by global history.
	p := NewPredictor(1024, 10)
	taken := false
	for i := 0; i < 4000; i++ {
		p.Update(0x88, taken)
		taken = !taken
	}
	// Measure over the last quarter: history-based prediction should be
	// far above the 50% a bimodal predictor would achieve.
	correct := 0
	for i := 0; i < 400; i++ {
		if p.Predict(0x88) == taken {
			correct++
		}
		p.Update(0x88, taken)
		taken = !taken
	}
	if correct < 350 {
		t.Fatalf("alternating branch predicted %d/400; 2-level history should capture it", correct)
	}
}

func TestPredictorStatsCount(t *testing.T) {
	p := NewPredictor(64, 4)
	p.Update(0, true)
	p.Update(0, true)
	if p.Lookups() == 0 {
		t.Fatal("no lookups counted")
	}
}

func TestBTBHitMiss(t *testing.T) {
	b := NewBTB(16, 2)
	if b.LookupInsert(0x1000) {
		t.Fatal("cold BTB hit")
	}
	if !b.LookupInsert(0x1000) {
		t.Fatal("BTB miss after insert")
	}
	// Conflict eviction: three distinct PCs mapping to one 2-way set.
	base := uint64(0x2000)
	stride := uint64(16 * 4) // sets * pc granularity
	b.LookupInsert(base)
	b.LookupInsert(base + stride)
	b.LookupInsert(base + 2*stride)
	if b.LookupInsert(base) {
		t.Fatal("LRU entry survived two conflicting inserts")
	}
	if hr := b.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %v", hr)
	}
}

func TestRASMatchedCallsReturn(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x100)
	r.Push(0x200)
	if !r.Pop(0x200) || !r.Pop(0x100) {
		t.Fatal("matched returns mispredicted")
	}
	if r.Pop(0x300) {
		t.Fatal("empty-stack pop predicted correctly")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if !r.Pop(3) || !r.Pop(2) {
		t.Fatal("recent entries lost")
	}
	if r.Pop(1) {
		t.Fatal("overwritten entry predicted correctly")
	}
	if acc := r.Accuracy(); acc <= 0 || acc >= 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestLSQBoundsOutstandingMisses(t *testing.T) {
	// With a tiny LSQ, long-latency independent loads serialize in groups;
	// a large LSQ must be strictly faster on the same stream.
	run := func(lsq int) float64 {
		cfg := testCoreConfig()
		cfg.LSQSize = lsq
		c := NewCore(cfg)
		n := c.Run(50_000, &fixedStream{pattern: []isa.Instr{{Kind: isa.KindLoad, Addr: 0x40}}}, flatMem(100))
		return float64(n) / 50_000
	}
	small, big := run(4), run(64)
	if big <= small {
		t.Fatalf("LSQ 64 IPC %.3f <= LSQ 4 IPC %.3f; queue not limiting MLP", big, small)
	}
}
