package cpu

import (
	"math/rand"
	"slices"
	"testing"

	"snug/internal/config"
	"snug/internal/isa"
)

// refLSQ is the pre-rewrite reference implementation: eager O(n)
// compaction and min scans on every reserve. The lazily-compacted queue
// must reproduce its dispatch delays, stall accounting and live occupancy
// exactly.
type refLSQ struct {
	q     []int64
	stall int64
}

func (r *refLSQ) release(e int64) {
	w := 0
	for _, t := range r.q {
		if t > e {
			r.q[w] = t
			w++
		}
	}
	r.q = r.q[:w]
}

func (r *refLSQ) reserve(e int64, size int) int64 {
	r.release(e)
	if len(r.q) < size {
		return e
	}
	min := r.q[0]
	for _, t := range r.q[1:] {
		if t < min {
			min = t
		}
	}
	if min > e {
		r.stall += min - e
		e = min
	}
	r.release(e)
	return e
}

// live returns the sorted completion times still outstanding at cycle e.
func live(q []int64, e int64) []int64 {
	out := make([]int64, 0, len(q))
	for _, t := range q {
		if t > e {
			out = append(out, t)
		}
	}
	slices.Sort(out)
	return out
}

// TestLSQMatchesReference drives the lazy queue and the reference through
// identical random reserve/push sequences (dispatch cycles monotonic, as in
// the core) and checks dispatch delay, stall total and live queue contents
// agree at every step.
func TestLSQMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const size = 8
		c := &Core{cfg: config.Core{LSQSize: size}, lsqSize: size}
		ref := &refLSQ{}
		e := int64(0)
		for i := 0; i < 5000; i++ {
			e += int64(rng.Intn(4))
			got := c.reserveLSQ(e)
			want := ref.reserve(e, size)
			if got != want {
				t.Fatalf("seed %d op %d: reserveLSQ(%d) = %d, reference %d", seed, i, e, got, want)
			}
			if c.stats.LSQStall != ref.stall {
				t.Fatalf("seed %d op %d: LSQStall = %d, reference %d", seed, i, c.stats.LSQStall, ref.stall)
			}
			done := got + 1 + int64(rng.Intn(30))
			c.pushLSQ(done)
			ref.q = append(ref.q, done)
			// The queue compacts lazily, so compare only live entries
			// (t > e); completed leftovers are unobservable.
			if heapLive, refLive := live(c.lsq, got), live(ref.q, got); !slices.Equal(heapLive, refLive) {
				t.Fatalf("seed %d op %d: live queue contents %v, reference %v", seed, i, heapLive, refLive)
			}
			e = got
		}
	}
}

// TestLSQStallAtFullOccupancy pins the stall behaviour when the queue is
// saturated: with 2 entries and 10-cycle loads, steady state admits one
// load per 5 cycles, and every extra load charges the wait to LSQStall.
func TestLSQStallAtFullOccupancy(t *testing.T) {
	cfg := config.Default().Core
	cfg.LSQSize = 2
	c := NewCore(cfg)
	const cycles = 10_000
	n := c.Run(cycles, &fixedStream{pattern: []isa.Instr{{Kind: isa.KindLoad, Addr: 0x1000}}}, flatMem(10))
	ipc := float64(n) / float64(cycles)
	st := c.Stats()
	t.Logf("LSQ=2 lat=10 loads: IPC=%.3f LSQStall=%d", ipc, st.LSQStall)
	// Throughput bound: at most LSQSize in-flight loads per 10-cycle window.
	if ipc < 0.15 || ipc > 0.25 {
		t.Errorf("IPC = %.3f, want ~0.2 (LSQ-occupancy bound)", ipc)
	}
	if st.LSQStall == 0 {
		t.Error("LSQStall = 0 at full occupancy, want the dispatch waits accounted")
	}
	// Essentially every cycle not spent dispatching is an LSQ wait here: the
	// accounted stall must dominate the run.
	if st.LSQStall < cycles/2 {
		t.Errorf("LSQStall = %d over %d cycles, want the majority accounted to the LSQ", st.LSQStall, cycles)
	}
}

// TestLSQNoStallBelowCapacity checks the accounting stays zero when the
// queue never fills.
func TestLSQNoStallBelowCapacity(t *testing.T) {
	cfg := config.Default().Core
	// Issue width 8 with ~11 cycles in flight peaks near 90 entries; 256
	// leaves the queue genuinely underfilled.
	cfg.LSQSize = 256
	c := NewCore(cfg)
	c.Run(10_000, &fixedStream{pattern: []isa.Instr{{Kind: isa.KindLoad, Addr: 0x1000}}}, flatMem(10))
	if st := c.Stats(); st.LSQStall != 0 {
		t.Errorf("LSQStall = %d with an underfilled queue, want 0", st.LSQStall)
	}
}
