package cpu

import (
	"testing"

	"snug/internal/addr"
	"snug/internal/config"
	"snug/internal/isa"
)

// fixedStream replays a fixed pattern of instructions forever.
type fixedStream struct {
	pattern []isa.Instr
	i       int
}

func (f *fixedStream) Next(in *isa.Instr) {
	*in = f.pattern[f.i%len(f.pattern)]
	f.i++
}
func (f *fixedStream) Name() string { return "fixed" }

func flatMem(lat int64) MemFunc {
	return func(now int64, a addr.Addr, write bool) int64 { return now + lat }
}

func runIPC(t *testing.T, pattern []isa.Instr, mem MemFunc, cycles int64) float64 {
	t.Helper()
	c := NewCore(config.Default().Core)
	n := c.Run(cycles, &fixedStream{pattern: pattern}, mem)
	return float64(n) / float64(cycles)
}

func TestPureALUReachesIssueWidth(t *testing.T) {
	ipc := runIPC(t, []isa.Instr{{Kind: isa.KindALU}}, flatMem(1), 100_000)
	if ipc < 7.5 || ipc > 8.5 {
		t.Fatalf("independent ALU IPC = %.2f, want ~8 (issue width)", ipc)
	}
}

func TestDependentALUChainSerializes(t *testing.T) {
	ipc := runIPC(t, []isa.Instr{{Kind: isa.KindALU, DepPrev: true}}, flatMem(1), 100_000)
	if ipc < 0.9 || ipc > 1.1 {
		t.Fatalf("fully dependent ALU IPC = %.2f, want ~1 (latency-bound)", ipc)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Independent loads with 10-cycle latency should sustain near issue
	// width thanks to the LSQ (memory-level parallelism).
	ipc := runIPC(t, []isa.Instr{{Kind: isa.KindLoad, Addr: 0x1000}}, flatMem(10), 100_000)
	if ipc < 5 {
		t.Fatalf("independent-load IPC = %.2f, want >= 5 (MLP)", ipc)
	}
}

func TestLongMissStallsWindow(t *testing.T) {
	// One 300-cycle load per 127 ALU ops: the window (128) covers the ALU
	// run; IPC should be limited but far above serialized misses.
	pattern := make([]isa.Instr, 128)
	pattern[0] = isa.Instr{Kind: isa.KindLoad, Addr: 0x1000}
	for i := 1; i < 128; i++ {
		pattern[i] = isa.Instr{Kind: isa.KindALU}
	}
	ipc := runIPC(t, pattern, flatMem(300), 200_000)
	t.Logf("miss-every-128 IPC = %.3f", ipc)
	if ipc < 0.3 {
		t.Fatalf("IPC %.3f collapsed under sparse misses", ipc)
	}
}

func TestMixedStreamSteadyState(t *testing.T) {
	pattern := []isa.Instr{
		{Kind: isa.KindALU}, {Kind: isa.KindALU, DepPrev: true}, {Kind: isa.KindALU},
		{Kind: isa.KindFPU}, {Kind: isa.KindALU}, {Kind: isa.KindLoad, Addr: 64},
		{Kind: isa.KindALU}, {Kind: isa.KindBranch, PC: 0x40, Taken: true},
	}
	ipc := runIPC(t, pattern, flatMem(2), 100_000)
	t.Logf("mixed-stream IPC = %.3f", ipc)
	if ipc < 1.0 {
		t.Fatalf("mixed-stream IPC %.3f too low", ipc)
	}
}

// testCoreConfig returns the Table 4 core parameters for unit tests.
func testCoreConfig() config.Core { return config.Default().Core }
