// Package cli carries the pieces shared by the command-line front ends
// (cmd/experiments, cmd/snugsim): signal-driven graceful cancellation,
// failure-policy flag parsing, and error-to-exit-code classification.
//
// The contract (README §"Interrupting and resuming"): the first
// SIGINT/SIGTERM cancels the command's context — the sweep engine stops
// dispatching, drains and checkpoints in-flight jobs — and the command
// exits ExitInterrupted with a resume hint; a second signal exits
// immediately. A ContinueOnError sweep that ran every job but saw failures
// exits ExitJobFailures, distinguishable from ExitError's
// nothing-useful-happened failures.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"snug/internal/sweep"
)

// Exit codes of both commands.
const (
	ExitOK          = 0   // success
	ExitError       = 1   // usage or execution error
	ExitJobFailures = 3   // sweep completed under ContinueOnError, some jobs failed
	ExitInterrupted = 130 // canceled by SIGINT/SIGTERM (128 + SIGINT)
)

// SignalContext returns a context canceled by the first SIGINT/SIGTERM
// (announcing the drain on stderr) and a stop function releasing the
// handler. A second signal exits the process immediately with
// ExitInterrupted, skipping the drain.
func SignalContext(name string, stderr io.Writer) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(stderr, "%s: %v — stopping dispatch, draining and checkpointing in-flight runs (interrupt again to exit immediately)\n", name, sig)
		cancel(&signalError{sig: sig})
		if _, ok := <-ch; ok {
			os.Exit(ExitInterrupted)
		}
	}()
	return ctx, func() {
		signal.Stop(ch)
		close(ch)
		cancel(nil)
	}
}

// signalError is the cancellation cause set by SignalContext. The sweep
// engine wraps context.Cause(ctx) into its returned error, so the cause
// itself must satisfy errors.Is(err, context.Canceled) for ExitCode and
// ResumeHint to classify the chain as an interruption while the message
// still names the signal.
type signalError struct{ sig os.Signal }

func (e *signalError) Error() string        { return e.sig.String() }
func (e *signalError) Is(target error) bool { return target == context.Canceled }

// Completed marks a command error whose run still executed every job
// (FailPolicy continue): the work finished, some cells failed. ExitCode
// maps it to ExitJobFailures.
type Completed struct{ Err error }

func (c *Completed) Error() string { return c.Err.Error() }
func (c *Completed) Unwrap() error { return c.Err }

// ExitCode classifies a command error into the exit codes above.
// Interruption wins over job failures: a canceled ContinueOnError sweep
// did not run everything, so it must exit as interrupted.
func ExitCode(err error) int {
	var done *Completed
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.Canceled):
		return ExitInterrupted
	case errors.As(err, &done):
		return ExitJobFailures
	default:
		return ExitError
	}
}

// WrapCompleted marks err as Completed when the failure policy ran every
// job (continueOnError) and the error is job failures rather than an
// interruption or a setup problem.
func WrapCompleted(err error, continueOnError bool) error {
	if err == nil || !continueOnError {
		return err
	}
	if errors.Is(err, context.Canceled) || len(sweep.JobErrors(err)) == 0 {
		return err
	}
	return &Completed{Err: err}
}

// ParseFailurePolicy parses the -failpolicy flag: "fast" (stop at the
// first failure, the default) or "continue" (run every job, aggregate
// failures, exit ExitJobFailures).
func ParseFailurePolicy(s string) (sweep.FailurePolicy, error) {
	switch s {
	case "", "fast":
		return sweep.FailFast, nil
	case "continue":
		return sweep.ContinueOnError, nil
	default:
		return 0, fmt.Errorf("-failpolicy %q: want \"fast\" or \"continue\"", s)
	}
}

// ResumeHint prints the interrupted-sweep resume hint when the error is an
// interruption and a checkpoint store was in use.
func ResumeHint(err error, stderr io.Writer, name, out string) {
	if err == nil || out == "" || !errors.Is(err, context.Canceled) {
		return
	}
	fmt.Fprintf(stderr, "%s: interrupted — completed runs are checkpointed; resume with -out %s -resume\n", name, out)
}
