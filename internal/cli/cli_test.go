package cli

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"snug/internal/sweep"
)

// interruptedChain mirrors what a command sees after a signal: the sweep
// engine wraps context.Cause(ctx) — the signalError set by SignalContext —
// not context.Canceled itself.
func interruptedChain() error {
	return fmt.Errorf("sweep: interrupted (in-flight jobs drained and checkpointed): %w",
		&signalError{sig: syscall.SIGINT})
}

// TestExitCode pins the classification table — in particular that a chain
// wrapping the signal cause (not bare context.Canceled) still exits 130,
// the regression the signalError.Is method exists to prevent.
func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"generic", errors.New("boom"), ExitError},
		{"job failures", &Completed{Err: errors.New("2 jobs failed")}, ExitJobFailures},
		{"signal chain", interruptedChain(), ExitInterrupted},
		{"bare canceled", context.Canceled, ExitInterrupted},
		{"interrupted wins over completed", &Completed{Err: interruptedChain()}, ExitInterrupted},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestResumeHint(t *testing.T) {
	var buf bytes.Buffer
	ResumeHint(interruptedChain(), &buf, "experiments", "sweep.json")
	if !strings.Contains(buf.String(), "-out sweep.json -resume") {
		t.Errorf("signal-interrupted run with a store printed %q, want a resume hint", buf.String())
	}
	for name, args := range map[string][2]interface{}{
		"no store":     {interruptedChain(), ""},
		"not canceled": {errors.New("boom"), "sweep.json"},
	} {
		var b bytes.Buffer
		err, _ := args[0].(error)
		ResumeHint(err, &b, "experiments", args[1].(string))
		if b.Len() != 0 {
			t.Errorf("%s: ResumeHint printed %q, want nothing", name, b.String())
		}
	}
}

func TestWrapCompleted(t *testing.T) {
	jobErr := &sweep.JobError{Key: "k", Err: errors.New("boom")}
	if _, ok := WrapCompleted(jobErr, true).(*Completed); !ok {
		t.Error("job failure under ContinueOnError was not marked Completed")
	}
	if _, ok := WrapCompleted(jobErr, false).(*Completed); ok {
		t.Error("FailFast error was marked Completed")
	}
	canceled := fmt.Errorf("job failed before cancel: %w", errors.Join(jobErr, interruptedChain()))
	if _, ok := WrapCompleted(canceled, true).(*Completed); ok {
		t.Error("interrupted sweep was marked Completed — it did not run everything")
	}
	if WrapCompleted(errors.New("setup"), true) == nil {
		t.Error("setup error dropped")
	}
}

func TestParseFailurePolicy(t *testing.T) {
	for in, want := range map[string]sweep.FailurePolicy{
		"": sweep.FailFast, "fast": sweep.FailFast, "continue": sweep.ContinueOnError,
	} {
		got, err := ParseFailurePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFailurePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFailurePolicy("bogus"); err == nil {
		t.Error("ParseFailurePolicy accepted \"bogus\"")
	}
}

// TestSignalContextCancelsAsCanceled delivers a real SIGINT and checks the
// context cancels with a cause the rest of the chain classifies as an
// interruption (the end-to-end contract behind exit code 130).
func TestSignalContextCancelsAsCanceled(t *testing.T) {
	var buf bytes.Buffer
	ctx, stop := SignalContext("test", &buf)
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
	cause := context.Cause(ctx)
	if !errors.Is(cause, context.Canceled) {
		t.Errorf("cancellation cause %v does not match context.Canceled — exit code and resume hint would misclassify", cause)
	}
	if got := ExitCode(fmt.Errorf("sweep: interrupted: %w", cause)); got != ExitInterrupted {
		t.Errorf("ExitCode on the wrapped cause = %d, want %d", got, ExitInterrupted)
	}
	if !strings.Contains(buf.String(), "draining") {
		t.Errorf("drain announcement missing from stderr: %q", buf.String())
	}
}
