package trace

import (
	"sync"
	"testing"

	"snug/internal/addr"
	"snug/internal/isa"
)

// recGeom mirrors the test-scale L2 slice geometry.
var recGeom = addr.MustGeometry(64, 64)

// newTestGen builds a fresh generator for the named profile and seed.
func newTestGen(t *testing.T, name string, seed uint64) *Generator {
	t.Helper()
	prof, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(prof, recGeom, seed, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestReplayMatchesLiveStream is the subsystem's core contract: a replay
// serves exactly the instructions the live generator would have produced,
// field for field, across phase transitions and every instruction kind.
func TestReplayMatchesLiveStream(t *testing.T) {
	for _, name := range []string{"ammp", "vortex", "mcf", "swim"} {
		live := newTestGen(t, name, 42)
		rec := NewRecording(newTestGen(t, name, 42))
		rp := rec.Replay()
		var want, got isa.Instr
		for i := 0; i < 300_000; i++ {
			live.Next(&want)
			rp.Next(&got)
			if got != want {
				t.Fatalf("%s: instruction %d: replay %+v, live %+v", name, i, got, want)
			}
		}
		if rp.Pos() != 300_000 {
			t.Errorf("%s: Pos() = %d, want 300000", name, rp.Pos())
		}
	}
}

// TestReplayNextBatchMatchesNext: the batched decode path is the one the
// core model's run loop uses; it must serve exactly the instructions Next
// would, across window boundaries and ragged batch sizes (including
// batches larger than one extension).
func TestReplayNextBatchMatchesNext(t *testing.T) {
	rec := NewRecording(newTestGen(t, "vortex", 42))
	one := rec.Replay()
	batched := rec.Replay()
	sizes := []int{1, 3, 256, 17, 4096 + 9, 64}
	buf := make([]isa.Instr, 4096+9)
	var want isa.Instr
	total := int64(0)
	for i := 0; total < 40_000; i++ {
		n := sizes[i%len(sizes)]
		if got := batched.NextBatch(buf[:n]); got != n {
			t.Fatalf("NextBatch(%d) = %d", n, got)
		}
		for j := 0; j < n; j++ {
			one.Next(&want)
			if buf[j] != want {
				t.Fatalf("instruction %d: batch %+v, next %+v", total+int64(j), buf[j], want)
			}
		}
		total += int64(n)
		if batched.Pos() != total {
			t.Fatalf("Pos() = %d after %d batched instructions", batched.Pos(), total)
		}
	}
}

// TestReplayCursorsIndependent checks that cursors over one recording do
// not disturb each other: a second cursor started later sees the stream
// from the beginning.
func TestReplayCursorsIndependent(t *testing.T) {
	rec := NewRecording(newTestGen(t, "parser", 7))
	a := rec.Replay()
	var in isa.Instr
	first := make([]isa.Instr, 1000)
	for i := range first {
		a.Next(&first[i])
	}
	// Drain a further ahead, then start b from scratch.
	for i := 0; i < 100_000; i++ {
		a.Next(&in)
	}
	b := rec.Replay()
	for i := range first {
		b.Next(&in)
		if in != first[i] {
			t.Fatalf("instruction %d: second cursor %+v, first cursor %+v", i, in, first[i])
		}
	}
}

// TestReplayConcurrent runs several cursors over one shared recording from
// different goroutines (the sweep's scheme-parallel shape) and checks every
// cursor decodes the identical stream. Run under -race this also validates
// the publication protocol.
func TestReplayConcurrent(t *testing.T) {
	rec := NewRecording(newTestGen(t, "ammp", 99))
	const n = 120_000
	want := make([]isa.Instr, n)
	ref := rec.Replay()
	for i := range want {
		ref.Next(&want[i])
	}
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rp := rec.Replay()
			var in isa.Instr
			for i := 0; i < n; i++ {
				rp.Next(&in)
				if in != want[i] {
					errs <- "cursor diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestReplayConcurrentLazyExtension has racing cursors drive extension
// themselves (no pre-recorded prefix), exercising extension under
// contention rather than read-after-publish only.
func TestReplayConcurrentLazyExtension(t *testing.T) {
	rec := NewRecording(newTestGen(t, "vortex", 3))
	const n = 80_000
	var wg sync.WaitGroup
	sums := make([]uint64, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rp := rec.Replay()
			var in isa.Instr
			var sum uint64
			for i := 0; i < n; i++ {
				rp.Next(&in)
				sum = sum*1099511628211 + in.PC ^ uint64(in.Kind)<<56 ^ uint64(in.Addr)
			}
			sums[w] = sum
		}(w)
	}
	wg.Wait()
	for w := 1; w < len(sums); w++ {
		if sums[w] != sums[0] {
			t.Fatalf("cursor %d decoded a different stream (digest %x, want %x)", w, sums[w], sums[0])
		}
	}
}

// TestRecordingCompact pins the encoding's space advantage: the paper-model
// streams are dominated by sequential-PC filler, so the recording must stay
// well under 4 bytes per instruction (raw isa.Instr is 40).
func TestRecordingCompact(t *testing.T) {
	rec := NewRecording(newTestGen(t, "ammp", 5))
	rec.Record(200_000)
	n, bytes := rec.Len(), rec.Bytes()
	if n < 200_000 {
		t.Fatalf("recorded %d instructions, want >= 200000", n)
	}
	perInstr := float64(bytes) / float64(n)
	if perInstr >= 4 {
		t.Errorf("encoding uses %.2f bytes/instruction, want < 4", perInstr)
	}
	t.Logf("%d instructions in %d bytes (%.2f B/instr)", n, bytes, perInstr)
}

// TestRecordingLazy checks extension happens on demand, not eagerly.
func TestRecordingLazy(t *testing.T) {
	rec := NewRecording(newTestGen(t, "gzip", 11))
	if rec.Len() != 0 {
		t.Fatalf("fresh recording has %d instructions, want 0", rec.Len())
	}
	rp := rec.Replay()
	var in isa.Instr
	rp.Next(&in)
	got := rec.Len()
	if got <= 0 || got > 4*extendBatch {
		t.Errorf("after one Next, recording holds %d instructions, want one small batch", got)
	}
}

// BenchmarkReplayNext measures the replay decode hot path.
func BenchmarkReplayNext(b *testing.B) {
	prof, err := ByName("ammp")
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGenerator(prof, recGeom, 42, 50_000)
	if err != nil {
		b.Fatal(err)
	}
	rec := NewRecording(g)
	rec.Record(int64(1_000_000))
	rp := rec.Replay()
	var in isa.Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rp.Pos() >= 1_000_000 {
			rp = rec.Replay() // stay inside the pre-recorded prefix
		}
		rp.Next(&in)
	}
}

// TestRecycleReusesChunksAndPoisons pins the Recycle contract: recycled
// recordings return their chunk storage to the shared pool (a fresh
// recording decodes correctly over the reused memory), and any use of the
// recycled recording panics instead of silently reading another stream's
// bytes.
func TestRecycleReusesChunksAndPoisons(t *testing.T) {
	const n = 200_000 // tens of chunks: reuse exercises more than one buffer
	first := NewRecording(newTestGen(t, "ammp", 1))
	first.Record(n)
	first.Recycle()
	first.Recycle() // idempotent

	// A post-recycle recording draws from the pool; its replay must match
	// its own live source exactly even though the buffers were just used.
	rec := NewRecording(newTestGen(t, "swim", 2))
	rep := rec.Replay()
	live := newTestGen(t, "swim", 2)
	var want, got isa.Instr
	for i := 0; i < n; i++ {
		live.Next(&want)
		rep.Next(&got)
		if got != want {
			t.Fatalf("instr %d after recycle: got %+v want %+v", i, got, want)
		}
	}

	for name, f := range map[string]func(){
		"Replay": func() { first.Replay() },
		"Record": func() { first.Record(first.Len() + 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a recycled recording did not panic", name)
				}
			}()
			f()
		}()
	}
}
