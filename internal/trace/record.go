// Trace record/replay: capture a generator's emitted instruction stream
// once into a compact in-memory buffer and re-serve it, allocation-free,
// to any number of consumers.
//
// The evaluation sweep re-simulates every workload combination under
// several schemes and, since replicated sweeps, several replicates — all
// over the *same* paired-seed instruction streams. A generator's stream is
// a pure function of its construction parameters and is independent of
// simulation timing (the generator takes no feedback from the core or the
// caches), so the expensive synthesis work — RNG draws, phase bookkeeping,
// set and stack-distance selection — can be paid once per stream and
// amortized across every scheme that replays it.
//
// A Recording wraps a live source stream and memoizes its output into
// fixed-size chunks of a byte-oriented struct-of-arrays encoding:
//
//	meta byte   kind (4 bits) | DepPrev | Taken
//	pc          zig-zag varint delta against the previous instruction's PC
//	addr        zig-zag varint delta (loads/stores only)
//	target      zig-zag varint delta (returns only)
//
// Sequential PCs advance by 4, so the common case costs two bytes per
// instruction (~10x smaller than raw isa.Instr values). Recording is lazy:
// a Replay cursor that runs past the recorded prefix extends the recording
// from the live source, so no a-priori bound on the consumed stream length
// is needed — schemes with different IPCs naturally consume different
// prefixes of one shared recording.
//
// Concurrency: Replay cursors from different goroutines may share one
// Recording (the sweep runs a combination's schemes in parallel).
// Extension is serialized by a mutex; published state is advertised with
// atomics (bytes are written before the per-chunk byte count, which is
// written before the global instruction count, so a reader that observes
// the instruction count observes the bytes behind it). Chunk buffers are
// allocated at full, fixed length and an instruction never spans chunks,
// so published bytes are immutable.
package trace

import (
	"sync"
	"sync/atomic"

	"snug/internal/addr"
	"snug/internal/isa"
)

const (
	// chunkBytes is the fixed chunk-buffer size.
	chunkBytes = 1 << 16
	// maxInstrBytes bounds one encoded instruction (meta + three worst-case
	// 10-byte varints); a chunk with less remaining space is closed.
	maxInstrBytes = 31
	// extendBatch is how many instructions one extension appends. Large
	// enough to amortize the lock, small enough that the first consumer of
	// a fresh recording is not held up synthesizing a huge prefix.
	extendBatch = 4096
)

// chunk is one fixed-capacity span of the encoded stream. buf has full
// length from construction and is only appended to in place, so readers may
// index any prefix published through used.
type chunk struct {
	arr  *[chunkBytes]byte // pooled backing storage; nil after Recycle
	buf  []byte            // arr[:]
	used atomic.Int64      // published encoded bytes
}

// chunkPool recycles chunk backing arrays across recordings. A full
// evaluation sweep records hundreds of megabytes of streams cell by cell,
// and without reuse every cell's recording re-allocates its chunks from
// scratch — the dominant allocation cost of the whole evaluation. Pooling
// is safe because a recording's chunks are referenced only by the
// recording and its Replay cursors, and Recycle's contract is that both
// are done.
var chunkPool = sync.Pool{
	New: func() any { return new([chunkBytes]byte) },
}

// newChunk takes a backing array from the pool.
func newChunk() *chunk {
	arr := chunkPool.Get().(*[chunkBytes]byte)
	return &chunk{arr: arr, buf: arr[:]}
}

// Recording memoizes a source stream's instructions in encoded chunks. Use
// NewRecording, then serve consumers with Replay cursors.
type Recording struct {
	mu   sync.Mutex
	src  isa.Stream // consumed under mu
	name string

	// Encoder state, under mu.
	cur        *chunk
	curPos     int
	encPC      uint64
	encAddr    uint64
	encTarget  uint64
	totalBytes int64

	// in is the extension loop's decode target. It lives on the recording
	// rather than extend's stack because passing its address through the
	// isa.Stream interface call makes it escape — one heap allocation per
	// extend call, tens of thousands per evaluation sweep.
	in isa.Instr

	chunks atomic.Pointer[[]*chunk] // grow-only; replaced wholesale on append
	filled atomic.Int64             // published instruction count
}

// NewRecording wraps src in a lazily-extended recording. src must not be
// advanced by anyone else afterwards: the recording owns it.
func NewRecording(src isa.Stream) *Recording {
	r := &Recording{src: src, name: src.Name()}
	r.cur = newChunk()
	chunks := []*chunk{r.cur}
	r.chunks.Store(&chunks)
	return r
}

// Recycle returns the recording's chunk storage to the shared pool and
// poisons the recording. The caller must guarantee that no Replay cursor
// over this recording will be used again — recycled buffers are
// immediately rewritten by other recordings, so a late cursor would decode
// another stream's bytes. Any attempt to extend or replay after Recycle
// panics instead of corrupting results.
func (r *Recording) Recycle() {
	r.mu.Lock()
	defer r.mu.Unlock()
	chunks := r.chunks.Load()
	if chunks == nil {
		return // already recycled
	}
	for _, c := range *chunks {
		arr := c.arr
		c.arr = nil
		c.buf = nil
		if arr != nil {
			chunkPool.Put(arr)
		}
	}
	r.chunks.Store(nil)
	r.cur = nil
	r.src = nil
}

// RecycleAll recycles every recording in recs (the cell-sized convenience
// mirror of RecordAll/Replays).
func RecycleAll(recs []*Recording) {
	for _, r := range recs {
		r.Recycle()
	}
}

// Record eagerly records the next n instructions of src on top of whatever
// extension has already happened. It is a test/benchmark convenience; the
// sweep path relies on lazy extension instead.
func (r *Recording) Record(n int64) {
	for r.filled.Load() < n {
		r.extend()
	}
}

// Name returns the source stream's name.
func (r *Recording) Name() string { return r.name }

// Len returns the number of instructions recorded so far.
func (r *Recording) Len() int64 { return r.filled.Load() }

// Bytes returns the encoded size of the recording so far.
func (r *Recording) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalBytes
}

// Replay returns a new cursor positioned at the start of the stream. Each
// simulated core needs its own cursor; cursors are not goroutine-safe but
// distinct cursors over one Recording are.
func (r *Recording) Replay() *Replay {
	p := r.chunks.Load()
	if p == nil {
		panic("trace: Replay cursor opened after Recycle")
	}
	chunks := *p
	return &Replay{rec: r, chunks: chunks, buf: chunks[0].buf}
}

// extend appends one batch of instructions from the source stream.
func (r *Recording) extend() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		panic("trace: Recording extended after Recycle")
	}
	for i := 0; i < extendBatch; i++ {
		r.src.Next(&r.in)
		r.encode(&r.in)
	}
	r.cur.used.Store(int64(r.curPos))
	r.filled.Add(extendBatch)
}

// encode appends one instruction to the current chunk, closing it and
// opening a new one when it cannot hold a worst-case instruction.
func (r *Recording) encode(in *isa.Instr) {
	if r.curPos > chunkBytes-maxInstrBytes {
		r.cur.used.Store(int64(r.curPos))
		r.cur = newChunk()
		r.curPos = 0
		old := *r.chunks.Load()
		chunks := make([]*chunk, len(old)+1)
		copy(chunks, old)
		chunks[len(old)] = r.cur
		r.chunks.Store(&chunks)
	}
	buf := r.cur.buf
	pos := r.curPos
	meta := byte(in.Kind)
	if in.DepPrev {
		meta |= metaDepPrev
	}
	if in.Taken {
		meta |= metaTaken
	}
	if in.PC == r.encPC+4 {
		// Straight-line fetch — the overwhelmingly common case: fold the
		// +4 PC advance into the meta byte and skip the varint entirely.
		buf[pos] = meta | metaSeqPC
		pos++
	} else {
		buf[pos] = meta
		pos++
		pos = putUvarint(buf, pos, zig(in.PC-r.encPC))
	}
	r.encPC = in.PC
	switch in.Kind {
	case isa.KindLoad, isa.KindStore:
		a := uint64(in.Addr)
		pos = putUvarint(buf, pos, zig(a-r.encAddr))
		r.encAddr = a
	case isa.KindReturn:
		pos = putUvarint(buf, pos, zig(in.Target-r.encTarget))
		r.encTarget = in.Target
	}
	r.totalBytes += int64(pos - r.curPos)
	r.curPos = pos
}

// meta-byte layout: low 4 bits hold the kind, then one bit per flag.
// metaSeqPC marks a straight-line PC (previous + 4) carried by the meta
// byte itself, with no PC varint following.
const (
	metaKindMask = 0x0f
	metaDepPrev  = 1 << 4
	metaTaken    = 1 << 5
	metaSeqPC    = 1 << 6
)

// Replay is a sequential cursor over a Recording, implementing isa.Stream.
// Next is allocation-free; when the cursor catches up with the recorded
// prefix it extends the recording from the live source.
type Replay struct {
	rec    *Recording
	chunks []*chunk // snapshot of the recording's chunk list
	ci     int      // index of the current chunk in chunks
	buf    []byte   // chunks[ci].buf
	off    int      // decode position in buf
	used   int      // cached published byte count of the current chunk

	pos   int64 // instructions decoded
	limit int64 // cached published instruction count

	prevPC     uint64
	prevAddr   uint64
	prevTarget uint64
}

// Name implements isa.Stream.
func (p *Replay) Name() string { return p.rec.name }

// Pos returns the number of instructions served so far.
func (p *Replay) Pos() int64 { return p.pos }

// Next implements isa.Stream, decoding the next recorded instruction.
//
//snug:hotpath
//snug:inline
//snug:allow gcinline the decode loop costs ~480 against the 80 budget; per-call overhead is amortized by NextBatch on the hot engines
func (p *Replay) Next(in *isa.Instr) {
	if p.pos >= p.limit {
		p.moreInstructions()
	}
	if p.off >= p.used {
		p.moreBytes()
	}
	buf := p.buf
	off := p.off
	meta := buf[off]
	off++
	var pc uint64
	if meta&metaSeqPC != 0 {
		pc = p.prevPC + 4
	} else {
		var d uint64
		if b := buf[off]; b < 0x80 { // inline uvarint fast path
			d, off = uint64(b), off+1
		} else {
			d, off = uvarint(buf, off)
		}
		pc = p.prevPC + zag(d)
	}
	p.prevPC = pc
	kind := isa.Kind(meta & metaKindMask)
	in.Kind = kind
	in.PC = pc
	in.DepPrev = meta&metaDepPrev != 0
	in.Taken = meta&metaTaken != 0
	in.Addr = 0
	in.Target = 0
	switch kind {
	case isa.KindLoad, isa.KindStore:
		d, o := uvarint(buf, off)
		off = o
		a := p.prevAddr + zag(d)
		p.prevAddr = a
		in.Addr = addr.Addr(a)
	case isa.KindReturn:
		d, o := uvarint(buf, off)
		off = o
		t := p.prevTarget + zag(d)
		p.prevTarget = t
		in.Target = t
	}
	p.off = off
	p.pos++
}

// NextBatch implements isa.BatchStream: the cursor and delta-decoder state
// live in locals across the batch and the published-window checks run once
// per window instead of once per instruction, so batched replay decodes at
// memory-scan speed. Behaviour is identical to len(dst) Next calls.
//
//snug:hotpath
func (p *Replay) NextBatch(dst []isa.Instr) int {
	n := 0
	for n < len(dst) {
		if p.pos >= p.limit {
			p.moreInstructions()
		}
		if p.off >= p.used {
			p.moreBytes()
		}
		// Decode straight out of the current chunk's published window.
		// Published byte counts land on instruction boundaries, so every
		// instruction starting below used is complete.
		buf := p.buf
		off := p.off
		used := p.used
		pc, a, tgt := p.prevPC, p.prevAddr, p.prevTarget
		decoded := int64(0)
		for off < used && n < len(dst) {
			in := &dst[n]
			meta := buf[off]
			off++
			if meta&metaSeqPC != 0 {
				pc += 4
			} else {
				var d uint64
				if b := buf[off]; b < 0x80 { // inline uvarint fast path
					d, off = uint64(b), off+1
				} else {
					d, off = uvarint(buf, off)
				}
				pc += zag(d)
			}
			kind := isa.Kind(meta & metaKindMask)
			in.Kind = kind
			in.PC = pc
			in.DepPrev = meta&metaDepPrev != 0
			in.Taken = meta&metaTaken != 0
			in.Addr = 0
			in.Target = 0
			switch kind {
			case isa.KindLoad, isa.KindStore:
				var d uint64
				if b := buf[off]; b < 0x80 {
					d, off = uint64(b), off+1
				} else {
					d, off = uvarint(buf, off)
				}
				a += zag(d)
				in.Addr = addr.Addr(a)
			case isa.KindReturn:
				d, o := uvarint(buf, off)
				off = o
				tgt += zag(d)
				in.Target = tgt
			}
			n++
			decoded++
		}
		p.off = off
		p.prevPC, p.prevAddr, p.prevTarget = pc, a, tgt
		p.pos += decoded
	}
	return n
}

// moreInstructions refreshes the published-instruction limit, extending the
// recording from its source when the cursor has truly caught up.
func (p *Replay) moreInstructions() {
	for {
		if l := p.rec.filled.Load(); l > p.pos {
			p.limit = l
			return
		}
		p.rec.extend()
	}
}

// moreBytes refreshes the current chunk's published byte count or advances
// to the next chunk. It is only called with published instructions ahead of
// the cursor (pos < limit), so the bytes exist: either the current chunk
// has grown, or it was closed and the stream continues in the next one.
func (p *Replay) moreBytes() {
	if used := int(p.chunks[p.ci].used.Load()); used > p.off {
		p.used = used
		return
	}
	p.ci++
	if p.ci >= len(p.chunks) {
		p.chunks = *p.rec.chunks.Load()
	}
	c := p.chunks[p.ci]
	p.buf = c.buf
	p.off = 0
	p.used = int(c.used.Load())
}

// RecordAll wraps each stream in a Recording, preserving order.
func RecordAll(streams []isa.Stream) []*Recording {
	recs := make([]*Recording, len(streams))
	for i, s := range streams {
		recs[i] = NewRecording(s)
	}
	return recs
}

// Replays returns a fresh cursor per recording, as a stream slice ready for
// cmp.NewSystem.
func Replays(recs []*Recording) []isa.Stream {
	streams := make([]isa.Stream, len(recs))
	for i, r := range recs {
		streams[i] = r.Replay()
	}
	return streams
}

// zig maps a signed delta (carried as a wrapping uint64 difference) to the
// zig-zag encoding, keeping small negative deltas small.
func zig(d uint64) uint64 {
	return (d << 1) ^ uint64(int64(d)>>63)
}

// zag inverts zig.
//
//snug:inline
func zag(u uint64) uint64 {
	return (u >> 1) ^ -(u & 1)
}

// putUvarint writes v in LEB128 at buf[off:], returning the new offset.
func putUvarint(buf []byte, off int, v uint64) int {
	for v >= 0x80 {
		buf[off] = byte(v) | 0x80
		v >>= 7
		off++
	}
	buf[off] = byte(v)
	return off + 1
}

// uvarint reads a LEB128 value at buf[off:], returning it and the new
// offset. Encoded values are bounded by putUvarint, so no overflow checks.
//
//snug:inline
func uvarint(buf []byte, off int) (uint64, int) {
	var v uint64
	var s uint
	for {
		b := buf[off]
		off++
		if b < 0x80 {
			return v | uint64(b)<<s, off
		}
		v |= uint64(b&0x7f) << s
		s += 7
	}
}
