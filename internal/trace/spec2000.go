package trace

import (
	"fmt"
	"sort"
)

// The SPEC CPU2000 benchmark models. Depth bands are calibrated to the
// set-level demand distributions the paper reports in §2.3 and Table 6:
//
//   - class A (ammp, parser, vortex): > 1 MB application demand
//     (mean demand ≈ 16 ways/set on the 16-way 1 MB slice) with strong
//     set-level non-uniformity — a large cold fraction (givers) plus a
//     deep-demand fraction (takers);
//   - class B (apsi, gcc): < 1 MB application demand with set-level
//     non-uniformity (mostly shallow sets, a thin deep tail);
//   - class C (vpr, art, mcf, bzip2): > 1 MB demand, uniform across sets —
//     application-level takers with nothing to give;
//   - class D (gzip, swim, mesa): < 1 MB demand, uniform — application-level
//     givers (swim is a streaming giver: tiny reuse, high compulsory rate);
//   - applu: characterization-only streaming model for Figure 3.
//
// Figures 1–3 anchors: ammp keeps ~40 % of sets at demand 1–4 for the whole
// run; vortex spends sampling intervals ~405–792 (40.4 %–79.2 % of the run)
// in a phase with ~15 % of sets at 1–4, ~9 % at 5–8 and ~7 % at 9–12;
// applu keeps essentially all sets at 1–4.

// registry holds the models keyed by name.
var registry = map[string]Profile{}

func register(p Profile) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("trace: duplicate benchmark model %q", p.Name))
	}
	registry[p.Name] = p
}

// ByName returns the model for a benchmark name.
func ByName(name string) (Profile, error) {
	p, ok := registry[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
	}
	return p, nil
}

// MustByName is ByName but panics on unknown names.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesInClass returns the registered benchmarks of one class, sorted.
func NamesInClass(c Class) []string {
	var out []string
	for n, p := range registry {
		if p.Class == c {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// intProfile returns the common integer-code knobs.
func intProfile(p Profile) Profile {
	p.Burst = 14
	p.BranchEvery = 7
	p.BranchBias = 0.9
	p.HardBranchFrac = 0.15
	p.CallEvery = 90
	p.FPFrac = 0.02
	p.MultFrac = 0.01
	p.DivFrac = 0.002
	p.DepFrac = 0.52
	p.StackDecay = 0.96
	return p
}

// fpProfile returns the common floating-point-code knobs.
func fpProfile(p Profile) Profile {
	p.Burst = 14
	p.BranchEvery = 16
	p.BranchBias = 0.95
	p.HardBranchFrac = 0.05
	p.CallEvery = 200
	p.FPFrac = 0.45
	p.MultFrac = 0.04
	p.DivFrac = 0.004
	p.DepFrac = 0.48
	p.StackDecay = 0.94
	return p
}

func init() {
	// ---- Class A: > 1 MB, set-level non-uniform -------------------------

	register(fpProfile(Profile{
		Name:        "ammp",
		Class:       ClassA,
		L2Every:     55,
		StoreFrac:   0.24,
		DepLoadFrac: 0.30,
		Phases: []Phase{{
			FracOfRun: 1.0,
			Bands: []DemandBand{
				{Frac: 0.40, MinDepth: 1, MaxDepth: 4},   // persistent cold 40 %
				{Frac: 0.10, MinDepth: 5, MaxDepth: 9},   // shallow (real slack)
				{Frac: 0.50, MinDepth: 44, MaxDepth: 60}, // deep takers (>> 2x assoc)
			},
			Compulsory: 0.02,
			HotWeight:  0.6,
		}},
	}))

	register(intProfile(Profile{
		Name:        "parser",
		Class:       ClassA,
		L2Every:     60,
		StoreFrac:   0.28,
		DepLoadFrac: 0.40,
		Phases: []Phase{{
			FracOfRun: 1.0,
			Bands: []DemandBand{
				{Frac: 0.30, MinDepth: 1, MaxDepth: 4},
				{Frac: 0.20, MinDepth: 5, MaxDepth: 10},
				{Frac: 0.50, MinDepth: 40, MaxDepth: 56},
			},
			Compulsory: 0.03,
			HotWeight:  0.6,
		}},
	}))

	register(intProfile(Profile{
		Name:        "vortex",
		Class:       ClassA,
		L2Every:     58,
		StoreFrac:   0.30,
		DepLoadFrac: 0.35,
		Phases: []Phase{
			{ // intervals ~1..404: mildly deep everywhere
				FracOfRun: 0.404,
				Bands: []DemandBand{
					{Frac: 0.08, MinDepth: 1, MaxDepth: 4},
					{Frac: 0.05, MinDepth: 5, MaxDepth: 8},
					{Frac: 0.87, MinDepth: 34, MaxDepth: 50},
				},
				Compulsory: 0.02,
				HotWeight:  0.6,
			},
			{ // intervals ~405..792: the Figure 2 phase
				FracOfRun: 0.388,
				Bands: []DemandBand{
					{Frac: 0.15, MinDepth: 1, MaxDepth: 4},
					{Frac: 0.09, MinDepth: 5, MaxDepth: 8},
					{Frac: 0.07, MinDepth: 9, MaxDepth: 12},
					{Frac: 0.69, MinDepth: 36, MaxDepth: 52},
				},
				Compulsory: 0.02,
				HotWeight:  0.6,
			},
			{ // intervals ~793..1000: back to the opening behaviour
				FracOfRun: 0.208,
				Bands: []DemandBand{
					{Frac: 0.08, MinDepth: 1, MaxDepth: 4},
					{Frac: 0.05, MinDepth: 5, MaxDepth: 8},
					{Frac: 0.87, MinDepth: 34, MaxDepth: 50},
				},
				Compulsory: 0.02,
				HotWeight:  0.6,
			},
		},
	}))

	// ---- Class B: < 1 MB, set-level non-uniform -------------------------

	register(fpProfile(Profile{
		Name:        "apsi",
		Class:       ClassB,
		L2Every:     70,
		StoreFrac:   0.26,
		DepLoadFrac: 0.20,
		Phases: []Phase{{
			FracOfRun: 1.0,
			Bands: []DemandBand{
				{Frac: 0.45, MinDepth: 1, MaxDepth: 3},
				{Frac: 0.47, MinDepth: 4, MaxDepth: 8},
				{Frac: 0.08, MinDepth: 18, MaxDepth: 24},
			},
			Compulsory: 0.02,
			HotWeight:  0.6,
		}},
	}))

	register(intProfile(Profile{
		Name:        "gcc",
		Class:       ClassB,
		L2Every:     65,
		StoreFrac:   0.30,
		DepLoadFrac: 0.30,
		Phases: []Phase{{
			FracOfRun: 1.0,
			Bands: []DemandBand{
				{Frac: 0.55, MinDepth: 1, MaxDepth: 4},
				{Frac: 0.37, MinDepth: 5, MaxDepth: 8},
				{Frac: 0.08, MinDepth: 18, MaxDepth: 26},
			},
			Compulsory: 0.03,
			HotWeight:  0.6,
		}},
	}))

	// ---- Class C: > 1 MB, set-level uniform ------------------------------

	register(intProfile(Profile{
		Name:        "vpr",
		Class:       ClassC,
		L2Every:     60,
		StoreFrac:   0.25,
		DepLoadFrac: 0.35,
		Phases: []Phase{{
			FracOfRun:  1.0,
			Bands:      []DemandBand{{Frac: 1.0, MinDepth: 36, MaxDepth: 48}},
			Compulsory: 0.02,
			HotWeight:  0,
		}},
	}))

	register(fpProfile(Profile{
		Name:        "art",
		Class:       ClassC,
		L2Every:     40,
		StoreFrac:   0.18,
		DepLoadFrac: 0.08, // vector-style independent misses: high MLP
		Phases: []Phase{{
			FracOfRun:  1.0,
			Bands:      []DemandBand{{Frac: 1.0, MinDepth: 40, MaxDepth: 56}},
			Compulsory: 0.02,
			HotWeight:  0,
		}},
	}))

	register(intProfile(Profile{
		Name:        "mcf",
		Class:       ClassC,
		L2Every:     30,
		StoreFrac:   0.16,
		DepLoadFrac: 0.60, // pointer chasing: serialized misses
		Phases: []Phase{{
			FracOfRun:  1.0,
			Bands:      []DemandBand{{Frac: 1.0, MinDepth: 56, MaxDepth: 64}},
			Compulsory: 0.05,
			HotWeight:  0,
		}},
	}))

	register(intProfile(Profile{
		Name:        "bzip2",
		Class:       ClassC,
		L2Every:     65,
		StoreFrac:   0.30,
		DepLoadFrac: 0.25,
		Phases: []Phase{{
			FracOfRun:  1.0,
			Bands:      []DemandBand{{Frac: 1.0, MinDepth: 32, MaxDepth: 44}},
			Compulsory: 0.03,
			HotWeight:  0,
		}},
	}))

	// ---- Class D: < 1 MB, set-level uniform ------------------------------

	register(intProfile(Profile{
		Name:        "gzip",
		Class:       ClassD,
		L2Every:     90,
		StoreFrac:   0.28,
		DepLoadFrac: 0.20,
		Phases: []Phase{{
			FracOfRun:  1.0,
			Bands:      []DemandBand{{Frac: 1.0, MinDepth: 5, MaxDepth: 8}},
			Compulsory: 0.02,
			HotWeight:  0,
		}},
	}))

	register(fpProfile(Profile{
		Name:        "swim",
		Class:       ClassD,
		L2Every:     45,
		StoreFrac:   0.38,
		DepLoadFrac: 0.05,
		Phases: []Phase{{
			FracOfRun:  1.0,
			Bands:      []DemandBand{{Frac: 1.0, MinDepth: 1, MaxDepth: 2}},
			Compulsory: 0.90, // streaming: most touches are one-shot
			HotWeight:  0,
		}},
	}))

	register(fpProfile(Profile{
		Name:        "mesa",
		Class:       ClassD,
		L2Every:     100,
		StoreFrac:   0.25,
		DepLoadFrac: 0.15,
		Phases: []Phase{{
			FracOfRun:  1.0,
			Bands:      []DemandBand{{Frac: 1.0, MinDepth: 3, MaxDepth: 5}},
			Compulsory: 0.03,
			HotWeight:  0,
		}},
	}))

	// ---- Characterization-only ------------------------------------------

	register(fpProfile(Profile{
		Name:        "applu",
		Class:       ClassChar,
		L2Every:     40,
		StoreFrac:   0.35,
		DepLoadFrac: 0.05,
		Phases: []Phase{{
			FracOfRun:  1.0,
			Bands:      []DemandBand{{Frac: 1.0, MinDepth: 1, MaxDepth: 2}},
			Compulsory: 0.995,
			HotWeight:  0,
		}},
	}))
}
