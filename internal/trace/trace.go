// Package trace synthesizes the dynamic instruction/address streams of the
// SPEC CPU2000 benchmarks the paper evaluates. SPEC binaries and reference
// inputs are proprietary and PolyScalar is not distributable, so each
// benchmark is modeled as a parameterized generator calibrated to the
// properties the paper reports and exploits:
//
//   - application-level L2 capacity demand (> or < 1 MB — Table 6),
//   - the per-set demand distribution (fraction of sets requiring 1–4,
//     5–8, … blocks — the quantity Figures 1–3 plot),
//   - phase behaviour (vortex's mid-run phase between sampling intervals
//     ~405 and ~792 — Figure 2),
//   - streaming/compulsory-miss behaviour (applu, swim — Figure 3),
//   - instruction mix, dependence structure and branch predictability
//     (which set the core's latency tolerance).
//
// A generator's address stream works at L2-set granularity: every set of
// the L2 geometry is assigned a demand depth d(S) drawn from the profile's
// current phase; touches to a set pick uniformly among its d(S) resident
// blocks, so the set's measured block_required (Formula 3) concentrates at
// d(S). Short same-block bursts model L1-captured reuse so the L2 access
// stream (post-L1 filter) retains the intended set-level structure.
package trace

import (
	"fmt"
	"math"

	"snug/internal/addr"
	"snug/internal/isa"
	"snug/internal/stats"
)

// Class is the paper's Table 6 application classification.
type Class uint8

const (
	// ClassA : > 1 MB demand, set-level non-uniform (ammp, parser, vortex).
	ClassA Class = iota
	// ClassB : < 1 MB demand, set-level non-uniform (apsi, gcc).
	ClassB
	// ClassC : > 1 MB demand, set-level uniform (vpr, art, mcf, bzip2).
	ClassC
	// ClassD : < 1 MB demand, set-level uniform (gzip, swim, mesa).
	ClassD
	// ClassChar marks characterization-only models (applu).
	ClassChar
)

// String returns the class label used by Table 6.
func (c Class) String() string {
	switch c {
	case ClassA:
		return "A"
	case ClassB:
		return "B"
	case ClassC:
		return "C"
	case ClassD:
		return "D"
	case ClassChar:
		return "char"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// DemandBand assigns a fraction of sets a demand depth drawn uniformly from
// [MinDepth, MaxDepth] blocks.
type DemandBand struct {
	Frac     float64
	MinDepth int
	MaxDepth int
}

// Phase is one program phase: a per-set demand distribution plus streaming
// intensity, lasting FracOfRun of the generator's phase cycle.
type Phase struct {
	FracOfRun  float64
	Bands      []DemandBand
	Compulsory float64 // probability a touch allocates a never-seen block
	HotWeight  float64 // set access weight = depth^HotWeight (0 = uniform)
}

// Profile is a benchmark personality.
type Profile struct {
	Name  string
	Class Class

	// L2Every is the mean number of instructions between distinct-block
	// data touches (the touches that reach L2 after L1 filtering).
	L2Every int
	// Burst is the mean number of immediate same-block repeat accesses per
	// touch; repeats hit in L1 and set the L1 hit rate.
	Burst float64
	// StoreFrac is the probability a data access is a store.
	StoreFrac float64

	BranchEvery    int     // mean instructions between conditional branches
	HardBranchFrac float64 // fraction of branch sites with ~50/50 outcomes
	BranchBias     float64 // taken probability of the remaining sites
	CallEvery      int     // mean instructions between call/return pairs (0 disables)

	FPFrac   float64 // fraction of filler ops that are floating-point
	MultFrac float64 // fraction of filler ops that are multiplies
	DivFrac  float64 // fraction of filler ops that are divides
	DepFrac  float64 // fraction of filler ops depending on the previous op
	// DepLoadFrac is the probability a load depends on the previous
	// instruction (pointer chasing — high for mcf, low for art).
	DepLoadFrac float64

	// StackDecay is the per-position decay ρ of the within-set LRU
	// stack-distance distribution: a touch references the k-th most
	// recently used of the set's d(S) resident blocks with
	// P(k) ∝ ρ^(k-1), truncated at d(S). This directly realizes the
	// paper's §2.1 model — hits occur at LRU depths up to block_required —
	// and gives every LRU position real future value, so both the marginal
	// gain of extra ways and the cost of evicting a victim decay smoothly
	// with depth. Values outside (0,1) mean uniform stack distances.
	StackDecay float64

	Phases []Phase
}

// Validate reports profile construction errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile has no name")
	}
	if p.L2Every <= 0 {
		return fmt.Errorf("trace: %s: L2Every must be positive", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("trace: %s: profile needs at least one phase", p.Name)
	}
	totalFrac := 0.0
	for i, ph := range p.Phases {
		totalFrac += ph.FracOfRun
		bandSum := 0.0
		for _, b := range ph.Bands {
			if b.MinDepth < 1 || b.MaxDepth < b.MinDepth {
				return fmt.Errorf("trace: %s phase %d: bad band depth range [%d,%d]", p.Name, i, b.MinDepth, b.MaxDepth)
			}
			bandSum += b.Frac
		}
		if math.Abs(bandSum-1) > 1e-9 {
			return fmt.Errorf("trace: %s phase %d: band fractions sum to %.4f, want 1", p.Name, i, bandSum)
		}
		if ph.Compulsory < 0 || ph.Compulsory > 1 {
			return fmt.Errorf("trace: %s phase %d: compulsory rate %.2f out of [0,1]", p.Name, i, ph.Compulsory)
		}
	}
	if math.Abs(totalFrac-1) > 1e-9 {
		return fmt.Errorf("trace: %s: phase fractions sum to %.4f, want 1", p.Name, totalFrac)
	}
	return nil
}

// MeanDemandWays returns the footprint implied by the first phase, in
// average ways per set — the application-level capacity demand in units of
// the L2 associativity (16 ways = 1 MB for the Table 4 slice).
func (p Profile) MeanDemandWays() float64 {
	if len(p.Phases) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range p.Phases[0].Bands {
		sum += b.Frac * float64(b.MinDepth+b.MaxDepth) / 2
	}
	return sum
}

// branchSite is one static branch with its outcome bias.
type branchSite struct {
	pc   uint64
	bias float64
}

// Generator produces the dynamic stream for one benchmark instance. It
// implements isa.Stream deterministically for a fixed seed.
//
// Two separate seeds are in play: the per-instance stream seed randomizes
// access interleaving, and a benchmark-derived demand seed fixes the
// per-set depth assignment. The latter must NOT vary by instance: the
// paper's C1/C2 stress tests co-schedule identical applications precisely
// because they have the same capacity demand at both application and set
// level (§4.2), so two instances of one benchmark must agree on which sets
// are hot.
type Generator struct {
	prof       Profile
	geom       addr.Geometry
	rng        *stats.RNG
	seed       uint64
	demandSeed uint64

	totalRefs   int64 // distinct touches per full phase rotation
	phaseIdx    int
	refsInPhase int64
	phaseLen    []int64

	depths []int32
	cum    []float64 // cumulative set-selection weights
	wSum   float64

	// recency holds each set's pool slots ordered MRU-first; touches sample
	// a stack distance and move the touched slot to the front.
	recency [][]uint8

	freshCtr []uint32

	queue []isa.Instr
	head  int

	branches []branchSite
	pcTick   uint64

	// Cached per-instruction decision thresholds (plan/filler run once per
	// emitted instruction — the simulator's hottest path — so the divisions
	// behind them are hoisted out of it). Cumulative: a single uniform draw
	// is compared against each in order.
	cumMem, cumBr, cumCall float64 // unit-type thresholds (touch/branch/call)
	cumDiv, cumMult, cumFP float64 // filler-kind thresholds
	burstCont              float64 // same-block burst continuation probability

	touches int64 // distinct-block touches emitted (for tests/metrics)
}

// maxBurst caps same-block repeats so bursts stay within L1 residency.
const maxBurst = 24

// poolTagBase separates pool tags from fresh (streaming) tags.
const freshTagBase = 1 << 20

// NewGenerator builds a generator for prof over the given L2 geometry.
// totalRefs is the number of distinct touches in one full phase rotation
// (controls where vortex-style phase boundaries fall); seed fixes the
// stream.
func NewGenerator(prof Profile, geom addr.Geometry, seed uint64, totalRefs int64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if totalRefs <= 0 {
		return nil, fmt.Errorf("trace: totalRefs must be positive, got %d", totalRefs)
	}
	g := &Generator{
		prof:       prof,
		geom:       geom,
		rng:        stats.NewRNG(seed ^ stats.Mix64(uint64(len(prof.Name)))),
		seed:       seed,
		demandSeed: nameSeed(prof.Name),
		totalRefs:  totalRefs,
		depths:     make([]int32, geom.Sets()),
		cum:        make([]float64, geom.Sets()),
		recency:    make([][]uint8, geom.Sets()),
		freshCtr:   make([]uint32, geom.Sets()),
	}
	g.phaseLen = make([]int64, len(prof.Phases))
	for i, ph := range prof.Phases {
		g.phaseLen[i] = int64(ph.FracOfRun * float64(totalRefs))
		if g.phaseLen[i] <= 0 {
			g.phaseLen[i] = 1
		}
	}
	g.cumMem = 1 / float64(prof.L2Every)
	g.cumBr = g.cumMem + 1/float64(prof.BranchEvery)
	g.cumCall = g.cumBr
	if prof.CallEvery > 0 {
		g.cumCall += 1 / float64(prof.CallEvery)
	}
	g.cumDiv = prof.DivFrac
	g.cumMult = g.cumDiv + prof.MultFrac
	g.cumFP = g.cumMult + prof.FPFrac
	g.burstCont = prof.Burst / (1 + prof.Burst)
	nb := 64
	g.branches = make([]branchSite, nb)
	for i := range g.branches {
		bias := prof.BranchBias
		if float64(i) < prof.HardBranchFrac*float64(nb) {
			bias = 0.5
		}
		g.branches[i] = branchSite{pc: seed<<8 ^ uint64(0x4000+i*16), bias: bias}
	}
	g.enterPhase(0)
	return g, nil
}

// MustGenerator is NewGenerator but panics on error.
func MustGenerator(prof Profile, geom addr.Geometry, seed uint64, totalRefs int64) *Generator {
	g, err := NewGenerator(prof, geom, seed, totalRefs)
	if err != nil {
		panic(err)
	}
	return g
}

// WithDemandSalt decorrelates this instance's per-set demand map from other
// instances of the same benchmark, re-deriving the per-set depths.
//
// Rationale: the L2 is physically indexed, and two co-scheduled processes
// running the same binary receive different virtual-to-physical page
// mappings, so the *distribution* of set-level demand is identical across
// instances (the paper's stress-test premise) while the concrete hot-set
// indexes differ per instance. Salt 0 leaves instances perfectly aligned
// (an ablation knob: it disables all same-distribution complementarity).
func (g *Generator) WithDemandSalt(salt uint64) *Generator {
	g.demandSeed = nameSeed(g.prof.Name) ^ stats.Mix64(salt)
	g.enterPhase(g.phaseIdx)
	return g
}

// Name implements isa.Stream.
func (g *Generator) Name() string { return g.prof.Name }

// Touches returns the number of distinct-block data touches emitted.
func (g *Generator) Touches() int64 { return g.touches }

// PhaseIndex returns the current phase.
func (g *Generator) PhaseIndex() int { return g.phaseIdx }

// DemandDepth returns the current demand depth of set s (exported for
// tests and the characterization harness).
func (g *Generator) DemandDepth(s uint32) int { return int(g.depths[s]) }

// demandCorrelation is the fraction of sets whose demand assignment stays
// anchored to the benchmark's base map regardless of the instance salt.
// Co-scheduled instances of one binary share data-structure geometry (the
// paper's stress-test premise) but differ in physical page placement, so
// their hot-set maps coincide partially, not perfectly.
const demandCorrelation = 0.5

// enterPhase assigns per-set depths and the set-selection weights for
// phase idx. Assignment is stateless-hash based so it does not depend on
// visit order, and nested pools (slots 0..d-1) keep working sets
// overlapping across phase transitions.
func (g *Generator) enterPhase(idx int) {
	g.phaseIdx = idx
	g.refsInPhase = 0
	base := nameSeed(g.prof.Name)
	ph := &g.prof.Phases[idx]
	w := 0.0
	for s := range g.depths {
		seed := g.demandSeed
		// A stable per-set coin (independent of salt) anchors a fraction of
		// sets to the shared base map.
		if anchor := stats.Mix64(base ^ uint64(s)*0x517cc1b727220a95); float64(anchor>>11)/(1<<53) < demandCorrelation {
			seed = base
		}
		h := stats.Mix64(seed ^ uint64(s)*0x9E3779B97F4A7C15 ^ uint64(idx)<<32)
		f := float64(h>>11) / (1 << 53)
		d := 1
		acc := 0.0
		for _, b := range ph.Bands {
			acc += b.Frac
			if f < acc || &b == &ph.Bands[len(ph.Bands)-1] {
				span := b.MaxDepth - b.MinDepth + 1
				d = b.MinDepth + int(stats.Mix64(h)%uint64(span))
				break
			}
		}
		g.depths[s] = int32(d)
		// Resize the recency permutation: keep surviving slots (< d) in
		// recency order so working sets overlap across phase transitions,
		// then append any missing slot ids at LRU positions.
		rec := g.recency[s][:0]
		var present [256]bool
		for _, id := range g.recency[s] {
			if int(id) < d && !present[id] {
				present[id] = true
				rec = append(rec, id)
			}
		}
		for id := 0; id < d; id++ {
			if !present[id] {
				rec = append(rec, uint8(id))
			}
		}
		g.recency[s] = rec
		switch {
		case ph.HotWeight == 0:
			w += 1
		case ph.HotWeight == 1:
			w += float64(d)
		default:
			w += math.Pow(float64(d), ph.HotWeight)
		}
		g.cum[s] = w
	}
	g.wSum = w
}

// pickSet samples a set index from the phase's weight distribution.
func (g *Generator) pickSet() uint32 {
	target := g.rng.Float64() * g.wSum
	lo, hi := 0, len(g.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// Next implements isa.Stream. It plans the next unit in place: a data-touch
// burst, a branch, a call/return pair, or filler compute. Filler — the vast
// majority of the stream — is written straight into in, skipping the queue
// round trip; multi-instruction units go through the queue. The RNG draw
// order is identical either way, so streams are unchanged by the fast path.
func (g *Generator) Next(in *isa.Instr) {
	if g.head < len(g.queue) {
		*in = g.queue[g.head]
		g.head++
		return
	}
	g.queue = g.queue[:0]
	g.head = 0
	r := g.rng.Float64()
	switch {
	case r < g.cumMem:
		g.planTouch()
	case r < g.cumBr:
		g.planBranch()
	case r < g.cumCall:
		g.planCall()
	default:
		*in = g.filler()
		return
	}
	*in = g.queue[0]
	g.head = 1
}

// planTouch emits one distinct-block access followed by its L1-hit burst.
func (g *Generator) planTouch() {
	ph := &g.prof.Phases[g.phaseIdx]
	s := g.pickSet()
	var tag uint64
	if g.rng.Bool(ph.Compulsory) {
		g.freshCtr[s]++
		tag = freshTagBase + uint64(g.freshCtr[s])
	} else {
		tag = 1 + uint64(g.touchPool(s))
	}
	a := g.geom.Rebuild(tag, s)
	// The store decision is per touch, not per access: at most the first
	// access of a touch writes. Rolling an independent store probability on
	// every burst repeat would leave essentially every resident block dirty
	// (P ≈ 1-(1-storeFrac)^burst), which would starve cooperative caching —
	// only clean victims may spill (§3.3).
	g.emitAccess(a, g.rng.Bool(g.prof.StoreFrac))

	// Same-block repeats: captured by L1, sustaining a realistic L1 hit
	// rate without disturbing the L2-level reuse structure.
	n := 0
	for n < maxBurst && g.rng.Bool(g.burstCont) {
		g.queue = append(g.queue, g.filler())
		g.emitAccess(a, false)
		n++
	}

	g.touches++
	g.refsInPhase++
	if g.refsInPhase >= g.phaseLen[g.phaseIdx] {
		g.enterPhase((g.phaseIdx + 1) % len(g.prof.Phases))
	}
}

// touchPool samples a stack distance for set s and returns the touched pool
// slot, rotating it to MRU. With decay ρ ∈ (0,1), P(distance k) ∝ ρ^(k-1)
// truncated at d(S); otherwise distances are uniform over [1, d(S)].
func (g *Generator) touchPool(s uint32) int {
	rec := g.recency[s]
	d := len(rec)
	if d == 1 {
		return int(rec[0])
	}
	var k int
	rho := g.prof.StackDecay
	if rho > 0 && rho < 1 {
		// Inverse CDF of the truncated geometric.
		u := g.rng.Float64() * (1 - math.Pow(rho, float64(d)))
		k = 1 + int(math.Log(1-u)/math.Log(rho))
	} else {
		k = 1 + g.rng.Intn(d)
	}
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	slot := rec[k-1]
	copy(rec[1:k], rec[0:k-1])
	rec[0] = slot
	return int(slot)
}

// emitAccess appends one load/store of address a.
func (g *Generator) emitAccess(a addr.Addr, store bool) {
	g.pcTick += 4
	in := isa.Instr{PC: g.pcTick, Addr: a}
	if store {
		in.Kind = isa.KindStore
	} else {
		in.Kind = isa.KindLoad
		in.DepPrev = g.rng.Bool(g.prof.DepLoadFrac)
	}
	g.queue = append(g.queue, in)
}

// planBranch emits one conditional branch from the benchmark's site pool.
func (g *Generator) planBranch() {
	site := &g.branches[g.rng.Intn(len(g.branches))]
	g.queue = append(g.queue, isa.Instr{
		Kind:  isa.KindBranch,
		PC:    site.pc,
		Taken: g.rng.Bool(site.bias),
	})
}

// planCall emits a call / body / return triple exercising the RAS.
func (g *Generator) planCall() {
	g.pcTick += 4
	callPC := g.pcTick
	g.queue = append(g.queue,
		isa.Instr{Kind: isa.KindCall, PC: callPC},
		g.filler(),
		g.filler(),
		isa.Instr{Kind: isa.KindReturn, PC: callPC + 0x100, Target: callPC + 4},
	)
}

// nameSeed hashes a benchmark name into the demand seed shared by all
// instances of that benchmark.
func nameSeed(name string) uint64 { return stats.HashString(name) }

// filler returns one compute instruction per the profile's mix.
func (g *Generator) filler() isa.Instr {
	g.pcTick += 4
	in := isa.Instr{PC: g.pcTick, DepPrev: g.rng.Bool(g.prof.DepFrac)}
	r := g.rng.Float64()
	switch {
	case r < g.cumDiv:
		in.Kind = isa.KindDiv
	case r < g.cumMult:
		in.Kind = isa.KindMult
	case r < g.cumFP:
		in.Kind = isa.KindFPU
	default:
		in.Kind = isa.KindALU
	}
	return in
}
