package trace

import (
	"testing"

	"snug/internal/addr"
	"snug/internal/isa"
)

var testGeom = addr.MustGeometry(64, 64)

func TestRegistryCompleteness(t *testing.T) {
	// Table 6's twelve evaluation benchmarks plus applu for Figure 3.
	want := map[string]Class{
		"ammp": ClassA, "parser": ClassA, "vortex": ClassA,
		"apsi": ClassB, "gcc": ClassB,
		"vpr": ClassC, "art": ClassC, "mcf": ClassC, "bzip2": ClassC,
		"gzip": ClassD, "swim": ClassD, "mesa": ClassD,
		"applu": ClassChar,
	}
	if len(Names()) != len(want) {
		t.Fatalf("registry has %d models, want %d: %v", len(Names()), len(want), Names())
	}
	for name, class := range want {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if p.Class != class {
			t.Errorf("%s class %s, want %s", name, p.Class, class)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}

func TestTable6CapacityClasses(t *testing.T) {
	// Class A/C demand > 1 MB (mean > 16 ways/set); class B/D below.
	for _, name := range Names() {
		p := MustByName(name)
		ways := p.MeanDemandWays()
		switch p.Class {
		case ClassA, ClassC:
			if ways <= 16 {
				t.Errorf("%s (class %s): mean demand %.1f ways, want > 16 (1 MB)", name, p.Class, ways)
			}
		case ClassB, ClassD:
			if ways >= 16 {
				t.Errorf("%s (class %s): mean demand %.1f ways, want < 16", name, p.Class, ways)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := MustByName("ammp")
	g1 := MustGenerator(p, testGeom, 42, 10_000)
	g2 := MustGenerator(p, testGeom, 42, 10_000)
	var a, b isa.Instr
	for i := 0; i < 20_000; i++ {
		g1.Next(&a)
		g2.Next(&b)
		if a != b {
			t.Fatalf("instruction %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p := MustByName("ammp")
	g1 := MustGenerator(p, testGeom, 1, 10_000)
	g2 := MustGenerator(p, testGeom, 2, 10_000)
	var a, b isa.Instr
	same := 0
	for i := 0; i < 1000; i++ {
		g1.Next(&a)
		g2.Next(&b)
		if a == b {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical instructions", same)
	}
}

func TestDemandMapSharedAcrossInstances(t *testing.T) {
	p := MustByName("ammp")
	g1 := MustGenerator(p, testGeom, 1, 10_000)
	g2 := MustGenerator(p, testGeom, 99, 10_000)
	// Without salts, instances agree on every set's demand depth.
	for s := uint32(0); s < uint32(testGeom.Sets()); s++ {
		if g1.DemandDepth(s) != g2.DemandDepth(s) {
			t.Fatalf("set %d depth differs across unsalted instances", s)
		}
	}
	// With distinct salts the maps partially decorrelate but keep the
	// distribution (the correlated anchor fraction stays equal).
	g2.WithDemandSalt(7)
	differ := 0
	for s := uint32(0); s < uint32(testGeom.Sets()); s++ {
		if g1.DemandDepth(s) != g2.DemandDepth(s) {
			differ++
		}
	}
	if differ == 0 {
		t.Fatal("salt changed nothing")
	}
	if differ == testGeom.Sets() {
		t.Fatal("salt decorrelated every set; expected partial (page-level) correlation")
	}
}

func TestAmmpDemandDistributionMatchesFigure1(t *testing.T) {
	// Figure 1: ~40% of ammp's sets demand 1-4 blocks; ~half are deep
	// takers. Check the assigned map against the profile's bands.
	g := MustGenerator(MustByName("ammp"), addr.MustGeometry(64, 1024), 3, 10_000)
	shallow, deep := 0, 0
	for s := uint32(0); s < 1024; s++ {
		d := g.DemandDepth(s)
		if d <= 4 {
			shallow++
		}
		if d > 32 {
			deep++
		}
	}
	if f := float64(shallow) / 1024; f < 0.33 || f > 0.47 {
		t.Errorf("ammp shallow-set fraction %.2f, want ~0.40", f)
	}
	if f := float64(deep) / 1024; f < 0.42 || f > 0.58 {
		t.Errorf("ammp deep-set fraction %.2f, want ~0.50", f)
	}
}

func TestVortexPhases(t *testing.T) {
	p := MustByName("vortex")
	if len(p.Phases) != 3 {
		t.Fatalf("vortex has %d phases, want 3 (Figure 2)", len(p.Phases))
	}
	g := MustGenerator(p, testGeom, 5, 2_000)
	var in isa.Instr
	seen := map[int]bool{g.PhaseIndex(): true}
	for i := 0; i < 2_000_000 && len(seen) < 3; i++ {
		g.Next(&in)
		seen[g.PhaseIndex()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("only phases %v visited", seen)
	}
}

func TestStreamComposition(t *testing.T) {
	p := MustByName("parser")
	g := MustGenerator(p, testGeom, 9, 100_000)
	var in isa.Instr
	var counts [isa.NumKinds]int
	const n = 200_000
	for i := 0; i < n; i++ {
		g.Next(&in)
		counts[in.Kind]++
		if in.Kind == isa.KindLoad || in.Kind == isa.KindStore {
			if testGeom.Index(in.Addr) >= uint32(testGeom.Sets()) {
				t.Fatal("access outside geometry")
			}
		}
	}
	mem := counts[isa.KindLoad] + counts[isa.KindStore]
	if mem == 0 || counts[isa.KindBranch] == 0 || counts[isa.KindALU] == 0 {
		t.Fatalf("degenerate mix: %v", counts)
	}
	memFrac := float64(mem) / n
	if memFrac < 0.05 || memFrac > 0.5 {
		t.Errorf("memory fraction %.2f implausible", memFrac)
	}
	storeFrac := float64(counts[isa.KindStore]) / float64(mem)
	if storeFrac < 0.01 || storeFrac > 0.2 {
		t.Errorf("store fraction %.2f; stores are per touch, expect well below StoreFrac=%.2f",
			storeFrac, p.StoreFrac)
	}
	if counts[isa.KindCall] != counts[isa.KindReturn] {
		t.Errorf("calls %d != returns %d", counts[isa.KindCall], counts[isa.KindReturn])
	}
}

func TestTouchPoolStackDistances(t *testing.T) {
	// With decay ρ, small stack distances dominate but the full depth is
	// exercised — the property block_required measurement relies on.
	p := MustByName("mcf") // deep uniform sets
	g := MustGenerator(p, testGeom, 11, 100_000)
	d := g.DemandDepth(0)
	if d < 32 {
		t.Fatalf("mcf depth %d, want deep", d)
	}
	seen := map[int]bool{}
	for i := 0; i < 20_000; i++ {
		seen[g.touchPool(0)] = true
	}
	if len(seen) < d*3/4 {
		t.Errorf("only %d/%d pool slots touched; tail never exercised", len(seen), d)
	}
}

func TestRecencyPermutationInvariant(t *testing.T) {
	g := MustGenerator(MustByName("vortex"), testGeom, 13, 1_000)
	var in isa.Instr
	for i := 0; i < 300_000; i++ { // cycles through phases repeatedly
		g.Next(&in)
	}
	for s := range g.recency {
		seen := map[uint8]bool{}
		for _, id := range g.recency[s] {
			if int(id) >= len(g.recency[s]) {
				t.Fatalf("set %d: slot id %d out of range %d", s, id, len(g.recency[s]))
			}
			if seen[id] {
				t.Fatalf("set %d: duplicate slot id %d", s, id)
			}
			seen[id] = true
		}
		if len(g.recency[s]) != g.DemandDepth(uint32(s)) {
			t.Fatalf("set %d: recency length %d != depth %d", s, len(g.recency[s]), g.DemandDepth(uint32(s)))
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := MustByName("ammp")
	bad := base
	bad.Phases = []Phase{{FracOfRun: 0.5, Bands: base.Phases[0].Bands}}
	if err := bad.Validate(); err == nil {
		t.Error("phase fractions not summing to 1 accepted")
	}
	bad = base
	bad.Phases = []Phase{{FracOfRun: 1, Bands: []DemandBand{{Frac: 0.5, MinDepth: 1, MaxDepth: 4}}}}
	if err := bad.Validate(); err == nil {
		t.Error("band fractions not summing to 1 accepted")
	}
	bad = base
	bad.L2Every = 0
	if err := bad.Validate(); err == nil {
		t.Error("L2Every=0 accepted")
	}
	if _, err := ByName("quake3"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
