// Package bus models the on-chip snoop interconnect of Table 4: a 16-byte
// wide split-transaction bus running at a 4:1 core-to-bus clock ratio with
// 1 bus-cycle arbitration. The model is occupancy-based: each transaction
// (address/snoop broadcast, data-block transfer, write-back drain) occupies
// the bus for its transfer time.
//
// Because the bus is split-transaction, it is NOT held between a request
// and its (much later) reply: a DRAM fill's data phase reserves bus time
// ~300 cycles in the future, and address phases issued meanwhile must slot
// into the gap before it. The model therefore keeps a short calendar of
// future busy intervals and places each transaction into the earliest gap
// at or after its request time, which captures serialization and
// contention without hogging the bus across memory latency.
package bus

import (
	"fmt"
	"sort"
)

// Kind labels a bus transaction for accounting.
type Kind uint8

const (
	// KindSnoop is an address-only broadcast: a CC spill request, a
	// block-retrieval request, or a memory request (one address beat).
	KindSnoop Kind = iota
	// KindData is a full cache-block transfer (spill data, peer-to-peer
	// forward, or memory fill).
	KindData
	// KindWriteback is a dirty-block drain from a write buffer to memory.
	KindWriteback

	numKinds
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindSnoop:
		return "snoop"
	case KindData:
		return "data"
	case KindWriteback:
		return "writeback"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Stats aggregates bus activity.
type Stats struct {
	Transactions [numKinds]int64
	BusyCycles   int64 // total core cycles the bus was occupied
	WaitCycles   int64 // total core cycles requests spent queued
}

// Count returns the number of transactions of kind k.
func (s Stats) Count(k Kind) int64 { return s.Transactions[k] }

// interval is one scheduled occupancy [start, end).
type interval struct {
	start, end int64
}

// calendar is one arbitrated resource: a sorted list of future busy
// intervals.
type calendar struct {
	busy    []interval
	horizon int64 // requests older than this may have been pruned
}

// Bus is the occupancy model. The split-transaction bus has independent
// address and data paths: snoop/request broadcasts (KindSnoop) arbitrate
// for the address path, block transfers and write-back drains for the data
// path.
//
// The Bus is not safe for concurrent use and is deliberately unlocked: it
// is shared cross-core state owned by the scheme controller, and both
// execution engines serialize every controller call on one goroutine (the
// serial driver, or the epoch engine's coordinator — core goroutines never
// reach the bus). The -race differential tests in internal/cmp dynamically
// assert this confinement; the snuglint coordinator analyzer checks it
// statically.
type Bus struct {
	widthBytes int
	speedRatio int   // core cycles per bus cycle
	arbCycles  int64 // arbitration overhead in core cycles
	blockBytes int

	addrPath calendar
	dataPath calendar

	stats Stats
}

// New builds a bus. widthBytes is the data-path width, speedRatio the
// core:bus clock ratio, arbBusCycles the arbitration time in bus cycles,
// and blockBytes the cache-block size moved by data transactions.
func New(widthBytes, speedRatio, arbBusCycles, blockBytes int) (*Bus, error) {
	if widthBytes <= 0 || speedRatio <= 0 || arbBusCycles < 0 || blockBytes <= 0 {
		return nil, fmt.Errorf("bus: invalid parameters width=%d ratio=%d arb=%d block=%d",
			widthBytes, speedRatio, arbBusCycles, blockBytes)
	}
	return &Bus{
		widthBytes: widthBytes,
		speedRatio: speedRatio,
		arbCycles:  int64(arbBusCycles * speedRatio),
		blockBytes: blockBytes,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(widthBytes, speedRatio, arbBusCycles, blockBytes int) *Bus {
	b, err := New(widthBytes, speedRatio, arbBusCycles, blockBytes)
	if err != nil {
		panic(err)
	}
	return b
}

// duration returns the core-cycle occupancy of a transaction of kind k.
// Address-path arbitration is pipelined with the previous beat, so a snoop
// occupies the path for just its broadcast beat; data transfers pay
// arbitration plus ceil(block/width) beats.
//
//snug:inline
func (b *Bus) duration(k Kind) int64 {
	switch k {
	case KindSnoop:
		return int64(b.speedRatio)
	default:
		// Beats of back-to-back transfers pipeline through the split bus,
		// so a block transfer's exclusive occupancy is half its raw beat
		// time plus arbitration.
		beats := (b.blockBytes + b.widthBytes - 1) / b.widthBytes
		return b.arbCycles + int64(beats*b.speedRatio)/2
	}
}

// path selects the calendar serving kind k.
//
//snug:inline
func (b *Bus) path(k Kind) *calendar {
	if k == KindSnoop {
		return &b.addrPath
	}
	return &b.dataPath
}

// Acquire schedules a transaction of kind k requested at core-cycle now,
// placing it in the earliest gap of its path's calendar at or after now.
// It returns the cycle the transaction completes.
func (b *Bus) Acquire(now int64, k Kind) (doneAt int64) {
	c := b.path(k)
	if now < c.horizon {
		now = c.horizon
	}
	dur := b.duration(k)
	start := c.place(now, dur)
	b.stats.Transactions[k]++
	b.stats.BusyCycles += dur
	b.stats.WaitCycles += start - now
	return start + dur
}

// place finds the earliest gap of length dur at or after t, inserts the
// reservation and returns its start. The busy list is always sorted by
// start and its intervals are disjoint (every reservation lands in a gap),
// so ends are monotonic too: a binary search finds the first interval that
// can conflict — everything before it ends at or before t — and the gap
// walk continues from there instead of scanning the whole calendar.
//
//snug:hotpath
func (c *calendar) place(t, dur int64) int64 {
	cur := t
	// sort.Search's parameter does not escape, so this comparator is
	// stack-allocated (pinned by the 202-allocs-per-run measurement).
	pos := sort.Search(len(c.busy), func(i int) bool { return c.busy[i].end > cur }) //snug:allow hotalloc non-escaping sort.Search comparator
	for pos < len(c.busy) && c.busy[pos].start < cur+dur {
		cur = c.busy[pos].end
		pos++
	}
	// Insert keeping start order. pos is the first interval starting after
	// the chosen slot (every earlier interval ends at or before cur), so a
	// single memmove keeps the invariant — no re-sort is ever needed.
	c.busy = append(c.busy, interval{}) //snug:allow hotalloc amortized: pruning caps len, so capacity reaches a steady state
	copy(c.busy[pos+1:], c.busy[pos:])
	c.busy[pos] = interval{start: cur, end: cur + dur}
	// Prune only once the calendar has accumulated enough entries to
	// matter: per-placement pruning cost more than the few stale entries
	// it removed. Stale entries below the prune threshold are harmless —
	// they sit wholly in the past of every placeable request (timestamps
	// regress far less than the prune slack), so the binary search simply
	// skips them.
	if len(c.busy) >= pruneLen {
		c.prune(t)
	}
	return cur
}

// pruneLen is the calendar length that triggers a prune pass. It sits
// well above the handful of intervals alive within the prune slack, so
// in steady state a prune runs every few dozen placements instead of
// every one, while the calendar stays small enough that binary searches
// and memmoves are trivial.
const pruneLen = 64

// prune drops calendar entries that can no longer affect placements. The
// quantum-stepped driver guarantees request timestamps regress by at most a
// few quanta; a generous slack keeps pruning safe.
//
//snug:hotpath
//snug:inline
func (c *calendar) prune(now int64) {
	const slack = 4096
	cut := now - slack
	if cut > c.horizon {
		c.horizon = cut
	}
	w := 0
	for _, iv := range c.busy {
		if iv.end >= c.horizon {
			c.busy[w] = iv
			w++
		}
	}
	c.busy = c.busy[:w]
}

// hasGap reports whether the calendar is free for dur cycles at exactly t:
// the first interval ending after t either starts beyond the window or
// overlaps it.
//
//snug:hotpath
//snug:inline
//snug:allow gcinline the sort.Search call pushes cost to 97, past the 80 budget; the comparator closure itself inlines
func (c *calendar) hasGap(t, dur int64) bool {
	i := sort.Search(len(c.busy), func(k int) bool { return c.busy[k].end > t }) //snug:allow hotalloc non-escaping sort.Search comparator
	return i == len(c.busy) || c.busy[i].start >= t+dur
}

// TryAcquire schedules a transaction only if its path has an immediate gap
// at now, returning ok=false otherwise. Write-buffer drains use it to
// steal idle cycles without delaying demand traffic.
func (b *Bus) TryAcquire(now int64, k Kind) (doneAt int64, ok bool) {
	c := b.path(k)
	if now < c.horizon {
		now = c.horizon
	}
	if !c.hasGap(now, b.duration(k)) {
		return 0, false
	}
	return b.Acquire(now, k), true
}

// Pending returns the number of future reservations across both paths
// (for tests).
func (b *Bus) Pending() int { return len(b.addrPath.busy) + len(b.dataPath.busy) }

// Stats returns a snapshot of activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// Utilization returns busy cycles as a fraction of elapsed cycles (0 when
// elapsed is 0).
func (b *Bus) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(b.stats.BusyCycles) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears occupancy and statistics.
func (b *Bus) Reset() {
	b.addrPath = calendar{}
	b.dataPath = calendar{}
	b.stats = Stats{}
}
