package bus

import (
	"testing"
	"testing/quick"
)

// table4Bus is the paper's interconnect: 16 B wide, 4:1 clock ratio,
// 1 bus-cycle arbitration, 64 B blocks.
func table4Bus() *Bus { return MustNew(16, 4, 1, 64) }

func TestSnoopDuration(t *testing.T) {
	b := table4Bus()
	done := b.Acquire(100, KindSnoop)
	// One pipelined address beat at the 4:1 ratio.
	if done != 104 {
		t.Fatalf("snoop done at %d, want 104", done)
	}
}

func TestDataTransferDuration(t *testing.T) {
	b := table4Bus()
	done := b.Acquire(100, KindData)
	// arb (4) + 64/16 beats * 4 cycles / 2 (pipelined) = 4 + 8.
	if done != 112 {
		t.Fatalf("data done at %d, want 112", done)
	}
}

func TestBackToBackSerializes(t *testing.T) {
	b := table4Bus()
	d1 := b.Acquire(0, KindData)
	d2 := b.Acquire(0, KindData)
	if d2 <= d1 {
		t.Fatalf("second transfer (%d) did not queue behind the first (%d)", d2, d1)
	}
	if w := b.Stats().WaitCycles; w == 0 {
		t.Fatal("no wait cycles recorded for a queued transfer")
	}
}

func TestSplitTransactionGapFilling(t *testing.T) {
	b := table4Bus()
	// A data phase reserved far in the future (a DRAM fill's return)...
	future := b.Acquire(1000, KindData)
	if future < 1000 {
		t.Fatal("future reservation mangled")
	}
	// ...must NOT delay an earlier transfer: the bus is split-transaction.
	early := b.Acquire(0, KindData)
	if early > 100 {
		t.Fatalf("early transfer done at %d; blocked by a future reservation", early)
	}
}

func TestAddressAndDataPathsIndependent(t *testing.T) {
	b := table4Bus()
	b.Acquire(0, KindData) // occupy the data path
	done := b.Acquire(0, KindSnoop)
	if done != 4 {
		t.Fatalf("snoop done at %d; address path must not contend with data", done)
	}
}

func TestTryAcquire(t *testing.T) {
	b := table4Bus()
	if _, ok := b.TryAcquire(0, KindWriteback); !ok {
		t.Fatal("TryAcquire failed on an idle bus")
	}
	if _, ok := b.TryAcquire(0, KindWriteback); ok {
		t.Fatal("TryAcquire succeeded while the data path is busy")
	}
	if _, ok := b.TryAcquire(0, KindSnoop); !ok {
		t.Fatal("TryAcquire on the free address path failed")
	}
}

func TestUtilizationAndStats(t *testing.T) {
	b := table4Bus()
	b.Acquire(0, KindSnoop)
	b.Acquire(0, KindData)
	b.Acquire(0, KindWriteback)
	st := b.Stats()
	if st.Count(KindSnoop) != 1 || st.Count(KindData) != 1 || st.Count(KindWriteback) != 1 {
		t.Fatalf("transaction counts %v", st.Transactions)
	}
	if u := b.Utilization(1000); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
	b.Reset()
	if b.Stats().BusyCycles != 0 || b.Pending() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestNoOverlapProperty(t *testing.T) {
	// Property: transactions on one path never overlap, regardless of the
	// request times (even regressing ones, as quantum skew produces).
	f := func(raw []uint16) bool {
		b := table4Bus()
		type span struct{ start, end int64 }
		var spans []span
		for _, r := range raw {
			now := int64(r % 2048)
			done := b.Acquire(now, KindData)
			dur := b.duration(KindData)
			spans = append(spans, span{done - dur, done})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, c := spans[i], spans[j]
				if a.start < c.end && c.start < a.end {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarStaysSortedAndDisjoint(t *testing.T) {
	// place relies on the busy list being sorted by start with disjoint
	// intervals (that is what makes binary-search insertion sufficient
	// without a re-sort pass). Hammer it with skewed timestamps and check
	// the invariant after every placement.
	f := func(raw []uint16) bool {
		b := table4Bus()
		for _, r := range raw {
			b.Acquire(int64(r%4096), Kind(r%3))
			for _, c := range []*calendar{&b.addrPath, &b.dataPath} {
				for i := 1; i < len(c.busy); i++ {
					if c.busy[i].start < c.busy[i-1].end {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadParameters(t *testing.T) {
	for _, c := range [][4]int{{0, 4, 1, 64}, {16, 0, 1, 64}, {16, 4, -1, 64}, {16, 4, 1, 0}} {
		if _, err := New(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("New(%v) accepted", c)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindSnoop.String() != "snoop" || KindData.String() != "data" || KindWriteback.String() != "writeback" {
		t.Fatal("kind names wrong")
	}
}

// The calendar-placement microbenchmark (BusContention) lives in
// internal/bench, shared between the repo-root BenchmarkBusContention and
// cmd/bench's CI-gated baseline, so there is exactly one traffic shape to
// tune.
