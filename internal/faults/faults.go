// Package faults is the deterministic fault-injection harness behind the
// sweep engine's failure model (DESIGN.md §"Failure model"). A Spec carries
// per-attempt probabilities for three fault classes — injected job panics,
// injected job errors, and injected checkpoint-write failures — and wraps a
// sweep.Job (or serves as a sweep PutHook) so that every fault decision is
// a pure function of (job identity, attempt number, salt) through
// stats.Mix64. Reproducibility is the point: the same spec over the same
// sweep injects the same faults at any parallelism and on any host, so a
// chaos test that SIGKILLs a fault-injected sweep mid-run can assert the
// resumed checkpoint store is byte-identical to an uninterrupted run's.
//
// Faults fire *instead of* the wrapped work (a panicking attempt never
// starts the simulation), and the attempt counter advances per decision,
// so a retry of a faulted attempt draws fresh — a job with fault
// probability p and r retries fails permanently with probability p^(r+1).
// Results are untouched by construction: a surviving attempt runs the real
// job with its unmodified identity-derived seed.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"snug/internal/cmp"
	"snug/internal/stats"
	"snug/internal/sweep"
)

// Spec holds per-attempt injection probabilities, each in [0, 1].
type Spec struct {
	Panic   float64 // probability an attempt panics instead of running
	Err     float64 // probability an attempt errors instead of running
	PutFail float64 // probability a checkpoint write fails
}

// Enabled reports whether the spec injects anything.
func (s Spec) Enabled() bool { return s.Panic > 0 || s.Err > 0 || s.PutFail > 0 }

// ParseSpec parses the CLI injection grammar: a comma-separated list of
// <class>:<probability> terms, e.g. "panic:0.02,err:0.05,putfail:0.01".
// Classes are panic, err and putfail; each may appear at most once; an
// empty string is the zero (disabled) spec.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	seen := map[string]bool{}
	for _, term := range strings.Split(text, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(term), ":")
		if !ok {
			return Spec{}, fmt.Errorf("faults: bad term %q (want <class>:<probability>)", term)
		}
		name = strings.TrimSpace(name)
		p, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || p < 0 || p > 1 {
			return Spec{}, fmt.Errorf("faults: bad probability %q for %s (want a number in [0,1])", val, name)
		}
		if seen[name] {
			return Spec{}, fmt.Errorf("faults: class %s given twice", name)
		}
		seen[name] = true
		switch name {
		case "panic":
			s.Panic = p
		case "err":
			s.Err = p
		case "putfail":
			s.PutFail = p
		default:
			return Spec{}, fmt.Errorf("faults: unknown class %q (want panic, err or putfail)", name)
		}
	}
	return s, nil
}

// String renders the spec in ParseSpec's grammar (classes in fixed order,
// zero-probability classes omitted; "" for the disabled spec).
func (s Spec) String() string {
	var terms []string
	for _, c := range []struct {
		name string
		p    float64
	}{{"panic", s.Panic}, {"err", s.Err}, {"putfail", s.PutFail}} {
		if c.p > 0 {
			terms = append(terms, c.name+":"+strconv.FormatFloat(c.p, 'g', -1, 64))
		}
	}
	return strings.Join(terms, ",")
}

// injector tracks per-identity attempt counters so consecutive attempts of
// one job draw independent fault decisions while two runs of the same
// sweep draw identical sequences. Identities must be unique per logical
// job: the job wrapper keys by the derived seed (unique per replicate even
// though replicates share one wrapped closure), the put hook by the job
// key.
type injector struct {
	salt uint64
	mu   sync.Mutex
	next map[uint64]uint64
}

func newInjector(salt uint64) *injector {
	return &injector{salt: salt, next: make(map[uint64]uint64)}
}

// draw returns a uniform [0,1) variate for identity id's next attempt —
// Mix64 over (identity, attempt, salt), nothing else.
func (in *injector) draw(id uint64) float64 {
	in.mu.Lock()
	attempt := in.next[id]
	in.next[id] = attempt + 1
	in.mu.Unlock()
	x := stats.Mix64(id ^ in.salt ^ stats.Mix64(attempt+0x9e3779b97f4a7c15))
	return float64(x>>11) / (1 << 53)
}

// Wrap returns jobs with each Run wrapped by the spec's panic/err
// injection; the disabled spec returns jobs unchanged. Fault decisions
// derive from (job seed, attempt, salt, job key) — pass sweep
// Options.BaseSeed (or any fixed value) as salt. Decisions key on the run
// seed rather than shared closure state so sweep replicate expansion,
// which copies Job structs sharing one Run closure, still draws an
// independent deterministic sequence per replicate.
func (s Spec) Wrap(salt uint64, jobs []sweep.Job) []sweep.Job {
	if s.Panic <= 0 && s.Err <= 0 {
		return jobs
	}
	out := make([]sweep.Job, len(jobs))
	for i, j := range jobs {
		in := newInjector(salt ^ stats.HashString(j.Key))
		run := j.Run
		key := j.Key
		j.Run = func(seed uint64) (cmp.RunResult, error) {
			u := in.draw(seed)
			switch {
			case u < s.Panic:
				panic(fmt.Sprintf("faults: injected panic (job %s)", key))
			case u < s.Panic+s.Err:
				return cmp.RunResult{}, fmt.Errorf("faults: injected error (job %s)", key)
			}
			return run(seed)
		}
		out[i] = j
	}
	return out
}

// PutHook returns a sweep Options.PutHook injecting checkpoint-write
// failures per the spec (nil for a spec without putfail, leaving the hook
// unset). Decisions derive from (job key, attempt, salt).
func (s Spec) PutHook(salt uint64) func(key string) error {
	if s.PutFail <= 0 {
		return nil
	}
	in := newInjector(salt)
	return func(key string) error {
		if in.draw(stats.HashString(key)) < s.PutFail {
			return fmt.Errorf("faults: injected checkpoint-write failure (job %s)", key)
		}
		return nil
	}
}
