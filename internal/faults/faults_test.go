package faults

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"snug/internal/cmp"
	"snug/internal/sweep"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"panic:0.02", Spec{Panic: 0.02}},
		{"panic:0.02,err:0.05,putfail:0.01", Spec{Panic: 0.02, Err: 0.05, PutFail: 0.01}},
		{" err:0.5 , putfail:1 ", Spec{Err: 0.5, PutFail: 1}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String renders back into the grammar ParseSpec accepts.
		back, err := ParseSpec(got.String())
		if err != nil || back != got {
			t.Errorf("round trip of %q via %q = %+v, %v", c.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{
		"panic", "panic:", "panic:x", "panic:-0.1", "panic:1.5",
		"exotic:0.5", "panic:0.1,panic:0.2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want an error", bad)
		}
	}
}

// TestDrawsDeterministic: fault decisions are a pure function of (identity,
// attempt, salt) — two independently wrapped copies of the same jobs fault
// identically, attempt by attempt.
func TestDrawsDeterministic(t *testing.T) {
	spec := Spec{Panic: 0.2, Err: 0.3}
	outcomes := func() []string {
		job := sweep.Job{Key: "j", Run: func(seed uint64) (cmp.RunResult, error) {
			return cmp.RunResult{Cycles: int64(seed)}, nil
		}}
		wrapped := spec.Wrap(42, []sweep.Job{job})[0]
		var out []string
		for attempt := 0; attempt < 50; attempt++ {
			func() {
				defer func() {
					if v := recover(); v != nil {
						out = append(out, "panic")
					}
				}()
				if _, err := wrapped.Run(7); err != nil {
					out = append(out, "err")
				} else {
					out = append(out, "ok")
				}
			}()
		}
		return out
	}
	a, b := outcomes(), outcomes()
	if !reflect.DeepEqual(a, b) {
		t.Error("two wrappings of the same job drew different fault sequences")
	}
	counts := map[string]int{}
	for _, o := range a {
		counts[o]++
	}
	if counts["panic"] == 0 || counts["err"] == 0 || counts["ok"] == 0 {
		t.Errorf("50 draws at panic:0.2,err:0.3 produced %v — expected all three outcomes", counts)
	}
}

// TestSeedsDrawIndependently: replicates share one wrapped Run closure but
// run under different seeds, so each seed must see its own deterministic
// fault sequence, not a shared counter's.
func TestSeedsDrawIndependently(t *testing.T) {
	spec := Spec{Err: 0.5}
	job := sweep.Job{Key: "j", Run: func(seed uint64) (cmp.RunResult, error) {
		return cmp.RunResult{Cycles: int64(seed)}, nil
	}}
	seq := func(wrapped sweep.Job, seed uint64, n int) []bool {
		var out []bool
		for i := 0; i < n; i++ {
			_, err := wrapped.Run(seed)
			out = append(out, err != nil)
		}
		return out
	}
	w1 := spec.Wrap(1, []sweep.Job{job})[0]
	// Interleave two seeds through ONE closure, then replay each seed alone
	// through fresh closures: per-seed sequences must be unaffected by the
	// interleaving.
	var inter1, inter2 []bool
	w := spec.Wrap(1, []sweep.Job{job})[0]
	for i := 0; i < 20; i++ {
		_, e1 := w.Run(101)
		_, e2 := w.Run(202)
		inter1 = append(inter1, e1 != nil)
		inter2 = append(inter2, e2 != nil)
	}
	if got := seq(w1, 101, 20); !reflect.DeepEqual(got, inter1) {
		t.Error("seed 101's fault sequence changed when interleaved with another seed")
	}
	w2 := spec.Wrap(1, []sweep.Job{job})[0]
	if got := seq(w2, 202, 20); !reflect.DeepEqual(got, inter2) {
		t.Error("seed 202's fault sequence changed when interleaved with another seed")
	}
}

// TestInjectedSweepConvergesToCleanResults: a sweep under heavy fault
// injection with retries produces results and checkpoint bytes identical
// to an uninjected sweep — faults touch scheduling and error paths only,
// never what a job computes.
func TestInjectedSweepConvergesToCleanResults(t *testing.T) {
	dir := t.TempDir()
	cleanPath := filepath.Join(dir, "clean.jsonl")
	faultyPath := filepath.Join(dir, "faulty.jsonl")

	jobs := func() []sweep.Job {
		var out []sweep.Job
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("job-%02d", i)
			out = append(out, sweep.Job{Key: key, Run: func(seed uint64) (cmp.RunResult, error) {
				return cmp.RunResult{Scheme: key, Cycles: int64(seed >> 1)}, nil
			}})
		}
		return out
	}

	clean, err := sweep.Run(context.Background(), sweep.Options{
		Parallelism: 1, BaseSeed: 7, Checkpoint: cleanPath, Fingerprint: "faults-test/v1",
	}, jobs())
	if err != nil {
		t.Fatal(err)
	}

	spec := Spec{Panic: 0.2, Err: 0.2, PutFail: 0.2}
	faulty, err := sweep.Run(context.Background(), sweep.Options{
		Parallelism: 1, BaseSeed: 7, Checkpoint: faultyPath, Fingerprint: "faults-test/v1",
		Retry:   sweep.RetrySpec{Attempts: 40},
		PutHook: spec.PutHook(7),
	}, spec.Wrap(7, jobs()))
	if err != nil {
		t.Fatalf("injected sweep did not converge: %v", err)
	}
	if !reflect.DeepEqual(clean, faulty) {
		t.Error("fault injection changed sweep results")
	}
	a, err := os.ReadFile(cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(faultyPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("fault injection changed checkpoint bytes")
	}
}

// TestPutHookInjects: the putfail class reaches checkpoint writes and its
// failures carry the job key.
func TestPutHookInjects(t *testing.T) {
	hook := Spec{PutFail: 1}.PutHook(1)
	err := hook("some-job")
	if err == nil || !strings.Contains(err.Error(), "some-job") {
		t.Errorf("putfail:1 hook returned %v, want an injected failure naming the job", err)
	}
	if (Spec{}).PutHook(1) != nil {
		t.Error("zero spec returned a non-nil put hook")
	}
}

// ---- chaos: SIGKILL a fault-injected sweep mid-run, resume, compare ----

// chaosSpec is the injection profile of the chaos differential. With 8
// retries, a job fails permanently with probability (0.1+0.1)^9 ≈ 5e-7 —
// and even that failure would be deterministic across runs.
var chaosSpec = Spec{Panic: 0.1, Err: 0.1, PutFail: 0.1}

// chaosSweep runs the chaos differential's sweep against the given store:
// 40 deterministic jobs with a small wall delay (so a SIGKILL lands
// mid-sweep), single worker (so checkpoint line order is deterministic),
// heavy fault injection, retries to converge through it.
func chaosSweep(store string, delay time.Duration) error {
	var jobs []sweep.Job
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("job-%02d", i)
		jobs = append(jobs, sweep.Job{Key: key, Run: func(seed uint64) (cmp.RunResult, error) {
			time.Sleep(delay)
			return cmp.RunResult{Scheme: key, Cycles: int64(seed >> 1)}, nil
		}})
	}
	_, err := sweep.Run(context.Background(), sweep.Options{
		Parallelism: 1, BaseSeed: 7, Checkpoint: store, Fingerprint: "chaos/v1",
		Retry:   sweep.RetrySpec{Attempts: 8},
		PutHook: chaosSpec.PutHook(7),
	}, chaosSpec.Wrap(7, jobs))
	return err
}

// TestChaosChild is the subprocess body of the chaos differential: it runs
// the chaos sweep against the store named by SNUG_CHAOS_STORE until the
// parent SIGKILLs it. It skips in a normal test run.
func TestChaosChild(t *testing.T) {
	store := os.Getenv("SNUG_CHAOS_STORE")
	if store == "" {
		t.Skip("chaos child: run by TestChaosKillResumeByteIdentical")
	}
	if err := chaosSweep(store, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestChaosKillResumeByteIdentical is the acceptance differential for the
// failure model: a fault-injected sweep SIGKILLed mid-run (torn checkpoint
// writes included) and then resumed must produce a checkpoint store
// byte-identical to an uninterrupted run's. Every layer is on trial at
// once — identity-derived seeds and per-attempt fault determinism (the
// resumed process re-draws the same faults), torn-tail repair, CRC
// stamping, and resume-by-restore.
func TestChaosKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos differential; skipped in -short")
	}
	dir := t.TempDir()
	refPath := filepath.Join(dir, "reference.jsonl")
	chaosPath := filepath.Join(dir, "chaos.jsonl")

	// The uninterrupted reference (no wall delay: results don't depend on it).
	if err := chaosSweep(refPath, 0); err != nil {
		t.Fatal(err)
	}

	// The victim: the same sweep in a child process, SIGKILLed once it has
	// checkpointed a few jobs.
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(), "SNUG_CHAOS_STORE="+chaosPath)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(chaosPath); err == nil && bytes.Count(data, []byte("\n")) >= 4 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("chaos child made no checkpoint progress in 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to report the kill; the store is what matters

	// Resume in-process and compare stores byte for byte.
	if err := chaosSweep(chaosPath, 0); err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(chaosPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Errorf("resumed store differs from uninterrupted reference\nref %d bytes, resumed %d bytes", len(ref), len(got))
	}
}

// TestWrapZeroSpecIsFree: a spec without panic/err classes returns the job
// slice unwrapped, so the default path carries no extra indirection.
func TestWrapZeroSpecIsFree(t *testing.T) {
	jobs := []sweep.Job{{Key: "j", Run: func(uint64) (cmp.RunResult, error) { return cmp.RunResult{}, nil }}}
	for _, s := range []Spec{{}, {PutFail: 1}} {
		wrapped := s.Wrap(1, jobs)
		if len(wrapped) != 1 {
			t.Fatalf("Wrap changed the job count to %d", len(wrapped))
		}
		if _, err := wrapped[0].Run(1); err != nil {
			t.Errorf("spec %+v injected a job fault through Wrap", s)
		}
	}
}
