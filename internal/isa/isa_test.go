package isa

import "testing"

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindALU: "alu", KindFPU: "fpu", KindMult: "mult", KindDiv: "div",
		KindLoad: "load", KindStore: "store", KindBranch: "branch",
		KindCall: "call", KindReturn: "return",
	}
	if len(want) != NumKinds {
		t.Fatalf("NumKinds = %d, want %d", NumKinds, len(want))
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty name")
	}
}
