// Package isa defines the minimal synthetic instruction set exchanged
// between the workload generators (internal/trace) and the core timing
// model (internal/cpu). It exists as its own package so that neither side
// depends on the other.
package isa

import (
	"fmt"

	"snug/internal/addr"
)

// Kind is the instruction class; it selects the functional-unit latency in
// the core model.
type Kind uint8

const (
	// KindALU is a 1-cycle integer operation.
	KindALU Kind = iota
	// KindFPU is a pipelined floating-point operation.
	KindFPU
	// KindMult is an integer multiply.
	KindMult
	// KindDiv is an integer/FP divide (long latency, unpipelined).
	KindDiv
	// KindLoad reads memory; its latency comes from the cache hierarchy.
	KindLoad
	// KindStore writes memory; stores retire through the store buffer and
	// do not stall commit, but still update cache state.
	KindStore
	// KindBranch is a conditional branch resolved at execute.
	KindBranch
	// KindCall pushes a return address on the RAS.
	KindCall
	// KindReturn pops the RAS; a mismatch costs a misprediction.
	KindReturn

	numKinds
)

// String returns the kind's mnemonic.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindFPU:
		return "fpu"
	case KindMult:
		return "mult"
	case KindDiv:
		return "div"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NumKinds is the number of instruction kinds.
const NumKinds = int(numKinds)

// Instr is one dynamic instruction. Addr is meaningful for loads/stores;
// Taken and Target for branches/calls/returns; DepPrev marks a register
// dependence on the previous instruction's result (serializing their
// execution), which the generators emit to model dependence chains.
type Instr struct {
	Kind    Kind
	PC      uint64
	Addr    addr.Addr
	Taken   bool
	Target  uint64
	DepPrev bool
}

// Stream produces an endless dynamic instruction stream. Implementations
// must be deterministic for a fixed construction seed.
type Stream interface {
	// Next fills in with the next dynamic instruction.
	Next(in *Instr)
	// Name identifies the workload (e.g. the SPEC benchmark modeled).
	Name() string
}

// BatchStream is an optional Stream extension for consumers that can take
// instructions in bulk: one NextBatch call replaces len(dst) interface
// dispatches, and implementations keep their cursor state in registers
// across the batch. The core model's run loop uses it when available
// (trace replays implement it); semantics are identical to calling Next
// len(dst) times.
type BatchStream interface {
	Stream
	// NextBatch fills dst with the next instructions of the stream and
	// returns how many were written (len(dst) for the endless streams).
	NextBatch(dst []Instr) int
}
