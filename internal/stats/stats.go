// Package stats provides the counting, histogramming and aggregation
// primitives used throughout the simulator: plain counters, fixed-bucket
// histograms, interval samplers for the paper's characterization experiments
// (Figures 1–3), and the geometric/harmonic means used by the evaluation
// metrics (Table 5).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter. The zero value is
// ready to use.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must be non-negative).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("stats: Counter.Add with negative delta")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns c / (c + other), or 0 when both are zero. It is the shape of
// the paper's σ = shadowHits / (realHits + shadowHits) measurement.
func Ratio(num, denomExtra int64) float64 {
	d := num + denomExtra
	if d == 0 {
		return 0
	}
	return float64(num) / float64(d)
}

// Histogram is a fixed-width bucket histogram over the integer range
// [1, max]. Values below 1 clamp to the first bucket; values above max clamp
// to the last. It implements the paper's bucketization of block_required
// values into M equal sub-ranges of [1, A_threshold] (Formula 4/5).
type Histogram struct {
	max     int
	buckets []int64
	total   int64
}

// NewHistogram builds a histogram over [1, max] with bucket count buckets.
// max must be divisible by buckets so all buckets have equal width, mirroring
// the paper's restriction that A_threshold and M are powers of two.
func NewHistogram(max, buckets int) (*Histogram, error) {
	if max <= 0 || buckets <= 0 || max%buckets != 0 {
		return nil, fmt.Errorf("stats: invalid histogram shape max=%d buckets=%d", max, buckets)
	}
	return &Histogram{max: max, buckets: make([]int64, buckets)}, nil
}

// MustHistogram is NewHistogram but panics on error.
func MustHistogram(max, buckets int) *Histogram {
	h, err := NewHistogram(max, buckets)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one occurrence of value v.
func (h *Histogram) Observe(v int) {
	if v < 1 {
		v = 1
	}
	if v > h.max {
		v = h.max
	}
	width := h.max / len(h.buckets)
	h.buckets[(v-1)/width]++
	h.total++
}

// Buckets returns a copy of the raw bucket counts.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Fractions returns each bucket's share of the total, or all zeros when
// empty. This is size_bucket_j(I) of Formula (5) when one observation is
// recorded per set.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.buckets))
	if h.total == 0 {
		return out
	}
	for i, b := range h.buckets {
		out[i] = float64(b) / float64(h.total)
	}
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Reset clears all buckets.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.total = 0
}

// BucketLabel formats the value range of bucket i, e.g. "1~4" or ">=29".
func (h *Histogram) BucketLabel(i int) string {
	width := h.max / len(h.buckets)
	lo := i*width + 1
	if i == len(h.buckets)-1 {
		return fmt.Sprintf(">=%d", lo)
	}
	return fmt.Sprintf("%d~%d", lo, (i+1)*width)
}

// GeoMean returns the geometric mean of xs. It panics on non-positive
// inputs and returns 0 for an empty slice. The paper reports per-class
// results as geometric means over the combos in the class.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs, the shape of the fair
// speedup metric. It panics on non-positive inputs and returns 0 for an
// empty slice.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: HarmonicMean of non-positive value %g", x))
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (the n-1 "Bessel"
// denominator, matching the Student-t interval below); 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tCrit95 holds the two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond the table the normal approximation (1.960) is
// within 4% and monotonically approached.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (the normal 1.960 beyond the tabulated range). It
// panics on df < 1.
func TCritical95(df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: TCritical95 with df=%d", df))
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.960
}

// Interval is a mean with a symmetric 95% confidence half-width: the
// population mean lies in [Mean-Half, Mean+Half] at 95% confidence under
// the Student-t model. Half is 0 for single-sample input, where the mean
// is a point estimate with no spread information.
type Interval struct {
	Mean float64
	Half float64
	N    int // sample count behind the interval
}

// String renders the interval as the reports print it, e.g. "0.982 ±0.013".
func (iv Interval) String() string {
	if iv.N < 2 {
		return fmt.Sprintf("%.3f", iv.Mean)
	}
	return fmt.Sprintf("%.3f ±%.3f", iv.Mean, iv.Half)
}

// MeanCI returns the Student-t 95% confidence interval of the mean of xs.
// It panics on empty input — an interval over nothing is a caller bug, not
// a zero.
func MeanCI(xs []float64) Interval {
	if len(xs) == 0 {
		panic("stats: MeanCI of empty sample")
	}
	iv := Interval{Mean: Mean(xs), N: len(xs)}
	if iv.N < 2 {
		return iv
	}
	iv.Half = TCritical95(iv.N-1) * StdDev(xs) / math.Sqrt(float64(iv.N))
	return iv
}

// PairedDelta summarizes the paired differences a[i]-b[i] as a mean with a
// 95% confidence interval — the right summary for two schemes replicated
// over the same instruction streams, where per-replicate deltas cancel the
// shared stream noise. The slices must be equal-length and non-empty.
func PairedDelta(a, b []float64) (Interval, error) {
	if len(a) != len(b) {
		return Interval{}, fmt.Errorf("stats: paired samples of different length %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return Interval{}, fmt.Errorf("stats: paired delta of empty samples")
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return MeanCI(d), nil
}

// Series is a named sequence of sampled values, one per interval — the unit
// Figures 1–3 plot (one series per bucket over 1000 sampling intervals).
type Series struct {
	Name   string
	Values []float64
}

// Append adds a sample.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// MeanValue returns the mean of the series (0 if empty).
func (s *Series) MeanValue() float64 { return Mean(s.Values) }

// WindowMean returns the mean over the half-open interval [from, to) of
// sample indices, clamped to the available range; 0 if the window is empty.
func (s *Series) WindowMean(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.Values) {
		to = len(s.Values)
	}
	if from >= to {
		return 0
	}
	return Mean(s.Values[from:to])
}

// Distribution summarizes a float slice: used by tests asserting workload
// model shapes.
type Distribution struct {
	Min, Max, Mean, P50 float64
}

// Summarize computes a Distribution for xs (zero value for empty input).
func Summarize(xs []float64) Distribution {
	if len(xs) == 0 {
		return Distribution{}
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	return Distribution{
		Min:  c[0],
		Max:  c[len(c)-1],
		Mean: Mean(c),
		P50:  c[len(c)/2],
	}
}

// FormatFractions renders fractions as a compact percentage string for
// logs and example output.
func FormatFractions(fr []float64) string {
	parts := make([]string, len(fr))
	for i, f := range fr {
		parts[i] = fmt.Sprintf("%.1f%%", f*100)
	}
	return strings.Join(parts, " ")
}
