package stats

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**-style state initialized by splitmix64). The simulator must
// be bit-for-bit reproducible for a given seed across Go releases, so it
// does not use math/rand. The zero value is not valid; use NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns an RNG seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Mix64 hashes x through splitmix64's finalizer. It is used for stateless
// deterministic decisions (e.g. assigning a per-set demand depth from the
// set index) so results do not depend on visit order.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString hashes s into a well-mixed 64-bit value (FNV-1a finalized by
// Mix64). It anchors every name-derived seed in the simulator: benchmark
// demand maps (internal/trace) and sweep job seeds (internal/sweep), so a
// job's randomness is a pure function of its identity, never of scheduling.
func HashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return Mix64(h)
}
