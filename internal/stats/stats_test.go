package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Value after reset = %d", c.Value())
	}
}

func TestCounterRejectsNegativeAdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestRatio(t *testing.T) {
	if got := Ratio(0, 0); got != 0 {
		t.Errorf("Ratio(0,0) = %v, want 0", got)
	}
	if got := Ratio(1, 7); got != 0.125 {
		t.Errorf("Ratio(1,7) = %v, want 0.125 (the paper's sigma = 1/p threshold)", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	// The paper's configuration: A_threshold = 32, M = 8 buckets.
	h := MustHistogram(32, 8)
	for v := 1; v <= 32; v++ {
		h.Observe(v)
	}
	for i, b := range h.Buckets() {
		if b != 4 {
			t.Errorf("bucket %d = %d, want 4", i, b)
		}
	}
	if h.Total() != 32 {
		t.Errorf("Total = %d", h.Total())
	}
	fr := h.Fractions()
	for i, f := range fr {
		if math.Abs(f-0.125) > 1e-12 {
			t.Errorf("fraction %d = %v, want 0.125", i, f)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h := MustHistogram(32, 8)
	h.Observe(0)   // clamps to 1
	h.Observe(-5)  // clamps to 1
	h.Observe(100) // clamps to 32
	b := h.Buckets()
	if b[0] != 2 || b[7] != 1 {
		t.Fatalf("buckets = %v, want first=2 last=1", b)
	}
}

func TestHistogramLabels(t *testing.T) {
	h := MustHistogram(32, 8)
	if got := h.BucketLabel(0); got != "1~4" {
		t.Errorf("label 0 = %q", got)
	}
	if got := h.BucketLabel(7); got != ">=29" {
		t.Errorf("label 7 = %q, want >=29 (Figure 1 legend)", got)
	}
}

func TestHistogramRejectsUnevenShape(t *testing.T) {
	if _, err := NewHistogram(30, 8); err == nil {
		t.Fatal("30/8 histogram accepted; buckets must divide the range")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	// FS for two apps with relative IPCs 1 and 0.5: 2/(1/1+1/0.5) = 0.667.
	got := HarmonicMean([]float64{1, 0.5})
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("HarmonicMean = %v, want 2/3", got)
	}
}

func TestMeansOrderingProperty(t *testing.T) {
	// harmonic <= geometric <= arithmetic for positive inputs.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		const eps = 1e-9
		return h <= g+eps && g <= a+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesWindows(t *testing.T) {
	s := Series{Name: "x"}
	for i := 1; i <= 10; i++ {
		s.Append(float64(i))
	}
	if got := s.MeanValue(); got != 5.5 {
		t.Errorf("MeanValue = %v", got)
	}
	if got := s.WindowMean(0, 5); got != 3 {
		t.Errorf("WindowMean(0,5) = %v", got)
	}
	if got := s.WindowMean(8, 100); got != 9.5 {
		t.Errorf("WindowMean clamped = %v", got)
	}
	if got := s.WindowMean(5, 5); got != 0 {
		t.Errorf("empty window = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{3, 1, 2})
	if d.Min != 1 || d.Max != 3 || d.Mean != 2 || d.P50 != 2 {
		t.Fatalf("Summarize = %+v", d)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 equal draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Intn(8)]++
	}
	for i, c := range counts {
		if c < n/8-n/80 || c > n/8+n/80 {
			t.Errorf("bucket %d count %d deviates >10%% from uniform", i, c)
		}
	}
}

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Fatal("Mix64 collision on adjacent inputs")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v, want 0", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev of one sample = %v, want 0", got)
	}
	// {1,2,3,4}: sample variance 5/3.
	if got, want := StdDev([]float64{1, 2, 3, 4}), math.Sqrt(5.0/3); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
}

func TestTCritical95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 4: 2.776, 30: 2.042, 31: 1.960, 1000: 1.960}
	for df, want := range cases {
		if got := TCritical95(df); got != want {
			t.Errorf("TCritical95(%d) = %v, want %v", df, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("TCritical95(0) did not panic")
		}
	}()
	TCritical95(0)
}

func TestMeanCI(t *testing.T) {
	iv := MeanCI([]float64{2.5})
	if iv.Mean != 2.5 || iv.Half != 0 || iv.N != 1 {
		t.Errorf("single-sample interval %+v, want point estimate", iv)
	}
	// {1,2,3}: mean 2, sample sd 1, half-width t(2) / sqrt(3).
	iv = MeanCI([]float64{1, 2, 3})
	want := 4.303 / math.Sqrt(3)
	if iv.Mean != 2 || math.Abs(iv.Half-want) > 1e-12 || iv.N != 3 {
		t.Errorf("interval %+v, want mean 2 half %v", iv, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("MeanCI(nil) did not panic")
		}
	}()
	MeanCI(nil)
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{Mean: 0.982, Half: 0.013, N: 5}).String(); got != "0.982 ±0.013" {
		t.Errorf("Interval.String() = %q", got)
	}
	if got := (Interval{Mean: 0.982, N: 1}).String(); got != "0.982" {
		t.Errorf("single-sample Interval.String() = %q", got)
	}
}

func TestPairedDelta(t *testing.T) {
	// A constant pairwise gap has zero spread regardless of the common noise.
	iv, err := PairedDelta([]float64{1.1, 2.1, 3.1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Mean-0.1) > 1e-12 || iv.Half > 1e-9 {
		t.Errorf("paired delta %+v, want mean 0.1 half ~0", iv)
	}
	if _, err := PairedDelta([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedDelta(nil, nil); err == nil {
		t.Error("empty samples accepted")
	}
}
