// Package linttest runs lint analyzers over GOPATH-style testdata trees
// and checks their diagnostics against `// want` expectations — the same
// contract as golang.org/x/tools/go/analysis/analysistest, reimplemented
// on the standard library so the module stays dependency-free.
//
// A testdata tree looks like
//
//	testdata/<analyzer>/src/<import/path>/<files>.go
//
// and a `// want "regexp"` comment at the end of a line asserts that the
// analyzer reports a diagnostic on that line whose message matches the
// regexp. Multiple expectations may follow one another: // want "a" "b".
// Lines carrying //snug:allow directives assert the opposite simply by
// having no want comment: an unexpected diagnostic fails the test.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"snug/internal/lint"
)

// Run loads each package path from srcRoot/src, applies the analyzer, and
// compares diagnostics against the tree's // want expectations.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunAnalyzers(t, srcRoot, []*lint.Analyzer{a}, pkgPaths...)
}

// RunAnalyzers is Run for a whole analyzer slice sharing one pass per
// package — required for staleallow, which only judges //snug:allow
// directives of analyzers that ran in the same lint.Run call.
func RunAnalyzers(t *testing.T, srcRoot string, as []*lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(srcRoot, "src"))
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := lint.Run(pkg, as)
		if err != nil {
			t.Fatalf("running %d analyzers on %s: %v", len(as), path, err)
		}
		checkWants(t, ld.fset, pkg, diags)
	}
}

type loader struct {
	src  string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*entry
}

type entry struct {
	pkg *lint.Package
	err error
}

func newLoader(src string) *loader {
	fset := token.NewFileSet()
	return &loader{
		src:  src,
		fset: fset,
		// Standard-library imports in testdata (time, sort, ...) are
		// type-checked from GOROOT source.
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*entry),
	}
}

func (ld *loader) load(path string) (*lint.Package, error) {
	if e, ok := ld.pkgs[path]; ok {
		return e.pkg, e.err
	}
	e := &entry{}
	ld.pkgs[path] = e
	e.pkg, e.err = ld.loadUncached(path)
	return e.pkg, e.err
}

func (ld *loader) loadUncached(path string) (*lint.Package, error) {
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := impFunc(func(ipath string) (*types.Package, error) {
		if ipath == "unsafe" {
			return types.Unsafe, nil
		}
		if _, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(ipath))); err == nil {
			dep, err := ld.load(ipath)
			if err != nil {
				return nil, err
			}
			return dep.Pkg, nil
		}
		return ld.std.Import(ipath)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{Importer: imp}
	tp, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{Fset: ld.fset, Files: files, Pkg: tp, Info: info}, nil
}

type impFunc func(path string) (*types.Package, error)

func (f impFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRe extracts the quoted expectations from a // want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

func checkWants(t *testing.T, fset *token.FileSet, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					pat, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, m[0], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[key] {
			if re != nil && re.MatchString(d.Message) {
				wants[key][i] = nil // each expectation matches once
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
			}
		}
	}
}
