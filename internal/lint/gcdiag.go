package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the gcdiag subsystem: verification of the compiler's half
// of the hot-path bargain. The AST analyzers (hotalloc, hotdispatch) can
// only reject allocation and dispatch *syntax*; whether a value actually
// stays on the stack, whether a bounds check actually disappears, and
// whether a helper actually inlines are decisions the compiler makes long
// after parsing. gcdiag runs
//
//	go build -gcflags='-m=2 -d=ssa/check_bce/debug=1' <packages>
//
// parses the escape-analysis, inlining and bounds-check diagnostics into
// per-position facts, and checks them against the annotation contracts:
//
//   - gcescape: a //snug:hotpath body must compile with zero heap escapes
//     ("... escapes to heap" / "moved to heap" inside the body);
//   - gcbounds: a //snug:hotpath body must compile with zero bounds checks
//     ("Found IsInBounds" / "Found IsSliceInBounds" inside the body —
//     including checks attributed to calls the compiler inlined there);
//   - gcinline: a //snug:inline function must be provably inlinable ("can
//     inline" at its declaration; "cannot inline" is a violation carrying
//     the compiler's own reason).
//
// Violations are suppressible only via the ordinary //snug:allow grammar
// (`//snug:allow gcbounds <why>` on the offending line), so every standing
// exception is justified in the source it excuses.
//
// # Version-skew policy
//
// The diagnostic text is an implementation detail of cmd/compile and may
// drift across Go releases. The parser is therefore deliberately
// permissive — unrecognized lines are ignored — but never silently
// vacuous: a run that parses zero inlining decisions fails loudly, since
// -m=2 emits one per function and their absence means the format changed
// (or the build cache swallowed the output). DESIGN.md §"Statically-
// checked invariants" records the recognized shapes per Go release.

// Compiler-contract check names. They live in the same namespace as the
// AST analyzer names for //snug:allow and baseline purposes.
const (
	CheckEscape = "gcescape"
	CheckBounds = "gcbounds"
	CheckInline = "gcinline"
)

// gcFactKind classifies one recognized compiler diagnostic.
type gcFactKind int

const (
	factEscape gcFactKind = iota
	factBounds
	factCanInline
	factCannotInline
)

// gcFact is one parsed compiler diagnostic: a position plus the classified
// message.
type gcFact struct {
	file string // absolute path
	line int
	col  int
	kind gcFactKind
	msg  string
}

// compileDiagnostics builds the patterns under dir with the diagnostic
// gcflags and returns the combined compiler output. The go command caches
// compiles keyed on the flags and replays the recorded diagnostics on
// cache hits, so repeated runs are cheap and still produce full output.
// -trimpath is load-bearing, not cosmetic: replayed diagnostics keep the
// positions recorded at the original compile, and without it those are
// relative to the *original* working directory — a cache hit from a
// different cwd would yield unresolvable ../..-style paths. Trimmed
// positions are module-path-prefixed ("snug/internal/...") and identical
// from any directory.
func compileDiagnostics(dir string, patterns []string) (string, error) {
	args := append([]string{"build", "-trimpath", "-gcflags=-m=2 -d=ssa/check_bce/debug=1"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags: %v\n%s", err, out.String())
	}
	return out.String(), nil
}

// parseCompilerFacts extracts the recognized diagnostics from compiler
// output. -trimpath positions carry the module path ("snug/internal/x.go")
// and resolve against the module root; other relative filenames resolve
// against dir. Repeated facts at one position (the compiler re-reports
// bounds checks once per inlined copy) are deduplicated.
func parseCompilerFacts(dir, root, modpath, output string) []gcFact {
	var facts []gcFact
	seen := make(map[gcFact]bool)
	for _, raw := range strings.Split(output, "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, ok := parseFactLine(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(f.file) {
			if rest, ok := strings.CutPrefix(f.file, modpath+"/"); ok {
				f.file = filepath.Join(root, filepath.FromSlash(rest))
			} else {
				f.file = filepath.Join(dir, f.file)
			}
		}
		if !seen[f] {
			seen[f] = true
			facts = append(facts, f)
		}
	}
	return facts
}

// parseFactLine parses one "file.go:line:col: message" diagnostic and
// classifies the message, reporting ok=false for positions or messages it
// does not recognize.
func parseFactLine(line string) (gcFact, bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return gcFact{}, false
	}
	file := line[:i+3]
	rest := line[i+4:]
	j := strings.IndexByte(rest, ':')
	if j < 0 {
		return gcFact{}, false
	}
	lineNo, err := strconv.Atoi(rest[:j])
	if err != nil {
		return gcFact{}, false
	}
	rest = rest[j+1:]
	j = strings.IndexByte(rest, ':')
	if j < 0 {
		return gcFact{}, false
	}
	colNo, err := strconv.Atoi(rest[:j])
	if err != nil {
		return gcFact{}, false
	}
	msg := strings.TrimSpace(rest[j+1:])
	f := gcFact{file: file, line: lineNo, col: colNo, msg: msg}
	switch {
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		f.kind = factBounds
	case strings.HasPrefix(msg, "can inline "):
		f.kind = factCanInline
		// Drop the "as: ..." body dump -m=2 appends; the decision is the fact.
		if k := strings.Index(f.msg, " as: "); k >= 0 {
			f.msg = f.msg[:k]
		}
	case strings.HasPrefix(msg, "cannot inline "):
		f.kind = factCannotInline
	case strings.HasPrefix(msg, "moved to heap:"):
		f.kind = factEscape
	case strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:"):
		// Both the summary line and the explained variant (trailing colon,
		// followed by flow lines the position prefix repeats) occur; they
		// dedupe to one fact once the colon is stripped.
		f.kind = factEscape
		f.msg = strings.TrimSuffix(f.msg, ":")
	default:
		return gcFact{}, false
	}
	return f, true
}

// funcContract is one annotated function's compiler contract.
type funcContract struct {
	pkg      *Package
	file     *ast.File
	name     string
	declLine int
	bodyEnd  int // last line of the body; the range starts at declLine
	hotpath  bool
	inline   bool

	inlineSeen bool // an inlining decision was recorded at the declaration
}

// collectContracts walks the loaded packages for //snug:hotpath and
// //snug:inline functions, keyed by absolute filename.
func collectContracts(pkgs []*Package) map[string][]*funcContract {
	byFile := make(map[string][]*funcContract)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Package).Filename
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				hot, inl := isHotPath(fn), wantsInline(fn)
				if !hot && !inl {
					continue
				}
				byFile[name] = append(byFile[name], &funcContract{
					pkg:      pkg,
					file:     f,
					name:     fn.Name.Name,
					declLine: pkg.Fset.Position(fn.Pos()).Line,
					bodyEnd:  pkg.Fset.Position(fn.Body.End()).Line,
					hotpath:  hot,
					inline:   inl,
				})
			}
		}
	}
	return byFile
}

// CompilerContract compiles the patterns under dir with diagnostic flags
// and checks every //snug:hotpath and //snug:inline function in pkgs
// against the compiler's recorded decisions. Active violations are
// returned sorted; suppressed ones accumulate on their package's
// Suppressed list. The gcescape/gcbounds/gcinline checks are marked as
// having run on every package, which arms staleallow for their directives.
func CompilerContract(dir string, pkgs []*Package, patterns []string) ([]Diagnostic, error) {
	output, err := compileDiagnostics(dir, patterns)
	if err != nil {
		return nil, err
	}
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	modpath, err := goModulePath(dir)
	if err != nil {
		return nil, err
	}
	facts := parseCompilerFacts(dir, root, modpath, output)
	decisions := 0
	for _, f := range facts {
		if f.kind == factCanInline || f.kind == factCannotInline {
			decisions++
		}
	}
	if decisions == 0 {
		return nil, fmt.Errorf("compiler contract: no inlining decisions parsed from %d bytes of go build -gcflags='-m=2' output; the diagnostic format may have changed with this Go release (see DESIGN.md, version-skew policy)", len(output))
	}
	for _, pkg := range pkgs {
		pkg.markRan(CheckEscape, CheckBounds, CheckInline)
	}
	contracts := collectContracts(pkgs)

	var diags []Diagnostic
	for _, f := range facts {
		cs, ok := contracts[f.file]
		if !ok {
			continue
		}
		switch f.kind {
		case factEscape, factBounds:
			for _, c := range cs {
				if !c.hotpath || f.line < c.declLine || f.line > c.bodyEnd {
					continue
				}
				if f.kind == factEscape {
					c.reportf(f, &diags, CheckEscape,
						"heap escape in hot path %s: %s; keep the value on the stack or annotate with %s gcescape <why>", c.name, f.msg, allowDirective)
				} else {
					c.reportf(f, &diags, CheckBounds,
						"bounds check in hot path %s: the compiler kept %s here; restructure so the index is provably in range or annotate with %s gcbounds <why>", c.name, strings.TrimPrefix(f.msg, "Found "), allowDirective)
				}
			}
		case factCanInline, factCannotInline:
			for _, c := range cs {
				if f.line != c.declLine || !strings.Contains(f.msg, c.name) {
					continue
				}
				c.inlineSeen = true
				if c.inline && f.kind == factCannotInline {
					reason := f.msg
					if k := strings.Index(reason, ": "); k >= 0 {
						reason = reason[k+2:]
					}
					c.reportf(f, &diags, CheckInline,
						"%s is annotated %s but the compiler will not inline it: %s; shrink it below the budget or annotate with %s gcinline <why>", c.name, inlineDirective, reason, allowDirective)
				}
			}
		}
	}
	// A //snug:inline function with no recorded decision means the compile
	// skipped it or the parser missed it — either way the contract is
	// unverified, which must not pass silently.
	for _, cs := range contracts {
		for _, c := range cs {
			if c.inline && !c.inlineSeen {
				f := gcFact{file: c.pkg.Fset.Position(c.file.Package).Filename, line: c.declLine, col: 1}
				c.reportf(f, &diags, CheckInline,
					"no inlining decision recorded for %s %s: the compile may not cover this package or the diagnostic format changed (version skew; see DESIGN.md)", inlineDirective, c.name)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// reportf routes one contract violation through the package's allow
// machinery. Allow lookup happens at the fact line's start (//snug:allow
// scoping is line-granular), while the rendered diagnostic keeps the
// compiler's own column.
func (c *funcContract) reportf(f gcFact, diags *[]Diagnostic, check, format string, args ...any) {
	rendered := token.Position{Filename: f.file, Line: f.line, Column: f.col}
	c.pkg.reportAt(c.pkg.Fset, check, c.posFor(f), rendered, fmt.Sprintf(format, args...), diags)
}

// posFor converts a fact's file:line back into a token.Pos inside the
// contract's file, so allow lookup agrees with the AST analyzers.
func (c *funcContract) posFor(f gcFact) token.Pos {
	tf := c.pkg.Fset.File(c.file.Pos())
	if tf == nil || f.line < 1 || f.line > tf.LineCount() {
		return c.file.Pos()
	}
	return tf.LineStart(f.line)
}
