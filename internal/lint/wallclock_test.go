package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

func TestWallClock(t *testing.T) {
	linttest.Run(t, "testdata/wallclock", lint.WallClock,
		"snug/internal/sweep", "other")
}
