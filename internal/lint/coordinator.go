package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Coordinator enforces the epoch engine's goroutine-confinement contract
// (internal/cmp/epoch.go): all cross-core mutable state is owned by the
// scheme controller, and controller methods run only on the coordinator
// goroutine. Code that executes on a per-core goroutine is marked
// `//snug:coreside`; functions that touch the shared hierarchy are marked
// `//snug:coordinator`. The analyzer checks three things:
//
//   - no function carries both marks — they name disjoint goroutine roles;
//   - no call path from a //snug:coreside root reaches, through
//     same-package static calls, a //snug:coordinator function or any
//     method of the schemes.Controller interface on a value implementing
//     it (the type-based rule crosses package boundaries, where doc
//     directives are invisible);
//   - in result-affecting packages, every Access / WritebackL1 / Tick
//     method on a type implementing schemes.Controller carries
//     //snug:coordinator, so new schemes inherit the contract and rule two
//     can see them.
//
// The static walk is deliberately conservative: calls through non-Controller
// interfaces or function values are not followed. The -race differential
// suite (internal/cmp/epoch_test.go) is the dynamic backstop for what the
// walk cannot see.
var Coordinator = &Analyzer{
	Name: "coordinator",
	Doc:  "keeps //snug:coreside call paths out of //snug:coordinator functions and Controller methods",
	Run:  runCoordinator,
}

const (
	coordinatorDirective = "//snug:coordinator"
	coresideDirective    = "//snug:coreside"
)

// controllerMethods are the Controller methods rule three requires to be
// annotated — the mutating call surface a scheme must confine.
var controllerMethods = map[string]bool{
	"Access":      true,
	"WritebackL1": true,
	"Tick":        true,
}

func runCoordinator(pass *Pass) error {
	decls := map[types.Object]*ast.FuncDecl{}
	coordinator := map[types.Object]bool{}
	var coreside []types.Object
	for _, file := range pass.Files() {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fn
			co := hasDirective(fn, coordinatorDirective)
			cs := hasDirective(fn, coresideDirective)
			if co && cs {
				pass.Reportf(fn.Name.Pos(),
					"%s is marked both %s and %s: the marks name disjoint goroutine roles",
					fn.Name.Name, coordinatorDirective, coresideDirective)
			}
			if co {
				coordinator[obj] = true
			}
			if cs {
				coreside = append(coreside, obj)
			}
		}
	}

	iface := controllerInterface(pass)
	checkControllerDecls(pass, decls, coordinator, iface)

	reported := map[token.Pos]bool{}
	for _, root := range coreside {
		walkCoreside(pass, root, decls, coordinator, iface, reported)
	}
	return nil
}

// walkCoreside DFSes the same-package static call graph from one coreside
// root, reporting every call that lands in coordinator-only territory.
func walkCoreside(pass *Pass, root types.Object, decls map[types.Object]*ast.FuncDecl,
	coordinator map[types.Object]bool, iface *types.Interface, reported map[token.Pos]bool) {
	visited := map[types.Object]bool{root: true}
	var visit func(obj types.Object)
	visit = func(obj types.Object) {
		fn := decls[obj]
		if fn == nil {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObject(pass, call)
			if callee == nil {
				return true
			}
			report := func(format string, args ...any) {
				if !reported[call.Pos()] {
					reported[call.Pos()] = true
					pass.Reportf(call.Pos(), format, args...)
				}
			}
			switch {
			case coordinator[callee]:
				report("core-goroutine path from %s calls coordinator-only %s: shared below-L1 state may only be touched on the coordinator goroutine; park the work instead (see internal/cmp/epoch.go)",
					root.Name(), callee.Name())
			case isControllerMethodCall(pass, call, iface):
				report("core-goroutine path from %s calls Controller method %s: controller calls must be parked at the coordinator, never made from a core goroutine",
					root.Name(), callee.Name())
			default:
				if !visited[callee] && decls[callee] != nil {
					visited[callee] = true
					visit(callee)
				}
			}
			return true
		})
	}
	visit(root)
}

// checkControllerDecls enforces rule three: in result-affecting packages,
// mutating Controller methods on implementing types must be annotated.
func checkControllerDecls(pass *Pass, decls map[types.Object]*ast.FuncDecl,
	coordinator map[types.Object]bool, iface *types.Interface) {
	if iface == nil || !resultAffectingPath(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files() {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || !controllerMethods[fn.Name.Name] {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			if obj == nil || coordinator[obj] {
				continue
			}
			recv := pass.TypeOf(fn.Recv.List[0].Type)
			if recv == nil || !types.Implements(recv, iface) {
				continue
			}
			pass.Reportf(fn.Name.Pos(),
				"Controller method %s.%s lacks %s: scheme controllers own cross-core state, so their mutating methods must declare the coordinator-only contract",
				recvName(fn), fn.Name.Name, coordinatorDirective)
		}
	}
}

// calleeObject resolves a call expression to the called function object for
// same-package declarations and selector calls; nil when the callee cannot
// be identified statically (function values, builtins).
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return sel.Obj()
		}
		if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isControllerMethodCall reports whether call invokes a method belonging to
// the schemes.Controller interface on a receiver that implements it —
// either through the interface itself or on a concrete controller.
func isControllerMethodCall(pass *Pass, call *ast.CallExpr, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	name := selection.Obj().Name()
	inInterface := false
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			inInterface = true
			break
		}
	}
	if !inInterface {
		return false
	}
	return types.Implements(selection.Recv(), iface)
}

// controllerInterface locates the schemes.Controller interface type from
// the analyzed package or its direct imports; nil when schemes is not in
// scope (then only the directive-based rules apply).
func controllerInterface(pass *Pass) *types.Interface {
	const schemesPath = "snug/internal/schemes"
	lookup := func(p *types.Package) *types.Interface {
		obj := p.Scope().Lookup("Controller")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if basePath(pass.Pkg.Path()) == schemesPath {
		return lookup(pass.Pkg)
	}
	for _, imp := range pass.Pkg.Imports() {
		if basePath(imp.Path()) == schemesPath {
			return lookup(imp)
		}
	}
	return nil
}

// basePath strips vet's test-variant decoration ("p [p.test]") from an
// import path.
func basePath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// hasDirective reports whether fn's doc comment carries the directive.
func hasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// recvName returns the receiver's type name for diagnostics.
func recvName(fn *ast.FuncDecl) string {
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return "receiver"
		}
	}
}
