package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata/maporder", lint.MapOrder,
		"snug/internal/cache", "other")
}
