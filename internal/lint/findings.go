package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is the machine-readable form of one diagnostic: the -json output
// emits one Finding per line (JSON Lines). The schema is pinned by a
// golden test (findings_test.go); extend it by adding fields, never by
// renaming or retyping existing ones — downstream tooling (the CI job
// summary, baseline diffs) relies on it.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative when possible
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Allowed is true for findings a //snug:allow directive suppressed;
	// Justification carries the directive's rationale. Allowed findings
	// never fail a run.
	Allowed       bool   `json:"allowed"`
	Justification string `json:"justification,omitempty"`
	// Baselined is true when a -baseline run matched the finding against
	// the committed baseline: tracked legacy debt, not a failure.
	Baselined bool `json:"baselined,omitempty"`
}

// findingOf converts a diagnostic, relativizing the filename against dir.
func findingOf(dir string, d Diagnostic) Finding {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return Finding{
		Analyzer:      d.Analyzer,
		File:          file,
		Line:          d.Pos.Line,
		Col:           d.Pos.Column,
		Message:       d.Message,
		Allowed:       d.Allowed,
		Justification: d.Justification,
	}
}

// String renders the finding in the file:line:col style of go vet output.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// baselineSchema is the current LINT_BASELINE.json schema version; bump it
// only with a migration note in DESIGN.md.
const baselineSchema = 1

// Baseline is the committed findings snapshot CI diffs against: runs fail
// only on findings not in the baseline, so legacy debt stays tracked
// without blocking unrelated changes.
type Baseline struct {
	Schema int `json:"schema"`
	// Findings are the tracked entries sorted by (file, line, analyzer).
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one tracked finding. Line is informational
// only: the match key is (analyzer, file, message), so a finding that
// merely moves within its file does not count as new. Two identical
// findings in one file occupy two entries (matching is count-aware).
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// LoadBaseline reads a baseline file. A missing file is an error — CI must
// not pass vacuously because the baseline was forgotten; create one with
// -update-baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("baseline %s does not exist (create it with -update-baseline)", path)
		}
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	if b.Schema != baselineSchema {
		return nil, fmt.Errorf("baseline %s has schema %d, this snuglint speaks %d; regenerate with -update-baseline", path, b.Schema, baselineSchema)
	}
	return &b, nil
}

// Diff splits findings into new (not tracked by the baseline — these fail
// the run) and marks the rest Baselined in place. resolved counts baseline
// entries no finding matched: tracked debt that has since been fixed and
// should be dropped with -update-baseline.
func (b *Baseline) Diff(findings []Finding) (fresh []Finding, resolved int) {
	remaining := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		remaining[e.key()]++
	}
	for i := range findings {
		f := &findings[i]
		if f.Allowed {
			continue // allow-suppressed findings are outside baseline scope
		}
		k := BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message}.key()
		if remaining[k] > 0 {
			remaining[k]--
			f.Baselined = true
		} else {
			fresh = append(fresh, *f)
		}
	}
	for _, n := range remaining {
		resolved += n
	}
	return fresh, resolved
}

// WriteBaseline snapshots the active (non-allowed) findings to path.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Schema: baselineSchema}
	for _, f := range findings {
		if f.Allowed {
			continue
		}
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: f.Analyzer, File: f.File, Line: f.Line, Message: f.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// WriteJSON emits findings as JSON Lines.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}

// CountByAnalyzer tallies findings per analyzer (all states) and returns
// "name:count" terms sorted by name — the per-analyzer summary CI prints.
func CountByAnalyzer(findings []Finding) []string {
	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	terms := make([]string, len(names))
	for i, n := range names {
		terms[i] = fmt.Sprintf("%s:%d", n, counts[n])
	}
	return terms
}
