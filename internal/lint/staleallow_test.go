package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

// TestStaleAllow runs hotalloc and staleallow in one pass, as the suite
// does: staleallow only judges directives whose named check ran alongside
// it, so the two must share the usage accounting of a single lint.Run.
func TestStaleAllow(t *testing.T) {
	linttest.RunAnalyzers(t, "testdata/staleallow",
		[]*lint.Analyzer{lint.HotAlloc, lint.StaleAllow}, "hot")
}
