package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

// TestStaleAllow runs hotalloc and staleallow in one pass, as the suite
// does: staleallow only judges directives whose named check ran alongside
// it, so the two must share the usage accounting of a single lint.Run.
func TestStaleAllow(t *testing.T) {
	linttest.RunAnalyzers(t, "testdata/staleallow",
		[]*lint.Analyzer{lint.HotAlloc, lint.StaleAllow}, "hot")
}

// TestStaleAllowWallclock pairs staleallow with wallclock over a fixture
// posing as the result-affecting sweep package: the sweep engine's
// retry-backoff annotation is live there, and the same directive stranded
// on a line without a clock read is stale.
func TestStaleAllowWallclock(t *testing.T) {
	linttest.RunAnalyzers(t, "testdata/staleallow",
		[]*lint.Analyzer{lint.WallClock, lint.StaleAllow}, "snug/internal/sweep")
}
