package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the cmd/go vet-tool protocol (the same contract
// x/tools' unitchecker speaks), so `go vet -vettool=$(which snuglint) ./...`
// drives the suite one compilation unit at a time with the go command's
// own caching and package graph:
//
//   - `snuglint -V=full` prints a stable tool identity (cmd/go hashes it
//     into the build cache key);
//   - `snuglint -flags` prints the tool's flag set as JSON (none);
//   - `snuglint <unit>.cfg` analyzes one package described by the JSON
//     config cmd/go writes, type-checking against the compiler export
//     data cmd/go already produced for the build.
//
// The tool never needs facts from dependencies (no analyzer here is
// modular), so dependency units (VetxOnly) are satisfied by writing an
// empty facts file.

// vetVersion is the identity cmd/go caches vet results under. Bump it
// whenever analyzer behavior changes so stale clean-verdicts are not
// replayed from the build cache.
const vetVersion = "snuglint version v2-stdlib"

// vetConfig mirrors the JSON config cmd/go hands a vet tool for one
// compilation unit. Field names are the protocol; unused ones are omitted.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetEntry handles the vet-protocol invocations. It returns false if the
// arguments are not a vet-protocol call (the caller should run standalone
// mode); otherwise it runs the protocol and exits the process itself.
func VetEntry(args []string) bool {
	if len(args) != 1 {
		return false
	}
	switch {
	case args[0] == "-V=full" || args[0] == "--V=full":
		fmt.Println(vetVersion)
		os.Exit(0)
	case args[0] == "-flags" || args[0] == "--flags":
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasSuffix(args[0], ".cfg"):
		code, err := vetUnit(args[0], os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snuglint: %v\n", err)
			os.Exit(1)
		}
		os.Exit(code)
	}
	return false
}

// vetUnit analyzes the single compilation unit described by cfgPath,
// printing diagnostics to w. It returns the process exit code: 0 clean,
// 2 diagnostics found (the unitchecker convention).
func vetUnit(cfgPath string, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// Always produce the facts output cmd/go expects, even for units we
	// skip: the suite exports no facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	// Resolve imports through the export data cmd/go compiled for the
	// build, exactly as the compiler itself will see them.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})
	info := newTypesInfo()
	tcfg := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tp, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	pkg := &Package{Fset: fset, Files: files, Pkg: tp, Info: info}
	diags, err := Run(pkg, Analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}
