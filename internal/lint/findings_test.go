package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snug/internal/lint"
)

// TestFindingsJSONGolden pins the -json schema byte-for-byte. The three
// findings cover the allow states: active, allow-suppressed (justification
// present), and baselined. Any field rename, retype or reorder breaks this
// test — that is the point; downstream tooling parses these lines.
func TestFindingsJSONGolden(t *testing.T) {
	findings := []lint.Finding{
		{
			Analyzer: "gcbounds", File: "internal/cache/cache.go", Line: 244, Col: 13,
			Message: "bounds check in hot path matchWay",
		},
		{
			Analyzer: "hotdispatch", File: "internal/cpu/core.go", Line: 170, Col: 4,
			Message: "interface method call in hot path Run",
			Allowed: true, Justification: "one dispatch per batch, amortized",
		},
		{
			Analyzer: "gcbounds", File: "internal/trace/record.go", Line: 234, Col: 13,
			Message: "bounds check in hot path Next", Baselined: true,
		},
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	golden := strings.Join([]string{
		`{"analyzer":"gcbounds","file":"internal/cache/cache.go","line":244,"col":13,"message":"bounds check in hot path matchWay","allowed":false}`,
		`{"analyzer":"hotdispatch","file":"internal/cpu/core.go","line":170,"col":4,"message":"interface method call in hot path Run","allowed":true,"justification":"one dispatch per batch, amortized"}`,
		`{"analyzer":"gcbounds","file":"internal/trace/record.go","line":234,"col":13,"message":"bounds check in hot path Next","allowed":false,"baselined":true}`,
	}, "\n") + "\n"
	if got := buf.String(); got != golden {
		t.Errorf("-json output drifted from the pinned schema:\ngot:\n%swant:\n%s", got, golden)
	}
}

// TestBaselineRoundTrip covers Write → Load → Diff: allowed findings stay
// out of the baseline, tracked findings are marked Baselined, new findings
// come back fresh, fixed entries count as resolved, and duplicate findings
// match count-aware (two identical entries absorb exactly two findings).
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	tracked := lint.Finding{
		Analyzer: "gcbounds", File: "a/a.go", Line: 10, Col: 2,
		Message: "bounds check in hot path F",
	}
	dup := tracked
	dup.Line = 20
	allowed := lint.Finding{
		Analyzer: "gcescape", File: "a/a.go", Line: 5, Col: 1,
		Message: "heap escape in hot path F", Allowed: true, Justification: "why",
	}
	fixed := lint.Finding{
		Analyzer: "gcbounds", File: "b/b.go", Line: 3, Col: 1,
		Message: "bounds check in hot path G",
	}
	if err := lint.WriteBaseline(path, []lint.Finding{tracked, dup, allowed, fixed}); err != nil {
		t.Fatal(err)
	}
	b, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 3 {
		t.Fatalf("baseline holds %d entries, want 3 (allowed findings excluded)", len(b.Findings))
	}

	// Current findings: both duplicates (one moved), the allowed one, a
	// genuinely new finding — and nothing matching `fixed` anymore.
	moved := dup
	moved.Line = 99
	fresh := lint.Finding{
		Analyzer: "gcbounds", File: "a/a.go", Line: 30, Col: 2,
		Message: "bounds check in hot path H",
	}
	now := []lint.Finding{tracked, moved, allowed, fresh}
	newOnes, resolved := b.Diff(now)
	if len(newOnes) != 1 || newOnes[0].Message != fresh.Message {
		t.Errorf("Diff fresh = %+v, want just the new finding", newOnes)
	}
	if resolved != 1 {
		t.Errorf("Diff resolved = %d, want 1 (the fixed entry)", resolved)
	}
	if !now[0].Baselined || !now[1].Baselined {
		t.Errorf("tracked findings not marked Baselined: %+v", now[:2])
	}
	if now[2].Baselined {
		t.Errorf("allowed finding must stay outside baseline scope: %+v", now[2])
	}
}

// TestBaselineCountAware: a third identical finding beyond the two tracked
// entries is new, not absorbed.
func TestBaselineCountAware(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	f := lint.Finding{Analyzer: "gcbounds", File: "a/a.go", Line: 1, Col: 1, Message: "m"}
	g := f
	g.Line = 2
	if err := lint.WriteBaseline(path, []lint.Finding{f, g}); err != nil {
		t.Fatal(err)
	}
	b, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	h := f
	h.Line = 3
	fresh, resolved := b.Diff([]lint.Finding{f, g, h})
	if len(fresh) != 1 || resolved != 0 {
		t.Errorf("Diff = (%d fresh, %d resolved), want (1, 0)", len(fresh), resolved)
	}
}

// TestLoadBaselineErrors: a missing baseline and a schema mismatch must
// fail loudly, never pass vacuously.
func TestLoadBaselineErrors(t *testing.T) {
	if _, err := lint.LoadBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil ||
		!strings.Contains(err.Error(), "-update-baseline") {
		t.Errorf("missing baseline: err = %v, want pointer to -update-baseline", err)
	}
	path := filepath.Join(t.TempDir(), "v9.json")
	if err := os.WriteFile(path, []byte(`{"schema":9,"findings":[]}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "schema 9") {
		t.Errorf("schema mismatch: err = %v, want schema complaint", err)
	}
}

// TestCountByAnalyzer pins the summary-term format.
func TestCountByAnalyzer(t *testing.T) {
	got := lint.CountByAnalyzer([]lint.Finding{
		{Analyzer: "gcbounds"}, {Analyzer: "gcbounds"}, {Analyzer: "hotalloc"},
	})
	want := []string{"gcbounds:2", "hotalloc:1"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("CountByAnalyzer = %v, want %v", got, want)
	}
}
