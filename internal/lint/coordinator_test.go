package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

func TestCoordinator(t *testing.T) {
	linttest.Run(t, "testdata/coordinator", lint.Coordinator,
		"snug/internal/cmp", "other")
}
