package lint

import (
	"go/ast"
	"strconv"
)

// SeedDiscipline enforces the seeding contract that keeps every simulation
// a pure function of its identity: randomness enters the system only
// through stats.NewRNG, and every seed must data-flow from job identity
// (sweep.JobSeed, stats.Mix64, stats.HashString, a config or parameter
// value) rather than being a compile-time constant.
//
// Two rules, applied to all non-test code in this module:
//
//   - importing math/rand or math/rand/v2 is an error: their generators
//     and their global state are not part of the reproducibility contract
//     (and math/rand's algorithm may change across Go releases);
//   - stats.NewRNG(<constant>) is an error: a literal seed hardwires one
//     stream instead of deriving it from the job's identity, silently
//     unpairing scheme comparisons. Deriving expressions (cfg.Seed ^ 0xcc,
//     Mix64(HashString(name))) are non-constant and pass.
//
// internal/stats itself is exempt — it defines the RNG.
var SeedDiscipline = &Analyzer{
	Name: "seeddiscipline",
	Doc:  "requires stats.NewRNG with identity-derived seeds; bans math/rand and literal seeds",
	Run:  runSeedDiscipline,
}

func runSeedDiscipline(pass *Pass) error {
	if !modulePath(pass.Pkg.Path()) || pass.Pkg.Path() == "snug/internal/stats" {
		return nil
	}
	for _, file := range pass.Files() {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in non-test code: simulator randomness must come from stats.NewRNG seeded via sweep.JobSeed/stats.Mix64", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "NewRNG" {
				return true
			}
			obj := pass.Info.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "snug/internal/stats" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil {
				pass.Reportf(call.Pos(),
					"stats.NewRNG with constant seed %s: seeds must data-flow from job identity (sweep.JobSeed, stats.Mix64, config seeds), never a literal",
					tv.Value)
			}
			return true
		})
	}
	return nil
}
