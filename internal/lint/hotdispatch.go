package lint

import (
	"go/ast"
	"go/types"
)

// HotDispatch closes the hotalloc analyzer's blind spots: costs in a
// //snug:hotpath body that are not allocation sites syntactically but tax
// every call dynamically or allocate behind a conversion. Flagged inside a
// hotpath body:
//
//   - interface method calls: dynamic dispatch defeats inlining and
//     devirtualization, putting an indirect call in the per-instruction
//     loop (the simulator's hot paths are monomorphic by design — streams
//     are batch-decoded outside the hotpath functions);
//   - defer: a defer record is scheduled per call, and an open-coded defer
//     still disables inlining of the deferring function;
//   - string <-> []byte conversions: each direction copies the bytes and
//     in the general case heap-allocates the copy.
//
// Justified exceptions carry `//snug:allow hotdispatch <why>` on the line.
var HotDispatch = &Analyzer{
	Name: "hotdispatch",
	Doc:  "forbids interface dispatch, defer and string<->[]byte conversions in //snug:hotpath functions",
	Run:  runHotDispatch,
}

func runHotDispatch(pass *Pass) error {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				return true
			}
			checkHotDispatch(pass, fn)
			return true
		})
	}
	return nil
}

func checkHotDispatch(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path %s: schedules a defer record per call and blocks inlining; restructure or annotate with %s hotdispatch <why>", name, allowDirective)
		case *ast.CallExpr:
			switch {
			case isInterfaceCall(pass, n):
				pass.Reportf(n.Pos(), "interface method call in hot path %s: dynamic dispatch defeats inlining and devirtualization; take a concrete type or annotate with %s hotdispatch <why>", name, allowDirective)
			case isStringBytesConversion(pass, n):
				pass.Reportf(n.Pos(), "string<->[]byte conversion in hot path %s: copies (and may heap-allocate) per call; keep one representation or annotate with %s hotdispatch <why>", name, allowDirective)
			}
		}
		return true
	})
}

// isInterfaceCall reports whether call invokes a method through an
// interface value.
func isInterfaceCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return types.IsInterface(s.Recv())
}

// isStringBytesConversion reports whether call converts string to []byte
// or []byte to string.
func isStringBytesConversion(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	from := pass.TypeOf(call.Args[0])
	if from == nil {
		return false
	}
	to := tv.Type
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
