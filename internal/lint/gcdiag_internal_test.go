package lint

import (
	"reflect"
	"testing"
)

// TestParseFactLine pins the recognized diagnostic shapes (the version-skew
// surface): escape analysis, bounds checks and inlining decisions as
// emitted by go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'.
func TestParseFactLine(t *testing.T) {
	tests := []struct {
		line string
		want gcFact
		ok   bool
	}{
		{
			line: "internal/cache/cache.go:244:13: Found IsInBounds",
			want: gcFact{file: "internal/cache/cache.go", line: 244, col: 13, kind: factBounds, msg: "Found IsInBounds"},
			ok:   true,
		},
		{
			line: "a/b.go:10:2: Found IsSliceInBounds",
			want: gcFact{file: "a/b.go", line: 10, col: 2, kind: factBounds, msg: "Found IsSliceInBounds"},
			ok:   true,
		},
		{
			line: "a/b.go:5:6: can inline matchWay with cost 64 as: method(*Cache) func(uint32, uint64) int { ... }",
			want: gcFact{file: "a/b.go", line: 5, col: 6, kind: factCanInline, msg: "can inline matchWay with cost 64"},
			ok:   true,
		},
		{
			line: "a/b.go:5:6: cannot inline place: function too complex: cost 203 exceeds budget 80",
			want: gcFact{file: "a/b.go", line: 5, col: 6, kind: factCannotInline, msg: "cannot inline place: function too complex: cost 203 exceeds budget 80"},
			ok:   true,
		},
		{
			line: "a/b.go:8:2: moved to heap: v",
			want: gcFact{file: "a/b.go", line: 8, col: 2, kind: factEscape, msg: "moved to heap: v"},
			ok:   true,
		},
		{
			line: "a/b.go:9:10: new(int) escapes to heap",
			want: gcFact{file: "a/b.go", line: 9, col: 10, kind: factEscape, msg: "new(int) escapes to heap"},
			ok:   true,
		},
		{
			// The explained -m=2 variant ends with a colon; it must strip to
			// the same message as the summary line so the two dedupe.
			line: "a/b.go:9:10: new(int) escapes to heap:",
			want: gcFact{file: "a/b.go", line: 9, col: 10, kind: factEscape, msg: "new(int) escapes to heap"},
			ok:   true,
		},
		// Ignored shapes: not contract-relevant or not diagnostics at all.
		{line: "a/b.go:3:7: leaking param: xs to result ~r0 level=0", ok: false},
		{line: "a/b.go:4:2: x does not escape", ok: false},
		{line: "# snug/internal/cache", ok: false},
		{line: "a/b.go:12:2: inlining call to rankShift", ok: false},
		{line: "no position prefix at all", ok: false},
		{line: "a/b.go:bad:1: Found IsInBounds", ok: false},
	}
	for _, tt := range tests {
		got, ok := parseFactLine(tt.line)
		if ok != tt.ok {
			t.Errorf("parseFactLine(%q) ok = %v, want %v", tt.line, ok, tt.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, tt.want) {
			t.Errorf("parseFactLine(%q) =\n  %+v\nwant\n  %+v", tt.line, got, tt.want)
		}
	}
}

// TestParseCompilerFacts covers the output-level behavior: module-path
// prefixed positions (what -trimpath emits) resolve against the module
// root no matter the working directory, other relative paths resolve
// against the build directory, repeated facts (one per inlined copy)
// deduplicate, and unrecognized lines are skipped silently.
func TestParseCompilerFacts(t *testing.T) {
	output := `# example/pkg
example/pkg/a.go:10:5: Found IsInBounds
example/pkg/a.go:10:5: Found IsInBounds
/abs/pkg/b.go:3:6: can inline f with cost 7 as: func() int { return 1 }
example/pkg/a.go:12:2: moved to heap: v
example/pkg/a.go:12:2: moved to heap: v
slices/sort.go:4:6: Found IsInBounds
something the parser does not recognize
`
	facts := parseCompilerFacts("/anywhere/cwd", "/root/mod", "example", output)
	want := []gcFact{
		{file: "/root/mod/pkg/a.go", line: 10, col: 5, kind: factBounds, msg: "Found IsInBounds"},
		{file: "/abs/pkg/b.go", line: 3, col: 6, kind: factCanInline, msg: "can inline f with cost 7"},
		{file: "/root/mod/pkg/a.go", line: 12, col: 2, kind: factEscape, msg: "moved to heap: v"},
		{file: "/anywhere/cwd/slices/sort.go", line: 4, col: 6, kind: factBounds, msg: "Found IsInBounds"},
	}
	if !reflect.DeepEqual(facts, want) {
		t.Errorf("parseCompilerFacts =\n  %+v\nwant\n  %+v", facts, want)
	}
}
