package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"snug/internal/lint"
)

// TestCompilerContract compiles the testdata/gcdiag fixture module — its
// own go.mod keeps it out of the parent module's patterns — and checks the
// contract end to end against a real compile: hotpath escape and bounds
// violations and a failed //snug:inline are reported, the justified
// //snug:allow gcescape is suppressed (not failing, not lost), and the
// clean fixtures produce nothing.
func TestCompilerContract(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture module; skipped in -short")
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "gcdiag"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	diags, err := lint.CompilerContract(dir, pkgs, []string{"./..."})
	if err != nil {
		t.Fatalf("CompilerContract: %v", err)
	}

	type wantDiag struct {
		analyzer, inMessage string
	}
	wants := []wantDiag{
		{lint.CheckEscape, "heap escape in hot path EscapeHot"},
		{lint.CheckBounds, "bounds check in hot path BoundsHot"},
		{lint.CheckInline, "TooBig is annotated //snug:inline but the compiler will not inline it"},
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.inMessage) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic containing %q; got:\n%s", w.analyzer, w.inMessage, render(diags))
		}
	}
	for _, d := range diags {
		for _, clean := range []string{"CleanHot", "SmallInline", "AllowedEscape"} {
			if strings.Contains(d.Message, clean) {
				t.Errorf("clean fixture %s was flagged: %s", clean, d.Message)
			}
		}
	}

	// The justified escape must be suppressed with its justification kept.
	suppressed := false
	for _, pkg := range pkgs {
		for _, d := range pkg.Suppressed {
			if d.Analyzer == lint.CheckEscape && strings.Contains(d.Message, "AllowedEscape") {
				suppressed = true
				if !d.Allowed || d.Justification == "" {
					t.Errorf("suppressed escape lost its allow state: %+v", d)
				}
			}
		}
	}
	if !suppressed {
		t.Errorf("AllowedEscape's gcescape violation was not routed to Suppressed")
	}
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
