package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata/hotalloc", lint.HotAlloc, "hot")
}

func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"maporder", "wallclock", "seeddiscipline", "hotalloc", "coordinator"}
	if len(lint.Analyzers) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(lint.Analyzers), len(want))
	}
	for i, name := range want {
		if lint.Analyzers[i].Name != name {
			t.Errorf("Analyzers[%d] = %s, want %s", i, lint.Analyzers[i].Name, name)
		}
		if lint.ByName(name) != lint.Analyzers[i] {
			t.Errorf("ByName(%q) did not return the suite analyzer", name)
		}
	}
	if lint.ByName("nope") != nil {
		t.Errorf("ByName(nope) = %v, want nil", lint.ByName("nope"))
	}
}
