package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata/hotalloc", lint.HotAlloc, "hot")
}

func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"maporder", "wallclock", "seeddiscipline", "hotalloc", "hotdispatch", "coordinator", "staleallow"}
	if len(lint.Analyzers) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(lint.Analyzers), len(want))
	}
	for i, name := range want {
		if lint.Analyzers[i].Name != name {
			t.Errorf("Analyzers[%d] = %s, want %s", i, lint.Analyzers[i].Name, name)
		}
		if lint.ByName(name) != lint.Analyzers[i] {
			t.Errorf("ByName(%q) did not return the suite analyzer", name)
		}
		if !lint.KnownCheck(name) {
			t.Errorf("KnownCheck(%q) = false for a suite analyzer", name)
		}
	}
	if lint.Analyzers[len(lint.Analyzers)-1] != lint.StaleAllow {
		t.Errorf("staleallow must run last so directive usage is fully accounted")
	}
	for _, name := range []string{"gcescape", "gcbounds", "gcinline"} {
		if !lint.KnownCheck(name) {
			t.Errorf("KnownCheck(%q) = false for a compiler-contract check", name)
		}
		if lint.ByName(name) != nil {
			t.Errorf("ByName(%q) = non-nil; compiler checks are not AST analyzers", name)
		}
	}
	if lint.ByName("nope") != nil {
		t.Errorf("ByName(nope) = %v, want nil", lint.ByName("nope"))
	}
	if lint.KnownCheck("nope") {
		t.Errorf("KnownCheck(nope) = true, want false")
	}
}
