package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snug/internal/lint"
)

// writeModule lays out a throwaway module for loader error-path tests.
// Files maps module-relative paths to contents; a minimal go.mod is added.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module loadfixture\n\ngo 1.21\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// The loader must turn bad input into contextual errors, never panics and
// never silent empty results: each case checks the error names the problem.

func TestLoadUnparseableSource(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"broken/broken.go": "package broken\n\nfunc f( {\n",
	})
	_, err := lint.Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on an unparseable file")
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error does not name the unparseable file: %v", err)
	}
}

func TestLoadMissingPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"ok/ok.go": "package ok\n",
	})
	_, err := lint.Load(dir, "./doesnotexist")
	if err == nil {
		t.Fatal("Load succeeded on a missing package pattern")
	}
	if !strings.Contains(err.Error(), "doesnotexist") {
		t.Errorf("error does not name the missing package: %v", err)
	}
}

func TestLoadTypeCheckFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc f() int { return \"not an int\" }\n",
	})
	_, err := lint.Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a type-check failure")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error does not name the failing package: %v", err)
	}
}

func TestLoadMissingImport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"needy/needy.go": "package needy\n\nimport \"no/such/dependency\"\n\nvar _ = dependency.X\n",
	})
	_, err := lint.Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded with an unresolvable import")
	}
	if !strings.Contains(err.Error(), "no/such/dependency") {
		t.Errorf("error does not name the unresolvable import: %v", err)
	}
}
