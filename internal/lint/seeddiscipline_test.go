package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

func TestSeedDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/seeddiscipline", lint.SeedDiscipline,
		"snug/internal/core", "outside")
}
