package lint

import (
	"go/ast"
)

// WallClock forbids wall-clock observation in result-affecting packages.
// The simulator's only clock is the simulated cycle counter; a time.Now()
// that leaks into a result, a seed or a control decision makes runs
// irreproducible in a way no golden digest over one config can reliably
// catch. Progress/ETA reporting is the one legitimate use and must carry
// `//snug:allow wallclock <why>` (see internal/sweep.Run, whose elapsed
// time feeds only the Progress callback — pinned by
// TestElapsedNeverFeedsResults).
//
// Type references (time.Duration fields, time.Time in an API) are fine;
// only calls that read or wait on the wall clock are flagged.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/Sleep and timers in result-affecting packages",
	Run:  runWallClock,
}

// wallClockFuncs are the package time functions that observe or wait on
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallClock(pass *Pass) error {
	if !resultAffectingPath(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			obj := pass.Info.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in result-affecting package %s: simulated time is the only clock results may observe; annotate progress/ETA-only uses with %s wallclock <why>",
				sel.Sel.Name, pass.Pkg.Path(), allowDirective)
			return true
		})
	}
	return nil
}
