// Package hot exercises the hotdispatch analyzer: only functions annotated
// //snug:hotpath are constrained, and only dynamic-cost constructs —
// interface dispatch, defer, string<->[]byte conversions — are flagged.
package hot

import "sort"

// Stream is the interface fixture; calling through it is dynamic dispatch.
type Stream interface {
	Next() int
}

// T is a fixture holding an interface field and byte/string state.
type T struct {
	s   Stream
	buf []byte
}

// Bad violates every hotdispatch rule at once.
//
//snug:hotpath
func (t *T) Bad(name string) int {
	defer t.close()    // want "defer in hot path Bad"
	n := t.s.Next()    // want "interface method call in hot path Bad"
	bs := []byte(name) // want "string<->\\[\\]byte conversion in hot path Bad"
	s := string(t.buf) // want "string<->\\[\\]byte conversion in hot path Bad"
	return n + len(bs) + len(s)
}

// Allowed carries justified exceptions on each offending line.
//
//snug:hotpath
func (t *T) Allowed() int {
	n := t.s.Next() //snug:allow hotdispatch one dispatch per refill, amortized
	return n
}

// CleanHot stays within the rules: concrete calls, sort.Search with a
// closure (a func value, not an interface method), and byte indexing.
//
//snug:hotpath
func (t *T) CleanHot(k int) int {
	i := sort.Search(len(t.buf), func(j int) bool { return int(t.buf[j]) >= k })
	return i + t.concrete()
}

func (t *T) concrete() int { return len(t.buf) }

func (t *T) close() {}

// NotHot is unannotated: interface dispatch, defer and conversions are
// all fine outside hot paths.
func (t *T) NotHot(name string) int {
	defer t.close()
	return t.s.Next() + len([]byte(name))
}
