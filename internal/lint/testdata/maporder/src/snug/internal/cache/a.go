// Package cache is a maporder test fixture posing as the result-affecting
// package snug/internal/cache.
package cache

import (
	"sort"
)

var registry = map[string]int{"a": 1, "b": 2}

// Bad iterates a map and lets the order reach a result.
func Bad() []string {
	var out []string
	for name := range registry { // want "range over map registry"
		out = append(out, name)
	}
	return out
}

// BadAccumulate float-accumulates in map order.
func BadAccumulate(weights map[string]float64) float64 {
	sum := 0.0
	for _, w := range weights { // want "range over map weights"
		sum += w
	}
	return sum
}

// SortedAfter is the canonical collect-then-sort idiom: not flagged.
func SortedAfter() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SortedSlices uses sort.Slice on the collected keys: not flagged.
func SortedSlices() []int {
	vals := make([]int, 0, len(registry))
	for _, v := range registry {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Allowed carries an explicit justification.
func Allowed() int {
	total := 0
	for _, v := range registry { //snug:allow maporder commutative integer sum
		total += v
	}
	return total
}

// Slices range over non-maps freely.
func Slices(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	for v := range ch {
		s += v
	}
	return s
}
