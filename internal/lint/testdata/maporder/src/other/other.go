// Package other is outside the result-affecting set: map iteration is not
// flagged here.
package other

var m = map[string]int{"a": 1}

// Free ranges over a map without any diagnostic.
func Free() int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
