// Package fixture is the gcdiag compiler-contract corpus: a nested module
// (its own go.mod, invisible to the parent module's package patterns) that
// the contract test compiles for real with -m=2 and check_bce diagnostics.
// This file holds the passing half; violate.go holds the violations.
package fixture

// CleanHot honors the full hotpath contract: the masked index is provably
// in bounds (no check survives BCE) and nothing escapes.
//
//snug:hotpath
func CleanHot(buf *[8]int, i int) int {
	return buf[i&7]
}

// SmallInline is comfortably under the inline budget.
//
//snug:inline
func SmallInline(x int) int {
	return x*x + 1
}

// AllowedEscape violates gcescape but carries a justified directive on the
// offending line (escape diagnostics point at the variable's declaration).
//
//snug:hotpath
func AllowedEscape() *int {
	v := 7 //snug:allow gcescape fixture: demonstrates a justified, suppressed escape
	return &v
}
