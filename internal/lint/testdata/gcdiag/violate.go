package fixture

// EscapeHot violates gcescape: returning &v forces v off the stack
// ("moved to heap: v" at its declaration, inside the hotpath body).
//
//snug:hotpath
func EscapeHot() *int {
	v := 42
	return &v
}

// BoundsHot violates gcbounds: i is unconstrained, so the compiler keeps
// an IsInBounds check in the body.
//
//snug:hotpath
func BoundsHot(xs []int, i int) int {
	return xs[i]
}

// TooBig violates gcinline: two calls to a noinline helper push its cost
// far past the budget, so the compiler records "cannot inline".
//
//snug:inline
func TooBig(xs []int) int {
	s := 0
	for _, x := range xs {
		s += helper(x)
	}
	for _, x := range xs {
		s -= helper(x + 1)
	}
	return s
}

//go:noinline
func helper(x int) int { return x * 2 }
