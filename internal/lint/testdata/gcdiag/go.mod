module gcdiagfixture

go 1.21
