// Package other is outside the result-affecting set: the declaration rule
// does not apply, but the goroutine-role rules still do.
package other

import "snug/internal/schemes"

// relaxed implements Controller without annotations: fine outside the
// result-affecting packages.
type relaxed struct{}

func (relaxed) Name() string                                           { return "relaxed" }
func (relaxed) Access(core int, now int64, a uint64, write bool) int64 { return now }
func (relaxed) WritebackL1(core int, now int64, a uint64)              {}
func (relaxed) Tick(now int64)                                         {}

// stillBad runs core-side and calls the controller: flagged everywhere.
//
//snug:coreside
func stillBad(ctrl schemes.Controller, now int64) {
	ctrl.Tick(now) // want "core-goroutine path from stillBad calls Controller method Tick"
}
