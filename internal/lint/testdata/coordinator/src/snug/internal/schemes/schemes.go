// Package schemes is a coordinator test fixture posing as
// snug/internal/schemes: the analyzer resolves the Controller interface
// from this path to recognize controller calls type-wise.
package schemes

// Controller mirrors the real interface's shape.
type Controller interface {
	Name() string
	Access(core int, now int64, a uint64, write bool) int64
	WritebackL1(core int, now int64, a uint64)
	Tick(now int64)
}

// Fixed is a concrete controller defined outside the analyzed package: its
// methods carry no visible directives, so only the type-based rule can
// recognize calls to them.
type Fixed struct{ T int64 }

func (f *Fixed) Name() string                                           { return "fixed" }
func (f *Fixed) Access(core int, now int64, a uint64, write bool) int64 { return now }
func (f *Fixed) WritebackL1(core int, now int64, a uint64)              {}
func (f *Fixed) Tick(now int64)                                         { f.T = now }
