// Package cmp is a coordinator test fixture posing as the result-affecting
// package snug/internal/cmp.
package cmp

import "snug/internal/schemes"

// drain touches shared state.
//
//snug:coordinator
func drain(ctrl schemes.Controller, now int64) {
	ctrl.Tick(now) // a coordinator function may call the controller freely
}

// localOnly is plain per-core compute: callable from anywhere.
func localOnly(x int64) int64 { return x + 1 }

// helper is unmarked but transitively coordinator-only.
func helper(ctrl schemes.Controller, now int64) {
	drain(ctrl, now) // want "core-goroutine path from badTransitive calls coordinator-only drain"
}

// badDirect parks on the wrong side of the fence.
//
//snug:coreside
func badDirect(ctrl schemes.Controller, now int64) {
	localOnly(now)   // fine: per-core compute
	drain(ctrl, now) // want "core-goroutine path from badDirect calls coordinator-only drain"
}

// badTransitive reaches coordinator code through an unmarked helper.
//
//snug:coreside
func badTransitive(ctrl schemes.Controller, now int64) {
	helper(ctrl, now)
}

// badIfaceCall calls the controller through the interface.
//
//snug:coreside
func badIfaceCall(ctrl schemes.Controller, now int64) int64 {
	return ctrl.Access(0, now, 42, false) // want "core-goroutine path from badIfaceCall calls Controller method Access"
}

// badConcreteCall calls a concrete controller from another package: the
// type-based rule sees it without any directive being visible.
//
//snug:coreside
func badConcreteCall(f *schemes.Fixed, now int64) {
	f.Tick(now) // want "core-goroutine path from badConcreteCall calls Controller method Tick"
}

// badLocalConcrete calls the package-local controller: here the directive
// rule fires, because fixed.Tick is coordinator-marked in this package.
//
//snug:coreside
func badLocalConcrete(f *fixed, now int64) {
	f.Tick(now) // want "core-goroutine path from badLocalConcrete calls coordinator-only Tick"
}

// confused claims both roles.
//
//snug:coordinator
//snug:coreside
func confused() {} // want "confused is marked both"

// goodCoreside stays on private state.
//
//snug:coreside
func goodCoreside(x int64) int64 {
	return localOnly(x)
}

// fixed is a controller implementation; its mutating methods must carry the
// coordinator mark.
type fixed struct{ t int64 }

// Name is not part of the mutating surface rule three checks.
func (f *fixed) Name() string { return "fixed" }

// Access lacks the required annotation.
func (f *fixed) Access(core int, now int64, a uint64, write bool) int64 { // want "Controller method fixed.Access lacks //snug:coordinator"
	return now
}

// WritebackL1 implements Controller.
//
//snug:coordinator
func (f *fixed) WritebackL1(core int, now int64, a uint64) {}

// Tick implements Controller.
//
//snug:coordinator
func (f *fixed) Tick(now int64) { f.t = now }

// notAController also has a Tick, but implements nothing: no annotation
// needed.
type notAController struct{ t int64 }

// Tick here is an ordinary method (the type lacks Access/WritebackL1/Name).
func (n *notAController) Tick(now int64) { n.t = now }
