package cmp

import "sync/atomic"

// ringEnd is a fixture of the epoch engine's SPSC ring endpoint: one side
// owns tail (the producer cursor), the other owns head, and each cursor is
// published with a single atomic store. Publication functions are the ring
// contract's pressure point — each belongs to exactly one goroutine role,
// so every one must carry //snug:coordinator or //snug:coreside, never
// both and never neither-side-but-called-across.
type ringEnd struct {
	buf  []int64
	mask uint64
	tail atomic.Uint64
	head atomic.Uint64
}

// wakeRing is role-free plumbing (the real signal()): callable from either
// side, so it stays unmarked and the walk passes through it.
func wakeRing(parked *atomic.Uint32) {
	if parked.Load() == 1 {
		parked.CompareAndSwap(1, 0)
	}
}

// publishParks is the worker-side batched publication: one atomic store
// exposes every locally written slot.
//
//snug:coreside
func (r *ringEnd) publishParks(localTail uint64, parked *atomic.Uint32) {
	r.tail.Store(localTail)
	wakeRing(parked)
}

// drainParks is the coordinator-side consumer of the same ring.
//
//snug:coordinator
func (r *ringEnd) drainParks() int64 {
	h := r.head.Load()
	v := r.buf[h&r.mask]
	r.head.Store(h + 1)
	return v
}

// publishReplies is the coordinator-side batched publication on the reply
// ring; the worker only ever loads its tail.
//
//snug:coordinator
func (r *ringEnd) publishReplies(localTail uint64, parked *atomic.Uint32) {
	r.tail.Store(localTail)
	wakeRing(parked)
}

// badDrainFromCore consumes the park ring from the worker goroutine: the
// coordinator owns that cursor.
//
//snug:coreside
func badDrainFromCore(r *ringEnd) int64 {
	return r.drainParks() // want "core-goroutine path from badDrainFromCore calls coordinator-only drainParks"
}

// replyHelper is unmarked but transitively coordinator-only.
func replyHelper(r *ringEnd, t uint64, parked *atomic.Uint32) {
	r.publishReplies(t, parked) // want "core-goroutine path from badReplyFromCore calls coordinator-only publishReplies"
}

// badReplyFromCore reaches the coordinator-owned reply publication through
// an unmarked helper.
//
//snug:coreside
func badReplyFromCore(r *ringEnd, t uint64, parked *atomic.Uint32) {
	replyHelper(r, t, parked)
}

// confusedPublish claims both roles for one publication function: an
// atomic cursor store belongs to exactly one side.
//
//snug:coordinator
//snug:coreside
func (r *ringEnd) confusedPublish(t uint64) { // want "confusedPublish is marked both"
	r.tail.Store(t)
}

// goodWorkerLoop stays on worker-owned state: local cursor arithmetic,
// its own publication, and the role-free wake helper.
//
//snug:coreside
func goodWorkerLoop(r *ringEnd, parked *atomic.Uint32) {
	t := r.tail.Load()
	r.buf[t&r.mask] = 7
	r.publishParks(t+1, parked)
	wakeRing(parked)
}
