// Package sweep is a wallclock test fixture posing as the result-affecting
// package snug/internal/sweep.
package sweep

import (
	"time"
)

// Bad reads the wall clock where a result could see it.
func Bad() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// BadSince derives a duration from the wall clock.
func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

// BadSleep waits on the wall clock.
func BadSleep() {
	time.Sleep(time.Millisecond) // want "wall-clock read time.Sleep"
}

// BadTimer builds a wall-clock timer.
func BadTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "wall-clock read time.NewTimer"
}

// Progress is the sanctioned pattern: annotated ETA-only uses.
func Progress(report func(time.Duration)) {
	start := time.Now()       //snug:allow wallclock progress/ETA only, never feeds results
	report(time.Since(start)) //snug:allow wallclock progress/ETA only, never feeds results
}

// BackoffSleep is the sanctioned retry-backoff pattern: an annotated
// wall-clock timer whose sleep delays scheduling only — a retried job
// reruns with the same identity-derived seed, so the timer can never feed
// results. The unannotated equivalent is BadTimer above.
func BackoffSleep(done <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d) //snug:allow wallclock retry backoff sleep; delays scheduling only, never feeds results
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// Types may mention time freely; only clock reads are flagged.
type Snapshot struct {
	Elapsed time.Duration
	ETA     time.Duration
}

// Derived arithmetic on durations is fine.
func Derived(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}
