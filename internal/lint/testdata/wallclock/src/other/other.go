// Package other is outside the result-affecting set: wall-clock reads are
// not flagged here.
package other

import (
	"time"
)

// Free reads the clock without any diagnostic.
func Free() time.Time {
	return time.Now()
}
