// Package stats stubs snug/internal/stats for the seeddiscipline fixture:
// the analyzer resolves NewRNG/Mix64 by package path, so the stub carries
// the real import path inside the testdata tree.
package stats

// RNG is a stub deterministic generator.
type RNG struct{ s uint64 }

// NewRNG returns an RNG seeded from seed.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

// Mix64 is a stub splitmix64 finalizer.
func Mix64(x uint64) uint64 { return x * 0x9e3779b97f4a7c15 }

// HashString is a stub identity hash.
func HashString(s string) uint64 { return uint64(len(s)) }
