// Package core is a seeddiscipline test fixture posing as module package
// snug/internal/core.
package core

import (
	"snug/internal/stats"
)

// Bad hardwires a literal seed.
func Bad() *stats.RNG {
	return stats.NewRNG(42) // want "constant seed 42"
}

// BadConstExpr is still a compile-time constant.
func BadConstExpr() *stats.RNG {
	const base = 0xdead
	return stats.NewRNG(base ^ 7) // want "constant seed"
}

// Allowed carries an explicit justification.
func Allowed() *stats.RNG {
	return stats.NewRNG(1) //snug:allow seeddiscipline fixture generator for documentation examples
}

// GoodParam derives the seed from a parameter.
func GoodParam(seed uint64) *stats.RNG {
	return stats.NewRNG(seed ^ 0xcc)
}

// GoodDerived derives the seed from identity hashes.
func GoodDerived(name string) *stats.RNG {
	return stats.NewRNG(stats.Mix64(stats.HashString(name)))
}
