package core

import (
	"math/rand" // want "import of math/rand"
)

// UsesGlobalRand draws from the banned global generator.
func UsesGlobalRand() int {
	return rand.Int()
}
