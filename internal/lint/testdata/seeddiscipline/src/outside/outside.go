// Package outside is not part of module snug: seeddiscipline does not
// apply here.
package outside

import (
	"math/rand"
)

// Free may use math/rand without any diagnostic.
func Free() int {
	return rand.Intn(10)
}
