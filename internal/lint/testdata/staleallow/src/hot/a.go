// Package hot exercises the staleallow analyzer, run together with
// hotalloc so directive usage is accounted in the same pass: a directive
// the named check actually suppressed is live, one it did not is stale,
// one naming no known check is a typo, and one naming a check that did
// not run (the compiler contract, absent here) is skipped.
package hot

// T is a fixture with allocation-prone state.
type T struct {
	buf []int
}

// Live has a directive that suppresses a real hotalloc finding: not stale.
//
//snug:hotpath
func (t *T) Live(n int) {
	t.buf = append(t.buf, n) //snug:allow hotalloc amortized growth to steady-state capacity
}

// Stale has a directive on a line hotalloc finds nothing on.
//
//snug:hotpath
func (t *T) Stale(n int) {
	t.buf[0] = n //snug:allow hotalloc nothing to excuse here // want "stale //snug:allow hotalloc"
}

// Typo names a check that does not exist; it can never suppress anything.
//
//snug:hotpath
func (t *T) Typo(n int) {
	t.buf = append(t.buf, n) //snug:allow hotallocs typo'd name // want "append in hot path Typo" "unknown check \"hotallocs\""
}

// NotRun names a compiler-contract check; without the compiler pass its
// usage is unknowable, so it is neither live nor stale.
//
//snug:hotpath
func (t *T) NotRun(n int) {
	t.buf[0] = n //snug:allow gcbounds dynamic index, tracked in the baseline
}
