// Package sweep exercises staleallow over the wallclock analyzer — the
// pairing behind the real sweep engine's retry-backoff annotations. The
// fixture poses as the result-affecting package snug/internal/sweep so
// wallclock actually judges it: an allow on a real clock read is live, one
// on a line with no clock read is stale and must be flagged before it rots
// into false confidence.
package sweep

import "time"

// LiveBackoff is the sweep engine's backoff-sleep shape: the annotation
// suppresses a real wallclock finding, so it is live.
func LiveBackoff(done <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d) //snug:allow wallclock retry backoff sleep; delays scheduling only, never feeds results
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// StaleBackoff annotates a line where no clock is read — the timer was
// refactored away but the annotation survived.
func StaleBackoff(d time.Duration) time.Duration {
	return 2 * d //snug:allow wallclock leftover from a removed timer // want "stale //snug:allow wallclock"
}
