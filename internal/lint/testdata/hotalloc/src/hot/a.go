// Package hot exercises the hotalloc analyzer: only functions annotated
// //snug:hotpath are constrained.
package hot

// T is a fixture with allocation-prone state.
type T struct {
	buf []int
	m   map[int]int
}

// Bad violates every hotalloc rule at once.
//
//snug:hotpath
func (t *T) Bad(n int) int {
	t.buf = append(t.buf, n)     // want "append in hot path Bad"
	s := make([]int, n)          // want "make in hot path Bad"
	p := new(int)                // want "new in hot path Bad"
	t.m[n] = *p                  // want "map write in hot path Bad"
	t.m[n]++                     // want "map write in hot path Bad"
	delete(t.m, n)               // want "map delete in hot path Bad"
	f := func() int { return n } // want "capturing closure in hot path Bad"
	return len(s) + f()
}

// Allowed uses annotated exceptions.
//
//snug:hotpath
func (t *T) Allowed(n int) {
	t.buf = append(t.buf, n) //snug:allow hotalloc amortized growth to steady-state capacity
}

// AllowedAbove uses the standalone directive form: a //snug:allow on its
// own line covers the statement directly below it.
//
//snug:hotpath
func (t *T) AllowedAbove(n int) {
	//snug:allow hotalloc side table rebuilt once per reconfiguration
	t.m = make(map[int]int, n)
}

// CleanHot stays within the rules: index writes to slices, arithmetic,
// and a non-capturing closure are all fine.
//
//snug:hotpath
func (t *T) CleanHot(n int) int {
	if len(t.buf) > 0 {
		t.buf[0] = n
	}
	f := func(x int) int { return x * 2 }
	return f(n)
}

// NotHot is unannotated: it may allocate freely.
func (t *T) NotHot(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
