package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Load type-checks the packages matching patterns (e.g. "./...") in the
// module rooted at dir and returns analysis-ready Packages for the
// matched (non-dependency) packages.
//
// The loader is standard-library only: package metadata comes from
// `go list -e -json -deps`, and the whole dependency closure — standard
// library included — is type-checked from source with go/types. That is
// slower than reading compiler export data but needs no installed
// artifacts and no external packages-loading library, which keeps the
// module dependency-free. CGO is disabled so every package resolves to
// its pure-Go file set.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, order, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:  token.NewFileSet(),
		metas: metas,
		done:  make(map[string]*checkedPkg),
	}
	var out []*Package
	for _, path := range order {
		m := metas[path]
		if m.DepOnly || m.Standard {
			continue
		}
		c := ld.check(path)
		if c.err != nil {
			return nil, fmt.Errorf("%s: %v", path, c.err)
		}
		out = append(out, c.pkg)
	}
	return out, nil
}

type listPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList shells out to the go tool for build-tag-resolved package
// metadata. The returned order lists dependencies before dependents.
func goList(dir string, patterns []string) (map[string]*listPkg, []string, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v", err)
	}
	metas := make(map[string]*listPkg)
	var order []string
	dec := json.NewDecoder(outPipe)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		metas[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	return metas, order, nil
}

type checkedPkg struct {
	pkg *Package // populated for module packages only
	tp  *types.Package
	err error
}

type loader struct {
	fset  *token.FileSet
	metas map[string]*listPkg
	done  map[string]*checkedPkg
}

// check type-checks one package (memoized), recursively checking its
// imports first. Go's import graph is acyclic, so plain recursion is safe.
func (ld *loader) check(path string) *checkedPkg {
	if c, ok := ld.done[path]; ok {
		return c
	}
	c := &checkedPkg{}
	ld.done[path] = c
	if path == "unsafe" {
		c.tp = types.Unsafe
		return c
	}
	m, ok := ld.metas[path]
	if !ok {
		c.err = fmt.Errorf("package %s not in go list output", path)
		return c
	}
	if m.Error != nil {
		c.err = fmt.Errorf("go list: %s", m.Error.Err)
		return c
	}
	target := !m.Standard && !m.DepOnly
	mode := parser.SkipObjectResolution
	if target {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(m.Dir, name), nil, mode)
		if err != nil {
			c.err = err
			return c
		}
		files = append(files, f)
	}
	imp := importerFunc(func(ipath string) (*types.Package, error) {
		if mapped, ok := m.ImportMap[ipath]; ok {
			ipath = mapped
		}
		dep := ld.check(ipath)
		if dep.err != nil {
			return nil, fmt.Errorf("import %s: %v", ipath, dep.err)
		}
		return dep.tp, nil
	})
	var info *types.Info
	if target {
		info = newTypesInfo()
	}
	cfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if c.err == nil {
				c.err = err
			}
		},
	}
	tp, err := cfg.Check(path, ld.fset, files, info)
	if c.err == nil && err != nil {
		c.err = err
	}
	c.tp = tp
	if target {
		c.pkg = &Package{Fset: ld.fset, Files: files, Pkg: tp, Info: info}
	}
	return c
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// goModulePath returns the module path of the module containing dir (the
// prefix -trimpath compile diagnostics carry), or "" outside a module.
func goModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// moduleRoot resolves the root directory of the module containing dir, so
// finding paths (and therefore baseline entries) are stable no matter which
// subdirectory the tool runs from. Outside a module it falls back to dir.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return dir, nil
	}
	return filepath.Dir(gomod), nil
}

// Options configures a standalone snuglint run (cmd/snuglint flags map
// onto these one-to-one).
type Options struct {
	// Compiler also runs the gcdiag compiler-contract checks (gcescape,
	// gcbounds, gcinline) alongside the AST suite.
	Compiler bool
	// JSON emits every finding — active, allowed and baselined — as JSON
	// Lines on stdout instead of the text rendering of failures.
	JSON bool
	// Baseline, when non-empty, is the committed baseline to diff against:
	// only findings absent from it fail the run.
	Baseline string
	// UpdateBaseline rewrites Baseline from the current findings instead
	// of failing on them.
	UpdateBaseline bool
}

// Summary is the outcome of one standalone run.
type Summary struct {
	// Findings holds every finding in position order: failing, baselined
	// and allow-suppressed alike (the -json stream).
	Findings []Finding
	// Failing are the findings that fail this run: active ones, minus the
	// baseline matches in baseline mode.
	Failing []Finding
	// Tracked and Resolved report the baseline diff: findings matched by
	// the baseline, and baseline entries nothing matched anymore.
	Tracked, Resolved int
}

// Main is the standalone snuglint entry point: it loads the packages
// matching the argument patterns (default ./...) relative to the working
// directory, runs the full analyzer suite (plus the compiler contract and
// baseline diff when configured), and writes findings to stdout (-json)
// or stderr (text). The caller decides the exit code from the summary.
func Main(stdout, stderr io.Writer, patterns []string, opts Options) (*Summary, error) {
	dir, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}

	// Phase 1: the AST suite, holding staleallow back so the compiler
	// contract can consume //snug:allow directives first.
	var active []Diagnostic
	suite := make([]*Analyzer, 0, len(Analyzers))
	for _, a := range Analyzers {
		if a != StaleAllow {
			suite = append(suite, a)
		}
	}
	for _, pkg := range pkgs {
		diags, err := Run(pkg, suite)
		if err != nil {
			return nil, err
		}
		active = append(active, diags...)
	}
	// Phase 2: the compiler contract over the same patterns.
	if opts.Compiler {
		diags, err := CompilerContract(dir, pkgs, patterns)
		if err != nil {
			return nil, err
		}
		active = append(active, diags...)
	}
	// Phase 3: staleallow judges the fully-accounted directives.
	for _, pkg := range pkgs {
		diags, err := Run(pkg, []*Analyzer{StaleAllow})
		if err != nil {
			return nil, err
		}
		active = append(active, diags...)
	}

	var all []Diagnostic
	all = append(all, active...)
	for _, pkg := range pkgs {
		all = append(all, pkg.Suppressed...)
	}
	sortDiagnostics(all)

	sum := &Summary{Findings: make([]Finding, 0, len(all))}
	for _, d := range all {
		sum.Findings = append(sum.Findings, findingOf(root, d))
	}

	switch {
	case opts.UpdateBaseline:
		path := opts.Baseline
		if path == "" {
			path = "LINT_BASELINE.json"
		}
		if err := WriteBaseline(path, sum.Findings); err != nil {
			return nil, err
		}
		n := 0
		for _, f := range sum.Findings {
			if !f.Allowed {
				n++
			}
		}
		fmt.Fprintf(stderr, "snuglint: baseline %s updated with %d finding(s)\n", path, n)
	case opts.Baseline != "":
		b, err := LoadBaseline(opts.Baseline)
		if err != nil {
			return nil, err
		}
		sum.Failing, sum.Resolved = b.Diff(sum.Findings)
		for _, f := range sum.Findings {
			if f.Baselined {
				sum.Tracked++
			}
		}
	default:
		for _, f := range sum.Findings {
			if !f.Allowed {
				sum.Failing = append(sum.Failing, f)
			}
		}
	}

	if opts.JSON {
		if err := WriteJSON(stdout, sum.Findings); err != nil {
			return nil, err
		}
	} else {
		for _, f := range sum.Failing {
			fmt.Fprintln(stderr, f)
		}
	}
	return sum, nil
}
