package lint

import (
	"sort"
	"strings"
)

// StaleAllow audits the //snug:allow directives themselves. A directive is
// a standing exception to a static guarantee; one that no longer matches
// any diagnostic is not harmless noise — it silently pre-approves the next
// regression on its line. Two findings share this machinery:
//
//   - unknown check: the directive names neither an AST analyzer nor a
//     compiler-contract check, so it can never suppress anything (today
//     such a directive is silently inert — a typo like "hotallocs" leaves
//     the site unprotected while looking annotated);
//   - stale directive: the named check ran over this package and reported
//     nothing on the directive's lines, so the exception is dead.
//
// A directive naming a check that did not run this invocation (the
// compiler-contract checks in runs without -compiler, or a single-analyzer
// test run) is skipped: absence of evidence is not staleness.
//
// StaleAllow must run after every other analyzer (and after the gcdiag
// compiler pass, when enabled) so directive usage is fully accounted; it
// is last in the Analyzers suite and cmd/snuglint sequences it after the
// compiler contract.
var StaleAllow = &Analyzer{
	Name: "staleallow",
	Doc:  "flags //snug:allow directives that name unknown checks or suppress nothing",
}

// Run is bound in an init function: runStaleAllow reaches the Analyzers
// registry through KnownCheck, and a static assignment would form an
// initialization cycle with the suite slice that contains StaleAllow.
func init() { StaleAllow.Run = runStaleAllow }

func runStaleAllow(pass *Pass) error {
	pkg := pass.pkg
	for _, f := range pass.Files() {
		idx := pkg.allowIndex(pass.Fset, f)
		lines := make([]int, 0, len(idx))
		for line := range idx {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, e := range idx[line] {
				switch {
				case !KnownCheck(e.name):
					pass.Reportf(e.pos, "unknown check %q in %s directive (known: %s); a misspelled name suppresses nothing", e.name, allowDirective, knownCheckList())
				case pkg.ran[e.name] && !e.used:
					pass.Reportf(e.pos, "stale %s %s: the %s check ran and reported nothing here; delete the directive so it cannot mask a future finding", allowDirective, e.name, e.name)
				}
			}
		}
	}
	return nil
}

// knownCheckList renders the valid //snug:allow targets for messages.
func knownCheckList() string {
	names := make([]string, 0, len(Analyzers)+len(CompilerChecks))
	for _, a := range Analyzers {
		names = append(names, a.Name)
	}
	names = append(names, CompilerChecks...)
	return strings.Join(names, " ")
}
