package lint_test

import (
	"testing"

	"snug/internal/lint"
	"snug/internal/lint/linttest"
)

func TestHotDispatch(t *testing.T) {
	linttest.Run(t, "testdata/hotdispatch", lint.HotDispatch, "hot")
}
