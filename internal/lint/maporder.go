package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map inside a result-affecting package.
// Go randomizes map iteration order per process, so any value, ordering or
// floating-point accumulation that depends on it diverges between runs and
// breaks the bit-identical contract (golden digest fb8ac38b40b7bdf7).
//
// Two escape hatches keep legitimate uses quiet:
//
//   - collect-then-sort: a loop that only feeds a slice which is passed to
//     sort.* / slices.Sort* later in the same function is order-insensitive
//     by construction and is not flagged;
//   - an explicit `//snug:allow maporder <why>` on the loop line for cases
//     the heuristic cannot see (e.g. commutative integer accumulation).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map in result-affecting packages unless sorted or annotated",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !resultAffectingPath(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapRanges(pass, fn.Body)
			return true
		})
	}
	return nil
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sortedAfter(pass, body, rng) {
			return true
		}
		pass.Reportf(rng.For,
			"range over map %s in result-affecting package %s: iteration order is nondeterministic; sort the keys first or annotate the loop with %s maporder <why>",
			exprString(rng.X), pass.Pkg.Path(), allowDirective)
		return true
	})
}

// sortedAfter reports whether every slice the loop body appends to is
// sorted by a sort.*/slices.Sort* call positioned after the loop in the
// same function body — the canonical collect-then-sort idiom.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	// Collect the variables appended to inside the loop.
	appended := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "append") || i >= len(asg.Lhs) {
				continue
			}
			if id, ok := asg.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					appended[obj] = true
				}
			}
		}
		return true
	})
	if len(appended) == 0 {
		return false
	}
	// Every appended slice must reach a sort call after the loop ends.
	sorted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call.Fun) || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	for obj := range appended {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// isSortCall reports whether fun is a selector into package sort or slices.
func isSortCall(pass *Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// isBuiltin reports whether fun denotes the named predeclared function.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.Info.ObjectOf(id).(*types.Builtin)
	return isB
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "expression"
}
