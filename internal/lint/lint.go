// Package lint is the snuglint analyzer suite: a set of static checks
// that machine-verify the determinism and hot-path invariants the golden
// digest (internal/cmp/golden_test.go) only samples dynamically.
//
// The suite is built on a deliberately small reimplementation of the
// golang.org/x/tools/go/analysis surface (Analyzer / Pass / Diagnostic)
// because this module carries no external dependencies: everything here is
// standard library only. The API mirrors go/analysis closely enough that
// the analyzers could be ported to x/tools by swapping the framework types.
//
// Seven AST analyzers ship today:
//
//   - maporder: flags `range` over a map in a result-affecting package —
//     map iteration order is randomized per process, so any result that
//     depends on it breaks bit-identical reproduction.
//   - wallclock: forbids wall-clock reads (time.Now / time.Since /
//     time.Sleep / timers) in result-affecting packages; simulated time is
//     the only clock results may observe.
//   - seeddiscipline: every RNG must be stats.NewRNG with a seed derived
//     from data (sweep.JobSeed / stats.Mix64 / identity hashes) — constant
//     literal seeds and math/rand are errors in non-test code.
//   - hotalloc: functions annotated //snug:hotpath must not allocate
//     (append / make / new / map writes / capturing closures), locking in
//     the allocs-per-run wins measured by cmd/bench.
//   - hotdispatch: //snug:hotpath bodies must not pay dynamic-dispatch or
//     conversion taxes: interface method calls, defer, and string↔[]byte
//     conversions are flagged.
//   - coordinator: code marked //snug:coreside (runs on the epoch engine's
//     per-core goroutines) must never reach, through same-package static
//     calls, a //snug:coordinator function or a schemes.Controller method;
//     mutating Controller methods must carry the coordinator mark.
//   - staleallow: every //snug:allow directive must name a known check and
//     actually suppress something — a directive whose named analyzer ran
//     but reported nothing on its lines is dead weight that would silently
//     mask a future regression at that site.
//
// Alongside the AST suite, the gcdiag subsystem (gcdiag.go) verifies the
// compiler's half of the hot-path bargain: it parses `go build`
// escape-analysis, inlining and bounds-check diagnostics and checks them
// against //snug:hotpath (checks gcescape, gcbounds) and //snug:inline
// (check gcinline) contracts.
//
// # Annotation grammar
//
//	//snug:hotpath
//	    In a function's doc comment: the function body is subject to the
//	    hotalloc and hotdispatch analyzers, and — under the compiler
//	    contract (cmd/snuglint -compiler) — must compile with zero heap
//	    escapes (gcescape) and zero bounds checks (gcbounds).
//
//	//snug:inline
//	    In a function's doc comment: under the compiler contract the
//	    function must be provably inlinable ("can inline" in -m=2 output);
//	    a "cannot inline" decision is a gcinline finding.
//
//	//snug:coordinator
//	    In a function's doc comment: the function touches shared below-L1
//	    state and may only run on the goroutine driving the scheme
//	    controller (the serial driver or the epoch coordinator).
//
//	//snug:coreside
//	    In a function's doc comment: the function runs on a per-core
//	    goroutine of the epoch engine; the coordinator analyzer walks its
//	    static call graph and rejects paths into coordinator-only code.
//
//	//snug:allow <check> [justification...]
//	    Trailing on a line, or alone on the line above: suppresses the
//	    named check's diagnostics on that line. The justification is
//	    free text but conventionally states why the exception is sound
//	    (e.g. "progress/ETA only, never feeds results"). Valid names are
//	    the AST analyzers plus the compiler-contract checks (gcescape,
//	    gcbounds, gcinline); an unknown name, or a directive that
//	    suppresses nothing, is itself a staleallow diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Allowed marks a finding suppressed by a //snug:allow directive;
	// Justification carries the directive's free-text rationale. Allowed
	// findings never fail a run but are reported in -json output so
	// downstream tooling sees the full allow-state.
	Allowed       bool
	Justification string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is a type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File // all parsed files, including _test.go in test variants
	Pkg   *types.Package
	Info  *types.Info

	// Suppressed accumulates the findings //snug:allow directives absorbed,
	// across every analyzer and compiler-contract check run on the package.
	Suppressed []Diagnostic

	allows map[*ast.File]map[int][]*allowEntry // line -> directives on it
	ran    map[string]bool                     // checks that have run here
}

// allowEntry is one parsed //snug:allow directive occurrence.
type allowEntry struct {
	name          string // the named check
	justification string
	pos           token.Pos // position of the directive comment
	used          bool      // directive suppressed at least one finding
}

// markRan records that the named check has run over this package — the
// staleallow analyzer only judges directives whose check actually ran.
func (pkg *Package) markRan(names ...string) {
	if pkg.ran == nil {
		pkg.ran = make(map[string]bool)
	}
	for _, n := range names {
		pkg.ran[n] = true
	}
}

// Pass carries one analyzer's view of one package. It mirrors
// analysis.Pass; Report applies //snug:allow suppression before recording.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *types.Package
	Info     *types.Info

	pkg   *Package
	diags *[]Diagnostic
}

// Files returns the package's non-test files — the only files the suite
// analyzes. Test files may use wall clocks, literal seeds and maps freely.
func (p *Pass) Files() []*ast.File {
	var out []*ast.File
	for _, f := range p.pkg.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Reportf records a diagnostic at pos. If a //snug:allow directive for
// this analyzer covers the line (same line, or the whole line above), the
// finding lands in the package's Suppressed list instead, with the
// directive marked used.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.pkg.report(p.Fset, p.Analyzer.Name, pos, fmt.Sprintf(format, args...), p.diags)
}

// report is the shared diagnostic sink behind Pass.Reportf and the
// compiler-contract checker: it applies //snug:allow suppression, tracks
// directive usage, and routes the finding to diags or pkg.Suppressed.
func (pkg *Package) report(fset *token.FileSet, analyzer string, pos token.Pos, msg string, diags *[]Diagnostic) {
	pkg.reportAt(fset, analyzer, pos, fset.Position(pos), msg, diags)
}

// reportAt is report with the rendered position decoupled from the allow
// lookup position — the compiler-contract checker resolves allows at the
// line start but renders the compiler's own column.
func (pkg *Package) reportAt(fset *token.FileSet, analyzer string, pos token.Pos, rendered token.Position, msg string, diags *[]Diagnostic) {
	d := Diagnostic{Analyzer: analyzer, Pos: rendered, Message: msg}
	if e := pkg.allowedAt(fset, pos, analyzer); e != nil {
		e.used = true
		d.Allowed = true
		d.Justification = e.justification
		pkg.Suppressed = append(pkg.Suppressed, d)
		return
	}
	*diags = append(*diags, d)
}

// TypeOf returns the type of expr, or nil if unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if t, ok := p.Info.Types[expr]; ok {
		return t.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ResultAffecting is the set of packages whose computation feeds simulation
// results — the packages where a stray map iteration or wall-clock read
// silently breaks the bit-identical contract. DESIGN.md §"Statically-checked
// invariants" documents how to extend it.
var ResultAffecting = map[string]bool{
	"snug/internal/cache":       true,
	"snug/internal/cpu":         true,
	"snug/internal/bus":         true,
	"snug/internal/cmp":         true,
	"snug/internal/core":        true,
	"snug/internal/mem":         true,
	"snug/internal/schemes":     true,
	"snug/internal/sweep":       true,
	"snug/internal/experiments": true,
	"snug/internal/trace":       true,
	"snug/internal/metrics":     true,
	"snug/internal/workloads":   true,
}

// resultAffectingPath reports whether the import path is result-affecting.
// Vet invokes analyzers on test variants with decorated import paths
// ("p [p.test]"); the base path decides.
func resultAffectingPath(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return ResultAffecting[path]
}

// modulePath reports whether path belongs to this module's non-vendored
// code (the scope of seeddiscipline).
func modulePath(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path == "snug" || strings.HasPrefix(path, "snug/")
}

// Analyzers is the full suite in execution order. StaleAllow must run
// last: it judges the //snug:allow directives every earlier analyzer (and,
// in -compiler runs, the gcdiag checker) had a chance to consume.
var Analyzers = []*Analyzer{
	MapOrder,
	WallClock,
	SeedDiscipline,
	HotAlloc,
	HotDispatch,
	Coordinator,
	StaleAllow,
}

// CompilerChecks are the compiler-contract check names the gcdiag
// subsystem reports under. They are valid //snug:allow targets but are not
// AST analyzers; cmd/snuglint runs them only with -compiler.
var CompilerChecks = []string{CheckEscape, CheckBounds, CheckInline}

// KnownCheck reports whether name is a valid //snug:allow target: an AST
// analyzer or a compiler-contract check.
func KnownCheck(name string) bool {
	if ByName(name) != nil {
		return true
	}
	for _, c := range CompilerChecks {
		if c == name {
			return true
		}
	}
	return false
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to one package and returns the surviving
// diagnostics sorted by position. Suppressed findings accumulate on
// pkg.Suppressed.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pkg.markRan(a.Name)
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			pkg:      pkg,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// allowDirective is the suppression directive prefix; hotpathDirective
// marks a function for the hotalloc/hotdispatch analyzers and the
// gcescape/gcbounds compiler contract; inlineDirective marks a function
// for the gcinline compiler contract.
const (
	allowDirective   = "//snug:allow"
	hotpathDirective = "//snug:hotpath"
	inlineDirective  = "//snug:inline"
)

// allowedAt returns the //snug:allow directive for analyzer covering pos,
// or nil: a directive suppresses its own line and the line directly below
// it (so it can trail the offending statement or sit alone above it).
func (pkg *Package) allowedAt(fset *token.FileSet, pos token.Pos, analyzer string) *allowEntry {
	file := fileOf(pkg, pos)
	if file == nil {
		return nil
	}
	idx := pkg.allowIndex(fset, file)
	line := fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, e := range idx[l] {
			if e.name == analyzer {
				return e
			}
		}
	}
	return nil
}

// allowIndex returns the file's line-indexed //snug:allow directives,
// building and caching the index on first use.
func (pkg *Package) allowIndex(fset *token.FileSet, file *ast.File) map[int][]*allowEntry {
	if pkg.allows == nil {
		pkg.allows = make(map[*ast.File]map[int][]*allowEntry)
	}
	idx, ok := pkg.allows[file]
	if !ok {
		idx = buildAllowIndex(fset, file)
		pkg.allows[file] = idx
	}
	return idx
}

func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func buildAllowIndex(fset *token.FileSet, f *ast.File) map[int][]*allowEntry {
	idx := make(map[int][]*allowEntry)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowDirective)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			idx[line] = append(idx[line], &allowEntry{
				name:          fields[0],
				justification: strings.Join(fields[1:], " "),
				pos:           c.Pos(),
			})
		}
	}
	return idx
}

// isHotPath reports whether a function declaration carries the
// //snug:hotpath directive in its doc comment.
func isHotPath(fn *ast.FuncDecl) bool { return hasDirective(fn, hotpathDirective) }

// wantsInline reports whether a function declaration carries the
// //snug:inline directive in its doc comment.
func wantsInline(fn *ast.FuncDecl) bool { return hasDirective(fn, inlineDirective) }
