// Package lint is the snuglint analyzer suite: a set of static checks
// that machine-verify the determinism and hot-path invariants the golden
// digest (internal/cmp/golden_test.go) only samples dynamically.
//
// The suite is built on a deliberately small reimplementation of the
// golang.org/x/tools/go/analysis surface (Analyzer / Pass / Diagnostic)
// because this module carries no external dependencies: everything here is
// standard library only. The API mirrors go/analysis closely enough that
// the analyzers could be ported to x/tools by swapping the framework types.
//
// Five analyzers ship today:
//
//   - maporder: flags `range` over a map in a result-affecting package —
//     map iteration order is randomized per process, so any result that
//     depends on it breaks bit-identical reproduction.
//   - wallclock: forbids wall-clock reads (time.Now / time.Since /
//     time.Sleep / timers) in result-affecting packages; simulated time is
//     the only clock results may observe.
//   - seeddiscipline: every RNG must be stats.NewRNG with a seed derived
//     from data (sweep.JobSeed / stats.Mix64 / identity hashes) — constant
//     literal seeds and math/rand are errors in non-test code.
//   - hotalloc: functions annotated //snug:hotpath must not allocate
//     (append / make / new / map writes / capturing closures), locking in
//     the allocs-per-run wins measured by cmd/bench.
//   - coordinator: code marked //snug:coreside (runs on the epoch engine's
//     per-core goroutines) must never reach, through same-package static
//     calls, a //snug:coordinator function or a schemes.Controller method;
//     mutating Controller methods must carry the coordinator mark.
//
// # Annotation grammar
//
//	//snug:hotpath
//	    In a function's doc comment: the function body is subject to the
//	    hotalloc analyzer.
//
//	//snug:coordinator
//	    In a function's doc comment: the function touches shared below-L1
//	    state and may only run on the goroutine driving the scheme
//	    controller (the serial driver or the epoch coordinator).
//
//	//snug:coreside
//	    In a function's doc comment: the function runs on a per-core
//	    goroutine of the epoch engine; the coordinator analyzer walks its
//	    static call graph and rejects paths into coordinator-only code.
//
//	//snug:allow <analyzer> [justification...]
//	    Trailing on a line, or alone on the line above: suppresses the
//	    named analyzer's diagnostics on that line. The justification is
//	    free text but conventionally states why the exception is sound
//	    (e.g. "progress/ETA only, never feeds results").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is a type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File // all parsed files, including _test.go in test variants
	Pkg   *types.Package
	Info  *types.Info

	allows map[*ast.File]map[int][]string // line -> analyzers allowed there
}

// Pass carries one analyzer's view of one package. It mirrors
// analysis.Pass; Report applies //snug:allow suppression before recording.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *types.Package
	Info     *types.Info

	pkg   *Package
	diags *[]Diagnostic
}

// Files returns the package's non-test files — the only files the suite
// analyzes. Test files may use wall clocks, literal seeds and maps freely.
func (p *Pass) Files() []*ast.File {
	var out []*ast.File
	for _, f := range p.pkg.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Reportf records a diagnostic at pos unless a //snug:allow directive for
// this analyzer covers the line (same line, or the whole line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.allowedAt(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil if unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if t, ok := p.Info.Types[expr]; ok {
		return t.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ResultAffecting is the set of packages whose computation feeds simulation
// results — the packages where a stray map iteration or wall-clock read
// silently breaks the bit-identical contract. DESIGN.md §"Statically-checked
// invariants" documents how to extend it.
var ResultAffecting = map[string]bool{
	"snug/internal/cache":       true,
	"snug/internal/cpu":         true,
	"snug/internal/bus":         true,
	"snug/internal/cmp":         true,
	"snug/internal/core":        true,
	"snug/internal/mem":         true,
	"snug/internal/schemes":     true,
	"snug/internal/sweep":       true,
	"snug/internal/experiments": true,
	"snug/internal/trace":       true,
	"snug/internal/metrics":     true,
	"snug/internal/workloads":   true,
}

// resultAffectingPath reports whether the import path is result-affecting.
// Vet invokes analyzers on test variants with decorated import paths
// ("p [p.test]"); the base path decides.
func resultAffectingPath(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return ResultAffecting[path]
}

// modulePath reports whether path belongs to this module's non-vendored
// code (the scope of seeddiscipline).
func modulePath(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path == "snug" || strings.HasPrefix(path, "snug/")
}

// Analyzers is the full suite in reporting order.
var Analyzers = []*Analyzer{
	MapOrder,
	WallClock,
	SeedDiscipline,
	HotAlloc,
	Coordinator,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to one package and returns the surviving
// diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			pkg:      pkg,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowDirective is the suppression directive prefix; hotpathDirective
// marks a function for the hotalloc analyzer.
const (
	allowDirective   = "//snug:allow"
	hotpathDirective = "//snug:hotpath"
)

// allowedAt reports whether a //snug:allow directive for analyzer covers
// pos: a directive suppresses its own line and the line directly below it
// (so it can trail the offending statement or sit alone above it).
func (pkg *Package) allowedAt(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	file := fileOf(pkg, pos)
	if file == nil {
		return false
	}
	if pkg.allows == nil {
		pkg.allows = make(map[*ast.File]map[int][]string)
	}
	idx, ok := pkg.allows[file]
	if !ok {
		idx = buildAllowIndex(fset, file)
		pkg.allows[file] = idx
	}
	line := fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, name := range idx[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func buildAllowIndex(fset *token.FileSet, f *ast.File) map[int][]string {
	idx := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowDirective)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			idx[line] = append(idx[line], fields[0])
		}
	}
	return idx
}

// isHotPath reports whether a function declaration carries the
// //snug:hotpath directive in its doc comment.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}
