package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc checks functions annotated `//snug:hotpath`: their bodies must
// be allocation-free. PR 4/5 drove the simulator's per-run allocation
// count from ~48k to 202 by keeping the step/lookup/calendar/decode loops
// free of append, make, new, map writes and capturing closures; this
// analyzer locks that property in so a refactor cannot quietly reintroduce
// a per-instruction allocation.
//
// Flagged inside a hotpath body:
//
//   - append(...) and make(...)/new(...) calls
//   - map writes: m[k] = v, m[k]++, op-assign through a map index, and
//     delete(m, k)
//   - capturing closures: a func literal that references variables of the
//     enclosing function (those force a heap-allocated closure object in
//     the general case)
//
// Amortized or provably stack-allocated cases (a sort.Search comparator
// whose parameter does not escape, a buffer that reaches a steady-state
// capacity) carry `//snug:allow hotalloc <why>` on the line.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbids allocations in //snug:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				return true
			}
			checkHotBody(pass, fn)
			return true
		})
	}
	return nil
}

func checkHotBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass, n.Fun, "append"):
				pass.Reportf(n.Pos(), "append in hot path %s: grows a heap allocation per overflow; preallocate or annotate with %s hotalloc <why>", name, allowDirective)
			case isBuiltin(pass, n.Fun, "make"):
				pass.Reportf(n.Pos(), "make in hot path %s: allocates per call; hoist to construction or annotate with %s hotalloc <why>", name, allowDirective)
			case isBuiltin(pass, n.Fun, "new"):
				pass.Reportf(n.Pos(), "new in hot path %s: allocates per call; hoist to construction or annotate with %s hotalloc <why>", name, allowDirective)
			case isBuiltin(pass, n.Fun, "delete"):
				if len(n.Args) > 0 && isMapType(pass, n.Args[0]) {
					pass.Reportf(n.Pos(), "map delete in hot path %s: map mutation in the hot loop; restructure or annotate with %s hotalloc <why>", name, allowDirective)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportMapWrite(pass, name, lhs)
			}
		case *ast.IncDecStmt:
			reportMapWrite(pass, name, n.X)
		case *ast.FuncLit:
			if captures(pass, fn, n) {
				pass.Reportf(n.Pos(), "capturing closure in hot path %s: may heap-allocate the closure and its captures; hoist it or annotate with %s hotalloc <why>", name, allowDirective)
			}
			// The literal's own body was inspected by this walk already
			// (ast.Inspect descends into it), which is what we want:
			// code inside the closure still runs on the hot path.
		}
		return true
	})
}

func reportMapWrite(pass *Pass, name string, lhs ast.Expr) {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok || !isMapType(pass, idx.X) {
		return
	}
	pass.Reportf(lhs.Pos(), "map write in hot path %s: hashing and possible growth per write; use a dense index or annotate with %s hotalloc <why>", name, allowDirective)
}

func isMapType(pass *Pass, expr ast.Expr) bool {
	t := pass.TypeOf(expr)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// captures reports whether lit references a variable declared in fn but
// outside lit — the condition that forces a closure environment.
// Package-level variables and lit's own locals/parameters do not count.
func captures(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		pos := v.Pos()
		if pos >= fn.Pos() && pos < fn.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			found = true
			return false
		}
		return true
	})
	return found
}
