package schemes

import (
	"snug/internal/addr"
	"snug/internal/cache"
	"snug/internal/config"
)

// L2P is the private baseline: each core owns its slice outright, with no
// capacity sharing of any kind. Every figure in the paper is normalized to
// this organization.
type L2P struct {
	h *Hierarchy
}

// NewL2P builds the private-L2 baseline.
func NewL2P(cfg config.System) *L2P {
	return &L2P{h: NewHierarchy(cfg)}
}

// Name implements Controller.
func (p *L2P) Name() string { return "L2P" }

// Access implements Controller.
//
//snug:coordinator
func (p *L2P) Access(core int, now int64, a addr.Addr, write bool) int64 {
	h := p.h
	l2Lat := int64(h.Cfg.Mem.L2Lat)
	if h.Slices[core].Lookup(a, write) {
		h.Record(core, SrcLocalL2)
		return now + l2Lat
	}
	if ok, done := h.DirectReadProbe(core, now, a); ok {
		v := h.Slices[core].Insert(a, cache.Block{Dirty: true, Owner: int8(core)})
		h.RetireVictim(core, now, v, h.Geom.Index(a))
		h.Record(core, SrcWriteBuffer)
		return done
	}
	done := h.FetchDRAM(now+l2Lat, a)
	v := h.Slices[core].Insert(a, cache.Block{Dirty: write, Owner: int8(core)})
	h.RetireVictim(core, now, v, h.Geom.Index(a))
	h.Record(core, SrcDRAM)
	return done
}

// WritebackL1 implements Controller.
//
//snug:coordinator
func (p *L2P) WritebackL1(core int, now int64, a addr.Addr) {
	p.h.MarkDirtyOrBuffer(core, now, a)
}

// Tick implements Controller.
//
//snug:coordinator
func (p *L2P) Tick(now int64) { p.h.DrainWriteBuffers(now) }

// Report implements Controller.
func (p *L2P) Report() Report { return p.h.BaseReport(p.Name()) }

// EpochSafe implements the EpochSafe capability: all mutable state is
// confined to the Controller call surface, so the epoch engine may drive
// this scheme.
func (p *L2P) EpochSafe() bool { return true }
