package schemes

import (
	"reflect"
	"testing"

	"snug/internal/config"
)

// TestSpecParseCanonical pins the canonical string of every accepted spec
// form. These strings key checkpoint stores, so they must never change.
func TestSpecParseCanonical(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"L2P", "L2P"},
		{" L2S ", "L2S"},
		{"CC", "CC"},
		{"CC(75%)", "CC(75%)"},
		{"CC(75)", "CC(75%)"},
		{"CC( 75 )", "CC(75%)"},
		{"CC(0)", "CC(0%)"},
		{"CC(100%)", "CC(100%)"},
		{"DSR", "DSR"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if sp.String() != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, sp.String(), c.want)
		}
		// Canonical forms round-trip.
		again, err := Parse(sp.String())
		if err != nil || !reflect.DeepEqual(again, sp) {
			t.Errorf("round trip of %q: %+v, %v", sp.String(), again, err)
		}
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "victim-cache", "CC(", "CC()", "CC(,)", "CC(25,50)", "CC(no)",
		"CC(-1)", "CC(101)", "L2P(3)", "2CC", "CC)",
	} {
		if sp, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted as %+v", in, sp)
		}
	}
}

// TestSpecBuild checks that parsed specs build the matching controller and
// that the CC spill percentage flows from the spec argument.
func TestSpecBuild(t *testing.T) {
	cfg := config.TestScale()
	for spec, wantName := range map[string]string{
		"L2P":     "L2P",
		"L2S":     "L2S",
		"CC(25%)": "CC(25%)",
		"DSR":     "DSR",
	} {
		c, err := Build(spec, cfg)
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		if c.Name() != wantName {
			t.Errorf("Build(%q).Name() = %q, want %q", spec, c.Name(), wantName)
		}
	}
	// A bare CC spec inherits the configured spill probability.
	cfg.CC.SpillPercent = 50
	c, err := Build("CC", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CC(50%)" {
		t.Errorf("bare CC built %q, want the cfg fallback CC(50%%)", c.Name())
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f Family) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(f)
	}
	nop := func(_ Spec, cfg config.System) (Controller, error) { return NewL2P(cfg), nil }
	mustPanic("duplicate", Family{Name: "L2P", New: nop})
	mustPanic("empty name", Family{Name: "", New: nop})
	mustPanic("bad name", Family{Name: "a b", New: nop})
	mustPanic("nil factory", Family{Name: "Xyz"})
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	want := []string{"CC", "DSR", "L2P", "L2S"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v missing %s", names, w)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("Names() = %v not sorted", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}
