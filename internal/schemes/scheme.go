// Package schemes implements the last-level-cache management schemes the
// paper compares: the private baseline (L2P), the shared organization
// (L2S), eviction-driven Cooperative Caching at fixed spill probabilities
// (CC, Chang & Sohi [7]), and Dynamic Spill-Receive (DSR, Qureshi [8]).
// The SNUG controller lives in internal/core (it is the paper's
// contribution) and implements the same Controller interface.
//
// A Controller owns everything below the private L1s: the L2 slices or
// banks, the snoop bus, the write-back buffers and the DRAM. The multi-core
// driver (internal/cmp) calls Access for every L1 miss and Tick once per
// quantum.
package schemes

import (
	"snug/internal/addr"
	"snug/internal/bus"
	"snug/internal/cache"
	"snug/internal/config"
	"snug/internal/mem"
)

// Source labels where an access was served from, for accounting.
type Source uint8

const (
	// SrcLocalL2 is a hit in the requesting core's slice (or local bank).
	SrcLocalL2 Source = iota
	// SrcRemoteL2 is a hit in a peer slice (cooperative block) or remote bank.
	SrcRemoteL2
	// SrcWriteBuffer is a direct read from the write-back buffer.
	SrcWriteBuffer
	// SrcDRAM is an off-chip access.
	SrcDRAM

	numSources
)

// String returns the source's name.
func (s Source) String() string {
	switch s {
	case SrcLocalL2:
		return "local-l2"
	case SrcRemoteL2:
		return "remote-l2"
	case SrcWriteBuffer:
		return "write-buffer"
	case SrcDRAM:
		return "dram"
	default:
		return "unknown"
	}
}

// Controller is one LLC management scheme driving the entire below-L1
// hierarchy of the CMP.
//
// Ownership contract: a Controller owns all cross-core mutable state of
// the simulation (slices, bus, write buffers, DRAM, scheme metadata), and
// every mutation of that state must happen inside Access / WritebackL1 /
// Tick. The serial engine calls them from its single driving goroutine;
// the epoch engine calls them only from its coordinator goroutine, in the
// serial order — implementations are therefore never called concurrently
// and need no locking, but must not stash state anywhere a core goroutine
// could reach (see EpochSafe and the snuglint coordinator analyzer).
type Controller interface {
	// Name identifies the scheme (e.g. "L2P", "SNUG").
	Name() string
	// Access serves a data access from core at cycle now and returns the
	// cycle the data is available.
	Access(core int, now int64, a addr.Addr, write bool) int64
	// WritebackL1 accepts a dirty L1 victim (posted; no completion time).
	WritebackL1(core int, now int64, a addr.Addr)
	// Tick advances scheme-internal time (epoch transitions, buffer
	// drains). Called once per simulation quantum with the quantum's end.
	Tick(now int64)
	// Report returns accumulated statistics.
	Report() Report
}

// EpochSafe is the optional capability a Controller implements to declare
// that it honours the coordinator-confinement contract above — no shared
// mutable state outside the Access/WritebackL1/Tick call surface, no
// internal goroutines, no global variables — so the intra-run epoch engine
// (internal/cmp) may drive it with cores running on separate goroutines.
// A controller that does not implement it (or returns false) is driven by
// the serial engine regardless of the engine selection; results are
// identical either way. All built-in schemes declare epoch safety.
type EpochSafe interface {
	EpochSafe() bool
}

// CoreAccessStats counts accesses by serving source for one core.
type CoreAccessStats struct {
	BySource [numSources]int64
}

// Total returns the core's total L2-level accesses.
func (c CoreAccessStats) Total() int64 {
	var t int64
	for _, v := range c.BySource {
		t += v
	}
	return t
}

// Report is a scheme's accumulated activity.
type Report struct {
	Scheme  string
	PerCore []CoreAccessStats
	Slices  []cache.Stats

	Spills          int64 // blocks spilled into a peer cache
	SpillNoTaker    int64 // spill attempts dropped (no willing host)
	Retrievals      int64 // retrieval broadcasts
	RetrievalHits   int64 // retrievals served by a peer
	StrandedDropped int64 // SNUG: cooperative blocks dropped at a G/T re-latch

	Bus  bus.Stats
	DRAM mem.DRAMStats
	WB   []mem.WriteBufferStats
}

// OffChip returns total DRAM-served demand accesses.
func (r Report) OffChip() int64 {
	var t int64
	for _, c := range r.PerCore {
		t += c.BySource[SrcDRAM]
	}
	return t
}

// Hierarchy is the shared below-L1 plumbing: per-core L2 slices (for the
// private-cache schemes), the snoop bus, write buffers and DRAM. Scheme
// controllers embed it.
type Hierarchy struct {
	Cfg    config.System
	Geom   addr.Geometry
	Slices []*cache.Cache
	WB     []*mem.WriteBuffer
	Bus    *bus.Bus
	DRAM   *mem.DRAM

	PerCore []CoreAccessStats
}

// NewHierarchy builds the private-slice hierarchy for cfg.
func NewHierarchy(cfg config.System) *Hierarchy {
	g := addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())
	h := &Hierarchy{
		Cfg:     cfg,
		Geom:    g,
		Slices:  make([]*cache.Cache, cfg.Cores),
		WB:      make([]*mem.WriteBuffer, cfg.Cores),
		Bus:     bus.MustNew(cfg.Mem.BusWidthBytes, cfg.Mem.BusSpeedRatio, cfg.Mem.BusArbCycles, cfg.Mem.L2Slice.BlockBytes),
		DRAM:    mem.MustDRAM(int64(cfg.Mem.DRAMLat), 0, cfg.Mem.L2Slice.BlockBytes),
		PerCore: make([]CoreAccessStats, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.Slices[i] = cache.MustNew(g, cfg.Mem.L2Slice.Ways)
		h.WB[i] = mem.MustWriteBuffer(cfg.Mem.WriteBufEntries)
	}
	return h
}

// Record counts an access served from src for core.
func (h *Hierarchy) Record(core int, src Source) {
	h.PerCore[core].BySource[src]++
}

// FetchDRAM models a demand fetch: request beat on the address path, DRAM
// access, data beats back. Returns the data-available cycle.
func (h *Hierarchy) FetchDRAM(now int64, a addr.Addr) int64 {
	t := h.Bus.Acquire(now, bus.KindSnoop)
	t = h.DRAM.Read(t, a)
	return h.Bus.Acquire(t, bus.KindData)
}

// FetchDRAMAfterSnoop is FetchDRAM for the cooperative schemes, whose
// retrieval broadcast already carried the address: the memory controller
// snoops the same beat, so no second request beat is charged.
func (h *Hierarchy) FetchDRAMAfterSnoop(reqDone int64, a addr.Addr) int64 {
	t := h.DRAM.Read(reqDone, a)
	return h.Bus.Acquire(t, bus.KindData)
}

// issueWriteback is the write-buffer drain path: bus transfer then DRAM
// write.
func (h *Hierarchy) issueWriteback(start int64, block addr.Addr) int64 {
	t := h.Bus.Acquire(start, bus.KindWriteback)
	return h.DRAM.Write(t, block)
}

// PostWriteback queues a dirty block into core's write buffer at cycle now
// and returns the cycle the caller may proceed (delayed only when the
// buffer is full).
func (h *Hierarchy) PostWriteback(core int, now int64, block addr.Addr) int64 {
	return h.WB[core].Insert(now, block, h.issueWriteback)
}

// DrainWriteBuffers opportunistically retires pending write-backs up to
// cycle now. Called from Tick.
func (h *Hierarchy) DrainWriteBuffers(now int64) {
	for _, wb := range h.WB {
		wb.Drain(now, h.issueWriteback)
	}
}

// VictimAddr reconstructs a victim block's address from its residence set.
// Cooperative blocks stored with a flipped index (F set) recover their
// original index by flipping the bit back.
func (h *Hierarchy) VictimAddr(v cache.Block, setIdx uint32) addr.Addr {
	idx := setIdx
	if v.CC && v.F {
		idx = addr.FlipLastIndexBit(setIdx)
	}
	return h.Geom.Rebuild(v.Tag, idx)
}

// RetireVictim performs the scheme-independent part of victim handling:
// dirty blocks enter the owner's write buffer (dirty blocks are never
// cooperative — only clean blocks are spilled), clean blocks vanish.
// It returns the cycle the caller may proceed.
func (h *Hierarchy) RetireVictim(core int, now int64, v cache.Block, setIdx uint32) int64 {
	if !v.Valid || !v.Dirty {
		return now
	}
	return h.PostWriteback(core, now, h.VictimAddr(v, setIdx))
}

// DirectReadProbe checks core's write buffer for a's block and, on a hit,
// removes the pending entry (the block re-enters the cache, making the
// cached copy newest again). The caller is responsible for installing the
// block — still dirty — into the slice and handling the victim, so that
// scheme-specific bookkeeping (shadow exclusivity, spilling) stays
// consistent. Returns whether it hit and the data-available cycle.
func (h *Hierarchy) DirectReadProbe(core int, now int64, a addr.Addr) (bool, int64) {
	block := h.Geom.Block(a)
	if !h.WB[core].ReadHit(block) {
		return false, 0
	}
	h.WB[core].TakeBack(block)
	return true, now + int64(h.Cfg.Mem.L2Lat) + 1
}

// MarkDirtyOrBuffer handles an L1 dirty victim: sets the dirty bit if the
// block is resident in the slice, otherwise posts it straight to the write
// buffer.
func (h *Hierarchy) MarkDirtyOrBuffer(core int, now int64, a addr.Addr) {
	if h.Slices[core].Lookup(a, true) {
		return
	}
	// Not resident (non-inclusive corner): post the block to memory.
	h.PostWriteback(core, now, h.Geom.Block(a))
}

// BaseReport assembles the fields every scheme shares.
func (h *Hierarchy) BaseReport(scheme string) Report {
	r := Report{
		Scheme:  scheme,
		PerCore: append([]CoreAccessStats(nil), h.PerCore...),
		Bus:     h.Bus.Stats(),
		DRAM:    h.DRAM.Stats(),
	}
	for _, s := range h.Slices {
		r.Slices = append(r.Slices, s.Stats())
	}
	for _, wb := range h.WB {
		r.WB = append(r.WB, wb.Stats())
	}
	return r
}
