package schemes

import (
	"testing"

	"snug/internal/addr"
	"snug/internal/cache"
	"snug/internal/config"
)

func testCfg() config.System {
	cfg := config.TestScale()
	return cfg
}

func geomOf(cfg config.System) addr.Geometry {
	return addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())
}

func TestL2PHitMissLatencies(t *testing.T) {
	cfg := testCfg()
	p := NewL2P(cfg)
	g := geomOf(cfg)
	a := addr.ForCore(0, g.Rebuild(5, 3))

	done := p.Access(0, 100, a, false)
	if done < 100+int64(cfg.Mem.L2Lat+cfg.Mem.DRAMLat) {
		t.Fatalf("cold miss served in %d cycles; DRAM costs %d", done-100, cfg.Mem.DRAMLat)
	}
	done = p.Access(0, 1000, a, false)
	if done != 1000+int64(cfg.Mem.L2Lat) {
		t.Fatalf("hit served in %d cycles, want L2 latency %d", done-1000, cfg.Mem.L2Lat)
	}
}

func TestL2PIsolation(t *testing.T) {
	cfg := testCfg()
	p := NewL2P(cfg)
	g := geomOf(cfg)
	// Core 0 fills a block; core 1's access to its own copy of the same
	// virtual address must miss (disjoint address spaces, no sharing).
	p.Access(0, 100, addr.ForCore(0, g.Rebuild(5, 3)), false)
	done := p.Access(1, 200, addr.ForCore(1, g.Rebuild(5, 3)), false)
	if done < 200+int64(cfg.Mem.DRAMLat) {
		t.Fatal("private baseline leaked capacity between cores")
	}
}

func TestL2PDirectRead(t *testing.T) {
	cfg := testCfg()
	p := NewL2P(cfg)
	g := geomOf(cfg)
	ways := cfg.Mem.L2Slice.Ways
	// Fill a set with dirty blocks, overflow it, then immediately re-read
	// an evicted dirty block: it must be served from the write buffer.
	addrs := make([]addr.Addr, ways+1)
	for i := range addrs {
		addrs[i] = addr.ForCore(0, g.Rebuild(uint64(i+1), 7))
		p.Access(0, 100, addrs[i], true)
	}
	p.Access(0, 200, addrs[0], false) // LRU victim was addrs[0] (dirty)
	if got := p.Report().PerCore[0].BySource[SrcWriteBuffer]; got != 1 {
		t.Fatalf("write-buffer direct reads = %d, want 1", got)
	}
}

func TestL2SBankInterleaving(t *testing.T) {
	cfg := testCfg()
	s := NewL2S(cfg)
	// Local bank: block 0 of core 0's space maps to bank 0.
	aLocal := addr.ForCore(0, 0)
	s.Access(0, 100, aLocal, false)
	done := s.Access(0, 1000, aLocal, false)
	if done != 1000+int64(cfg.Mem.L2Lat) {
		t.Fatalf("local-bank hit latency %d, want %d", done-1000, cfg.Mem.L2Lat)
	}
	// Remote bank: block 1 maps to bank 1, accessed by core 0.
	aRemote := addr.ForCore(0, 64)
	s.Access(0, 2000, aRemote, false)
	done = s.Access(0, 3000, aRemote, false)
	if done < 3000+int64(cfg.Mem.RemoteLat) {
		t.Fatalf("remote-bank hit latency %d, want >= %d (NUCA)", done-3000, cfg.Mem.RemoteLat)
	}
	rep := s.Report()
	if rep.PerCore[0].BySource[SrcLocalL2] != 1 || rep.PerCore[0].BySource[SrcRemoteL2] != 1 {
		t.Fatalf("source accounting %+v", rep.PerCore[0])
	}
}

func TestL2SSharedCapacity(t *testing.T) {
	cfg := testCfg()
	s := NewL2S(cfg)
	// Unlike L2P, a single core can hold far more than one slice: fill
	// 2x slice capacity and verify a high hit rate on re-access.
	blocks := 2 * cfg.Mem.L2Slice.Sets() * cfg.Mem.L2Slice.Ways
	for i := 0; i < blocks; i++ {
		s.Access(0, 100, addr.ForCore(0, addr.Addr(i*64)), false)
	}
	hits := 0
	for i := 0; i < blocks; i++ {
		before := s.perCore[0].BySource[SrcDRAM]
		s.Access(0, 200, addr.ForCore(0, addr.Addr(i*64)), false)
		if s.perCore[0].BySource[SrcDRAM] == before {
			hits++
		}
	}
	if frac := float64(hits) / float64(blocks); frac < 0.9 {
		t.Fatalf("shared hit fraction %.2f on 2x slice footprint, want > 0.9", frac)
	}
}

func TestCCSpillAndRetrieve(t *testing.T) {
	cfg := testCfg()
	c := NewCC(cfg, 100)
	g := geomOf(cfg)
	ways := cfg.Mem.L2Slice.Ways
	addrs := make([]addr.Addr, ways+2)
	for i := range addrs {
		addrs[i] = addr.ForCore(0, g.Rebuild(uint64(i+1), 9))
		c.Access(0, 100, addrs[i], false)
	}
	if c.spills == 0 {
		t.Fatal("no spills at 100% probability")
	}
	before := c.retrievalHit
	done := c.Access(0, 5000, addrs[0], false)
	if c.retrievalHit != before+1 {
		t.Fatal("retrieval missed the spilled block")
	}
	if done < 5000+int64(cfg.Mem.L2Lat+cfg.Mem.RemoteLat) {
		t.Fatalf("remote hit latency %d, want >= %d", done-5000, cfg.Mem.L2Lat+cfg.Mem.RemoteLat)
	}
	// Forward-and-invalidate: the host copy is gone; a local re-access hits.
	if done := c.Access(0, 9000, addrs[0], false); done != 9000+int64(cfg.Mem.L2Lat) {
		t.Fatalf("post-retrieval local latency %d", done-9000)
	}
}

func TestCCZeroProbabilityNeverSpills(t *testing.T) {
	cfg := testCfg()
	c := NewCC(cfg, 0)
	g := geomOf(cfg)
	for i := 0; i < 4*cfg.Mem.L2Slice.Ways; i++ {
		c.Access(0, 100, addr.ForCore(0, g.Rebuild(uint64(i+1), 2)), false)
	}
	if c.spills != 0 {
		t.Fatalf("CC(0%%) spilled %d blocks", c.spills)
	}
}

func TestCCName(t *testing.T) {
	if got := NewCC(testCfg(), 75).Name(); got != "CC(75%)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestDSRSampleSetsAndPolicy(t *testing.T) {
	cfg := testCfg()
	d := NewDSR(cfg)
	// Every cache has exactly SampleSets spiller and receiver samples.
	for core := 0; core < cfg.Cores; core++ {
		var sp, rc int
		for _, cat := range d.cat[core] {
			switch cat {
			case catSpillSample:
				sp++
			case catRecvSample:
				rc++
			}
		}
		if sp != cfg.DSR.SampleSets || rc != cfg.DSR.SampleSets {
			t.Fatalf("core %d: %d spiller / %d receiver samples, want %d each", core, sp, rc, cfg.DSR.SampleSets)
		}
	}
	// Fresh PSEL: followers default to receiving (dead zone).
	if d.isSpiller(0) {
		t.Fatal("fresh DSR cache is a spiller; ties must favor receiving")
	}
	// Spiller-sample sets always spill, receiver samples never do.
	for s := uint32(0); s < uint32(cfg.Mem.L2Slice.Sets()); s++ {
		switch d.cat[0][s] {
		case catSpillSample:
			if !d.shouldSpill(0, s) {
				t.Fatal("spiller sample refused to spill")
			}
			if d.canReceive(0, s) {
				t.Fatal("spiller sample accepted a spill")
			}
		case catRecvSample:
			if d.shouldSpill(0, s) {
				t.Fatal("receiver sample spilled")
			}
			if !d.canReceive(0, s) {
				t.Fatal("receiver sample refused a spill")
			}
		}
	}
}

func TestDSRTraining(t *testing.T) {
	cfg := testCfg()
	d := NewDSR(cfg)
	// Find a spiller-sample set of core 0 and hammer it with off-chip
	// misses: PSEL must rise (spilling looks bad).
	var spill uint32
	for s, cat := range d.cat[0] {
		if cat == catSpillSample {
			spill = uint32(s)
			break
		}
	}
	before := d.PSEL()[0]
	for i := 0; i < 10; i++ {
		d.train(0, spill)
	}
	if d.PSEL()[0] != before+10 {
		t.Fatalf("PSEL %d -> %d, want +10", before, d.PSEL()[0])
	}
	// Follower misses never train.
	var follower uint32
	for s, cat := range d.cat[0] {
		if cat == catFollower {
			follower = uint32(s)
			break
		}
	}
	mid := d.PSEL()[0]
	d.train(0, follower)
	if d.PSEL()[0] != mid {
		t.Fatal("follower miss trained PSEL")
	}
}

func TestHierarchyVictimAddr(t *testing.T) {
	cfg := testCfg()
	h := NewHierarchy(cfg)
	g := h.Geom
	orig := g.Rebuild(99, 6)
	// A flipped cooperative block residing in set 7 recovers index 6.
	v := cache.Block{Tag: g.Tag(orig), Valid: true, CC: true, F: true}
	if got := h.VictimAddr(v, 7); got != orig {
		t.Fatalf("VictimAddr = %#x, want %#x", got, orig)
	}
	// A local block in set 6 rebuilds directly.
	v = cache.Block{Tag: g.Tag(orig), Valid: true}
	if got := h.VictimAddr(v, 6); got != orig {
		t.Fatalf("local VictimAddr = %#x, want %#x", got, orig)
	}
}
