package schemes

import (
	"fmt"

	"snug/internal/addr"
	"snug/internal/bus"
	"snug/internal/cache"
	"snug/internal/config"
	"snug/internal/stats"
)

// CC is eviction-driven Cooperative Caching (Chang & Sohi [7]): when a
// clean local victim is evicted it is spilled, with a fixed probability,
// into the same-index set of a peer slice, regardless of whether either
// side benefits — the capacity-blindness the paper criticizes. Spilled
// blocks get one chance (a cooperative block evicted from its host is
// dropped, never re-spilled). A local miss broadcasts a retrieval; a peer
// holding the block forwards it and invalidates its copy.
//
// CC(Best) in the evaluation is CC run at each spill probability in
// {0, 25, 50, 75, 100}% with the best result selected per workload (§4.1).
type CC struct {
	h        *Hierarchy
	spillPct int
	rng      *stats.RNG
	nextHost []int // per-core round-robin spill pointer

	spills       int64
	spillNoTaker int64
	retrievals   int64
	retrievalHit int64
}

// NewCC builds cooperative caching spilling clean victims with probability
// spillPct percent (the spec parameter of "CC(75%)").
func NewCC(cfg config.System, spillPct int) *CC {
	c := &CC{
		h:        NewHierarchy(cfg),
		spillPct: spillPct,
		rng:      stats.NewRNG(cfg.Seed ^ 0xcc),
		nextHost: make([]int, cfg.Cores),
	}
	for i := range c.nextHost {
		c.nextHost[i] = (i + 1) % cfg.Cores
	}
	return c
}

// Name implements Controller.
func (c *CC) Name() string { return fmt.Sprintf("CC(%d%%)", c.spillPct) }

// Access implements Controller.
//
//snug:coordinator
func (c *CC) Access(core int, now int64, a addr.Addr, write bool) int64 {
	h := c.h
	l2Lat := int64(h.Cfg.Mem.L2Lat)
	if h.Slices[core].Lookup(a, write) {
		h.Record(core, SrcLocalL2)
		return now + l2Lat
	}
	if ok, done := h.DirectReadProbe(core, now, a); ok {
		v := h.Slices[core].Insert(a, cache.Block{Dirty: true, Owner: int8(core)})
		c.handleVictim(core, now, v, h.Geom.Index(a))
		h.Record(core, SrcWriteBuffer)
		return done
	}

	// Retrieval broadcast: the snoop rides the bus in parallel with the
	// memory fetch; a peer hit supplies the block at remote-L2 latency.
	c.retrievals++
	reqDone := h.Bus.Acquire(now+l2Lat, bus.KindSnoop)
	idx := h.Geom.Index(a)
	tag := h.Geom.Tag(a)
	for off := 1; off < h.Cfg.Cores; off++ {
		peer := (core + off) % h.Cfg.Cores
		if found, way := h.Slices[peer].FindCC(idx, tag, false); found {
			blk := h.Slices[peer].InvalidateWay(idx, way)
			c.retrievalHit++
			dataAt := h.Bus.Acquire(now+l2Lat, bus.KindData)
			done := maxI64(now+l2Lat+int64(h.Cfg.Mem.RemoteLat), dataAt)
			v := h.Slices[core].Insert(a, cache.Block{Dirty: write || blk.Dirty, Owner: int8(core)})
			c.handleVictim(core, now, v, idx)
			h.Record(core, SrcRemoteL2)
			return done
		}
	}

	done := h.FetchDRAMAfterSnoop(reqDone, a)
	v := h.Slices[core].Insert(a, cache.Block{Dirty: write, Owner: int8(core)})
	c.handleVictim(core, now, v, idx)
	h.Record(core, SrcDRAM)
	return done
}

// handleVictim spills eligible victims and retires the rest.
func (c *CC) handleVictim(core int, now int64, v cache.Block, setIdx uint32) {
	if !v.Valid {
		return
	}
	if v.CC || v.Dirty {
		// One-chance rule: cooperative victims vanish; dirty victims go to
		// the write buffer.
		c.h.RetireVictim(core, now, v, setIdx)
		return
	}
	if c.spillPct == 0 || !c.rng.Bool(float64(c.spillPct)/100) {
		return
	}
	c.spill(core, now, v, setIdx)
}

// spill pushes a clean local victim into the same-index set of the next
// peer in round-robin order. Baseline CC hosts accept unconditionally.
func (c *CC) spill(core int, now int64, v cache.Block, setIdx uint32) {
	h := c.h
	host := c.nextHost[core]
	c.nextHost[core] = (host + 1) % h.Cfg.Cores
	if host == core {
		host = (host + 1) % h.Cfg.Cores
		c.nextHost[core] = (host + 1) % h.Cfg.Cores
	}
	h.Bus.Acquire(now, bus.KindSnoop)
	h.Bus.Acquire(now, bus.KindData)
	hv := h.Slices[host].InsertAt(setIdx, cache.Block{
		Tag: v.Tag, CC: true, F: false, Owner: v.Owner,
	})
	c.spills++
	// Host victims never cascade: cooperative ones vanish, dirty locals go
	// to the host's write buffer.
	if hv.Valid && hv.Dirty && !hv.CC {
		h.PostWriteback(host, now, h.VictimAddr(hv, setIdx))
	}
}

// WritebackL1 implements Controller.
//
//snug:coordinator
func (c *CC) WritebackL1(core int, now int64, a addr.Addr) {
	c.h.MarkDirtyOrBuffer(core, now, a)
}

// Tick implements Controller.
//
//snug:coordinator
func (c *CC) Tick(now int64) { c.h.DrainWriteBuffers(now) }

// Report implements Controller.
func (c *CC) Report() Report {
	r := c.h.BaseReport(c.Name())
	r.Spills = c.spills
	r.SpillNoTaker = c.spillNoTaker
	r.Retrievals = c.retrievals
	r.RetrievalHits = c.retrievalHit
	return r
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EpochSafe implements the EpochSafe capability: all mutable state is
// confined to the Controller call surface, so the epoch engine may drive
// this scheme.
func (c *CC) EpochSafe() bool { return true }
