package schemes

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"snug/internal/config"
)

// Spec is a parsed scheme specification: a registered family name plus its
// canonicalized argument list, e.g. {Family: "CC", Args: ["75%"]}. A Spec's
// String form is the scheme's label everywhere — CLI flags, sweep job keys,
// checkpoint-store keys, figure columns — so canonicalization rules must
// stay stable across releases (see DESIGN.md §"Scheme specs").
type Spec struct {
	Family string
	Args   []string
}

// String renders the spec in canonical form: "L2P", "CC(75%)". It is the
// inverse of Parse for every canonical spec.
func (s Spec) String() string {
	if len(s.Args) == 0 {
		return s.Family
	}
	return s.Family + "(" + strings.Join(s.Args, ",") + ")"
}

// New builds the controller the spec describes.
func (s Spec) New(cfg config.System) (Controller, error) {
	f, ok := lookup(s.Family)
	if !ok {
		return nil, unknownFamilyErr(s.Family)
	}
	return f.New(s, cfg)
}

// Family describes one registered scheme family: a name, an argument
// canonicalizer, and a controller factory.
type Family struct {
	// Name is the spec keyword, e.g. "CC". Case-sensitive.
	Name string
	// Canon validates a raw argument list and returns its canonical form
	// (e.g. ["75"] -> ["75%"]). nil means the family takes no arguments.
	Canon func(args []string) ([]string, error)
	// New builds a controller from a canonicalized spec.
	New func(spec Spec, cfg config.System) (Controller, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Family{}
)

// Register adds a scheme family to the spec registry. It panics on an
// empty or malformed name, a nil factory, or a duplicate registration —
// all programmer errors at package-init time.
func Register(f Family) {
	if !validFamilyName(f.Name) {
		panic(fmt.Sprintf("schemes: invalid family name %q", f.Name))
	}
	if f.New == nil {
		panic(fmt.Sprintf("schemes: family %s registered without a factory", f.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("schemes: family %s registered twice", f.Name))
	}
	registry[f.Name] = f
}

// Names returns the registered family names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func lookup(name string) (Family, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

func unknownFamilyErr(name string) error {
	return fmt.Errorf("schemes: unknown scheme %q (registered: %s)", name, strings.Join(Names(), ", "))
}

// validFamilyName accepts a letter followed by letters and digits.
func validFamilyName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'A' && r <= 'Z' || r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Parse parses a scheme spec string — "NAME" or "NAME(arg,arg,...)" — into
// its canonical Spec. The family must be registered; its Canon hook
// validates and normalizes the arguments, so Parse("CC(75)") and
// Parse("CC(75%)") yield the same Spec.
func Parse(text string) (Spec, error) {
	text = strings.TrimSpace(text)
	name := text
	var raw []string
	if open := strings.IndexByte(text, '('); open >= 0 {
		if !strings.HasSuffix(text, ")") {
			return Spec{}, fmt.Errorf("schemes: spec %q: missing closing parenthesis", text)
		}
		name = text[:open]
		inner := text[open+1 : len(text)-1]
		if strings.TrimSpace(inner) == "" {
			return Spec{}, fmt.Errorf("schemes: spec %q: empty argument list", text)
		}
		for _, a := range strings.Split(inner, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return Spec{}, fmt.Errorf("schemes: spec %q: empty argument", text)
			}
			raw = append(raw, a)
		}
	}
	if !validFamilyName(name) {
		return Spec{}, fmt.Errorf("schemes: spec %q: malformed scheme name %q", text, name)
	}
	f, ok := lookup(name)
	if !ok {
		return Spec{}, unknownFamilyErr(name)
	}
	if len(raw) > 0 && f.Canon == nil {
		return Spec{}, fmt.Errorf("schemes: %s takes no arguments, got %q", name, text)
	}
	args := raw
	if f.Canon != nil {
		var err error
		if args, err = f.Canon(raw); err != nil {
			return Spec{}, fmt.Errorf("schemes: spec %q: %w", text, err)
		}
	}
	return Spec{Family: name, Args: args}, nil
}

// MustParse is Parse but panics on error. Intended for spec literals.
func MustParse(text string) Spec {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Build parses a spec string and constructs its controller in one call.
func Build(text string, cfg config.System) (Controller, error) {
	s, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return s.New(cfg)
}

// canonCCArgs canonicalizes CC's spill-probability argument: "75" or "75%"
// becomes ["75%"]. No argument keeps the spec bare — the factory then falls
// back to cfg.CC.SpillPercent, preserving the pre-registry behaviour of
// building "CC" against a configured probability.
func canonCCArgs(args []string) ([]string, error) {
	switch len(args) {
	case 0:
		return nil, nil
	case 1:
		pct, err := strconv.Atoi(strings.TrimSuffix(args[0], "%"))
		if err != nil {
			return nil, fmt.Errorf("CC spill probability %q is not an integer percentage", args[0])
		}
		if pct < 0 || pct > 100 {
			return nil, fmt.Errorf("CC spill probability %d%% out of [0,100]", pct)
		}
		return []string{fmt.Sprintf("%d%%", pct)}, nil
	default:
		return nil, fmt.Errorf("CC takes one spill-probability argument, got %d", len(args))
	}
}

// noArgFactory adapts an argument-free constructor into a Family factory.
func noArgFactory(build func(config.System) Controller) func(Spec, config.System) (Controller, error) {
	return func(_ Spec, cfg config.System) (Controller, error) {
		return build(cfg), nil
	}
}

func init() {
	Register(Family{Name: "L2P", New: noArgFactory(func(cfg config.System) Controller { return NewL2P(cfg) })})
	Register(Family{Name: "L2S", New: noArgFactory(func(cfg config.System) Controller { return NewL2S(cfg) })})
	Register(Family{
		Name:  "CC",
		Canon: canonCCArgs,
		New: func(spec Spec, cfg config.System) (Controller, error) {
			pct := cfg.CC.SpillPercent
			if len(spec.Args) == 1 {
				var err error
				if pct, err = strconv.Atoi(strings.TrimSuffix(spec.Args[0], "%")); err != nil {
					return nil, fmt.Errorf("schemes: spec %s: %w", spec, err)
				}
			}
			return NewCC(cfg, pct), nil
		},
	})
	Register(Family{Name: "DSR", New: noArgFactory(func(cfg config.System) Controller { return NewDSR(cfg) })})
}
