package schemes

import (
	"snug/internal/addr"
	"snug/internal/bus"
	"snug/internal/cache"
	"snug/internal/config"
	"snug/internal/mem"
)

// L2S is the shared organization: the four slices form one logical cache,
// block-interleaved across four banks. Any core can use the whole capacity,
// but three quarters of accesses land in remote banks and pay the NUCA
// remote latency (§1). One write buffer serves each bank.
type L2S struct {
	cfg   config.System
	geom  addr.Geometry // true block geometry (for write-back addresses)
	banks []*cache.Cache
	wb    []*mem.WriteBuffer
	bus   *bus.Bus
	dram  *mem.DRAM

	bankBits uint
	perCore  []CoreAccessStats
}

// NewL2S builds the shared-L2 organization.
func NewL2S(cfg config.System) *L2S {
	nb := cfg.Cores
	// Per-bank geometry: same sets/ways as one private slice, addressed
	// with bank-local addresses (bank bits squeezed out, see bankLocal).
	bg := addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())
	s := &L2S{
		cfg:      cfg,
		geom:     bg,
		banks:    make([]*cache.Cache, nb),
		wb:       make([]*mem.WriteBuffer, nb),
		bus:      bus.MustNew(cfg.Mem.BusWidthBytes, cfg.Mem.BusSpeedRatio, cfg.Mem.BusArbCycles, cfg.Mem.L2Slice.BlockBytes),
		dram:     mem.MustDRAM(int64(cfg.Mem.DRAMLat), 0, cfg.Mem.L2Slice.BlockBytes),
		perCore:  make([]CoreAccessStats, cfg.Cores),
		bankBits: uint(log2(nb)),
	}
	for i := range s.banks {
		s.banks[i] = cache.MustNew(bg, cfg.Mem.L2Slice.Ways)
		s.wb[i] = mem.MustWriteBuffer(cfg.Mem.WriteBufEntries)
	}
	return s
}

// Name implements Controller.
func (s *L2S) Name() string { return "L2S" }

// bank returns the interleaved bank for a.
func (s *L2S) bank(a addr.Addr) int {
	return int(uint64(a)>>s.geom.OffsetBits()) & (len(s.banks) - 1)
}

// bankLocal squeezes the bank bits out of a so the per-bank geometry sees a
// dense block-address space.
func (s *L2S) bankLocal(a addr.Addr) addr.Addr {
	off := uint64(a) & uint64(s.cfg.Mem.L2Slice.BlockBytes-1)
	bn := uint64(a) >> s.geom.OffsetBits()
	return addr.Addr((bn>>s.bankBits)<<s.geom.OffsetBits() | off)
}

// bankGlobal inverts bankLocal for write-back addresses.
func (s *L2S) bankGlobal(local addr.Addr, bank int) addr.Addr {
	bn := uint64(local) >> s.geom.OffsetBits()
	return addr.Addr((bn<<s.bankBits | uint64(bank)) << s.geom.OffsetBits())
}

// issueWriteback drains one write-buffer entry: bus beat plus DRAM write.
func (s *L2S) issueWriteback(start int64, block addr.Addr) int64 {
	t := s.bus.Acquire(start, bus.KindWriteback)
	return s.dram.Write(t, block)
}

// Access implements Controller.
//
//snug:coordinator
func (s *L2S) Access(core int, now int64, a addr.Addr, write bool) int64 {
	b := s.bank(a)
	la := s.bankLocal(a)
	lat := int64(s.cfg.Mem.L2Lat)
	src := SrcLocalL2
	remote := b != core
	if remote {
		lat = int64(s.cfg.Mem.RemoteLat)
		src = SrcRemoteL2
		// Remote access rides the interconnect: address beat now, and on a
		// hit the block crosses the data path like any cache-to-cache
		// transfer (charged below).
		s.bus.Acquire(now, bus.KindSnoop)
	}
	if s.banks[b].Lookup(la, write) {
		s.perCore[core].BySource[src]++
		done := now + lat
		if remote {
			dataAt := s.bus.Acquire(now, bus.KindData)
			if dataAt > done {
				done = dataAt
			}
		}
		return done
	}
	// Direct read from the bank's write buffer.
	lb := s.geom.Block(la)
	if s.wb[b].ReadHit(lb) {
		s.wb[b].TakeBack(lb)
		v := s.banks[b].Insert(la, cache.Block{Dirty: true, Owner: int8(core)})
		s.retire(b, now, v, s.geom.Index(la))
		s.perCore[core].BySource[SrcWriteBuffer]++
		return now + lat + 1
	}
	// Off-chip fetch.
	t := s.bus.Acquire(now+lat, bus.KindSnoop)
	t = s.dram.Read(t, a)
	done := s.bus.Acquire(t, bus.KindData)
	v := s.banks[b].Insert(la, cache.Block{Dirty: write, Owner: int8(core)})
	s.retire(b, now, v, s.geom.Index(la))
	s.perCore[core].BySource[SrcDRAM]++
	return done
}

// retire posts a dirty bank victim to the bank's write buffer.
func (s *L2S) retire(bank int, now int64, v cache.Block, setIdx uint32) {
	if !v.Valid || !v.Dirty {
		return
	}
	local := s.geom.Rebuild(v.Tag, setIdx)
	s.wb[bank].Insert(now, s.bankGlobal(local, bank), s.issueWriteback)
}

// WritebackL1 implements Controller.
//
//snug:coordinator
func (s *L2S) WritebackL1(core int, now int64, a addr.Addr) {
	b := s.bank(a)
	la := s.bankLocal(a)
	if s.banks[b].Lookup(la, true) {
		return
	}
	s.wb[b].Insert(now, s.geom.Block(a), s.issueWriteback)
}

// Tick implements Controller.
//
//snug:coordinator
func (s *L2S) Tick(now int64) {
	for _, wb := range s.wb {
		wb.Drain(now, s.issueWriteback)
	}
}

// Report implements Controller.
func (s *L2S) Report() Report {
	r := Report{
		Scheme:  s.Name(),
		PerCore: append([]CoreAccessStats(nil), s.perCore...),
		Bus:     s.bus.Stats(),
		DRAM:    s.dram.Stats(),
	}
	for _, b := range s.banks {
		r.Slices = append(r.Slices, b.Stats())
	}
	for _, wb := range s.wb {
		r.WB = append(r.WB, wb.Stats())
	}
	return r
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// EpochSafe implements the EpochSafe capability: all mutable state is
// confined to the Controller call surface, so the epoch engine may drive
// this scheme.
func (l *L2S) EpochSafe() bool { return true }
