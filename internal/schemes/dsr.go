package schemes

import (
	"snug/internal/addr"
	"snug/internal/bus"
	"snug/internal/cache"
	"snug/internal/config"
)

// setCategory classifies a set for DSR's set dueling.
type setCategory uint8

const (
	catFollower setCategory = iota
	catSpillSample
	catRecvSample
)

// DSR is Dynamic Spill-Receive (Qureshi, HPCA'09 [8]), the paper's
// state-of-the-art baseline. Each cache learns at the *application* level
// whether it should spill (taker) or receive (giver), via set dueling: a
// few dedicated sets always behave as spillers, a few always as receivers,
// and a per-cache policy selector (PSEL) counts off-chip misses suffered in
// each group. The follower sets adopt the policy whose samples miss less.
//
// Spiller caches push clean victims into the same-index set of a receiver
// cache; receiver caches accept. The paper's critique — and what SNUG
// fixes — is that the taker/giver decision is uniform across all 1024 sets
// of a cache even when demand varies set by set.
type DSR struct {
	h        *Hierarchy
	cat      [][]setCategory // [core][set]
	psel     []int           // per-core selector
	pselMax  int
	pselInit int
	nextHost []int

	spills       int64
	spillNoTaker int64
	retrievals   int64
	retrievalHit int64
}

// NewDSR builds the DSR controller.
func NewDSR(cfg config.System) *DSR {
	h := NewHierarchy(cfg)
	sets := cfg.Mem.L2Slice.Sets()
	d := &DSR{
		h:        h,
		cat:      make([][]setCategory, cfg.Cores),
		psel:     make([]int, cfg.Cores),
		pselMax:  (1 << cfg.DSR.PSELBits) - 1,
		pselInit: 1 << (cfg.DSR.PSELBits - 1),
		nextHost: make([]int, cfg.Cores),
	}
	stride := sets / cfg.DSR.SampleSets
	for c := 0; c < cfg.Cores; c++ {
		d.psel[c] = d.pselInit
		d.cat[c] = make([]setCategory, sets)
		// Dedicated sample sets are spread across the index space with a
		// per-core offset so different caches sample different sets.
		for k := 0; k < cfg.DSR.SampleSets; k++ {
			spill := (k*stride + c*7) % sets
			recv := (k*stride + c*7 + stride/2) % sets
			d.cat[c][spill] = catSpillSample
			d.cat[c][recv] = catRecvSample
		}
		d.nextHost[c] = (c + 1) % cfg.Cores
	}
	return d
}

// Name implements Controller.
func (d *DSR) Name() string { return "DSR" }

// isSpiller reports the follower policy of core: spill when the
// spiller-sample sets suffered clearly fewer off-chip misses. The dead
// zone below the midpoint keeps capacity-neutral applications (whose duel
// is a random walk around the initial value) stably in the receiver role
// rather than flapping on noise.
func (d *DSR) isSpiller(core int) bool {
	deadZone := (d.pselMax + 1) / 16
	return d.psel[core] < d.pselInit-deadZone
}

// shouldSpill reports whether an eviction from (core, set) spills.
func (d *DSR) shouldSpill(core int, set uint32) bool {
	switch d.cat[core][set] {
	case catSpillSample:
		return true
	case catRecvSample:
		return false
	default:
		return d.isSpiller(core)
	}
}

// canReceive reports whether (host, set) accepts a foreign spill.
func (d *DSR) canReceive(host int, set uint32) bool {
	switch d.cat[host][set] {
	case catSpillSample:
		return false
	case catRecvSample:
		return true
	default:
		return !d.isSpiller(host)
	}
}

// train updates PSEL on an off-chip miss in (core, set).
func (d *DSR) train(core int, set uint32) {
	switch d.cat[core][set] {
	case catSpillSample:
		if d.psel[core] < d.pselMax {
			d.psel[core]++
		}
	case catRecvSample:
		if d.psel[core] > 0 {
			d.psel[core]--
		}
	}
}

// Access implements Controller.
//
//snug:coordinator
func (d *DSR) Access(core int, now int64, a addr.Addr, write bool) int64 {
	h := d.h
	l2Lat := int64(h.Cfg.Mem.L2Lat)
	if h.Slices[core].Lookup(a, write) {
		h.Record(core, SrcLocalL2)
		return now + l2Lat
	}
	if ok, done := h.DirectReadProbe(core, now, a); ok {
		v := h.Slices[core].Insert(a, cache.Block{Dirty: true, Owner: int8(core)})
		d.handleVictim(core, now, v, h.Geom.Index(a))
		h.Record(core, SrcWriteBuffer)
		return done
	}

	d.retrievals++
	reqDone := h.Bus.Acquire(now+l2Lat, bus.KindSnoop)
	idx := h.Geom.Index(a)
	tag := h.Geom.Tag(a)
	for off := 1; off < h.Cfg.Cores; off++ {
		peer := (core + off) % h.Cfg.Cores
		if found, way := h.Slices[peer].FindCC(idx, tag, false); found {
			blk := h.Slices[peer].InvalidateWay(idx, way)
			d.retrievalHit++
			dataAt := h.Bus.Acquire(now+l2Lat, bus.KindData)
			done := maxI64(now+l2Lat+int64(h.Cfg.Mem.RemoteLat), dataAt)
			v := h.Slices[core].Insert(a, cache.Block{Dirty: write || blk.Dirty, Owner: int8(core)})
			d.handleVictim(core, now, v, idx)
			h.Record(core, SrcRemoteL2)
			return done
		}
	}

	// Off-chip miss: train the duel.
	d.train(core, idx)
	done := h.FetchDRAMAfterSnoop(reqDone, a)
	v := h.Slices[core].Insert(a, cache.Block{Dirty: write, Owner: int8(core)})
	d.handleVictim(core, now, v, idx)
	h.Record(core, SrcDRAM)
	return done
}

// handleVictim applies the spill-receive policy to an evicted block.
func (d *DSR) handleVictim(core int, now int64, v cache.Block, setIdx uint32) {
	if !v.Valid {
		return
	}
	if v.CC || v.Dirty {
		d.h.RetireVictim(core, now, v, setIdx)
		return
	}
	if !d.shouldSpill(core, setIdx) {
		return
	}
	h := d.h
	start := d.nextHost[core]
	for off := 0; off < h.Cfg.Cores-1; off++ {
		host := (start + off) % h.Cfg.Cores
		if host == core {
			host = (host + 1) % h.Cfg.Cores
		}
		if !d.canReceive(host, setIdx) {
			continue
		}
		d.nextHost[core] = (host + 1) % h.Cfg.Cores
		h.Bus.Acquire(now, bus.KindSnoop)
		h.Bus.Acquire(now, bus.KindData)
		hv := h.Slices[host].InsertAt(setIdx, cache.Block{
			Tag: v.Tag, CC: true, F: false, Owner: v.Owner,
		})
		d.spills++
		if hv.Valid && hv.Dirty && !hv.CC {
			h.PostWriteback(host, now, h.VictimAddr(hv, setIdx))
		}
		return
	}
	d.spillNoTaker++
}

// WritebackL1 implements Controller.
//
//snug:coordinator
func (d *DSR) WritebackL1(core int, now int64, a addr.Addr) {
	d.h.MarkDirtyOrBuffer(core, now, a)
}

// Tick implements Controller.
//
//snug:coordinator
func (d *DSR) Tick(now int64) { d.h.DrainWriteBuffers(now) }

// PSEL exposes the per-core selector values for tests and reporting.
func (d *DSR) PSEL() []int { return append([]int(nil), d.psel...) }

// Report implements Controller.
func (d *DSR) Report() Report {
	r := d.h.BaseReport(d.Name())
	r.Spills = d.spills
	r.SpillNoTaker = d.spillNoTaker
	r.Retrievals = d.retrievals
	r.RetrievalHits = d.retrievalHit
	return r
}

// EpochSafe implements the EpochSafe capability: all mutable state is
// confined to the Controller call surface, so the epoch engine may drive
// this scheme.
func (d *DSR) EpochSafe() bool { return true }
