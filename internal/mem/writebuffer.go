package mem

import (
	"fmt"

	"snug/internal/addr"
)

// WriteBufferStats aggregates write-buffer activity.
type WriteBufferStats struct {
	Inserts     int64
	Merges      int64
	Drains      int64
	DirectReads int64 // read hits served straight from the buffer
	FullStalls  int64 // inserts that found the buffer full
	StallCycles int64 // cycles callers were delayed by full-buffer retirement
}

// WriteBuffer is the per-L2-slice write-back buffer of Table 4: a FIFO of
// block addresses with merging (a second write-back of a pending block folds
// into the existing entry) and direct-read support (an L2 miss whose block
// is still in the buffer is served from it, per Skadron & Clark [13]).
//
// Entries carry the cycle their DRAM write-back will complete; Drain
// retires entries opportunistically. If an insert finds the buffer full,
// the caller is stalled until the oldest entry retires.
type WriteBuffer struct {
	capacity int
	entries  []wbEntry // FIFO: entries[0] is oldest
	stats    WriteBufferStats
}

type wbEntry struct {
	block   addr.Addr
	readyAt int64 // when the DRAM write-back completes (0 = not yet issued)
}

// NewWriteBuffer builds a buffer with the given entry capacity.
func NewWriteBuffer(capacity int) (*WriteBuffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("mem: write buffer capacity must be positive, got %d", capacity)
	}
	return &WriteBuffer{capacity: capacity, entries: make([]wbEntry, 0, capacity)}, nil
}

// MustWriteBuffer is NewWriteBuffer but panics on error.
func MustWriteBuffer(capacity int) *WriteBuffer {
	w, err := NewWriteBuffer(capacity)
	if err != nil {
		panic(err)
	}
	return w
}

// Len returns the number of pending entries.
func (w *WriteBuffer) Len() int { return len(w.entries) }

// Capacity returns the entry capacity.
func (w *WriteBuffer) Capacity() int { return w.capacity }

// Stats returns a snapshot of the counters.
func (w *WriteBuffer) Stats() WriteBufferStats { return w.stats }

// Contains reports whether block is pending in the buffer (direct-read
// probe). It does not count statistics; use ReadHit for demand accesses.
func (w *WriteBuffer) Contains(block addr.Addr) bool {
	for _, e := range w.entries {
		if e.block == block {
			return true
		}
	}
	return false
}

// ReadHit serves a demand read from the buffer if block is pending,
// recording a direct read. It returns whether the block was found.
func (w *WriteBuffer) ReadHit(block addr.Addr) bool {
	if w.Contains(block) {
		w.stats.DirectReads++
		return true
	}
	return false
}

// TakeBack removes a pending entry for block (a direct read re-installing
// the block into the cache cancels its write-back, since the cache copy is
// again the newest). It reports whether an entry was removed.
func (w *WriteBuffer) TakeBack(block addr.Addr) bool {
	for i := range w.entries {
		if w.entries[i].block == block {
			copy(w.entries[i:], w.entries[i+1:])
			w.entries = w.entries[:len(w.entries)-1]
			return true
		}
	}
	return false
}

// Insert enqueues a dirty block write-back requested at cycle now. issue
// schedules the DRAM write and returns its completion cycle; it is invoked
// immediately for the entry at the head of an empty pipeline and lazily by
// Drain otherwise. Insert returns the cycle the *caller* may proceed: now,
// unless the buffer was full, in which case the caller stalls until the
// oldest entry retires.
func (w *WriteBuffer) Insert(now int64, block addr.Addr, issue func(start int64, block addr.Addr) (doneAt int64)) (proceedAt int64) {
	// Merge with a pending entry for the same block.
	for i := range w.entries {
		if w.entries[i].block == block {
			w.stats.Merges++
			return now
		}
	}
	proceedAt = now
	if len(w.entries) == w.capacity {
		// Stall: force-retire the oldest entry.
		w.stats.FullStalls++
		head := &w.entries[0]
		if head.readyAt == 0 {
			head.readyAt = issue(now, head.block)
		}
		if head.readyAt > proceedAt {
			w.stats.StallCycles += head.readyAt - proceedAt
			proceedAt = head.readyAt
		}
		w.retireHead()
	}
	w.entries = append(w.entries, wbEntry{block: block})
	w.stats.Inserts++
	return proceedAt
}

// Drain opportunistically issues and retires entries whose write-backs can
// complete by cycle now. issue performs the DRAM write (and bus transfer)
// and returns its completion cycle; issue may decline by returning a cycle
// beyond now, in which case the entry stays queued with its schedule.
func (w *WriteBuffer) Drain(now int64, issue func(start int64, block addr.Addr) (doneAt int64)) {
	for len(w.entries) > 0 {
		head := &w.entries[0]
		if head.readyAt == 0 {
			head.readyAt = issue(now, head.block)
		}
		if head.readyAt > now {
			return
		}
		w.retireHead()
	}
}

func (w *WriteBuffer) retireHead() {
	copy(w.entries, w.entries[1:])
	w.entries = w.entries[:len(w.entries)-1]
	w.stats.Drains++
}
