package mem

import (
	"testing"

	"snug/internal/addr"
)

func TestDRAMFixedLatency(t *testing.T) {
	d := MustDRAM(300, 0, 64)
	if done := d.Read(1000, 0x40); done != 1300 {
		t.Fatalf("read done at %d, want 1300", done)
	}
	if done := d.Write(500, 0x80); done != 800 {
		t.Fatalf("write done at %d, want 800", done)
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDRAMBankConflicts(t *testing.T) {
	d := MustDRAM(100, 4, 64)
	// Same bank back-to-back: serialized.
	d1 := d.Read(0, 0x000)
	d2 := d.Read(0, 0x000+4*64) // same bank (stride = banks*block)
	if d2 != d1+100 {
		t.Fatalf("same-bank read done at %d, want %d", d2, d1+100)
	}
	// Different bank: parallel.
	d3 := d.Read(0, 0x40)
	if d3 != 100 {
		t.Fatalf("different-bank read done at %d, want 100", d3)
	}
	if d.Stats().BankBusy == 0 {
		t.Fatal("bank conflict cycles not recorded")
	}
}

func TestDRAMRejectsBadParams(t *testing.T) {
	if _, err := NewDRAM(0, 0, 64); err == nil {
		t.Error("zero latency accepted")
	}
	if _, err := NewDRAM(100, 3, 64); err == nil {
		t.Error("non-power-of-two banks accepted")
	}
}

func issueAt(lat int64) func(int64, addr.Addr) int64 {
	return func(start int64, _ addr.Addr) int64 { return start + lat }
}

func TestWriteBufferFIFOAndDrain(t *testing.T) {
	wb := MustWriteBuffer(4)
	for i := 0; i < 3; i++ {
		if at := wb.Insert(10, addr.Addr(i*64), issueAt(50)); at != 10 {
			t.Fatalf("insert %d stalled to %d with free entries", i, at)
		}
	}
	if wb.Len() != 3 {
		t.Fatalf("Len = %d", wb.Len())
	}
	// Draining is serial: each call schedules the head's write-back and a
	// later call (past its completion) retires it.
	for now := int64(100); wb.Len() > 0 && now < 1000; now += 60 {
		wb.Drain(now, issueAt(50))
	}
	if wb.Len() != 0 {
		t.Fatalf("Len after repeated drains = %d", wb.Len())
	}
	if wb.Stats().Drains != 3 {
		t.Fatalf("drains = %d", wb.Stats().Drains)
	}
}

func TestWriteBufferMerging(t *testing.T) {
	wb := MustWriteBuffer(4)
	wb.Insert(0, 0x100, issueAt(50))
	wb.Insert(0, 0x100, issueAt(50)) // merges
	if wb.Len() != 1 || wb.Stats().Merges != 1 {
		t.Fatalf("len=%d merges=%d", wb.Len(), wb.Stats().Merges)
	}
}

func TestWriteBufferFullStalls(t *testing.T) {
	wb := MustWriteBuffer(2)
	wb.Insert(0, 0x000, issueAt(500))
	wb.Insert(0, 0x040, issueAt(500))
	at := wb.Insert(0, 0x080, issueAt(500))
	if at != 500 {
		t.Fatalf("full-buffer insert proceeded at %d, want 500 (head retirement)", at)
	}
	st := wb.Stats()
	if st.FullStalls != 1 || st.StallCycles != 500 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteBufferDirectReadAndTakeBack(t *testing.T) {
	wb := MustWriteBuffer(4)
	wb.Insert(0, 0x200, issueAt(50))
	if !wb.ReadHit(0x200) {
		t.Fatal("direct read missed a pending block")
	}
	if wb.Stats().DirectReads != 1 {
		t.Fatal("direct read not counted")
	}
	if !wb.TakeBack(0x200) {
		t.Fatal("TakeBack failed")
	}
	if wb.TakeBack(0x200) {
		t.Fatal("double TakeBack succeeded")
	}
	if wb.ReadHit(0x200) {
		t.Fatal("block still readable after TakeBack")
	}
}

func TestWriteBufferDrainRespectsSchedule(t *testing.T) {
	wb := MustWriteBuffer(4)
	wb.Insert(0, 0x300, issueAt(1000))
	wb.Drain(100, issueAt(1000)) // write-back completes at 1100 > 100
	if wb.Len() != 1 {
		t.Fatal("entry retired before its write-back completed")
	}
	wb.Drain(1100, issueAt(1000))
	if wb.Len() != 0 {
		t.Fatal("entry not retired at its completion time")
	}
}

func TestWriteBufferRejectsBadCapacity(t *testing.T) {
	if _, err := NewWriteBuffer(0); err == nil {
		t.Fatal("zero-capacity buffer accepted")
	}
}
