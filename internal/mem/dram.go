// Package mem models the off-chip side of the hierarchy: a DRAM with the
// paper's fixed 300-cycle access latency (plus an optional bank-conflict
// extension) and the per-core L2 write-back buffer of Table 4 (FIFO,
// mergeable, 16 entries × 64 B, supporting direct reads).
package mem

import (
	"fmt"

	"snug/internal/addr"
)

// DRAMStats aggregates memory-controller activity.
type DRAMStats struct {
	Reads    int64
	Writes   int64
	BankBusy int64 // cycles added by bank conflicts (0 with Banks <= 1)
}

// DRAM is the off-chip memory model. With Banks == 0 (or 1) it is the
// paper's fixed-latency model; with more banks, consecutive accesses to the
// same bank serialize on the bank's busy window, a conservative extension
// used by the contention ablation.
type DRAM struct {
	latency  int64
	banks    int
	bankMask uint64
	offBits  uint
	busyTo   []int64
	stats    DRAMStats
}

// NewDRAM builds a DRAM with the given access latency in core cycles.
// banks <= 1 disables bank modeling. blockBytes positions the bank
// interleaving above the block offset.
func NewDRAM(latency int64, banks, blockBytes int) (*DRAM, error) {
	if latency <= 0 {
		return nil, fmt.Errorf("mem: DRAM latency must be positive, got %d", latency)
	}
	if banks < 0 || (banks > 1 && banks&(banks-1) != 0) {
		return nil, fmt.Errorf("mem: bank count %d must be 0/1 or a power of two", banks)
	}
	d := &DRAM{latency: latency, banks: banks}
	if banks > 1 {
		d.bankMask = uint64(banks - 1)
		bb := blockBytes
		for bb > 1 {
			bb >>= 1
			d.offBits++
		}
		d.busyTo = make([]int64, banks)
	}
	return d, nil
}

// MustDRAM is NewDRAM but panics on error.
func MustDRAM(latency int64, banks, blockBytes int) *DRAM {
	d, err := NewDRAM(latency, banks, blockBytes)
	if err != nil {
		panic(err)
	}
	return d
}

// Latency returns the configured access latency.
func (d *DRAM) Latency() int64 { return d.latency }

// Read schedules a read of a beginning at now and returns its completion
// cycle.
func (d *DRAM) Read(now int64, a addr.Addr) int64 {
	d.stats.Reads++
	return d.access(now, a)
}

// Write schedules a write of a beginning at now and returns its completion
// cycle. Writes are posted (callers typically do not wait on them).
func (d *DRAM) Write(now int64, a addr.Addr) int64 {
	d.stats.Writes++
	return d.access(now, a)
}

func (d *DRAM) access(now int64, a addr.Addr) int64 {
	if d.banks <= 1 {
		return now + d.latency
	}
	b := (uint64(a) >> d.offBits) & d.bankMask
	start := now
	if d.busyTo[b] > start {
		d.stats.BankBusy += d.busyTo[b] - start
		start = d.busyTo[b]
	}
	done := start + d.latency
	d.busyTo[b] = done
	return done
}

// Stats returns a snapshot of the counters.
func (d *DRAM) Stats() DRAMStats { return d.stats }

// Reset clears bank occupancy and statistics.
func (d *DRAM) Reset() {
	d.stats = DRAMStats{}
	for i := range d.busyTo {
		d.busyTo[i] = 0
	}
}
