package experiments_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"snug/internal/config"
	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/sweep"
)

// scalingOpts is the small fixture study: two widths, the C1 stress class,
// SNUG only (plus the always-on L2P baseline).
func scalingOpts() experiments.ScalingOptions {
	return experiments.ScalingOptions{
		BaseCfg:    config.TestScale(),
		CoreCounts: []int{4, 8},
		RunCycles:  120_000,
		Classes:    []string{"C1"},
		Schemes:    []string{"SNUG"},
	}
}

// TestScalingStudyShape checks the study's structure: one point per core
// count, width-matched combos and runs, and a series row per width.
func TestScalingStudyShape(t *testing.T) {
	res, err := experiments.ScalingStudy(context.Background(), scalingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	for i, want := range []int{4, 8} {
		p := res.Points[i]
		if p.Cores != want || p.Cfg.Cores != want {
			t.Errorf("point %d: cores %d / cfg %d, want %d", i, p.Cores, p.Cfg.Cores, want)
		}
		if len(p.Combos) != 3 { // C1 has three stress combos
			t.Errorf("point %d: %d combos, want 3", i, len(p.Combos))
		}
		for _, cr := range p.Combos {
			if cr.Combo.Width() != want {
				t.Errorf("point %d: combo %s is %d wide", i, cr.Combo.Name, cr.Combo.Width())
			}
			if cr.Baseline.Cycles == 0 {
				t.Errorf("point %d: combo %s has no baseline", i, cr.Combo.Name)
			}
			if _, ok := cr.Comparisons["SNUG"]; !ok {
				t.Errorf("point %d: combo %s missing SNUG comparison", i, cr.Combo.Name)
			}
		}
	}

	s, err := res.Series(metrics.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Cores, []int{4, 8}) || !reflect.DeepEqual(s.Schemes, []string{"SNUG"}) {
		t.Fatalf("series cores %v schemes %v", s.Cores, s.Schemes)
	}
	for i := range s.Cores {
		if v := s.Values["SNUG"][i]; v <= 0 {
			t.Errorf("normalized throughput %v at %d cores", v, s.Cores[i])
		}
	}
}

// TestScalingStudyDeterminism: the study is one sweep, so its output is
// bit-identical for any worker count.
func TestScalingStudyDeterminism(t *testing.T) {
	run := func(par int) []experiments.ScalingPoint {
		opt := scalingOpts()
		opt.Parallelism = par
		res, err := experiments.ScalingStudy(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Points
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Error("ScalingStudy output differs between Parallelism 1 and 4")
	}
}

// TestScalingStudyResume: a store warmed with one core count extends to a
// wider axis, restoring the shared width's runs, and the checkpoint keys
// are the stable combo/spec strings.
func TestScalingStudyResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "scaling.sweep.json")
	opt := scalingOpts()
	opt.CoreCounts = []int{4}
	opt.Checkpoint = ckpt
	first, err := experiments.ScalingStudy(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.CoreCounts = []int{4, 8}
	var last sweep.Progress
	opt.Progress = func(p sweep.Progress) { last = p }
	second, err := experiments.ScalingStudy(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if last.Restored != 6 { // 3 combos x (L2P + SNUG) at width 4
		t.Errorf("restored %d runs, want the 6 width-4 runs", last.Restored)
	}
	if !reflect.DeepEqual(first.Points[0].Combos, second.Points[0].Combos) {
		t.Error("restored width-4 point differs from the original")
	}

	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"4xammp/L2P"`, `"4xammp/SNUG"`, `"8xammp/SNUG"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("checkpoint store missing stable key %s", key)
		}
	}
}

// TestScalingStudyValidation covers option errors.
func TestScalingStudyValidation(t *testing.T) {
	base := scalingOpts()

	opt := base
	opt.RunCycles = 0
	if _, err := experiments.ScalingStudy(context.Background(), opt); err == nil {
		t.Error("zero RunCycles accepted")
	}

	opt = base
	opt.CoreCounts = nil
	if _, err := experiments.ScalingStudy(context.Background(), opt); err == nil {
		t.Error("empty core counts accepted")
	}

	opt = base
	opt.CoreCounts = []int{4, 4}
	if _, err := experiments.ScalingStudy(context.Background(), opt); err == nil {
		t.Error("duplicate core count accepted")
	}

	opt = base
	opt.CoreCounts = []int{6}
	if _, err := experiments.ScalingStudy(context.Background(), opt); err == nil {
		t.Error("invalid core count accepted")
	}

	opt = base
	opt.BaseCfg.Cores = 8
	if _, err := experiments.ScalingStudy(context.Background(), opt); err == nil {
		t.Error("non-quad base config accepted")
	}

	opt = base
	opt.Schemes = []string{"NOPE"}
	if _, err := experiments.ScalingStudy(context.Background(), opt); err == nil {
		t.Error("unknown scheme accepted")
	}
}
