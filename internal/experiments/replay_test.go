package experiments

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"snug/internal/config"
)

// replayOpts is a small but structurally complete evaluation: one class,
// two scheme families plus the CC spill sweep and the L2P baseline.
func replayOpts(t *testing.T, checkpoint string, noReplay bool, reps int) Options {
	t.Helper()
	return Options{
		Cfg:         config.TestScale(),
		RunCycles:   150_000,
		Parallelism: 1, // checkpoint lines append in completion order; serialize for byte-comparable stores
		Classes:     []string{"C1"},
		Schemes:     []string{"CC", "SNUG"},
		Checkpoint:  checkpoint,
		Replicates:  reps,
		NoReplay:    noReplay,
	}
}

// TestEvaluateReplayStoreByteIdentical is the tentpole's acceptance bar:
// an evaluation over recorded-replayed streams must write a checkpoint
// store byte-identical to one simulated over live generators — same keys,
// same results, same order — both single-run and replicated (replicate
// r > 0 records its own streams).
func TestEvaluateReplayStoreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("paired full evaluations; skipped in -short")
	}
	for _, reps := range []int{1, 2} {
		dir := t.TempDir()
		livePath := filepath.Join(dir, "live.json")
		replayPath := filepath.Join(dir, "replay.json")
		if _, err := Evaluate(context.Background(), replayOpts(t, livePath, true, reps)); err != nil {
			t.Fatal(err)
		}
		if _, err := Evaluate(context.Background(), replayOpts(t, replayPath, false, reps)); err != nil {
			t.Fatal(err)
		}
		live, err := os.ReadFile(livePath)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := os.ReadFile(replayPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(live) != string(replay) {
			t.Errorf("reps=%d: replay-on checkpoint store differs from live-generator store\nlive:\n%s\nreplay:\n%s",
				reps, live, replay)
		}
	}
}

// TestEvaluateReplayResultsMatchParallel checks replay keeps the sweep's
// parallelism-independence: a parallel replayed evaluation (schemes of one
// cell share recordings across workers) equals the serial live one.
func TestEvaluateReplayResultsMatchParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("paired full evaluations; skipped in -short")
	}
	serialLive, err := Evaluate(context.Background(), replayOpts(t, "", true, 1))
	if err != nil {
		t.Fatal(err)
	}
	opts := replayOpts(t, "", false, 1)
	opts.Parallelism = 4
	parallelReplay, err := Evaluate(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range serialLive.Combos {
		pr := parallelReplay.Combos[i]
		for label, run := range cr.Runs {
			if got := pr.Runs[label]; !reflect.DeepEqual(got, run) {
				t.Errorf("combo %s run %s: parallel replay result differs from serial live", cr.Combo.Name, label)
			}
		}
	}
}
