package experiments

import (
	"sync"

	"snug/internal/isa"
	"snug/internal/trace"
)

// streamCache shares recorded instruction streams across the jobs of one
// sweep. The evaluation's paired-comparison structure regenerates the same
// streams once per scheme: every job of one (combo, replicate) cell shares
// a SeedKey, so each of the cell's 5+ scheme runs used to re-synthesize an
// identical instruction stream from scratch. The cache records the streams
// on the cell's first run and hands every later run allocation-free replay
// cursors instead (see internal/trace's record/replay subsystem).
//
// Entries are keyed by the cell's derived job seed: within one sweep the
// seed is a pure function of the cell identity (sweep.JobSeed over the
// replicate-suffixed SeedKey), and the streams are a pure function of
// (config, benchmarks, seed, phase length) — all captured by the job
// closure — so equal seeds imply equal streams. Replicates therefore get
// their own recordings for free: replicate r > 0 derives a different seed.
//
// Memory stays bounded by in-flight cells: each cell declares how many
// jobs will request it, and the entry is dropped from the cache when the
// last one has (outstanding replay cursors keep the recording alive until
// their runs finish). Cells partially restored from a checkpoint decrement
// fewer times and are retained until the sweep ends — bounded by the cell
// count, and only for resumed sweeps.
type streamCache struct {
	mu      sync.Mutex
	entries map[uint64]*streamCacheEntry
}

type streamCacheEntry struct {
	recs      []*trace.Recording
	remaining int // jobs that have not yet requested cursors
	live      int // cursor sets handed out and not yet released
}

func newStreamCache() *streamCache {
	return &streamCache{entries: make(map[uint64]*streamCacheEntry)}
}

// streams returns one replay cursor per core stream for the cell keyed by
// seed, recording from freshly built live streams on the cell's first call.
// uses is the total number of jobs that will request this seed; build must
// construct the cell's live generator streams.
//
// The returned release func MUST be called exactly once, after the caller's
// run has fully consumed its cursors: when the cell's last outstanding
// cursor set is released and no further job will request one, the
// recording's chunk storage is recycled into the shared trace pool, so the
// next cell records into reused memory instead of allocating hundreds of
// megabytes of fresh chunks per sweep.
func (sc *streamCache) streams(seed uint64, uses int, build func() ([]isa.Stream, error)) ([]isa.Stream, func(), error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	e := sc.entries[seed]
	if e == nil {
		live, err := build()
		if err != nil {
			return nil, nil, err
		}
		e = &streamCacheEntry{recs: trace.RecordAll(live), remaining: uses}
		sc.entries[seed] = e
	}
	e.remaining--
	if e.remaining <= 0 {
		delete(sc.entries, seed)
	}
	e.live++
	released := false
	release := func() {
		sc.mu.Lock()
		defer sc.mu.Unlock()
		if released {
			return
		}
		released = true
		e.live--
		if e.live == 0 && e.remaining <= 0 {
			// Partially restored cells (remaining > 0 with no future
			// requester) are the documented exception: they stay retained
			// until the sweep ends, bounded by the cell count.
			trace.RecycleAll(e.recs)
		}
	}
	return trace.Replays(e.recs), release, nil
}
