package experiments_test

import (
	"testing"

	"snug/internal/cmp"
	"snug/internal/experiments"
)

// TestEngineFor pins the scaling study's per-width engine default: wide
// points (8+ cores) step with the intra-run epoch engine, the quad-core
// base point keeps the serial engine, and an explicit engine request
// survives in both directions.
func TestEngineFor(t *testing.T) {
	serial := cmp.Engine{}
	if got := experiments.EngineFor(serial, 4); got.Intra {
		t.Errorf("EngineFor(serial, 4) enabled Intra; the quad-core point must stay serial by default")
	}
	for _, n := range []int{8, 16, 32} {
		if got := experiments.EngineFor(serial, n); !got.Intra {
			t.Errorf("EngineFor(serial, %d) kept the serial engine; wide points default to Intra", n)
		}
	}
	// An explicit Intra request is never downgraded at any width.
	intra := cmp.Engine{Intra: true, EpochCycles: 1024}
	if got := experiments.EngineFor(intra, 4); !got.Intra || got.EpochCycles != 1024 {
		t.Errorf("EngineFor(intra, 4) = %+v; explicit engine choices must be preserved", got)
	}
	// Tuning fields ride along unchanged when the default kicks in.
	tuned := cmp.Engine{EpochCycles: 2048}
	if got := experiments.EngineFor(tuned, 8); !got.Intra || got.EpochCycles != 2048 {
		t.Errorf("EngineFor(tuned, 8) = %+v; want Intra with EpochCycles preserved", got)
	}
}
