package experiments

import "snug/internal/cmp"

// EngineFor exposes the scaling study's per-width engine default to the
// external test package.
func EngineFor(base cmp.Engine, cores int) cmp.Engine { return engineFor(base, cores) }
