package experiments

import (
	"fmt"

	"snug/internal/addr"
	"snug/internal/cache"
	"snug/internal/config"
	"snug/internal/isa"
	"snug/internal/stackdist"
	"snug/internal/trace"
)

// CharacterizeOptions configures a Figures 1–3 run. The paper's §2.2
// methodology: an L2 access stream (after L1 filtering) is profiled with
// A_threshold = 2×A_baseline = 32 LRU positions per set, over 1000 sampling
// intervals of 100 K L2 accesses each, bucketed into M = 8 demand ranges.
type CharacterizeOptions struct {
	Benchmark           string
	Cfg                 config.System
	AThreshold          int   // 0 = 2× L2 ways
	Buckets             int   // M; 0 = 8
	Intervals           int   // 0 = 1000
	AccessesPerInterval int64 // L2 accesses per interval; 0 = 100_000
	Seed                uint64
}

// normalize fills defaults.
func (o *CharacterizeOptions) normalize() {
	if o.AThreshold == 0 {
		o.AThreshold = 2 * o.Cfg.Mem.L2Slice.Ways
	}
	if o.Buckets == 0 {
		o.Buckets = 8
	}
	if o.Intervals == 0 {
		o.Intervals = 1000
	}
	if o.AccessesPerInterval == 0 {
		o.AccessesPerInterval = 100_000
	}
	if o.Seed == 0 {
		o.Seed = o.Cfg.Seed
	}
}

// Characterize reproduces the §2.2 methodology for one benchmark: the
// synthetic generator's data stream is filtered through the L1, and every
// L2-level access feeds the per-set stack-distance profiler; at each
// interval boundary block_required is bucketed per Formulas (3)–(5).
func Characterize(opt CharacterizeOptions) (*stackdist.Characterization, error) {
	opt.normalize()
	prof, err := trace.ByName(opt.Benchmark)
	if err != nil {
		return nil, err
	}
	l2Geom := addr.MustGeometry(opt.Cfg.Mem.L2Slice.BlockBytes, opt.Cfg.Mem.L2Slice.Sets())
	l1Geom := addr.MustGeometry(opt.Cfg.Mem.L1D.BlockBytes, opt.Cfg.Mem.L1D.Sets())

	// Size the generator's phase rotation so the benchmark's phases land at
	// the paper's interval positions (vortex: ~405 and ~792 of 1000).
	// Intervals are counted in post-L1 L2 accesses while phases advance per
	// distinct touch; the L1 filters roughly 35-40% of distinct touches, so
	// the rotation is stretched accordingly.
	totalL2 := int64(opt.Intervals) * opt.AccessesPerInterval
	totalRefs := totalL2 * 8 / 5
	gen, err := trace.NewGenerator(prof, l2Geom, opt.Seed, totalRefs)
	if err != nil {
		return nil, err
	}
	l1 := cache.MustNew(l1Geom, opt.Cfg.Mem.L1D.Ways)
	profiler := stackdist.MustProfiler(l2Geom, opt.AThreshold)
	chz := stackdist.NewCharacterization(opt.AThreshold, opt.Buckets)

	var in isa.Instr
	for interval := 1; interval <= opt.Intervals; interval++ {
		for profiler.Accesses() < opt.AccessesPerInterval {
			gen.Next(&in)
			if in.Kind != isa.KindLoad && in.Kind != isa.KindStore {
				continue
			}
			if l1.Lookup(in.Addr, in.Kind == isa.KindStore) {
				continue
			}
			l1.Insert(in.Addr, cache.Block{Dirty: in.Kind == isa.KindStore})
			profiler.Touch(in.Addr)
		}
		chz.Add(profiler.EndInterval(interval, opt.Buckets, opt.Cfg.Mem.L2Slice.Ways))
	}
	return chz, nil
}

// FigureBenchmarks maps the characterization figures to their benchmarks.
var FigureBenchmarks = []struct {
	Figure    int
	Benchmark string
	Note      string
}{
	{1, "ammp", "~40% of sets demand only 1-4 blocks throughout"},
	{2, "vortex", "mid-run phase (~intervals 405-792) with 15%/9%/7% shallow sets"},
	{3, "applu", "streaming: nearly all sets demand 1-4 blocks"},
}

// FigureFor returns the figure number for a benchmark name, or 0.
func FigureFor(bench string) int {
	for _, f := range FigureBenchmarks {
		if f.Benchmark == bench {
			return f.Figure
		}
	}
	return 0
}

// CharacterizeError wraps option validation problems.
func (o CharacterizeOptions) Validate() error {
	if o.Benchmark == "" {
		return fmt.Errorf("experiments: characterization needs a benchmark")
	}
	return nil
}
