// Package experiments orchestrates the paper's evaluation: the
// characterization of Figures 1–3, the scheme comparison of Figures 9–11
// over the 21 workload combinations of Table 8, the overhead tables, the
// ablation studies of SNUG's design choices, and the N-core scaling study
// that extends the matrix beyond the paper's quad-core system. It is the
// engine behind cmd/experiments, the examples, and the repository's
// benchmark suite.
package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/metrics"
	"snug/internal/schemes"
	"snug/internal/stats"
	"snug/internal/sweep"
	"snug/internal/workloads"
)

// CCPercents are the spill probabilities §4.1 evaluates; CC(Best) is the
// best-performing one per workload.
var CCPercents = []int{0, 25, 50, 75, 100}

// FigureSchemes are the scheme labels of Figures 9–11, in plot order.
var FigureSchemes = []string{"L2S", "CC(Best)", "DSR", "SNUG"}

// Options configures an evaluation.
type Options struct {
	// Cfg is the simulated system. Its core count selects the evaluation
	// width: 4 runs the paper's Table 8 matrix, 8/16/... run the
	// class-consistent scale-out combinations of workloads.ScaleOut.
	Cfg         config.System
	RunCycles   int64
	Parallelism int      // concurrent simulations (0 = runtime.GOMAXPROCS(0))
	Classes     []string // subset of {"C1".."C6"}; nil = all

	// Schemes restricts the evaluated schemes to a subset of
	// {"L2S", "CC", "DSR", "SNUG"}; nil means all. The L2P baseline always
	// runs — every reported metric is normalized to it — so "L2P" entries
	// are accepted and ignored, and ["L2P"] alone runs just the baseline.
	Schemes []string
	// Checkpoint is a sweep results-store path: completed runs found there
	// are restored instead of re-simulated, and new runs are appended, so an
	// interrupted evaluation resumes where it stopped. "" disables.
	Checkpoint string
	// Progress, when set, receives a snapshot after each completed run.
	Progress func(sweep.Progress)
}

// ComboResult is the outcome for one workload combination: the L2P
// baseline, every scheme's run, and the Table 5 comparisons.
type ComboResult struct {
	Combo       workloads.Combo
	Baseline    cmp.RunResult
	Runs        map[string]cmp.RunResult      // keyed by scheme spec label
	CCBestPct   int                           // spill probability behind CC(Best)
	Comparisons map[string]metrics.Comparison // keyed by FigureSchemes labels
}

// Evaluation is the full Figures 9–11 dataset.
type Evaluation struct {
	Options Options
	Combos  []ComboResult
}

// evalSchemes are the non-baseline scheme families the full matrix
// evaluates, in figure order.
var evalSchemes = []string{"L2S", "CC", "DSR", "SNUG"}

// baselineSpec labels the baseline every metric normalizes to.
var baselineSpec = schemes.Spec{Family: "L2P"}

// selectSchemes validates and normalizes the Schemes option into evalSchemes
// order. "L2P" entries are dropped — the baseline always runs.
func selectSchemes(want []string) ([]string, error) {
	if len(want) == 0 {
		return evalSchemes, nil
	}
	requested := map[string]bool{}
	for _, s := range want {
		if s == "L2P" {
			continue
		}
		found := false
		for _, known := range evalSchemes {
			if s == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown scheme %q (want a subset of %v)", s, evalSchemes)
		}
		requested[s] = true
	}
	var out []string
	for _, s := range evalSchemes {
		if requested[s] {
			out = append(out, s)
		}
	}
	// An empty selection (e.g. Schemes = ["L2P"]) is a baseline-only run.
	return out, nil
}

// specsFor expands selected scheme families into concrete specs: "CC"
// becomes one spec per evaluated spill probability (CC(Best) is selected
// from them after the sweep), every other family is a bare spec.
func specsFor(selected []string) []schemes.Spec {
	var specs []schemes.Spec
	for _, family := range selected {
		if family == "CC" {
			for _, pct := range CCPercents {
				specs = append(specs, schemes.MustParse(fmt.Sprintf("CC(%d%%)", pct)))
			}
			continue
		}
		specs = append(specs, schemes.MustParse(family))
	}
	return specs
}

// fingerprint identifies everything that changes a run's result — the
// system configuration (which embeds the base seed) and the run length —
// so a checkpoint store refuses to mix results across configurations.
// Classes and Schemes are deliberately excluded: they select which jobs
// run, not what any job computes, so a store warmed by a subset sweep is
// reusable by a wider one.
func fingerprint(opt Options) (string, error) {
	h, err := cfgHash(opt.Cfg)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("evaluate/cycles=%d/cfg=%s", opt.RunCycles, h), nil
}

// cfgHash hashes a system configuration for fingerprinting.
func cfgHash(cfg config.System) (string, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: fingerprint config: %w", err)
	}
	return fmt.Sprintf("%016x", stats.HashString(string(cfgJSON))), nil
}

// jobKey identifies one (combo, labelled run) pair in the sweep; it is also
// the run's checkpoint key, so it must stay stable across releases. Labels
// are canonical spec strings (schemes.Spec.String), giving keys like
// "4xammp/CC(75%)".
func jobKey(combo, label string) string { return combo + "/" + label }

// comboJobs appends one combo's runs — the L2P baseline plus every spec —
// to jobs. All of a combo's runs share its name as SeedKey, so every scheme
// sees identical instruction streams (paired comparisons).
func comboJobs(jobs []sweep.Job, cfg config.System, combo workloads.Combo, specs []schemes.Spec, cycles int64) []sweep.Job {
	for _, spec := range append([]schemes.Spec{baselineSpec}, specs...) {
		label := spec.String()
		jobs = append(jobs, sweep.Job{
			Key:     jobKey(combo.Name, label),
			SeedKey: combo.Name,
			Run: func(seed uint64) (cmp.RunResult, error) {
				c := cfg
				c.Seed = seed
				return cmp.RunWorkload(c, label, combo.Cores, cycles)
			},
		})
	}
	return jobs
}

// collect fills the combo's runs from the sweep results and finalizes the
// comparisons for the selected scheme families.
func (cr *ComboResult) collect(results map[string]cmp.RunResult, selected []string) error {
	cr.Baseline = results[jobKey(cr.Combo.Name, baselineSpec.String())]
	for key, res := range results {
		if combo, label, ok := strings.Cut(key, "/"); ok && combo == cr.Combo.Name {
			cr.Runs[label] = res
		}
	}
	return cr.finalize(selected)
}

// Evaluate runs the evaluation matrix through the sweep engine: for every
// selected combo, the L2P baseline plus every selected scheme, with CC at
// every spill probability (from which CC(Best) is selected by throughput,
// per §4.1). Simulations run concurrently but results are deterministic:
// every run's seed derives from its combo identity via the sweep engine, so
// a combo's schemes see identical instruction streams (paired comparisons)
// and the output is bit-identical for any Parallelism.
func Evaluate(opt Options) (*Evaluation, error) {
	if opt.RunCycles <= 0 {
		return nil, fmt.Errorf("experiments: RunCycles must be positive")
	}
	combos, err := selectCombos(opt.Classes, opt.Cfg.Cores)
	if err != nil {
		return nil, err
	}
	if len(combos) == 0 {
		return nil, fmt.Errorf("experiments: no combos selected for classes %v", opt.Classes)
	}
	selected, err := selectSchemes(opt.Schemes)
	if err != nil {
		return nil, err
	}
	specs := specsFor(selected)

	ev := &Evaluation{Options: opt, Combos: make([]ComboResult, len(combos))}
	var jobs []sweep.Job
	for i, combo := range combos {
		ev.Combos[i] = ComboResult{
			Combo:       combo,
			Runs:        make(map[string]cmp.RunResult),
			Comparisons: make(map[string]metrics.Comparison),
		}
		jobs = comboJobs(jobs, opt.Cfg, combo, specs, opt.RunCycles)
	}

	fp, err := fingerprint(opt)
	if err != nil {
		return nil, err
	}
	results, err := sweep.Run(sweep.Options{
		Parallelism: opt.Parallelism,
		BaseSeed:    opt.Cfg.Seed,
		Checkpoint:  opt.Checkpoint,
		Fingerprint: fp,
		OnProgress:  opt.Progress,
	}, jobs)
	if err != nil {
		return nil, evalErr(err)
	}

	for i := range ev.Combos {
		if err := ev.Combos[i].collect(results, selected); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// evalErr renders a sweep failure with combo + run context.
func evalErr(err error) error {
	var je *sweep.JobError
	if errors.As(err, &je) {
		if combo, label, ok := strings.Cut(je.Key, "/"); ok {
			return fmt.Errorf("experiments: combo %s, run %s: %w", combo, label, je.Err)
		}
	}
	return fmt.Errorf("experiments: %w", err)
}

// finalize selects CC(Best) and computes the Table 5 comparisons for the
// schemes that ran.
func (cr *ComboResult) finalize(selected []string) error {
	sel := map[string]bool{}
	for _, s := range selected {
		sel[s] = true
	}
	cr.CCBestPct = -1
	if sel["CC"] {
		bestPct, bestTput := -1, 0.0
		for _, pct := range CCPercents {
			r, ok := cr.Runs[fmt.Sprintf("CC(%d%%)", pct)]
			if !ok {
				return fmt.Errorf("experiments: combo %s missing CC(%d%%) run", cr.Combo.Name, pct)
			}
			if put := r.Throughput(); bestPct < 0 || put > bestTput {
				bestPct, bestTput = pct, put
			}
		}
		cr.CCBestPct = bestPct
		cr.Runs["CC(Best)"] = cr.Runs[fmt.Sprintf("CC(%d%%)", bestPct)]
	}

	for _, label := range FigureSchemes {
		scheme := label
		if label == "CC(Best)" {
			scheme = "CC"
		}
		if !sel[scheme] {
			continue
		}
		r, ok := cr.Runs[label]
		if !ok {
			return fmt.Errorf("experiments: combo %s missing %s run", cr.Combo.Name, label)
		}
		comp, err := metrics.Compare(cr.Baseline, r)
		if err != nil {
			return fmt.Errorf("experiments: combo %s: %w", cr.Combo.Name, err)
		}
		comp.Scheme = label
		cr.Comparisons[label] = comp
	}
	return nil
}

// selectCombos filters the width-core scale-out matrix by class labels.
// Width 4 (or 0) is the paper's Table 8.
func selectCombos(classes []string, width int) ([]workloads.Combo, error) {
	if width == 0 {
		width = 4
	}
	all, err := workloads.ScaleOut(width)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if len(classes) == 0 {
		return all, nil
	}
	want := map[string]bool{}
	for _, c := range classes {
		want[c] = true
	}
	var out []workloads.Combo
	for _, c := range all {
		if want[c.Class] {
			out = append(out, c)
		}
	}
	return out, nil
}

// ClassSeries is one figure's dataset: per class (plus AVG), per scheme,
// the geometric-mean metric value.
type ClassSeries struct {
	Metric  metrics.MetricKind
	Schemes []string             // column labels present, in FigureSchemes order
	Classes []string             // row labels: C1..C6, AVG
	Values  map[string][]float64 // scheme label -> value per row
}

// Figure computes the Figure 9/10/11 dataset for the chosen metric. Only
// schemes the evaluation actually ran appear (see Options.Schemes); a
// scheme must be present in every combo — ragged data (a scheme missing
// from some combos, e.g. a partial or filtered run) is an error rather than
// a silently dropped or skewed series.
func (ev *Evaluation) Figure(metric metrics.MetricKind) (ClassSeries, error) {
	classes := presentClasses(ev.Combos)
	cs := ClassSeries{
		Metric:  metric,
		Classes: append(append([]string{}, classes...), "AVG"),
		Values:  make(map[string][]float64),
	}
	for _, scheme := range FigureSchemes {
		present := 0
		for _, cr := range ev.Combos {
			if _, ok := cr.Comparisons[scheme]; ok {
				present++
			}
		}
		if present == 0 {
			continue
		}
		if present != len(ev.Combos) {
			return ClassSeries{}, fmt.Errorf(
				"experiments: scheme %s present in %d of %d combos — ragged evaluation data",
				scheme, present, len(ev.Combos))
		}
		cs.Schemes = append(cs.Schemes, scheme)
		var rows []float64
		var all []float64
		for _, class := range classes {
			var comps []metrics.Comparison
			for _, cr := range ev.Combos {
				if cr.Combo.Class == class {
					comps = append(comps, cr.Comparisons[scheme])
				}
			}
			v := metrics.ClassMean(metric, comps)
			rows = append(rows, v)
			all = append(all, v)
		}
		rows = append(rows, stats.GeoMean(all))
		cs.Values[scheme] = rows
	}
	return cs, nil
}

// presentClasses returns the ordered class labels present in the results.
func presentClasses(combos []ComboResult) []string {
	seen := map[string]bool{}
	for _, c := range combos {
		seen[c.Combo.Class] = true
	}
	var out []string
	for _, c := range workloads.Classes() {
		if seen[c] {
			out = append(out, c)
		}
	}
	return out
}
