// Package experiments orchestrates the paper's evaluation: the
// characterization of Figures 1–3, the scheme comparison of Figures 9–11
// over the 21 workload combinations of Table 8, the overhead tables, the
// ablation studies of SNUG's design choices, and the N-core scaling study
// that extends the matrix beyond the paper's quad-core system. It is the
// engine behind cmd/experiments, the examples, and the repository's
// benchmark suite.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/faults"
	"snug/internal/isa"
	"snug/internal/metrics"
	"snug/internal/schemes"
	"snug/internal/stats"
	"snug/internal/sweep"
	"snug/internal/workloads"
)

// CCPercents are the spill probabilities §4.1 evaluates; CC(Best) is the
// best-performing one per workload.
var CCPercents = []int{0, 25, 50, 75, 100}

// FigureSchemes are the scheme labels of Figures 9–11, in plot order.
var FigureSchemes = []string{"L2S", "CC(Best)", "DSR", "SNUG"}

// Options configures an evaluation.
type Options struct {
	// Cfg is the simulated system. Its core count selects the evaluation
	// width: 4 runs the paper's Table 8 matrix, 8/16/... run the
	// class-consistent scale-out combinations of workloads.ScaleOut.
	Cfg         config.System
	RunCycles   int64
	Parallelism int      // concurrent simulations (0 = runtime.GOMAXPROCS(0))
	Classes     []string // subset of {"C1".."C6"}; nil = all

	// Schemes restricts the evaluated schemes to a subset of
	// {"L2S", "CC", "DSR", "SNUG"}; nil means all. The L2P baseline always
	// runs — every reported metric is normalized to it — so "L2P" entries
	// are accepted and ignored, and ["L2P"] alone runs just the baseline.
	Schemes []string
	// Checkpoint is a sweep results-store path: completed runs found there
	// are restored instead of re-simulated, and new runs are appended, so an
	// interrupted evaluation resumes where it stopped. "" disables.
	Checkpoint string
	// Progress, when set, receives a snapshot after each completed run.
	Progress func(sweep.Progress)
	// Replicates runs every (combo, scheme) cell this many times with
	// independent instruction streams (0 and 1 both mean one run, today's
	// exact output and checkpoint keys). Schemes stay paired within each
	// replicate, and the figures report mean ± 95% CI across replicates.
	Replicates int
	// NoReplay disables the trace record/replay cache and regenerates each
	// run's instruction streams live, as releases before the cache did. The
	// default (replay on) records every (combo, replicate) cell's streams
	// once and replays them to all of the cell's schemes — bit-identical
	// results, several× less stream-synthesis work. The switch exists for
	// A/B-ing exactly that claim (cmd/experiments -replay=false).
	NoReplay bool
	// Engine selects how each simulation advances (serial or intra-run
	// epoch engine). Results are byte-identical either way, so the engine
	// is excluded from checkpoint fingerprints: stores are interchangeable
	// across engines.
	Engine cmp.Engine
	// CPUBudget has sweep.Options.CPUBudget semantics: cap the process-wide
	// concurrent simulation goroutines so sweep workers and intra-run epoch
	// engines compose instead of multiplying (0 keeps the process budget).
	// Like Engine, it never changes results and is excluded from
	// fingerprints.
	CPUBudget int
	// FailurePolicy, Retry, Salvage and Sync pass straight through to the
	// sweep engine's failure model (sweep.Options): fail-fast vs.
	// run-everything on job failures, retry/backoff for transient faults,
	// quarantine-and-continue for corrupt checkpoint lines, and the
	// checkpoint fsync cadence. None of them can change results — retries
	// reuse the job's identity-derived seed, and salvaged jobs simply rerun.
	FailurePolicy sweep.FailurePolicy
	Retry         sweep.RetrySpec
	Salvage       bool
	Sync          int
	// Faults injects deterministic failures (internal/faults) into every
	// job and checkpoint write, for chaos testing the failure model. The
	// zero spec — the default — injects nothing.
	Faults faults.Spec
}

// ComboResult is the outcome for one workload combination: the L2P
// baseline, every scheme's run, and the Table 5 comparisons. Baseline,
// Runs, CCBestPct and Comparisons describe replicate 0 (the only replicate
// of a single-run evaluation); the per-replicate comparisons behind the
// figures' confidence intervals live in RepComparisons.
type ComboResult struct {
	Combo       workloads.Combo
	Baseline    cmp.RunResult
	Runs        map[string]cmp.RunResult      // keyed by scheme spec label
	CCBestPct   int                           // spill probability behind CC(Best)
	Comparisons map[string]metrics.Comparison // keyed by FigureSchemes labels

	// RepComparisons holds every replicate's Table 5 comparisons;
	// RepComparisons[0] equals Comparisons. Empty on hand-built fixtures,
	// which Figure treats as a single replicate described by Comparisons.
	RepComparisons []map[string]metrics.Comparison
	// RepCCBestPct is each replicate's CC(Best) selection — chosen per
	// replicate by throughput, since the best spill probability can differ
	// across instruction streams.
	RepCCBestPct []int
}

// replicates returns the replicate count the combo carries data for.
func (cr *ComboResult) replicates() int {
	if len(cr.RepComparisons) > 0 {
		return len(cr.RepComparisons)
	}
	return 1
}

// repComps returns replicate r's comparisons; fixtures without replicate
// data serve replicate 0 from the legacy Comparisons field.
func (cr *ComboResult) repComps(r int) map[string]metrics.Comparison {
	if len(cr.RepComparisons) > 0 {
		return cr.RepComparisons[r]
	}
	return cr.Comparisons
}

// Evaluation is the full Figures 9–11 dataset.
type Evaluation struct {
	Options Options
	Combos  []ComboResult
	// Replicates is the effective replicate count behind every combo
	// (max(1, Options.Replicates)).
	Replicates int
}

// evalSchemes are the non-baseline scheme families the full matrix
// evaluates, in figure order.
var evalSchemes = []string{"L2S", "CC", "DSR", "SNUG"}

// baselineSpec labels the baseline every metric normalizes to.
var baselineSpec = schemes.Spec{Family: "L2P"}

// selectSchemes validates and normalizes the Schemes option into evalSchemes
// order. "L2P" entries are dropped — the baseline always runs.
func selectSchemes(want []string) ([]string, error) {
	if len(want) == 0 {
		return evalSchemes, nil
	}
	requested := map[string]bool{}
	for _, s := range want {
		if s == "L2P" {
			continue
		}
		found := false
		for _, known := range evalSchemes {
			if s == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown scheme %q (want a subset of %v)", s, evalSchemes)
		}
		requested[s] = true
	}
	var out []string
	for _, s := range evalSchemes {
		if requested[s] {
			out = append(out, s)
		}
	}
	// An empty selection (e.g. Schemes = ["L2P"]) is a baseline-only run.
	return out, nil
}

// specsFor expands selected scheme families into concrete specs: "CC"
// becomes one spec per evaluated spill probability (CC(Best) is selected
// from them after the sweep), every other family is a bare spec.
func specsFor(selected []string) []schemes.Spec {
	var specs []schemes.Spec
	for _, family := range selected {
		if family == "CC" {
			for _, pct := range CCPercents {
				specs = append(specs, schemes.MustParse(fmt.Sprintf("CC(%d%%)", pct)))
			}
			continue
		}
		specs = append(specs, schemes.MustParse(family))
	}
	return specs
}

// fingerprintVersion tags checkpoint fingerprints with the results-schema
// generation. Bump it when a release changes what any job computes (a
// simulator or metrics change that alters stored results), so stale stores
// are refused on resume instead of silently mixed with fresh runs.
const fingerprintVersion = 1

// fingerprint identifies everything that changes a run's result — the
// results-schema version, the system configuration (which embeds the base
// seed) and the run length — so a checkpoint store refuses to mix results
// across configurations or releases. Classes, Schemes and Replicates are
// deliberately excluded: they select which jobs run, not what any job
// computes (replicates only add keys), so a store warmed by a subset sweep
// is reusable by a wider or replicated one. The second return lists
// fingerprints of older releases whose results are still valid (the
// pre-version-token format; v1 changed no results), accepted on resume.
func fingerprint(opt Options) (fp string, legacy []string, err error) {
	h, err := cfgHash(opt.Cfg)
	if err != nil {
		return "", nil, err
	}
	return fmt.Sprintf("evaluate/v%d/cycles=%d/cfg=%s", fingerprintVersion, opt.RunCycles, h),
		[]string{fmt.Sprintf("evaluate/cycles=%d/cfg=%s", opt.RunCycles, h)}, nil
}

// cfgHash hashes a system configuration for fingerprinting.
func cfgHash(cfg config.System) (string, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: fingerprint config: %w", err)
	}
	return fmt.Sprintf("%016x", stats.HashString(string(cfgJSON))), nil
}

// jobKey identifies one (combo, labelled run) pair in the sweep; it is also
// the run's checkpoint key, so it must stay stable across releases. Labels
// are canonical spec strings (schemes.Spec.String), giving keys like
// "4xammp/CC(75%)".
func jobKey(combo, label string) string { return combo + "/" + label }

// comboJobs appends one combo's runs — the L2P baseline plus every spec —
// to jobs. All of a combo's runs share its name as SeedKey, so every scheme
// sees identical instruction streams (paired comparisons). With a stream
// cache, the streams are synthesized once per (combo, replicate) cell and
// replayed to every scheme; cache == nil regenerates them live per run.
func comboJobs(jobs []sweep.Job, cache *streamCache, cfg config.System, combo workloads.Combo, specs []schemes.Spec, cycles int64, eng cmp.Engine) []sweep.Job {
	all := append([]schemes.Spec{baselineSpec}, specs...)
	uses := len(all)
	for _, spec := range all {
		label := spec.String()
		jobs = append(jobs, sweep.Job{
			Key:     jobKey(combo.Name, label),
			SeedKey: combo.Name,
			Run: func(seed uint64) (cmp.RunResult, error) {
				c := cfg
				c.Seed = seed
				if cache == nil {
					return cmp.RunWorkloadEngine(c, label, combo.Cores, cycles, eng)
				}
				streams, release, err := cache.streams(seed, uses, func() ([]isa.Stream, error) {
					return cmp.WorkloadStreams(c, combo.Cores, cmp.PhaseRefs(cycles))
				})
				if err != nil {
					return cmp.RunResult{}, err
				}
				defer release()
				return cmp.RunStreamsEngine(c, label, streams, cycles, eng)
			},
		})
	}
	return jobs
}

// collect fills the combo's runs from the sweep results and finalizes the
// comparisons for the selected scheme families, once per replicate.
// Replicate 0 also populates the legacy Baseline/Runs/CCBestPct/Comparisons
// fields, so single-replicate consumers are untouched.
func (cr *ComboResult) collect(results map[string]cmp.RunResult, selected []string, reps int) error {
	cr.RepComparisons = make([]map[string]metrics.Comparison, reps)
	cr.RepCCBestPct = make([]int, reps)
	for r := 0; r < reps; r++ {
		runs := make(map[string]cmp.RunResult)
		// Map-to-map transfer: insertion order cannot change the resulting
		// map, and finalize reads it through sorted scheme names.
		for key, res := range results { //snug:allow maporder set-semantics transfer into another map
			base, rep := sweep.SplitReplicateKey(key)
			if rep != r {
				continue
			}
			if combo, label, ok := strings.Cut(base, "/"); ok && combo == cr.Combo.Name {
				runs[label] = res
			}
		}
		pct, comps, err := finalize(cr.Combo.Name, runs, selected)
		if err != nil {
			if r > 0 {
				return fmt.Errorf("replicate %d: %w", r, err)
			}
			return err
		}
		cr.RepCCBestPct[r] = pct
		cr.RepComparisons[r] = comps
		if r == 0 {
			cr.Baseline = runs[baselineSpec.String()]
			cr.Runs = runs
			cr.CCBestPct = pct
			cr.Comparisons = comps
		}
	}
	return nil
}

// Evaluate runs the evaluation matrix through the sweep engine: for every
// selected combo, the L2P baseline plus every selected scheme, with CC at
// every spill probability (from which CC(Best) is selected by throughput,
// per §4.1). Simulations run concurrently but results are deterministic:
// every run's seed derives from its combo identity via the sweep engine, so
// a combo's schemes see identical instruction streams (paired comparisons)
// and the output is bit-identical for any Parallelism. Canceling ctx drains
// and checkpoints in-flight runs, then returns the partial-progress error
// (a later call with the same Checkpoint resumes).
func Evaluate(ctx context.Context, opt Options) (*Evaluation, error) {
	if opt.RunCycles <= 0 {
		return nil, fmt.Errorf("experiments: RunCycles must be positive")
	}
	combos, err := selectCombos(opt.Classes, opt.Cfg.Cores)
	if err != nil {
		return nil, err
	}
	if len(combos) == 0 {
		return nil, fmt.Errorf("experiments: no combos selected for classes %v", opt.Classes)
	}
	selected, err := selectSchemes(opt.Schemes)
	if err != nil {
		return nil, err
	}
	specs := specsFor(selected)
	reps := opt.Replicates
	if reps < 1 {
		reps = 1
	}

	ev := &Evaluation{Options: opt, Combos: make([]ComboResult, len(combos)), Replicates: reps}
	var cache *streamCache
	if !opt.NoReplay {
		cache = newStreamCache()
	}
	var jobs []sweep.Job
	for i, combo := range combos {
		ev.Combos[i] = ComboResult{Combo: combo}
		jobs = comboJobs(jobs, cache, opt.Cfg, combo, specs, opt.RunCycles, opt.Engine)
	}

	fp, legacy, err := fingerprint(opt)
	if err != nil {
		return nil, err
	}
	results, err := sweep.Run(ctx, sweep.Options{
		Parallelism:        opt.Parallelism,
		CPUBudget:          opt.CPUBudget,
		BaseSeed:           opt.Cfg.Seed,
		Checkpoint:         opt.Checkpoint,
		Salvage:            opt.Salvage,
		Sync:               opt.Sync,
		Fingerprint:        fp,
		AcceptFingerprints: legacy,
		Replicates:         reps,
		FailurePolicy:      opt.FailurePolicy,
		Retry:              opt.Retry,
		PutHook:            opt.Faults.PutHook(opt.Cfg.Seed),
		OnProgress:         opt.Progress,
	}, opt.Faults.Wrap(opt.Cfg.Seed, jobs))
	if err != nil {
		return nil, evalErr(err)
	}

	for i := range ev.Combos {
		if err := ev.Combos[i].collect(results, selected, reps); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// evalErr renders a sweep failure with combo + run (+ replicate) context.
// Only a lone *JobError gets the rewrite: an aggregate (ContinueOnError,
// or an interruption alongside failures) passes through wrapped whole, so
// no failure is silently collapsed into the first — each JobError inside
// already carries its job key.
func evalErr(err error) error {
	if je, ok := err.(*sweep.JobError); ok {
		base, rep := sweep.SplitReplicateKey(je.Key)
		if combo, label, ok := strings.Cut(base, "/"); ok {
			if rep > 0 {
				return fmt.Errorf("experiments: combo %s, run %s, replicate %d: %w", combo, label, rep, je.Err)
			}
			return fmt.Errorf("experiments: combo %s, run %s: %w", combo, label, je.Err)
		}
	}
	return fmt.Errorf("experiments: %w", err)
}

// finalize selects CC(Best) and computes the Table 5 comparisons for the
// schemes that ran, from one replicate's runs (which it extends with the
// derived "CC(Best)" entry).
func finalize(combo string, runs map[string]cmp.RunResult, selected []string) (ccBestPct int, comps map[string]metrics.Comparison, err error) {
	sel := map[string]bool{}
	for _, s := range selected {
		sel[s] = true
	}
	ccBestPct = -1
	if sel["CC"] {
		bestPct, bestTput := -1, 0.0
		for _, pct := range CCPercents {
			r, ok := runs[fmt.Sprintf("CC(%d%%)", pct)]
			if !ok {
				return 0, nil, fmt.Errorf("experiments: combo %s missing CC(%d%%) run", combo, pct)
			}
			if put := r.Throughput(); bestPct < 0 || put > bestTput {
				bestPct, bestTput = pct, put
			}
		}
		ccBestPct = bestPct
		runs["CC(Best)"] = runs[fmt.Sprintf("CC(%d%%)", bestPct)]
	}

	baseline := runs[baselineSpec.String()]
	comps = make(map[string]metrics.Comparison)
	for _, label := range FigureSchemes {
		scheme := label
		if label == "CC(Best)" {
			scheme = "CC"
		}
		if !sel[scheme] {
			continue
		}
		r, ok := runs[label]
		if !ok {
			return 0, nil, fmt.Errorf("experiments: combo %s missing %s run", combo, label)
		}
		comp, err := metrics.Compare(baseline, r)
		if err != nil {
			return 0, nil, fmt.Errorf("experiments: combo %s: %w", combo, err)
		}
		comp.Scheme = label
		comps[label] = comp
	}
	return ccBestPct, comps, nil
}

// selectCombos filters the width-core scale-out matrix by class labels.
// Width 4 (or 0) is the paper's Table 8.
func selectCombos(classes []string, width int) ([]workloads.Combo, error) {
	if width == 0 {
		width = 4
	}
	all, err := workloads.ScaleOut(width)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if len(classes) == 0 {
		return all, nil
	}
	want := map[string]bool{}
	for _, c := range classes {
		want[c] = true
	}
	var out []workloads.Combo
	for _, c := range all {
		if want[c.Class] {
			out = append(out, c)
		}
	}
	return out, nil
}

// ClassSeries is one figure's dataset: per class (plus AVG), per scheme,
// the geometric-mean metric value — averaged across replicates, with a
// Student-t 95% confidence interval when the evaluation was replicated.
type ClassSeries struct {
	Metric  metrics.MetricKind
	Schemes []string             // column labels present, in FigureSchemes order
	Classes []string             // row labels: C1..C6, AVG
	Values  map[string][]float64 // scheme label -> mean value per row
	// CI is each Values cell's 95% confidence half-width across replicates,
	// keyed and indexed like Values. It is nil for single-replicate
	// evaluations, whose Values are point estimates with no spread
	// information.
	CI map[string][]float64
	// Replicates is the replicate count behind every cell (1 when CI is nil).
	Replicates int
}

// Cell returns row i of the scheme's series as a mean-with-interval.
func (cs ClassSeries) Cell(scheme string, i int) stats.Interval {
	iv := stats.Interval{Mean: cs.Values[scheme][i], N: cs.Replicates}
	if cs.CI != nil {
		iv.Half = cs.CI[scheme][i]
	}
	if iv.N < 1 {
		iv.N = 1
	}
	return iv
}

// Figure computes the Figure 9/10/11 dataset for the chosen metric. Only
// schemes the evaluation actually ran appear (see Options.Schemes); a
// scheme must be present in every combo — ragged data (a scheme missing
// from some combos, e.g. a partial or filtered run) is an error rather than
// a silently dropped or skewed series. With Replicates > 1 each cell is the
// mean of the per-replicate class values, qualified by its 95% CI.
func (ev *Evaluation) Figure(metric metrics.MetricKind) (ClassSeries, error) {
	classes := presentClasses(ev.Combos)
	reps := ev.Replicates
	if reps < 1 {
		reps = 1
	}
	cs := ClassSeries{
		Metric:     metric,
		Classes:    append(append([]string{}, classes...), "AVG"),
		Values:     make(map[string][]float64),
		Replicates: reps,
	}
	if reps > 1 {
		cs.CI = make(map[string][]float64)
	}
	for _, scheme := range FigureSchemes {
		present := 0
		for _, cr := range ev.Combos {
			if cr.replicates() != reps {
				return ClassSeries{}, fmt.Errorf(
					"experiments: combo %s carries %d replicates, evaluation has %d",
					cr.Combo.Name, cr.replicates(), reps)
			}
			if _, ok := cr.repComps(0)[scheme]; ok {
				present++
			}
		}
		if present == 0 {
			continue
		}
		if present != len(ev.Combos) {
			return ClassSeries{}, fmt.Errorf(
				"experiments: scheme %s present in %d of %d combos — ragged evaluation data",
				scheme, present, len(ev.Combos))
		}
		cs.Schemes = append(cs.Schemes, scheme)
		// perRep[r] accumulates replicate r's class-row values so the AVG
		// row can be the geometric mean within each replicate before the
		// mean ± CI is taken across replicates.
		perRep := make([][]float64, reps)
		var rows, halfs []float64
		cell := func(vals []float64) {
			iv := stats.MeanCI(vals)
			rows = append(rows, iv.Mean)
			halfs = append(halfs, iv.Half)
		}
		for _, class := range classes {
			vals := make([]float64, reps)
			for r := 0; r < reps; r++ {
				var comps []metrics.Comparison
				for _, cr := range ev.Combos {
					if cr.Combo.Class == class {
						comps = append(comps, cr.repComps(r)[scheme])
					}
				}
				vals[r] = metrics.ClassMean(metric, comps)
				perRep[r] = append(perRep[r], vals[r])
			}
			cell(vals)
		}
		avg := make([]float64, reps)
		for r := 0; r < reps; r++ {
			avg[r] = stats.GeoMean(perRep[r])
		}
		cell(avg)
		cs.Values[scheme] = rows
		if cs.CI != nil {
			cs.CI[scheme] = halfs
		}
	}
	return cs, nil
}

// presentClasses returns the ordered class labels present in the results.
func presentClasses(combos []ComboResult) []string {
	seen := map[string]bool{}
	for _, c := range combos {
		seen[c.Combo.Class] = true
	}
	var out []string
	for _, c := range workloads.Classes() {
		if seen[c] {
			out = append(out, c)
		}
	}
	return out
}
