// Package experiments orchestrates the paper's evaluation: the
// characterization of Figures 1–3, the scheme comparison of Figures 9–11
// over the 21 workload combinations of Table 8, the overhead tables, and
// the ablation studies of SNUG's design choices. It is the engine behind
// cmd/experiments, the examples, and the repository's benchmark suite.
package experiments

import (
	"fmt"
	"sync"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/metrics"
	"snug/internal/stats"
	"snug/internal/workloads"
)

// CCPercents are the spill probabilities §4.1 evaluates; CC(Best) is the
// best-performing one per workload.
var CCPercents = []int{0, 25, 50, 75, 100}

// FigureSchemes are the scheme labels of Figures 9–11, in plot order.
var FigureSchemes = []string{"L2S", "CC(Best)", "DSR", "SNUG"}

// Options configures an evaluation.
type Options struct {
	Cfg         config.System
	RunCycles   int64
	Parallelism int      // concurrent simulations (0 = 2)
	Classes     []string // subset of {"C1".."C6"}; nil = all
}

// ComboResult is the outcome for one workload combination: the L2P
// baseline, every scheme's run, and the Table 5 comparisons.
type ComboResult struct {
	Combo       workloads.Combo
	Baseline    cmp.RunResult
	Runs        map[string]cmp.RunResult      // keyed by scheme label
	CCBestPct   int                           // spill probability behind CC(Best)
	Comparisons map[string]metrics.Comparison // keyed by FigureSchemes labels
}

// Evaluation is the full Figures 9–11 dataset.
type Evaluation struct {
	Options Options
	Combos  []ComboResult
}

// runJob is one simulation to execute.
type runJob struct {
	comboIdx int
	label    string // result key
	scheme   string // controller name
	ccPct    int    // CC spill probability (for scheme "CC")
}

// Evaluate runs the evaluation matrix: for every selected combo, L2P, L2S,
// DSR, SNUG, and CC at every spill probability (from which CC(Best) is
// selected by throughput, per §4.1). Simulations run concurrently but
// results are deterministic: every run is seeded independently of
// scheduling order.
func Evaluate(opt Options) (*Evaluation, error) {
	if opt.RunCycles <= 0 {
		return nil, fmt.Errorf("experiments: RunCycles must be positive")
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = 2
	}
	combos := selectCombos(opt.Classes)
	if len(combos) == 0 {
		return nil, fmt.Errorf("experiments: no combos selected for classes %v", opt.Classes)
	}

	ev := &Evaluation{Options: opt, Combos: make([]ComboResult, len(combos))}
	var jobs []runJob
	for i, combo := range combos {
		ev.Combos[i] = ComboResult{
			Combo:       combo,
			Runs:        make(map[string]cmp.RunResult),
			Comparisons: make(map[string]metrics.Comparison),
		}
		jobs = append(jobs, runJob{i, "L2P", "L2P", 0}, runJob{i, "L2S", "L2S", 0},
			runJob{i, "DSR", "DSR", 0}, runJob{i, "SNUG", "SNUG", 0})
		for _, pct := range CCPercents {
			jobs = append(jobs, runJob{i, fmt.Sprintf("CC(%d%%)", pct), "CC", pct})
		}
	}

	type jobResult struct {
		job runJob
		res cmp.RunResult
		err error
	}
	jobCh := make(chan runJob)
	resCh := make(chan jobResult)
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cfg := opt.Cfg
				cfg.CC.SpillPercent = j.ccPct
				res, err := cmp.RunWorkload(cfg, j.scheme, combos[j.comboIdx].Cores, opt.RunCycles)
				resCh <- jobResult{j, res, err}
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
		wg.Wait()
		close(resCh)
	}()

	var firstErr error
	for jr := range resCh {
		if jr.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: %s on %s: %w", jr.job.label, combos[jr.job.comboIdx].Name, jr.err)
			}
			continue
		}
		cr := &ev.Combos[jr.job.comboIdx]
		if jr.job.label == "L2P" {
			cr.Baseline = jr.res
		}
		cr.Runs[jr.job.label] = jr.res
	}
	if firstErr != nil {
		return nil, firstErr
	}

	for i := range ev.Combos {
		if err := ev.Combos[i].finalize(); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// finalize selects CC(Best) and computes the Table 5 comparisons.
func (cr *ComboResult) finalize() error {
	bestPct, bestTput := -1, 0.0
	for _, pct := range CCPercents {
		r, ok := cr.Runs[fmt.Sprintf("CC(%d%%)", pct)]
		if !ok {
			return fmt.Errorf("experiments: combo %s missing CC(%d%%) run", cr.Combo.Name, pct)
		}
		if put := r.Throughput(); bestPct < 0 || put > bestTput {
			bestPct, bestTput = pct, put
		}
	}
	cr.CCBestPct = bestPct
	cr.Runs["CC(Best)"] = cr.Runs[fmt.Sprintf("CC(%d%%)", bestPct)]

	for _, label := range FigureSchemes {
		r, ok := cr.Runs[label]
		if !ok {
			return fmt.Errorf("experiments: combo %s missing %s run", cr.Combo.Name, label)
		}
		comp, err := metrics.Compare(cr.Baseline, r)
		if err != nil {
			return fmt.Errorf("experiments: combo %s: %w", cr.Combo.Name, err)
		}
		comp.Scheme = label
		cr.Comparisons[label] = comp
	}
	return nil
}

// selectCombos filters Table 8 by class labels.
func selectCombos(classes []string) []workloads.Combo {
	all := workloads.Table8()
	if len(classes) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, c := range classes {
		want[c] = true
	}
	var out []workloads.Combo
	for _, c := range all {
		if want[c.Class] {
			out = append(out, c)
		}
	}
	return out
}

// ClassSeries is one figure's dataset: per class (plus AVG), per scheme,
// the geometric-mean metric value.
type ClassSeries struct {
	Metric  metrics.MetricKind
	Classes []string             // row labels: C1..C6, AVG
	Values  map[string][]float64 // scheme label -> value per row
}

// Figure computes the Figure 9/10/11 dataset for the chosen metric.
func (ev *Evaluation) Figure(metric metrics.MetricKind) ClassSeries {
	classes := presentClasses(ev.Combos)
	cs := ClassSeries{
		Metric:  metric,
		Classes: append(append([]string{}, classes...), "AVG"),
		Values:  make(map[string][]float64),
	}
	for _, scheme := range FigureSchemes {
		var rows []float64
		var all []float64
		for _, class := range classes {
			var comps []metrics.Comparison
			for _, cr := range ev.Combos {
				if cr.Combo.Class == class {
					comps = append(comps, cr.Comparisons[scheme])
				}
			}
			v := metrics.ClassMean(metric, comps)
			rows = append(rows, v)
			all = append(all, v)
		}
		rows = append(rows, stats.GeoMean(all))
		cs.Values[scheme] = rows
	}
	return cs
}

// presentClasses returns the ordered class labels present in the results.
func presentClasses(combos []ComboResult) []string {
	seen := map[string]bool{}
	for _, c := range combos {
		seen[c.Combo.Class] = true
	}
	var out []string
	for _, c := range workloads.Classes() {
		if seen[c] {
			out = append(out, c)
		}
	}
	return out
}
