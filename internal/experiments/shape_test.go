package experiments_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"snug/internal/config"
	"snug/internal/core"
	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/sweep"
	"snug/internal/workloads"
)

// Fixture run lengths. At test scale a SNUG epoch is 1M cycles (100k stage
// I + 900k stage II), and the stage-I re-latch at 1M drops cooperative
// state, so C1's Figure 9 ordering — SNUG clearly ahead — only re-emerges
// well into the second epoch: 1.6M cycles is the shortest length with a
// solid margin. C2's plateau (~1.0 for every cooperative scheme) is stable
// far earlier; 1.2M keeps the suite's wall time within budget.
const (
	fixtureC1Cycles = 1_600_000
	fixtureC2Cycles = 1_200_000
)

// The C1 and C2 evaluations are the expensive inputs shared by
// TestFigure9Shape and TestIndexFlipAblation; simulate them once instead of
// per test.
var (
	evalOnce     sync.Once
	fixC1, fixC2 *experiments.Evaluation
	evalErr      error
)

func evalFixture(t *testing.T) (c1, c2 *experiments.Evaluation) {
	t.Helper()
	evalOnce.Do(func() {
		fixC1, evalErr = experiments.Evaluate(context.Background(), experiments.Options{
			Cfg: config.TestScale(), RunCycles: fixtureC1Cycles, Classes: []string{"C1"},
		})
		if evalErr != nil {
			return
		}
		fixC2, evalErr = experiments.Evaluate(context.Background(), experiments.Options{
			Cfg: config.TestScale(), RunCycles: fixtureC2Cycles, Classes: []string{"C2"},
		})
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return fixC1, fixC2
}

// TestTable2 pins the Formula (6) storage overhead to the paper's 3.9%.
func TestTable2(t *testing.T) {
	o, err := core.ComputeOverhead(core.DefaultOverheadParams())
	if err != nil {
		t.Fatal(err)
	}
	if o.TagBits != 16 {
		t.Errorf("tag field %d bits, want 16 (Table 2)", o.TagBits)
	}
	if o.LRUBits != 4 {
		t.Errorf("LRU field %d bits, want 4", o.LRUBits)
	}
	if o.Sets != 1024 {
		t.Errorf("sets %d, want 1024", o.Sets)
	}
	if math.Abs(o.Percent()-3.9) > 0.05 {
		t.Errorf("overhead %.2f%%, paper reports 3.9%%", o.Percent())
	}
}

// TestTable3 pins the address-width / line-size grid. The paper rounds
// 2.01% up to 2.1%; we accept either rounding of the same arithmetic.
func TestTable3(t *testing.T) {
	cells, err := core.Table3()
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]float64{
		{32, 64}:  3.9,
		{64, 64}:  5.8,
		{32, 128}: 2.1,
		{64, 128}: 3.1,
	}
	for _, c := range cells {
		w := want[[2]int{c.AddressBits, c.BlockBytes}]
		if math.Abs(c.Percent-w) > 0.15 {
			t.Errorf("%d-bit / %dB: %.2f%%, paper reports %.1f%%",
				c.AddressBits, c.BlockBytes, c.Percent, w)
		}
	}
}

// TestFigure1AmmpShape: ~40% of ammp's sets demand 1-4 blocks while a
// large fraction demands beyond 2x the baseline associativity.
func TestFigure1AmmpShape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization run")
	}
	chz, err := experiments.Characterize(experiments.CharacterizeOptions{
		Benchmark: "ammp", Cfg: config.TestScale(),
		Intervals: 60, AccessesPerInterval: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := chz.MeanBucketSizes()
	if mean[0] < 0.28 || mean[0] > 0.55 {
		t.Errorf("ammp bucket 1~4 share %.2f, want ~0.40 (Figure 1)", mean[0])
	}
	if deep := mean[7]; deep < 0.30 {
		t.Errorf("ammp bucket >=29 share %.2f, want the deep-taker mass", deep)
	}
}

// TestFigure2VortexPhases: vortex's shallow-set share grows during its
// middle phase (sampling intervals ~40.4%-79.2% of the run) relative to
// the opening phase — the Figure 2 signature.
func TestFigure2VortexPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization run")
	}
	const intervals = 100
	chz, err := experiments.Characterize(experiments.CharacterizeOptions{
		Benchmark: "vortex", Cfg: config.TestScale(),
		Intervals: intervals, AccessesPerInterval: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	opening := chz.WindowBucketSizes(5, 40) // phase 1 (skip warm-up)
	middle := chz.WindowBucketSizes(45, 78) // the Figure 2 phase
	shallowOpen := opening[0] + opening[1]  // buckets 1~4 and 5~8
	shallowMid := middle[0] + middle[1]
	if shallowMid <= shallowOpen+0.03 {
		t.Errorf("vortex shallow share: opening %.3f -> middle %.3f; want a clear rise (Figure 2)",
			shallowOpen, shallowMid)
	}
}

// TestFigure3AppluShape: the streaming benchmark keeps essentially all
// sets in the 1-4 bucket.
func TestFigure3AppluShape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization run")
	}
	chz, err := experiments.Characterize(experiments.CharacterizeOptions{
		Benchmark: "applu", Cfg: config.TestScale(),
		Intervals: 40, AccessesPerInterval: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mean := chz.MeanBucketSizes()[0]; mean < 0.9 {
		t.Errorf("applu bucket 1~4 share %.2f, want ~1.0 (Figure 3)", mean)
	}
}

// TestFigure9Shape runs the evaluation on the two extreme classes and
// asserts the paper's qualitative orderings: in C1 (identical non-uniform
// applications) SNUG beats every baseline, with CC(Best) and DSR also at
// or above 1; in C2 (identical uniform applications) every cooperative
// scheme stays within noise of the baseline and the shared organization
// pays its NUCA tax.
func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	evC1, evC2 := evalFixture(t)
	row := func(ev *experiments.Evaluation, class string) map[string]float64 {
		fig, err := ev.Figure(metrics.MetricThroughput)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range fig.Classes {
			if c == class {
				out := map[string]float64{}
				for _, s := range experiments.FigureSchemes {
					out[s] = fig.Values[s][i]
				}
				return out
			}
		}
		t.Fatalf("class %s missing", class)
		return nil
	}

	c1 := row(evC1, "C1")
	if c1["SNUG"] <= c1["CC(Best)"] || c1["SNUG"] <= c1["DSR"] || c1["SNUG"] <= c1["L2S"] {
		t.Errorf("C1 ordering violated: %v (SNUG must lead — the set-level grouping class)", c1)
	}
	if c1["SNUG"] <= 1.01 {
		t.Errorf("C1 SNUG %.3f, want a clear gain over L2P", c1["SNUG"])
	}

	c2 := row(evC2, "C2")
	for _, s := range []string{"CC(Best)", "DSR", "SNUG"} {
		if c2[s] < 0.96 || c2[s] > 1.04 {
			t.Errorf("C2 %s = %.3f, want ~1.0 (no slack to exploit)", s, c2[s])
		}
	}
	if c2["L2S"] >= 1.0 {
		t.Errorf("C2 L2S = %.3f, want < 1 (NUCA tax without capacity relief)", c2["L2S"])
	}
}

// TestIndexFlipAblation: disabling the index-bit-flipping scheme must not
// improve SNUG on the C1 stress test, where flipping is the mechanism that
// finds complementary sets (paper §5). The with-flip side comes from the
// shared fixture; the without-flip side simulates only the runs the
// comparison needs (L2P baseline + SNUG) via the Schemes subset.
func TestIndexFlipAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run")
	}
	evC1, _ := evalFixture(t)
	withFig, err := evC1.Figure(metrics.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	with := withFig.Values["SNUG"][0]

	cfg := config.TestScale()
	cfg.SNUG.IndexFlip = false
	ev, err := experiments.Evaluate(context.Background(), experiments.Options{
		Cfg: cfg, RunCycles: fixtureC1Cycles, Classes: []string{"C1"},
		Schemes: []string{"SNUG"},
	})
	if err != nil {
		t.Fatal(err)
	}
	withoutFig, err := ev.Figure(metrics.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	without := withoutFig.Values["SNUG"][0]
	t.Logf("C1 SNUG with flip %.4f, without %.4f", with, without)
	if without > with+0.005 {
		t.Errorf("disabling index flipping improved C1 (%.4f -> %.4f)", with, without)
	}
}

// TestEvaluateDeterminism: the sweep engine seeds every run from its combo
// identity, so the evaluation's output is bit-identical for any worker
// count (the old fixed pool made this true by accident; now it is the
// engine's contract).
func TestEvaluateDeterminism(t *testing.T) {
	run := func(par int) []experiments.ComboResult {
		ev, err := experiments.Evaluate(context.Background(), experiments.Options{
			Cfg: config.TestScale(), RunCycles: 120_000, Parallelism: par,
			Classes: []string{"C1"}, Schemes: []string{"CC"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Combos
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Error("Evaluate output differs between Parallelism 1 and 4")
	}
}

// TestEvaluateResume: re-running an evaluation over its checkpoint store
// restores every run (no re-simulation) and reproduces the results exactly
// — which also pins that cmp.RunResult survives the JSON round trip.
func TestEvaluateResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "eval.sweep.json")
	opts := experiments.Options{
		Cfg: config.TestScale(), RunCycles: 120_000,
		Classes: []string{"C1"}, Schemes: []string{"SNUG"}, Checkpoint: ckpt,
	}
	first, err := experiments.Evaluate(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var last sweep.Progress
	opts.Progress = func(p sweep.Progress) { last = p }
	second, err := experiments.Evaluate(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if last.Restored != last.Total || last.Total == 0 {
		t.Errorf("resume restored %d of %d runs, want all", last.Restored, last.Total)
	}
	if !reflect.DeepEqual(first.Combos, second.Combos) {
		t.Error("resumed evaluation differs from the original")
	}

	// Same store under different options must be rejected, not mixed.
	opts.RunCycles = 240_000
	if _, err := experiments.Evaluate(context.Background(), opts); err == nil {
		t.Error("checkpoint from a different RunCycles accepted")
	}
}

// TestEvaluateCheckpointKeys pins the checkpoint-store key format: keys are
// "combo/spec" strings ("4xammp/CC(75%)"), stable across releases so that
// existing sweep stores keep resuming.
func TestEvaluateCheckpointKeys(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "keys.sweep.json")
	_, err := experiments.Evaluate(context.Background(), experiments.Options{
		Cfg: config.TestScale(), RunCycles: 60_000,
		Classes: []string{"C1"}, Schemes: []string{"CC"}, Checkpoint: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"4xammp/L2P"`, `"4xammp/CC(0%)"`, `"4xammp/CC(25%)"`,
		`"4xammp/CC(50%)"`, `"4xammp/CC(75%)"`, `"4xammp/CC(100%)"`,
		`"4xparser/CC(75%)"`, `"4xvortex/L2P"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("checkpoint store missing stable key %s", key)
		}
	}
}

// TestFigureRaggedData: a scheme present in only some combos must fail the
// figure computation instead of silently dropping the series (or skewing
// it) based on the first combo alone.
func TestFigureRaggedData(t *testing.T) {
	full := experiments.ComboResult{
		Combo:       workloads.Table8()[0],
		Comparisons: map[string]metrics.Comparison{"SNUG": {Scheme: "SNUG", ThroughputNorm: 1.1}},
	}
	empty := experiments.ComboResult{
		Combo:       workloads.Table8()[1],
		Comparisons: map[string]metrics.Comparison{},
	}

	ev := &experiments.Evaluation{Combos: []experiments.ComboResult{full, empty}}
	if _, err := ev.Figure(metrics.MetricThroughput); err == nil {
		t.Error("ragged data (scheme in first combo only) accepted")
	}
	// The order must not matter: a scheme missing from the FIRST combo but
	// present later is equally ragged, not an absent series.
	ev = &experiments.Evaluation{Combos: []experiments.ComboResult{empty, full}}
	if _, err := ev.Figure(metrics.MetricThroughput); err == nil {
		t.Error("ragged data (scheme missing from first combo) accepted")
	}
}

// TestEvaluateBaselineOnly: Schemes = ["L2P"] runs just the baseline (the
// option's documentation says L2P always runs, so naming only it is valid).
func TestEvaluateBaselineOnly(t *testing.T) {
	ev, err := experiments.Evaluate(context.Background(), experiments.Options{
		Cfg: config.TestScale(), RunCycles: 120_000,
		Classes: []string{"C1"}, Schemes: []string{"L2P"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range ev.Combos {
		if cr.Baseline.Cycles == 0 {
			t.Errorf("combo %s has no baseline run", cr.Combo.Name)
		}
		if len(cr.Comparisons) != 0 {
			t.Errorf("combo %s has comparisons %v without scheme runs", cr.Combo.Name, cr.Comparisons)
		}
	}
	fig, err := ev.Figure(metrics.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Schemes) != 0 {
		t.Errorf("baseline-only figure lists schemes %v", fig.Schemes)
	}
}

// TestEvaluateValidation covers option errors.
func TestEvaluateValidation(t *testing.T) {
	if _, err := experiments.Evaluate(context.Background(), experiments.Options{Cfg: config.TestScale()}); err == nil {
		t.Error("zero RunCycles accepted")
	}
	if _, err := experiments.Evaluate(context.Background(), experiments.Options{
		Cfg: config.TestScale(), RunCycles: 1000, Classes: []string{"C9"},
	}); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := experiments.Evaluate(context.Background(), experiments.Options{
		Cfg: config.TestScale(), RunCycles: 1000, Schemes: []string{"NOPE"},
	}); err == nil {
		t.Error("unknown scheme accepted")
	}
}
