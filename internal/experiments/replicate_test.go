package experiments_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"snug/internal/config"
	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/stats"
	"snug/internal/sweep"
)

// repOpts is the small replicated fixture: the C1 stress class, SNUG only,
// three replicates at a short run length.
func repOpts() experiments.Options {
	return experiments.Options{
		Cfg: config.TestScale(), RunCycles: 60_000,
		Classes: []string{"C1"}, Schemes: []string{"SNUG"}, Replicates: 3,
	}
}

// TestEvaluateReplicateKeys pins the replicated checkpoint key grammar:
// replicate 0 keeps the historic unsuffixed "combo/spec" keys byte-for-byte
// (so existing stores keep resuming), replicates 1+ append "@r<n>", and
// "@r0" never appears anywhere in a store.
func TestEvaluateReplicateKeys(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "reps.sweep.json")
	opt := repOpts()
	opt.Checkpoint = ckpt
	if _, err := experiments.Evaluate(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"4xammp/L2P"`, `"4xammp/SNUG"`, // replicate 0: today's exact keys
		`"4xammp/SNUG@r1"`, `"4xammp/SNUG@r2"`, `"4xparser/L2P@r2"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("checkpoint store missing key %s", key)
		}
	}
	if strings.Contains(string(raw), "@r0") {
		t.Error("checkpoint store contains an @r0 key; replicate 0 must stay unsuffixed")
	}
}

// TestEvaluateReplicatesShape: the evaluation carries one comparison set
// per replicate, the figures gain finite confidence intervals, and a
// single-replicate evaluation keeps CI-less output.
func TestEvaluateReplicatesShape(t *testing.T) {
	ev, err := experiments.Evaluate(context.Background(), repOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Replicates != 3 {
		t.Fatalf("Replicates = %d, want 3", ev.Replicates)
	}
	for _, cr := range ev.Combos {
		if len(cr.RepComparisons) != 3 || len(cr.RepCCBestPct) != 3 {
			t.Fatalf("combo %s has %d replicate comparisons, want 3", cr.Combo.Name, len(cr.RepComparisons))
		}
		if !reflect.DeepEqual(cr.RepComparisons[0], cr.Comparisons) {
			t.Errorf("combo %s: RepComparisons[0] differs from the legacy Comparisons", cr.Combo.Name)
		}
		for r, comps := range cr.RepComparisons {
			if _, ok := comps["SNUG"]; !ok {
				t.Errorf("combo %s replicate %d missing SNUG comparison", cr.Combo.Name, r)
			}
		}
	}
	fig, err := ev.Figure(metrics.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Replicates != 3 || fig.CI == nil {
		t.Fatalf("figure replicates=%d CI nil=%v, want 3 with intervals", fig.Replicates, fig.CI == nil)
	}
	for i := range fig.Classes {
		iv := fig.Cell("SNUG", i)
		if iv.Mean <= 0 || iv.Half < 0 || iv.N != 3 {
			t.Errorf("row %s interval %+v", fig.Classes[i], iv)
		}
	}

	opt := repOpts()
	opt.Replicates = 1
	single, err := experiments.Evaluate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	sfig, err := single.Figure(metrics.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if sfig.CI != nil || sfig.Replicates != 1 {
		t.Errorf("single-replicate figure has CI=%v replicates=%d, want point estimates", sfig.CI, sfig.Replicates)
	}
	// Replicate 0 IS the unreplicated run: means can differ (they average
	// three streams), but the underlying replicate-0 comparisons match.
	for i, cr := range single.Combos {
		if !reflect.DeepEqual(cr.Comparisons, ev.Combos[i].RepComparisons[0]) {
			t.Errorf("combo %s: unreplicated run differs from replicate 0", cr.Combo.Name)
		}
	}
}

// TestEvaluateReplicatesDeterminism: replicated evaluations — values AND
// confidence intervals — are bit-identical across worker counts.
func TestEvaluateReplicatesDeterminism(t *testing.T) {
	run := func(par int) experiments.ClassSeries {
		opt := repOpts()
		opt.Parallelism = par
		ev, err := experiments.Evaluate(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		fig, err := ev.Figure(metrics.MetricThroughput)
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Error("replicated figure differs between Parallelism 1 and 4")
	}
}

// TestEvaluateReplicatesResume: a store written by a single-replicate
// evaluation extends to a replicated one — the replicate-0 runs restore
// (same keys, same fingerprint), only replicates 1+ simulate — and
// replicate 0 of the result equals the original evaluation.
func TestEvaluateReplicatesResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "extend.sweep.json")
	opt := repOpts()
	opt.Replicates = 1
	opt.Checkpoint = ckpt
	single, err := experiments.Evaluate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.Replicates = 3
	var last sweep.Progress
	opt.Progress = func(p sweep.Progress) { last = p }
	replicated, err := experiments.Evaluate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := last.Total / 3; last.Restored != want {
		t.Errorf("restored %d of %d runs, want the %d replicate-0 runs", last.Restored, last.Total, want)
	}
	for i, cr := range replicated.Combos {
		if !reflect.DeepEqual(cr.Comparisons, single.Combos[i].Comparisons) {
			t.Errorf("combo %s: replicate 0 differs from the single-replicate store it restored", cr.Combo.Name)
		}
	}
}

// TestScalingReplicates: the scaling study accepts Replicates and reports
// interval-qualified series, deterministic across worker counts.
func TestScalingReplicates(t *testing.T) {
	run := func(par int) experiments.ScalingSeries {
		opt := scalingOpts()
		opt.Replicates = 2
		opt.Parallelism = par
		res, err := experiments.ScalingStudy(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		s, err := res.Series(metrics.MetricThroughput)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := run(1)
	if s.Replicates != 2 || s.CI == nil {
		t.Fatalf("series replicates=%d CI nil=%v, want 2 with intervals", s.Replicates, s.CI == nil)
	}
	if len(s.CI["SNUG"]) != len(s.Cores) {
		t.Fatalf("CI rows %d, want one per core count (%d)", len(s.CI["SNUG"]), len(s.Cores))
	}
	for i, half := range s.CI["SNUG"] {
		if half < 0 {
			t.Errorf("negative half-width %v at %d cores", half, s.Cores[i])
		}
	}
	if !reflect.DeepEqual(s, run(4)) {
		t.Error("replicated scaling series differs between Parallelism 1 and 4")
	}
}

// TestEvaluateLegacyFingerprint: a store fingerprinted by the release
// before the version token (plain "evaluate/cycles=.../cfg=..." header)
// still resumes — v1 changed no results, so refusing it would force a
// full re-simulation for nothing.
func TestEvaluateLegacyFingerprint(t *testing.T) {
	opt := repOpts()
	opt.Replicates = 1
	opt.Checkpoint = filepath.Join(t.TempDir(), "legacy.sweep.json")

	// Build the pre-v1 fingerprint exactly as the old release did: no
	// version token, cycle count, Mix64-FNV hash of the config JSON.
	cfgJSON, err := json.Marshal(opt.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy := fmt.Sprintf("evaluate/cycles=%d/cfg=%016x", opt.RunCycles, stats.HashString(string(cfgJSON)))
	s, err := sweep.OpenStore(opt.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFingerprint(legacy); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if _, err := experiments.Evaluate(context.Background(), opt); err != nil {
		t.Errorf("store with the pre-version-token fingerprint rejected: %v", err)
	}

	// A genuinely different configuration must still be refused.
	opt.RunCycles *= 2
	if _, err := experiments.Evaluate(context.Background(), opt); err == nil {
		t.Error("store from a different RunCycles accepted via the legacy path")
	}
}
