package experiments

import (
	"context"
	"fmt"
	"slices"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/faults"
	"snug/internal/metrics"
	"snug/internal/stats"
	"snug/internal/sweep"
)

// ScalingOptions configures the N-core scaling study.
type ScalingOptions struct {
	// BaseCfg is the quad-core system each point scales out from via
	// config.WithCores; it must have Cores == 4.
	BaseCfg config.System
	// CoreCounts are the evaluated widths, e.g. {4, 8, 16}. Each must be
	// a valid config.WithCores width.
	CoreCounts  []int
	RunCycles   int64
	Parallelism int
	Classes     []string // subset of {"C1".."C6"}; nil = all
	Schemes     []string // same semantics as Options.Schemes
	// Checkpoint is a sweep results-store path shared by every point: the
	// study runs as ONE sweep over all (width, combo, scheme) jobs, so an
	// interrupted study resumes mid-axis and a store warmed with some core
	// counts extends to more.
	Checkpoint string
	Progress   func(sweep.Progress)
	// Replicates has the same semantics as Options.Replicates: every
	// (width, combo, scheme) cell runs this many independently-seeded
	// times, and Series reports mean ± 95% CI per width.
	Replicates int
	// NoReplay has the same semantics as Options.NoReplay: disable the
	// trace record/replay cache and synthesize every run's streams live.
	NoReplay bool
	// Engine has the same semantics as Options.Engine: engine selection
	// never changes results, so it is excluded from fingerprints.
	Engine cmp.Engine
	// CPUBudget has sweep.Options.CPUBudget semantics: it keeps the
	// study's wide intra-run points (engineFor enables the epoch engine at
	// 8+ cores) from multiplying goroutines past the host when the sweep
	// itself is already parallel.
	CPUBudget int
	// FailurePolicy, Retry, Salvage, Sync and Faults have Options semantics:
	// the sweep failure model (fail-fast vs. run-everything, retry/backoff,
	// checkpoint salvage and fsync cadence) plus deterministic fault
	// injection. ContinueOnError matters most here — a multi-hour study
	// should not abandon every queued width because one cell failed.
	FailurePolicy sweep.FailurePolicy
	Retry         sweep.RetrySpec
	Salvage       bool
	Sync          int
	Faults        faults.Spec
}

// ScalingPoint is the evaluation at one core count.
type ScalingPoint struct {
	Cores  int
	Cfg    config.System // BaseCfg widened to Cores
	Combos []ComboResult
}

// ScalingResult is the full scaling-study dataset.
type ScalingResult struct {
	Options ScalingOptions
	Points  []ScalingPoint
	// Replicates is the effective replicate count behind every point
	// (max(1, Options.Replicates)).
	Replicates int
}

// scalingFingerprint identifies the study's result-changing inputs: the
// base configuration and run length. Core counts, classes and schemes are
// excluded for the same reason Evaluate excludes Classes/Schemes — they
// select which jobs run, not what a job computes — so a store warmed with
// {4,8} serves a later {4,8,16} study.
// Like fingerprint, it also returns the accepted-on-resume fingerprints of
// older releases whose results remain valid.
func scalingFingerprint(opt ScalingOptions) (fp string, legacy []string, err error) {
	h, err := cfgHash(opt.BaseCfg)
	if err != nil {
		return "", nil, err
	}
	return fmt.Sprintf("scaling/v%d/cycles=%d/cfg=%s", fingerprintVersion, opt.RunCycles, h),
		[]string{fmt.Sprintf("scaling/cycles=%d/cfg=%s", opt.RunCycles, h)}, nil
}

// ScalingStudy evaluates every selected scheme across core counts: for each
// width, the class-consistent scale-out combinations (workloads.ScaleOut)
// run under the L2P baseline plus the selected schemes, all through one
// sweep. Seeds pair per (width, combo): scale-out combo names are unique
// per width, so every scheme at one width sees identical instruction
// streams while widths draw independent streams. Results are bit-identical
// for any Parallelism. Canceling ctx drains and checkpoints in-flight runs
// before returning, like Evaluate.
func ScalingStudy(ctx context.Context, opt ScalingOptions) (*ScalingResult, error) {
	if opt.RunCycles <= 0 {
		return nil, fmt.Errorf("experiments: RunCycles must be positive")
	}
	if len(opt.CoreCounts) == 0 {
		return nil, fmt.Errorf("experiments: scaling study needs at least one core count")
	}
	if opt.BaseCfg.Cores != 4 {
		return nil, fmt.Errorf("experiments: scaling BaseCfg has %d cores, want the quad-core base", opt.BaseCfg.Cores)
	}
	selected, err := selectSchemes(opt.Schemes)
	if err != nil {
		return nil, err
	}
	specs := specsFor(selected)
	reps := opt.Replicates
	if reps < 1 {
		reps = 1
	}

	res := &ScalingResult{Options: opt, Points: make([]ScalingPoint, len(opt.CoreCounts)), Replicates: reps}
	var cache *streamCache
	if !opt.NoReplay {
		cache = newStreamCache()
	}
	var jobs []sweep.Job
	seen := map[int]bool{}
	for i, n := range opt.CoreCounts {
		if seen[n] {
			return nil, fmt.Errorf("experiments: duplicate core count %d", n)
		}
		seen[n] = true
		cfg, err := config.WithCores(opt.BaseCfg, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		combos, err := selectCombos(opt.Classes, n)
		if err != nil {
			return nil, err
		}
		if len(combos) == 0 {
			return nil, fmt.Errorf("experiments: no combos selected for classes %v", opt.Classes)
		}
		res.Points[i] = ScalingPoint{Cores: n, Cfg: cfg, Combos: make([]ComboResult, len(combos))}
		eng := engineFor(opt.Engine, n)
		for j, combo := range combos {
			res.Points[i].Combos[j] = ComboResult{Combo: combo}
			jobs = comboJobs(jobs, cache, cfg, combo, specs, opt.RunCycles, eng)
		}
	}

	fp, legacy, err := scalingFingerprint(opt)
	if err != nil {
		return nil, err
	}
	results, err := sweep.Run(ctx, sweep.Options{
		Parallelism:        opt.Parallelism,
		CPUBudget:          opt.CPUBudget,
		BaseSeed:           opt.BaseCfg.Seed,
		Checkpoint:         opt.Checkpoint,
		Salvage:            opt.Salvage,
		Sync:               opt.Sync,
		Fingerprint:        fp,
		AcceptFingerprints: legacy,
		Replicates:         reps,
		FailurePolicy:      opt.FailurePolicy,
		Retry:              opt.Retry,
		PutHook:            opt.Faults.PutHook(opt.BaseCfg.Seed),
		OnProgress:         opt.Progress,
	}, opt.Faults.Wrap(opt.BaseCfg.Seed, jobs))
	if err != nil {
		return nil, evalErr(err)
	}

	for i := range res.Points {
		for j := range res.Points[i].Combos {
			if err := res.Points[i].Combos[j].collect(results, selected, reps); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// engineFor picks the stepping engine for one scaling-study width: wide
// points (8+ cores) default to the intra-run epoch engine, whose per-core
// goroutines pay off exactly where the serial engine's single-threaded
// stepping becomes the study's wall-clock bottleneck. Narrower points keep
// the caller's engine untouched, and an explicit Intra request is never
// downgraded. Engine selection is bit-identical by construction (the epoch
// engine falls back to serial unless the scheme is epoch-safe), so this
// changes wall-clock only, never results or fingerprints.
func engineFor(base cmp.Engine, cores int) cmp.Engine {
	if cores >= 8 {
		base.Intra = true
	}
	return base
}

// ScalingSeries is one metric's scaling table: per core count, per scheme,
// the cross-class average (the figures' AVG row) at that width — averaged
// across replicates, with 95% confidence half-widths when replicated.
type ScalingSeries struct {
	Metric  metrics.MetricKind
	Schemes []string             // column labels present, in FigureSchemes order
	Cores   []int                // row labels
	Values  map[string][]float64 // scheme label -> mean value per core count
	// CI mirrors Values with each cell's 95% confidence half-width; nil for
	// single-replicate studies.
	CI map[string][]float64
	// Replicates is the replicate count behind every cell (1 when CI is nil).
	Replicates int
}

// Cell returns row i of the scheme's series as a mean-with-interval.
func (s ScalingSeries) Cell(scheme string, i int) stats.Interval {
	iv := stats.Interval{Mean: s.Values[scheme][i], N: s.Replicates}
	if s.CI != nil {
		iv.Half = s.CI[scheme][i]
	}
	if iv.N < 1 {
		iv.N = 1
	}
	return iv
}

// Series computes the scaling table for the chosen metric. Every point must
// expose the same scheme set; ragged data across points is an error.
func (r *ScalingResult) Series(metric metrics.MetricKind) (ScalingSeries, error) {
	reps := r.Replicates
	if reps < 1 {
		reps = 1
	}
	s := ScalingSeries{Metric: metric, Values: make(map[string][]float64), Replicates: reps}
	if reps > 1 {
		s.CI = make(map[string][]float64)
	}
	for i, p := range r.Points {
		ev := Evaluation{Combos: p.Combos, Replicates: reps}
		cs, err := ev.Figure(metric)
		if err != nil {
			return ScalingSeries{}, fmt.Errorf("at %d cores: %w", p.Cores, err)
		}
		if i == 0 {
			s.Schemes = cs.Schemes
		} else if !slices.Equal(s.Schemes, cs.Schemes) {
			return ScalingSeries{}, fmt.Errorf(
				"experiments: scheme sets differ across core counts (%v at %d cores vs %v at %d cores)",
				s.Schemes, r.Points[0].Cores, cs.Schemes, p.Cores)
		}
		s.Cores = append(s.Cores, p.Cores)
		avgRow := len(cs.Classes) - 1 // the AVG row
		for _, scheme := range cs.Schemes {
			s.Values[scheme] = append(s.Values[scheme], cs.Values[scheme][avgRow])
			if s.CI != nil {
				s.CI[scheme] = append(s.CI[scheme], cs.CI[scheme][avgRow])
			}
		}
	}
	return s, nil
}
