// Package addr provides address arithmetic shared by every cache level:
// block/set/tag decomposition, reconstruction of addresses from (tag, index)
// pairs, per-core address-space separation for multiprogrammed workloads,
// and bank interleaving for the shared-L2 (L2S) organization.
//
// The paper (Table 2/Table 4) uses 32-bit physical addresses, 64-byte blocks
// and 1024-set L2 caches. All of those are parameters here; the arithmetic
// itself is width-agnostic and carried in uint64.
package addr

import "fmt"

// Addr is a byte address. Block addresses are Addr values with the offset
// bits cleared.
type Addr uint64

// coreShift is the bit position where the owning core's ID is folded into
// an address. Multiprogrammed workloads have disjoint address spaces (the
// paper's stress tests explicitly exclude data sharing), which we guarantee
// by giving each core a distinct high-order bit pattern. Bit 40 is far above
// the 32-bit addresses the paper configures, so tags remain unique across
// cores while the low-order set-index arithmetic is unaffected.
const coreShift = 40

// ForCore returns a rebased into core's private address space.
func ForCore(core int, a Addr) Addr {
	return a | Addr(core+1)<<coreShift
}

// Core extracts the core ID encoded by ForCore, or -1 if none.
func Core(a Addr) int {
	return int(a>>coreShift) - 1
}

// Geometry describes the address mapping of one cache array: block size and
// number of sets. It precomputes shift/mask values so the hot-path methods
// are branch-free.
type Geometry struct {
	blockBytes int
	sets       int
	offBits    uint
	idxBits    uint
	idxMask    uint64
}

// NewGeometry builds a Geometry. blockBytes and sets must be powers of two.
func NewGeometry(blockBytes, sets int) (Geometry, error) {
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		return Geometry{}, fmt.Errorf("addr: block size %d is not a positive power of two", blockBytes)
	}
	if sets <= 0 || sets&(sets-1) != 0 {
		return Geometry{}, fmt.Errorf("addr: set count %d is not a positive power of two", sets)
	}
	g := Geometry{
		blockBytes: blockBytes,
		sets:       sets,
		offBits:    uint(log2(blockBytes)),
		idxBits:    uint(log2(sets)),
	}
	g.idxMask = uint64(sets - 1)
	return g, nil
}

// MustGeometry is NewGeometry but panics on invalid parameters. Intended for
// package-level defaults and tests where the parameters are constants.
func MustGeometry(blockBytes, sets int) Geometry {
	g, err := NewGeometry(blockBytes, sets)
	if err != nil {
		panic(err)
	}
	return g
}

// BlockBytes returns the block size in bytes.
func (g Geometry) BlockBytes() int { return g.blockBytes }

// Sets returns the number of sets.
func (g Geometry) Sets() int { return g.sets }

// OffsetBits returns the number of block-offset bits.
func (g Geometry) OffsetBits() uint { return g.offBits }

// IndexBits returns the number of set-index bits.
func (g Geometry) IndexBits() uint { return g.idxBits }

// Index returns the set index of a.
func (g Geometry) Index(a Addr) uint32 {
	return uint32((uint64(a) >> g.offBits) & g.idxMask)
}

// Tag returns the tag of a: every address bit above the index field.
func (g Geometry) Tag(a Addr) uint64 {
	return uint64(a) >> (g.offBits + g.idxBits)
}

// Block returns a with the offset bits cleared (the block address).
func (g Geometry) Block(a Addr) Addr {
	return a &^ Addr(g.blockBytes-1)
}

// Rebuild reconstructs the block address for a (tag, index) pair. It is the
// inverse of Tag/Index composition for block-aligned addresses, and is used
// by the index-bit-flipping scheme to recover a cooperatively cached block's
// original address from its stored tag and the flipped set index.
func (g Geometry) Rebuild(tag uint64, index uint32) Addr {
	return Addr(tag<<(g.offBits+g.idxBits) | uint64(index)<<g.offBits)
}

// FlipLastIndexBit returns the set index with its least-significant bit
// flipped — the pairing relation of the SNUG index-bit-flipping scheme
// (paper §3.2): peer sets i and i^1 form a potential spill/receive group.
func FlipLastIndexBit(index uint32) uint32 { return index ^ 1 }

// Interleave describes block-granularity bank interleaving for a shared
// cache: the bank number comes from the address bits directly above the
// block offset, and the per-bank set index from the bits above those.
type Interleave struct {
	banks    int
	bankBits uint
	geom     Geometry
}

// NewInterleave constructs bank interleaving over banks banks of the given
// per-bank geometry. banks must be a power of two.
func NewInterleave(banks int, perBank Geometry) (Interleave, error) {
	if banks <= 0 || banks&(banks-1) != 0 {
		return Interleave{}, fmt.Errorf("addr: bank count %d is not a positive power of two", banks)
	}
	return Interleave{banks: banks, bankBits: uint(log2(banks)), geom: perBank}, nil
}

// MustInterleave is NewInterleave but panics on invalid parameters.
func MustInterleave(banks int, perBank Geometry) Interleave {
	il, err := NewInterleave(banks, perBank)
	if err != nil {
		panic(err)
	}
	return il
}

// Banks returns the number of banks.
func (il Interleave) Banks() int { return il.banks }

// Bank returns the bank holding address a.
func (il Interleave) Bank(a Addr) int {
	return int((uint64(a) >> il.geom.offBits) & uint64(il.banks-1))
}

// Index returns the set index of a within its bank.
func (il Interleave) Index(a Addr) uint32 {
	return uint32((uint64(a) >> (il.geom.offBits + il.bankBits)) & il.geom.idxMask)
}

// Tag returns the tag of a under the interleaved mapping.
func (il Interleave) Tag(a Addr) uint64 {
	return uint64(a) >> (il.geom.offBits + il.bankBits + il.geom.idxBits)
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
