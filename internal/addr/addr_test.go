package addr

import (
	"testing"
	"testing/quick"
)

func TestGeometryDecomposition(t *testing.T) {
	g := MustGeometry(64, 1024) // the Table 4 L2 slice
	if g.OffsetBits() != 6 || g.IndexBits() != 10 {
		t.Fatalf("got offset=%d index=%d bits, want 6/10", g.OffsetBits(), g.IndexBits())
	}
	a := Addr(0xDEAD_BEEF)
	if got, want := g.Index(a), uint32((0xDEADBEEF>>6)&1023); got != want {
		t.Errorf("Index = %d, want %d", got, want)
	}
	if got, want := g.Tag(a), uint64(0xDEADBEEF>>16); got != want {
		t.Errorf("Tag = %#x, want %#x", got, want)
	}
	if got, want := g.Block(a), Addr(0xDEADBEEF&^63); got != want {
		t.Errorf("Block = %#x, want %#x", got, want)
	}
}

func TestGeometryRebuildRoundTrip(t *testing.T) {
	g := MustGeometry(64, 1024)
	f := func(raw uint64) bool {
		a := g.Block(Addr(raw))
		return g.Rebuild(g.Tag(a), g.Index(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ block, sets int }{
		{0, 1024}, {63, 1024}, {64, 0}, {64, 1000}, {-64, 16}, {64, -4},
	} {
		if _, err := NewGeometry(c.block, c.sets); err == nil {
			t.Errorf("NewGeometry(%d, %d) succeeded, want error", c.block, c.sets)
		}
	}
}

func TestForCoreDisjointAddressSpaces(t *testing.T) {
	g := MustGeometry(64, 1024)
	a := Addr(0x12345)
	seenTags := map[uint64]bool{}
	for core := 0; core < 4; core++ {
		pa := ForCore(core, a)
		if Core(pa) != core {
			t.Errorf("Core(ForCore(%d, a)) = %d", core, Core(pa))
		}
		// The set index must be unaffected; the tag must be unique per core.
		if g.Index(pa) != g.Index(a) {
			t.Errorf("core %d: index changed %d -> %d", core, g.Index(a), g.Index(pa))
		}
		tag := g.Tag(pa)
		if seenTags[tag] {
			t.Errorf("core %d: tag %#x collides with another core", core, tag)
		}
		seenTags[tag] = true
	}
}

func TestFlipLastIndexBitPairsSets(t *testing.T) {
	for _, c := range []struct{ in, want uint32 }{
		{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1022, 1023}, {1023, 1022},
	} {
		if got := FlipLastIndexBit(c.in); got != c.want {
			t.Errorf("FlipLastIndexBit(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// Flipping is an involution.
	f := func(idx uint32) bool { return FlipLastIndexBit(FlipLastIndexBit(idx)) == idx }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveBanking(t *testing.T) {
	g := MustGeometry(64, 1024)
	il := MustInterleave(4, g)
	if il.Banks() != 4 {
		t.Fatalf("Banks = %d", il.Banks())
	}
	// Consecutive blocks round-robin across banks.
	for i := 0; i < 16; i++ {
		a := Addr(i * 64)
		if got, want := il.Bank(a), i%4; got != want {
			t.Errorf("Bank(block %d) = %d, want %d", i, got, want)
		}
	}
	// Same block -> same bank regardless of offset.
	if il.Bank(0x1000) != il.Bank(0x103F) {
		t.Error("offsets within a block changed the bank")
	}
}

func TestInterleaveRejectsBadBankCount(t *testing.T) {
	g := MustGeometry(64, 64)
	for _, banks := range []int{0, 3, -2} {
		if _, err := NewInterleave(banks, g); err == nil {
			t.Errorf("NewInterleave(%d) succeeded, want error", banks)
		}
	}
}
