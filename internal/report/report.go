// Package report renders experiment results as aligned ASCII tables and
// CSV, in the shape of the paper's figures: one row per workload class plus
// the average, one column per scheme (Figures 9–11); one row per sampling-
// interval window, one column per demand bucket (Figures 1–3).
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"snug/internal/experiments"
	"snug/internal/stackdist"
	"snug/internal/sweep"
)

// csvHeader expands scheme columns with a "<scheme>_ci95" half-width column
// each when the series is replicated; single-replicate CSV is unchanged.
func csvHeader(first string, schemes []string, replicated bool) string {
	cols := []string{first}
	for _, s := range schemes {
		cols = append(cols, s)
		if replicated {
			cols = append(cols, s+"_ci95")
		}
	}
	return strings.Join(cols, ",")
}

// csvCells renders one row's value (and, when replicated, half-width)
// columns at CSV precision.
func csvCells(schemes []string, values, ci map[string][]float64, i int) string {
	var vals []string
	for _, s := range schemes {
		vals = append(vals, fmt.Sprintf("%.4f", values[s][i]))
		if ci != nil {
			vals = append(vals, fmt.Sprintf("%.4f", ci[s][i]))
		}
	}
	return strings.Join(vals, ",")
}

// WriteFigure renders a Figures 9–11 dataset as an aligned table. Columns
// follow the series' scheme list, so partial evaluations (Options.Schemes)
// render cleanly; replicated series render each cell as mean ±95% CI.
func WriteFigure(w io.Writer, title string, cs experiments.ClassSeries) error {
	schemes := cs.Schemes
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if cs.Replicates > 1 {
		if _, err := fmt.Fprintf(w, "(mean ±95%% CI over %d replicates)\n", cs.Replicates); err != nil {
			return err
		}
	}
	header := append([]string{"class"}, schemes...)
	rows := [][]string{header}
	for i, class := range cs.Classes {
		row := []string{class}
		for _, s := range schemes {
			row = append(row, cs.Cell(s, i).String())
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

// WriteFigureCSV renders the same dataset as CSV; replicated series gain a
// "<scheme>_ci95" half-width column per scheme.
func WriteFigureCSV(w io.Writer, cs experiments.ClassSeries) error {
	if _, err := fmt.Fprintln(w, csvHeader("class", cs.Schemes, cs.CI != nil)); err != nil {
		return err
	}
	for i, class := range cs.Classes {
		if _, err := fmt.Fprintf(w, "%s,%s\n", class, csvCells(cs.Schemes, cs.Values, cs.CI, i)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCombos renders per-combo detail: normalized throughput per scheme
// and the CC(Best) spill probability chosen.
func WriteCombos(w io.Writer, ev *experiments.Evaluation) error {
	rows := [][]string{{"class", "combo", "L2S", "CC(Best)", "ccPct", "DSR", "SNUG"}}
	norm := func(cr experiments.ComboResult, scheme string) string {
		c, ok := cr.Comparisons[scheme]
		if !ok {
			return "-" // scheme not in this evaluation's subset
		}
		return fmt.Sprintf("%.3f", c.ThroughputNorm)
	}
	for _, cr := range ev.Combos {
		pct := "-"
		if cr.CCBestPct >= 0 {
			pct = fmt.Sprintf("%d%%", cr.CCBestPct)
		}
		rows = append(rows, []string{
			cr.Combo.Class, cr.Combo.Name,
			norm(cr, "L2S"), norm(cr, "CC(Best)"), pct, norm(cr, "DSR"), norm(cr, "SNUG"),
		})
	}
	return writeAligned(w, rows)
}

// WriteScaling renders a scaling-study series as an aligned table: one row
// per core count, one column per scheme, each cell the cross-class average
// at that width (mean ±95% CI when replicated).
func WriteScaling(w io.Writer, title string, s experiments.ScalingSeries) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if s.Replicates > 1 {
		if _, err := fmt.Fprintf(w, "(mean ±95%% CI over %d replicates)\n", s.Replicates); err != nil {
			return err
		}
	}
	rows := [][]string{append([]string{"cores"}, s.Schemes...)}
	for i, n := range s.Cores {
		row := []string{fmt.Sprintf("%d", n)}
		for _, scheme := range s.Schemes {
			row = append(row, s.Cell(scheme, i).String())
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

// WriteScalingCSV renders the same dataset as CSV; replicated series gain a
// "<scheme>_ci95" half-width column per scheme.
func WriteScalingCSV(w io.Writer, s experiments.ScalingSeries) error {
	if _, err := fmt.Fprintln(w, csvHeader("cores", s.Schemes, s.CI != nil)); err != nil {
		return err
	}
	for i, n := range s.Cores {
		if _, err := fmt.Fprintf(w, "%d,%s\n", n, csvCells(s.Schemes, s.Values, s.CI, i)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCharacterization renders a Figures 1–3 dataset: bucket shares
// averaged over windows of sampling intervals (10 windows), ending with the
// whole-run mean — a textual rendering of the stacked-area figures.
func WriteCharacterization(w io.Writer, title string, c *stackdist.Characterization) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	n := c.Intervals()
	if n == 0 {
		_, err := fmt.Fprintln(w, "(no intervals)")
		return err
	}
	header := append([]string{"intervals"}, c.Labels...)
	rows := [][]string{header}
	windows := 10
	if n < windows {
		windows = n
	}
	for wi := 0; wi < windows; wi++ {
		from := wi * n / windows
		to := (wi + 1) * n / windows
		row := []string{fmt.Sprintf("%d-%d", from+1, to)}
		for j := 0; j < c.M; j++ {
			row = append(row, fmt.Sprintf("%5.1f%%", c.BucketOver[j].WindowMean(from, to)*100))
		}
		rows = append(rows, row)
	}
	mean := []string{"mean"}
	for _, v := range c.MeanBucketSizes() {
		mean = append(mean, fmt.Sprintf("%5.1f%%", v*100))
	}
	rows = append(rows, mean)
	return writeAligned(w, rows)
}

// WriteCharacterizationCSV emits the full per-interval series.
func WriteCharacterizationCSV(w io.Writer, c *stackdist.Characterization) error {
	if _, err := fmt.Fprintf(w, "interval,%s\n", strings.Join(c.Labels, ",")); err != nil {
		return err
	}
	for i := 0; i < c.Intervals(); i++ {
		vals := make([]string, c.M)
		for j := 0; j < c.M; j++ {
			vals[j] = fmt.Sprintf("%.4f", c.BucketOver[j].Values[i])
		}
		if _, err := fmt.Fprintf(w, "%d,%s\n", i+1, strings.Join(vals, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ProgressLine renders a sweep progress snapshot as one log line, e.g.
// "sweep 12/63 (19%) elapsed 5s eta 21s — 4xammp/SNUG [8 restored]".
func ProgressLine(p sweep.Progress) string {
	var b strings.Builder
	pct := 0
	if p.Total > 0 {
		pct = 100 * p.Done / p.Total
	}
	fmt.Fprintf(&b, "sweep %d/%d (%d%%) elapsed %s", p.Done, p.Total, pct, p.Elapsed.Round(time.Second))
	if p.ETA > 0 {
		fmt.Fprintf(&b, " eta %s", p.ETA.Round(time.Second))
	}
	if p.Key != "" {
		fmt.Fprintf(&b, " — %s", p.Key)
	}
	if p.Restored > 0 {
		fmt.Fprintf(&b, " [%d restored]", p.Restored)
	}
	return b.String()
}

// writeAligned prints rows with columns padded to equal width.
func writeAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}
