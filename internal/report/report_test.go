package report

import (
	"strings"
	"testing"
	"time"

	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/stackdist"
	"snug/internal/sweep"
)

func sampleSeries() experiments.ClassSeries {
	cs := experiments.ClassSeries{
		Metric:  metrics.MetricThroughput,
		Schemes: experiments.FigureSchemes,
		Classes: []string{"C1", "AVG"},
		Values:  map[string][]float64{},
	}
	for i, s := range experiments.FigureSchemes {
		cs.Values[s] = []float64{1.0 + float64(i)/100, 1.0 + float64(i)/200}
	}
	return cs
}

func TestWriteFigure(t *testing.T) {
	var b strings.Builder
	if err := WriteFigure(&b, "Figure 9", sampleSeries()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 9", "C1", "AVG", "SNUG", "CC(Best)", "1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteFigureCSV(&b, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "class,") {
		t.Errorf("CSV header %q", lines[0])
	}
}

func TestProgressLine(t *testing.T) {
	line := ProgressLine(sweep.Progress{
		Done: 12, Total: 63, Restored: 8, Key: "4xammp/SNUG",
		Elapsed: 5 * time.Second, ETA: 21 * time.Second,
	})
	for _, want := range []string{"12/63", "(19%)", "5s", "eta 21s", "4xammp/SNUG", "8 restored"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	if empty := ProgressLine(sweep.Progress{}); !strings.Contains(empty, "0/0") {
		t.Errorf("zero progress line %q", empty)
	}
}

func TestWriteCharacterization(t *testing.T) {
	c := stackdist.NewCharacterization(32, 8)
	for i := 0; i < 20; i++ {
		c.Add(stackdist.IntervalResult{
			Interval:    i + 1,
			BucketSizes: []float64{0.4, 0.1, 0, 0, 0, 0, 0, 0.5},
			MeanDemand:  17, TakerFraction: 0.5,
		})
	}
	var b strings.Builder
	if err := WriteCharacterization(&b, "Figure 1", c); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 1", "1~4", ">=29", "mean", "40.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Empty characterization must not panic.
	var e strings.Builder
	if err := WriteCharacterization(&e, "x", stackdist.NewCharacterization(32, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCharacterizationCSV(t *testing.T) {
	c := stackdist.NewCharacterization(32, 8)
	c.Add(stackdist.IntervalResult{Interval: 1, BucketSizes: make([]float64, 8)})
	var b strings.Builder
	if err := WriteCharacterizationCSV(&b, c); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(b.String()), "\n"); len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want 2", len(lines))
	}
}
