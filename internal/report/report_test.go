package report

import (
	"strings"
	"testing"
	"time"

	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/stackdist"
	"snug/internal/sweep"
)

func sampleSeries() experiments.ClassSeries {
	cs := experiments.ClassSeries{
		Metric:  metrics.MetricThroughput,
		Schemes: experiments.FigureSchemes,
		Classes: []string{"C1", "AVG"},
		Values:  map[string][]float64{},
	}
	for i, s := range experiments.FigureSchemes {
		cs.Values[s] = []float64{1.0 + float64(i)/100, 1.0 + float64(i)/200}
	}
	return cs
}

func TestWriteFigure(t *testing.T) {
	var b strings.Builder
	if err := WriteFigure(&b, "Figure 9", sampleSeries()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 9", "C1", "AVG", "SNUG", "CC(Best)", "1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteFigureCSV(&b, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "class,") {
		t.Errorf("CSV header %q", lines[0])
	}
}

func TestProgressLine(t *testing.T) {
	line := ProgressLine(sweep.Progress{
		Done: 12, Total: 63, Restored: 8, Key: "4xammp/SNUG",
		Elapsed: 5 * time.Second, ETA: 21 * time.Second,
	})
	for _, want := range []string{"12/63", "(19%)", "5s", "eta 21s", "4xammp/SNUG", "8 restored"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	if empty := ProgressLine(sweep.Progress{}); !strings.Contains(empty, "0/0") {
		t.Errorf("zero progress line %q", empty)
	}
}

func TestWriteCharacterization(t *testing.T) {
	c := stackdist.NewCharacterization(32, 8)
	for i := 0; i < 20; i++ {
		c.Add(stackdist.IntervalResult{
			Interval:    i + 1,
			BucketSizes: []float64{0.4, 0.1, 0, 0, 0, 0, 0, 0.5},
			MeanDemand:  17, TakerFraction: 0.5,
		})
	}
	var b strings.Builder
	if err := WriteCharacterization(&b, "Figure 1", c); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 1", "1~4", ">=29", "mean", "40.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Empty characterization must not panic.
	var e strings.Builder
	if err := WriteCharacterization(&e, "x", stackdist.NewCharacterization(32, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCharacterizationCSV(t *testing.T) {
	c := stackdist.NewCharacterization(32, 8)
	c.Add(stackdist.IntervalResult{Interval: 1, BucketSizes: make([]float64, 8)})
	var b strings.Builder
	if err := WriteCharacterizationCSV(&b, c); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(b.String()), "\n"); len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want 2", len(lines))
	}
}

// replicatedSeries is sampleSeries plus replicate spread.
func replicatedSeries() experiments.ClassSeries {
	cs := sampleSeries()
	cs.Replicates = 5
	cs.CI = map[string][]float64{}
	for _, s := range experiments.FigureSchemes {
		cs.CI[s] = []float64{0.013, 0.002}
	}
	return cs
}

// TestWriteFigureReplicated: replicated series render mean ±95% CI cells
// and declare the replicate count.
func TestWriteFigureReplicated(t *testing.T) {
	var b strings.Builder
	if err := WriteFigure(&b, "Figure 9", replicatedSeries()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"±95% CI over 5 replicates", "1.000 ±0.013", "±0.002"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteFigureCSVReplicated: replicated CSV gains a _ci95 column per
// scheme; single-replicate CSV stays column-identical to before.
func TestWriteFigureCSVReplicated(t *testing.T) {
	var b strings.Builder
	if err := WriteFigureCSV(&b, replicatedSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if want := "class,L2S,L2S_ci95,CC(Best),CC(Best)_ci95,DSR,DSR_ci95,SNUG,SNUG_ci95"; lines[0] != want {
		t.Errorf("replicated CSV header %q, want %q", lines[0], want)
	}
	if !strings.Contains(lines[1], ",0.0130,") {
		t.Errorf("replicated CSV row missing half-width: %q", lines[1])
	}

	var s strings.Builder
	if err := WriteFigureCSV(&s, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	if header := strings.SplitN(s.String(), "\n", 2)[0]; strings.Contains(header, "ci95") {
		t.Errorf("single-replicate CSV header gained CI columns: %q", header)
	}
}

// TestWriteScalingReplicated covers the interval rendering of the scaling
// table and its CSV.
func TestWriteScalingReplicated(t *testing.T) {
	s := experiments.ScalingSeries{
		Metric:     metrics.MetricThroughput,
		Schemes:    []string{"SNUG"},
		Cores:      []int{4, 8},
		Values:     map[string][]float64{"SNUG": {1.05, 1.08}},
		CI:         map[string][]float64{"SNUG": {0.01, 0.02}},
		Replicates: 3,
	}
	var b strings.Builder
	if err := WriteScaling(&b, "Scaling", s); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"over 3 replicates", "1.050 ±0.010", "1.080 ±0.020"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("output missing %q:\n%s", want, b.String())
		}
	}
	var c strings.Builder
	if err := WriteScalingCSV(&c, s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.String(), "cores,SNUG,SNUG_ci95\n") {
		t.Errorf("scaling CSV header wrong:\n%s", c.String())
	}
}
