// Package workloads encodes the paper's evaluation matrix — the Table 6
// benchmark classification, the Table 7 workload-combination classes C1–C6,
// and the 21 concrete quad-core combinations of Table 8 — plus the
// class-consistent scale-out composer that widens the matrix to 8-, 16- or
// any 4·k-core combinations for the scaling study.
package workloads

import (
	"fmt"
	"slices"
	"strings"

	"snug/internal/trace"
)

// Combo is one workload combination: one benchmark per core.
type Combo struct {
	Class string   // "C1".."C6"
	Name  string   // short identifier, e.g. "4xammp" or "ammp+parser+bzip2+mcf"
	Cores []string // benchmark per core
}

// Width returns the combo's core count.
func (c Combo) Width() int { return len(c.Cores) }

// ComboName derives a combo's canonical name from its per-core benchmark
// list: runs of identical consecutive benchmarks compress to "NxBench", and
// runs join with "+". The quad-core Table 8 names ("4xammp",
// "ammp+parser+bzip2+mcf") are unchanged by this rule; wider combos get
// names like "8xammp" and "2xammp+2xparser+2xbzip2+2xmcf". These names key
// checkpoint stores, so the rule must stay stable across releases.
func ComboName(cores []string) string {
	var parts []string
	for i := 0; i < len(cores); {
		j := i
		for j < len(cores) && cores[j] == cores[i] {
			j++
		}
		if n := j - i; n > 1 {
			parts = append(parts, fmt.Sprintf("%dx%s", n, cores[i]))
		} else {
			parts = append(parts, cores[i])
		}
		i = j
	}
	return strings.Join(parts, "+")
}

// Table8 returns the paper's 21 quad-core workload combinations grouped by
// class.
//
// C1/C2 are stress tests: four identical applications with capacity sharing
// but no data sharing (each instance gets a disjoint address space, which
// internal/addr guarantees). C3–C6 mix two class A applications with class
// B/C/D applications per Table 7. The paper's Table 8 lists "4 vertex";
// that is its typo for vortex.
func Table8() []Combo {
	mk := func(class string, cores ...string) Combo {
		return Combo{Class: class, Name: ComboName(cores), Cores: cores}
	}
	return []Combo{
		// C1: stress tests from class A.
		mk("C1", "ammp", "ammp", "ammp", "ammp"),
		mk("C1", "parser", "parser", "parser", "parser"),
		mk("C1", "vortex", "vortex", "vortex", "vortex"),
		// C2: stress tests from class C.
		mk("C2", "vpr", "vpr", "vpr", "vpr"),
		mk("C2", "bzip2", "bzip2", "bzip2", "bzip2"),
		mk("C2", "mcf", "mcf", "mcf", "mcf"),
		mk("C2", "art", "art", "art", "art"),
		// C3: 2×A + 2×C.
		mk("C3", "ammp", "parser", "bzip2", "mcf"),
		mk("C3", "parser", "vortex", "mcf", "art"),
		mk("C3", "vortex", "ammp", "art", "vpr"),
		// C4: 2×A + 1×B + 1×C.
		mk("C4", "ammp", "parser", "apsi", "bzip2"),
		mk("C4", "parser", "vortex", "gcc", "mcf"),
		mk("C4", "vortex", "ammp", "apsi", "art"),
		mk("C4", "ammp", "parser", "gcc", "vpr"),
		// C5: 2×A + 2×D.
		mk("C5", "ammp", "parser", "swim", "mesa"),
		mk("C5", "parser", "vortex", "mesa", "gzip"),
		mk("C5", "vortex", "ammp", "swim", "gzip"),
		// C6: 2×A + 1×B + 1×D.
		mk("C6", "vortex", "ammp", "apsi", "gzip"),
		mk("C6", "parser", "vortex", "gcc", "mesa"),
		mk("C6", "ammp", "parser", "apsi", "swim"),
		mk("C6", "vortex", "ammp", "gcc", "mesa"),
	}
}

// ScaleOut widens the Table 8 matrix to width cores while preserving each
// combination's Table 7 class composition: every quad-core member benchmark
// is replicated width/4 times, so a C4 combo (2×A + 1×B + 1×C) becomes
// 4×A + 2×B + 2×C at 8 cores and 8×A + 4×B + 4×C at 16. Replicas stay
// contiguous, and internal/addr gives every instance a disjoint address
// space, so widening adds capacity pressure without data sharing — the
// paper's stress-test methodology at scale. width must be a positive
// multiple of 4; ScaleOut(4) is exactly Table8().
func ScaleOut(width int) ([]Combo, error) {
	if width <= 0 || width%4 != 0 {
		return nil, fmt.Errorf("workloads: scale-out width %d is not a positive multiple of 4", width)
	}
	rep := width / 4
	base := Table8()
	out := make([]Combo, len(base))
	for i, combo := range base {
		cores := make([]string, 0, width)
		for _, b := range combo.Cores {
			for r := 0; r < rep; r++ {
				cores = append(cores, b)
			}
		}
		out[i] = Combo{Class: combo.Class, Name: ComboName(cores), Cores: cores}
	}
	return out, nil
}

// Classes returns the class labels in order.
func Classes() []string { return []string{"C1", "C2", "C3", "C4", "C5", "C6"} }

// ByClass returns Table 8 grouped by class label.
func ByClass() map[string][]Combo {
	m := make(map[string][]Combo)
	for _, c := range Table8() {
		m[c.Class] = append(m[c.Class], c)
	}
	return m
}

// classComposition is the Table 7 class recipe at quad-core width.
var classComposition = map[string]map[trace.Class]int{
	"C1": {trace.ClassA: 4},
	"C2": {trace.ClassC: 4},
	"C3": {trace.ClassA: 2, trace.ClassC: 2},
	"C4": {trace.ClassA: 2, trace.ClassB: 1, trace.ClassC: 1},
	"C5": {trace.ClassA: 2, trace.ClassD: 2},
	"C6": {trace.ClassA: 2, trace.ClassB: 1, trace.ClassD: 1},
}

// Validate cross-checks Table 8 against the Table 6 classification embedded
// in the benchmark models.
func Validate() error { return ValidateCombos(Table8(), 4) }

// ValidateCombos checks a combination list of arbitrary width against the
// Table 7 class rules scaled to that width: every combo has exactly width
// cores, its name matches the canonical ComboName, and its per-class member
// counts are the quad-core composition multiplied by width/4.
func ValidateCombos(combos []Combo, width int) error {
	if width <= 0 || width%4 != 0 {
		return fmt.Errorf("workloads: width %d is not a positive multiple of 4", width)
	}
	rep := width / 4
	for _, combo := range combos {
		if len(combo.Cores) != width {
			return fmt.Errorf("workloads: combo %s has %d cores, want %d", combo.Name, len(combo.Cores), width)
		}
		if want := ComboName(combo.Cores); combo.Name != want {
			return fmt.Errorf("workloads: combo %s has non-canonical name (want %s)", combo.Name, want)
		}
		counts := map[trace.Class]int{}
		for _, b := range combo.Cores {
			p, err := trace.ByName(b)
			if err != nil {
				return fmt.Errorf("workloads: combo %s: %v", combo.Name, err)
			}
			counts[p.Class]++
		}
		want := classComposition[combo.Class]
		if want == nil {
			return fmt.Errorf("workloads: combo %s has unknown class %s", combo.Name, combo.Class)
		}
		// Check classes in a fixed order so the same mismatch is always
		// the one reported (map iteration order would pick arbitrarily).
		classes := make([]trace.Class, 0, len(want))
		for cls := range want {
			classes = append(classes, cls)
		}
		slices.Sort(classes)
		total := 0
		for _, cls := range classes {
			n := want[cls]
			if counts[cls] != n*rep {
				return fmt.Errorf("workloads: combo %s (%s) has %d class-%s members, want %d",
					combo.Name, combo.Class, counts[cls], cls, n*rep)
			}
			total += n * rep
		}
		if total != width {
			return fmt.Errorf("workloads: combo %s (%s) class composition covers %d of %d cores",
				combo.Name, combo.Class, total, width)
		}
	}
	return nil
}
