// Package workloads encodes the paper's evaluation matrix: the Table 6
// benchmark classification, the Table 7 workload-combination classes C1–C6,
// and the 21 concrete quad-core combinations of Table 8.
package workloads

import (
	"fmt"

	"snug/internal/trace"
)

// Combo is one quad-core workload combination.
type Combo struct {
	Class string   // "C1".."C6"
	Name  string   // short identifier, e.g. "4xammp" or "ammp+parser+bzip2+mcf"
	Cores []string // benchmark per core, length 4
}

// Table8 returns the paper's 21 workload combinations grouped by class.
//
// C1/C2 are stress tests: four identical applications with capacity sharing
// but no data sharing (each instance gets a disjoint address space, which
// internal/addr guarantees). C3–C6 mix two class A applications with class
// B/C/D applications per Table 7. The paper's Table 8 lists "4 vertex";
// that is its typo for vortex.
func Table8() []Combo {
	mk := func(class string, cores ...string) Combo {
		name := cores[0]
		if cores[0] == cores[1] && cores[1] == cores[2] && cores[2] == cores[3] {
			name = "4x" + cores[0]
		} else {
			name = cores[0] + "+" + cores[1] + "+" + cores[2] + "+" + cores[3]
		}
		return Combo{Class: class, Name: name, Cores: cores}
	}
	return []Combo{
		// C1: stress tests from class A.
		mk("C1", "ammp", "ammp", "ammp", "ammp"),
		mk("C1", "parser", "parser", "parser", "parser"),
		mk("C1", "vortex", "vortex", "vortex", "vortex"),
		// C2: stress tests from class C.
		mk("C2", "vpr", "vpr", "vpr", "vpr"),
		mk("C2", "bzip2", "bzip2", "bzip2", "bzip2"),
		mk("C2", "mcf", "mcf", "mcf", "mcf"),
		mk("C2", "art", "art", "art", "art"),
		// C3: 2×A + 2×C.
		mk("C3", "ammp", "parser", "bzip2", "mcf"),
		mk("C3", "parser", "vortex", "mcf", "art"),
		mk("C3", "vortex", "ammp", "art", "vpr"),
		// C4: 2×A + 1×B + 1×C.
		mk("C4", "ammp", "parser", "apsi", "bzip2"),
		mk("C4", "parser", "vortex", "gcc", "mcf"),
		mk("C4", "vortex", "ammp", "apsi", "art"),
		mk("C4", "ammp", "parser", "gcc", "vpr"),
		// C5: 2×A + 2×D.
		mk("C5", "ammp", "parser", "swim", "mesa"),
		mk("C5", "parser", "vortex", "mesa", "gzip"),
		mk("C5", "vortex", "ammp", "swim", "gzip"),
		// C6: 2×A + 1×B + 1×D.
		mk("C6", "vortex", "ammp", "apsi", "gzip"),
		mk("C6", "parser", "vortex", "gcc", "mesa"),
		mk("C6", "ammp", "parser", "apsi", "swim"),
		mk("C6", "vortex", "ammp", "gcc", "mesa"),
	}
}

// Classes returns the class labels in order.
func Classes() []string { return []string{"C1", "C2", "C3", "C4", "C5", "C6"} }

// ByClass returns Table 8 grouped by class label.
func ByClass() map[string][]Combo {
	m := make(map[string][]Combo)
	for _, c := range Table8() {
		m[c.Class] = append(m[c.Class], c)
	}
	return m
}

// Validate cross-checks Table 8 against the Table 6 classification embedded
// in the benchmark models: stress-test classes use the right benchmark
// class, and every mixed class has two class A members plus the B/C/D
// members Table 7 prescribes.
func Validate() error {
	for _, combo := range Table8() {
		if len(combo.Cores) != 4 {
			return fmt.Errorf("workloads: combo %s has %d cores, want 4", combo.Name, len(combo.Cores))
		}
		counts := map[trace.Class]int{}
		for _, b := range combo.Cores {
			p, err := trace.ByName(b)
			if err != nil {
				return fmt.Errorf("workloads: combo %s: %v", combo.Name, err)
			}
			counts[p.Class]++
		}
		want := map[string]map[trace.Class]int{
			"C1": {trace.ClassA: 4},
			"C2": {trace.ClassC: 4},
			"C3": {trace.ClassA: 2, trace.ClassC: 2},
			"C4": {trace.ClassA: 2, trace.ClassB: 1, trace.ClassC: 1},
			"C5": {trace.ClassA: 2, trace.ClassD: 2},
			"C6": {trace.ClassA: 2, trace.ClassB: 1, trace.ClassD: 1},
		}[combo.Class]
		if want == nil {
			return fmt.Errorf("workloads: combo %s has unknown class %s", combo.Name, combo.Class)
		}
		for cls, n := range want {
			if counts[cls] != n {
				return fmt.Errorf("workloads: combo %s (%s) has %d class-%s members, want %d",
					combo.Name, combo.Class, counts[cls], cls, n)
			}
		}
	}
	return nil
}
