package workloads

import (
	"testing"
)

func TestTable8Has21Combos(t *testing.T) {
	combos := Table8()
	if len(combos) != 21 {
		t.Fatalf("Table 8 has %d combos, want 21", len(combos))
	}
	perClass := map[string]int{}
	for _, c := range combos {
		perClass[c.Class]++
	}
	want := map[string]int{"C1": 3, "C2": 4, "C3": 3, "C4": 4, "C5": 3, "C6": 4}
	for cls, n := range want {
		if perClass[cls] != n {
			t.Errorf("class %s has %d combos, want %d", cls, perClass[cls], n)
		}
	}
}

func TestTable8MatchesTable7Composition(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStressTestsAreIdenticalApps(t *testing.T) {
	for _, c := range Table8() {
		if c.Class != "C1" && c.Class != "C2" {
			continue
		}
		for _, b := range c.Cores[1:] {
			if b != c.Cores[0] {
				t.Errorf("stress combo %s mixes %s and %s", c.Name, c.Cores[0], b)
			}
		}
	}
}

func TestMixedCombosAreDistinct(t *testing.T) {
	// Within C3-C6, the two class A members must be different applications
	// ("2 different applications from class A", Table 7).
	for _, c := range Table8() {
		if c.Class == "C1" || c.Class == "C2" {
			continue
		}
		seen := map[string]int{}
		for _, b := range c.Cores {
			seen[b]++
		}
		for b, n := range seen {
			if n > 1 {
				t.Errorf("combo %s schedules %s %d times", c.Name, b, n)
			}
		}
	}
}

func TestByClassPartition(t *testing.T) {
	m := ByClass()
	total := 0
	for _, cls := range Classes() {
		total += len(m[cls])
	}
	if total != 21 {
		t.Fatalf("ByClass covers %d combos", total)
	}
}

func TestComboNames(t *testing.T) {
	for _, c := range Table8() {
		if c.Name == "" {
			t.Fatal("unnamed combo")
		}
		if c.Class == "C1" && c.Name[:2] != "4x" {
			t.Errorf("stress combo named %q, want 4x prefix", c.Name)
		}
	}
}
