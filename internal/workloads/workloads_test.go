package workloads

import (
	"testing"
)

func TestTable8Has21Combos(t *testing.T) {
	combos := Table8()
	if len(combos) != 21 {
		t.Fatalf("Table 8 has %d combos, want 21", len(combos))
	}
	perClass := map[string]int{}
	for _, c := range combos {
		perClass[c.Class]++
	}
	want := map[string]int{"C1": 3, "C2": 4, "C3": 3, "C4": 4, "C5": 3, "C6": 4}
	for cls, n := range want {
		if perClass[cls] != n {
			t.Errorf("class %s has %d combos, want %d", cls, perClass[cls], n)
		}
	}
}

func TestTable8MatchesTable7Composition(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStressTestsAreIdenticalApps(t *testing.T) {
	for _, c := range Table8() {
		if c.Class != "C1" && c.Class != "C2" {
			continue
		}
		for _, b := range c.Cores[1:] {
			if b != c.Cores[0] {
				t.Errorf("stress combo %s mixes %s and %s", c.Name, c.Cores[0], b)
			}
		}
	}
}

func TestMixedCombosAreDistinct(t *testing.T) {
	// Within C3-C6, the two class A members must be different applications
	// ("2 different applications from class A", Table 7).
	for _, c := range Table8() {
		if c.Class == "C1" || c.Class == "C2" {
			continue
		}
		seen := map[string]int{}
		for _, b := range c.Cores {
			seen[b]++
		}
		for b, n := range seen {
			if n > 1 {
				t.Errorf("combo %s schedules %s %d times", c.Name, b, n)
			}
		}
	}
}

func TestByClassPartition(t *testing.T) {
	m := ByClass()
	total := 0
	for _, cls := range Classes() {
		total += len(m[cls])
	}
	if total != 21 {
		t.Fatalf("ByClass covers %d combos", total)
	}
}

func TestComboNames(t *testing.T) {
	for _, c := range Table8() {
		if c.Name == "" {
			t.Fatal("unnamed combo")
		}
		if c.Class == "C1" && c.Name[:2] != "4x" {
			t.Errorf("stress combo named %q, want 4x prefix", c.Name)
		}
	}
}

// TestComboNameRule pins the canonical naming rule: checkpoint-store keys
// derive from these names, so they must stay byte-identical.
func TestComboNameRule(t *testing.T) {
	cases := []struct {
		cores []string
		want  string
	}{
		{[]string{"ammp", "ammp", "ammp", "ammp"}, "4xammp"},
		{[]string{"ammp", "parser", "bzip2", "mcf"}, "ammp+parser+bzip2+mcf"},
		{[]string{"ammp", "ammp", "ammp", "ammp", "ammp", "ammp", "ammp", "ammp"}, "8xammp"},
		{[]string{"ammp", "ammp", "parser", "parser", "bzip2", "bzip2", "mcf", "mcf"},
			"2xammp+2xparser+2xbzip2+2xmcf"},
		{[]string{"ammp", "parser", "ammp"}, "ammp+parser+ammp"},
	}
	for _, c := range cases {
		if got := ComboName(c.cores); got != c.want {
			t.Errorf("ComboName(%v) = %q, want %q", c.cores, got, c.want)
		}
	}
}

// TestScaleOutWidths checks the class-consistent composer at 8 and 16 cores
// against the Table 7 rules scaled to those widths, and that width 4
// reproduces Table 8 exactly.
func TestScaleOutWidths(t *testing.T) {
	for _, width := range []int{4, 8, 16} {
		combos, err := ScaleOut(width)
		if err != nil {
			t.Fatalf("ScaleOut(%d): %v", width, err)
		}
		if len(combos) != 21 {
			t.Fatalf("ScaleOut(%d) has %d combos, want 21", width, len(combos))
		}
		if err := ValidateCombos(combos, width); err != nil {
			t.Errorf("ScaleOut(%d): %v", width, err)
		}
		names := map[string]bool{}
		for _, c := range combos {
			if names[c.Name] {
				t.Errorf("ScaleOut(%d): duplicate combo name %s", width, c.Name)
			}
			names[c.Name] = true
		}
	}

	quad, err := ScaleOut(4)
	if err != nil {
		t.Fatal(err)
	}
	base := Table8()
	for i := range base {
		if quad[i].Name != base[i].Name || quad[i].Class != base[i].Class {
			t.Fatalf("ScaleOut(4)[%d] = %s/%s, want Table8's %s/%s",
				i, quad[i].Class, quad[i].Name, base[i].Class, base[i].Name)
		}
	}

	eight, err := ScaleOut(8)
	if err != nil {
		t.Fatal(err)
	}
	if eight[0].Name != "8xammp" {
		t.Errorf("8-core stress combo named %q, want 8xammp", eight[0].Name)
	}

	for _, bad := range []int{0, -4, 3, 6} {
		if _, err := ScaleOut(bad); err == nil {
			t.Errorf("ScaleOut(%d) accepted", bad)
		}
	}
}

// TestValidateCombosRejects covers the width checker's error paths.
func TestValidateCombosRejects(t *testing.T) {
	good := Combo{Class: "C1", Name: "4xammp", Cores: []string{"ammp", "ammp", "ammp", "ammp"}}
	if err := ValidateCombos([]Combo{good}, 4); err != nil {
		t.Fatal(err)
	}
	cases := map[string]Combo{
		"wrong width":   {Class: "C1", Name: "4xammp", Cores: []string{"ammp", "ammp"}},
		"bad name":      {Class: "C1", Name: "quad-ammp", Cores: []string{"ammp", "ammp", "ammp", "ammp"}},
		"unknown class": {Class: "C9", Name: "4xammp", Cores: []string{"ammp", "ammp", "ammp", "ammp"}},
		"wrong class":   {Class: "C2", Name: "4xammp", Cores: []string{"ammp", "ammp", "ammp", "ammp"}},
		"unknown bench": {Class: "C1", Name: "4xnope", Cores: []string{"nope", "nope", "nope", "nope"}},
	}
	for name, combo := range cases {
		if err := ValidateCombos([]Combo{combo}, 4); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := ValidateCombos(nil, 5); err == nil {
		t.Error("non-multiple-of-4 width accepted")
	}
}
