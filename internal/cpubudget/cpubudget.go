// Package cpubudget is the process-wide CPU token budget that keeps the
// two parallelism layers — sweep-level job workers (internal/sweep) and
// intra-run epoch engines (internal/cmp) — composable instead of
// multiplicative. Without it, a sweep at GOMAXPROCS workers whose jobs
// each spawn a per-core epoch engine runs workers × cores goroutines on
// GOMAXPROCS processors, and the oversubscription tax eats the speedup
// both layers were built for.
//
// The pool holds Limit tokens (default: GOMAXPROCS at first use). A sweep
// worker acquires one token for the duration of each job (Acquire blocks,
// so Parallelism above the budget degrades to the budget instead of
// oversubscribing); an epoch engine asks for up to one token per simulated
// core with TryAcquire, takes whatever is free, and falls back to the
// serial engine when fewer than two are available — results are identical
// by construction either way (see internal/cmp/epoch.go), so the budget
// changes scheduling and wall-clock only, never results or checkpoint
// bytes.
//
// The accounting contract: every simulation-bearing goroutine — a sweep
// worker running a job (the epoch coordinator runs on that same
// goroutine), or an epoch group worker — holds exactly one token, so the
// pool's in-use count is the process's concurrent simulation goroutine
// count and Peak is its high-water mark (the property the sweep budget
// tests pin).
package cpubudget

import (
	"fmt"
	"runtime"
	"sync"
)

var (
	mu   sync.Mutex
	cond = sync.NewCond(&mu)
	// limit 0 means "unset": resolved to runtime.GOMAXPROCS(0) at use, so
	// the default tracks the environment rather than package-init order.
	limit int
	inUse int
	peak  int
)

// effectiveLimit resolves the configured limit; callers hold mu.
func effectiveLimit() int {
	if limit > 0 {
		return limit
	}
	return runtime.GOMAXPROCS(0)
}

// Limit returns the current token budget (GOMAXPROCS when unset).
func Limit() int {
	mu.Lock()
	defer mu.Unlock()
	return effectiveLimit()
}

// SetLimit sets the process-wide budget to n tokens and returns the
// previous configured value (0 if it was unset). n <= 0 resets to the
// GOMAXPROCS default. Raising the limit wakes blocked acquirers; lowering
// it below the in-use count only throttles future acquisitions — tokens
// already out stay valid until released.
func SetLimit(n int) int {
	mu.Lock()
	defer mu.Unlock()
	prev := limit
	if n <= 0 {
		limit = 0
	} else {
		limit = n
	}
	cond.Broadcast()
	return prev
}

// Acquire blocks until one token is free and takes it. Pair with
// Release(1).
func Acquire() {
	mu.Lock()
	defer mu.Unlock()
	for inUse >= effectiveLimit() {
		cond.Wait()
	}
	take(1)
}

// TryAcquire takes up to n tokens without blocking and returns how many it
// got (possibly zero). Pair with Release of the returned count.
func TryAcquire(n int) int {
	if n <= 0 {
		return 0
	}
	mu.Lock()
	defer mu.Unlock()
	free := effectiveLimit() - inUse
	if free <= 0 {
		return 0
	}
	if n > free {
		n = free
	}
	take(n)
	return n
}

// take records n tokens as in use; callers hold mu.
func take(n int) {
	inUse += n
	if inUse > peak {
		peak = inUse
	}
}

// Release returns n tokens to the pool.
func Release(n int) {
	if n <= 0 {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	inUse -= n
	if inUse < 0 {
		// Releasing more than was acquired is a caller accounting bug that
		// would silently widen every future budget; fail loudly instead.
		panic(fmt.Sprintf("cpubudget: released %d tokens with only %d in use", n, inUse+n))
	}
	cond.Broadcast()
}

// InUse returns the tokens currently held.
func InUse() int {
	mu.Lock()
	defer mu.Unlock()
	return inUse
}

// Peak returns the high-water mark of in-use tokens since the last
// ResetPeak — by the accounting contract, the peak number of concurrent
// simulation goroutines. Test instrumentation.
func Peak() int {
	mu.Lock()
	defer mu.Unlock()
	return peak
}

// ResetPeak clears the high-water mark down to the current in-use count.
func ResetPeak() {
	mu.Lock()
	defer mu.Unlock()
	peak = inUse
}
