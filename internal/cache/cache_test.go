package cache

import (
	"testing"
	"testing/quick"

	"snug/internal/addr"
)

func testCache(t *testing.T, sets, ways int) *Cache {
	t.Helper()
	return MustNew(addr.MustGeometry(64, sets), ways)
}

// mkAddr builds a block address with the given tag and set index under the
// 64 B / sets geometry.
func mkAddr(g addr.Geometry, tag uint64, set uint32) addr.Addr {
	return g.Rebuild(tag, set)
}

func TestLookupMissThenHit(t *testing.T) {
	c := testCache(t, 16, 4)
	a := mkAddr(c.Geometry(), 7, 3)
	if c.Lookup(a, false) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(a, Block{Owner: 1})
	if !c.Lookup(a, false) {
		t.Fatal("miss after insert")
	}
	blk, found := c.Peek(a)
	if !found || blk.Owner != 1 || blk.Dirty {
		t.Fatalf("block state (%+v, %v)", blk, found)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteSetsDirty(t *testing.T) {
	c := testCache(t, 16, 4)
	a := mkAddr(c.Geometry(), 9, 0)
	c.Insert(a, Block{})
	c.Lookup(a, true)
	if blk, _ := c.Peek(a); !blk.Dirty {
		t.Fatal("write did not set dirty bit")
	}
}

func TestExactLRUReplacement(t *testing.T) {
	c := testCache(t, 4, 4)
	g := c.Geometry()
	// Fill set 0 with tags 1..4, then touch 1,3 — LRU must be 2.
	for tag := uint64(1); tag <= 4; tag++ {
		c.Insert(mkAddr(g, tag, 0), Block{})
	}
	c.Lookup(mkAddr(g, 1, 0), false)
	c.Lookup(mkAddr(g, 3, 0), false)
	victim := c.Insert(mkAddr(g, 5, 0), Block{})
	if victim.Tag != 2 {
		t.Fatalf("victim tag = %d, want 2 (true LRU)", victim.Tag)
	}
}

func TestVictimPrefersInvalidWays(t *testing.T) {
	c := testCache(t, 4, 4)
	g := c.Geometry()
	c.Insert(mkAddr(g, 1, 0), Block{})
	way, ev := c.Victim(0)
	if ev.Valid {
		t.Fatalf("victim is valid (%+v) while invalid ways remain", ev)
	}
	if way == 0 && c.ValidCount(0) != 1 {
		t.Fatal("inconsistent set state")
	}
}

func TestLRUOrderTracksAccesses(t *testing.T) {
	c := testCache(t, 2, 4)
	g := c.Geometry()
	for tag := uint64(1); tag <= 4; tag++ {
		c.Insert(mkAddr(g, tag, 1), Block{})
	}
	c.Lookup(mkAddr(g, 2, 1), false) // tag 2 becomes MRU
	order := c.LRUOrder(1)
	if len(order) != 4 {
		t.Fatalf("order length %d", len(order))
	}
	// The MRU way must hold tag 2.
	var mruTag uint64
	c.SetView(1, func(way int, b Block) {
		if way == order[0] {
			mruTag = b.Tag
		}
	})
	if mruTag != 2 {
		t.Fatalf("MRU tag = %d, want 2", mruTag)
	}
}

func TestFindCCMatchesFlipState(t *testing.T) {
	c := testCache(t, 8, 4)
	// A cooperative block stored at flipped index 5 with f=1, original
	// index 4.
	c.InsertAt(5, Block{Tag: 77, CC: true, F: true, Owner: 2})
	if found, _ := c.FindCC(5, 77, false); found {
		t.Error("f=0 search matched an f=1 block")
	}
	found, way := c.FindCC(5, 77, true)
	if !found {
		t.Fatal("f=1 search missed the block")
	}
	old := c.InvalidateWay(5, way)
	if old.Tag != 77 || !old.CC {
		t.Fatalf("invalidated %+v", old)
	}
	if found, _ := c.FindCC(5, 77, true); found {
		t.Error("block still present after invalidation")
	}
}

func TestLookupIgnoresFlippedCCBlocks(t *testing.T) {
	c := testCache(t, 8, 4)
	g := c.Geometry()
	// A flipped cooperative block must never satisfy a plain lookup in its
	// residence set: its stored tag belongs to a different original index.
	c.InsertAt(5, Block{Tag: g.Tag(mkAddr(g, 33, 4)), CC: true, F: true})
	if c.Lookup(mkAddr(g, 33, 5), false) {
		t.Fatal("plain lookup matched a flipped cooperative block")
	}
}

func TestInvalidate(t *testing.T) {
	c := testCache(t, 8, 2)
	a := mkAddr(c.Geometry(), 3, 6)
	c.Insert(a, Block{Dirty: true})
	old, found := c.Invalidate(a)
	if !found || !old.Dirty {
		t.Fatalf("Invalidate = (%+v, %v)", old, found)
	}
	if _, found := c.Invalidate(a); found {
		t.Fatal("double invalidate found the block again")
	}
}

func TestDropWhere(t *testing.T) {
	c := testCache(t, 4, 4)
	c.InsertAt(2, Block{Tag: 1, CC: true})
	c.InsertAt(2, Block{Tag: 2})
	c.InsertAt(2, Block{Tag: 3, CC: true, F: true})
	n := c.DropWhere(2, func(b Block) bool { return b.CC })
	if n != 2 {
		t.Fatalf("dropped %d, want 2", n)
	}
	if c.ValidCount(2) != 1 {
		t.Fatalf("remaining %d, want 1", c.ValidCount(2))
	}
}

func TestEvictionStats(t *testing.T) {
	c := testCache(t, 1, 2)
	g := c.Geometry()
	c.Insert(mkAddr(g, 1, 0), Block{Dirty: true})
	c.Insert(mkAddr(g, 2, 0), Block{CC: true})
	c.Insert(mkAddr(g, 3, 0), Block{}) // evicts tag 1 (dirty)
	c.Insert(mkAddr(g, 4, 0), Block{}) // evicts tag 2 (CC)
	st := c.Stats()
	if st.Evictions != 2 || st.DirtyEvicts != 1 || st.CCEvictions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInclusionPropertyUnderLRU(t *testing.T) {
	// LRU's stack property: the content of an a-way cache is a subset of a
	// 2a-way cache under the same access stream. This is the property the
	// paper's Formula (1)-(3) machinery rests on.
	small := testCache(t, 4, 4)
	big := testCache(t, 4, 8)
	g := small.Geometry()
	seq := []uint64{1, 2, 3, 4, 5, 1, 6, 2, 7, 3, 8, 9, 1, 2, 10, 4, 11, 5}
	for _, tag := range seq {
		a := mkAddr(g, tag, 2)
		if !small.Lookup(a, false) {
			small.Insert(a, Block{})
		}
		if !big.Lookup(a, false) {
			big.Insert(a, Block{})
		}
		// Every block in small must be in big.
		small.SetView(2, func(_ int, b Block) {
			if !big.Probe(g.Rebuild(b.Tag, 2)) {
				t.Fatalf("inclusion violated for tag %d", b.Tag)
			}
		})
	}
}

func TestHitsNeverDecreaseWithAssociativity(t *testing.T) {
	// Property: for a random access stream, a 2a-way cache hits at least as
	// often as an a-way cache (LRU stack property, Formula (1)).
	f := func(raw []uint8) bool {
		small := testCache(t, 2, 4)
		big := testCache(t, 2, 8)
		g := small.Geometry()
		var hitsSmall, hitsBig int
		for _, r := range raw {
			a := mkAddr(g, uint64(r%32), uint32(r)%2)
			if small.Lookup(a, false) {
				hitsSmall++
			} else {
				small.Insert(a, Block{})
			}
			if big.Lookup(a, false) {
				hitsBig++
			} else {
				big.Insert(a, Block{})
			}
		}
		return hitsBig >= hitsSmall
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	c := testCache(t, 4, 2)
	g := c.Geometry()
	for s := uint32(0); s < 4; s++ {
		c.Insert(mkAddr(g, 1, s), Block{})
	}
	c.Flush()
	for s := uint32(0); s < 4; s++ {
		if c.ValidCount(s) != 0 {
			t.Fatalf("set %d not empty after flush", s)
		}
	}
}

func TestRejectsNonPositiveWays(t *testing.T) {
	if _, err := New(addr.MustGeometry(64, 4), 0); err == nil {
		t.Fatal("0-way cache accepted")
	}
}

func TestRejectsOverwideAssociativity(t *testing.T) {
	// The rank-nibble LRU word holds 16 ranks; wider arrays must be refused
	// loudly rather than silently corrupting replacement state.
	if _, err := New(addr.MustGeometry(64, 4), 17); err == nil {
		t.Fatal("17-way cache accepted beyond the rank-nibble limit")
	}
	if _, err := New(addr.MustGeometry(64, 4), 16); err != nil {
		t.Fatalf("16-way cache rejected: %v", err)
	}
}

func TestCCOccupancyIndex(t *testing.T) {
	c := testCache(t, 8, 4)
	if c.CCCount(3, false) != 0 || c.CCCount(3, true) != 0 {
		t.Fatal("fresh cache reports cooperative occupancy")
	}
	c.InsertAt(3, Block{Tag: 1, CC: true})
	c.InsertAt(3, Block{Tag: 2, CC: true, F: true})
	c.InsertAt(3, Block{Tag: 3})
	if c.CCCount(3, false) != 1 || c.CCCount(3, true) != 1 {
		t.Fatalf("counts (%d,%d), want (1,1)", c.CCCount(3, false), c.CCCount(3, true))
	}
	var visited []uint32
	c.ForEachCCSet(func(s uint32) { visited = append(visited, s) })
	if len(visited) != 1 || visited[0] != 3 {
		t.Fatalf("ForEachCCSet visited %v, want [3]", visited)
	}
	// Dropping the cooperative blocks must zero the index and the bitmap.
	c.DropWhere(3, func(b Block) bool { return b.CC })
	if c.CCCount(3, false) != 0 || c.CCCount(3, true) != 0 {
		t.Fatal("counts nonzero after dropping all cooperative blocks")
	}
	visited = visited[:0]
	c.ForEachCCSet(func(s uint32) { visited = append(visited, s) })
	if len(visited) != 0 {
		t.Fatalf("ForEachCCSet visited %v after drop, want none", visited)
	}
}
