package cache

import (
	"fmt"
	"testing"

	"snug/internal/addr"
)

// refBlock and refCache are the pre-packed-layout reference model: an
// array-of-structs cache with explicit per-line LRU timestamps driven by a
// global tick — a direct transcription of the engine this package replaced.
// The differential test drives it and the packed struct-of-arrays engine
// through the same randomized op stream and requires identical observable
// behaviour: hits, victims, FindCC answers, LRU orders and statistics.
type refBlock struct {
	Block
	use uint64
}

type refCache struct {
	geom  addr.Geometry
	ways  int
	lines []refBlock
	tick  uint64
	stats Stats
}

func newRefCache(geom addr.Geometry, ways int) *refCache {
	return &refCache{geom: geom, ways: ways, lines: make([]refBlock, geom.Sets()*ways)}
}

func (c *refCache) set(s uint32) []refBlock {
	base := int(s) * c.ways
	return c.lines[base : base+c.ways]
}

func (c *refCache) matchWay(set []refBlock, tag uint64) int {
	for i := range set {
		b := &set[i]
		if b.Tag == tag && b.Valid && !(b.CC && b.F) {
			return i
		}
	}
	return -1
}

func (c *refCache) Lookup(a addr.Addr, write bool) bool {
	set := c.set(c.geom.Index(a))
	if w := c.matchWay(set, c.geom.Tag(a)); w >= 0 {
		c.tick++
		set[w].use = c.tick
		if write {
			set[w].Dirty = true
		}
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

func (c *refCache) Peek(a addr.Addr) (Block, bool) {
	set := c.set(c.geom.Index(a))
	if w := c.matchWay(set, c.geom.Tag(a)); w >= 0 {
		return set[w].Block, true
	}
	return Block{}, false
}

func (c *refCache) FindCC(setIdx uint32, tag uint64, flipped bool) (bool, int) {
	set := c.set(setIdx)
	for i := range set {
		b := &set[i]
		if b.Valid && b.CC && b.F == flipped && b.Tag == tag {
			return true, i
		}
	}
	return false, -1
}

func (c *refCache) victim(setIdx uint32) (int, Block) {
	set := c.set(setIdx)
	lru, lruUse := -1, ^uint64(0)
	for i := range set {
		b := &set[i]
		if !b.Valid {
			return i, Block{}
		}
		if b.use < lruUse {
			lru, lruUse = i, b.use
		}
	}
	return lru, set[lru].Block
}

func (c *refCache) fill(setIdx uint32, way int, nb Block) Block {
	set := c.set(setIdx)
	victim := set[way].Block
	if victim.Valid {
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.DirtyEvicts++
		}
		if victim.CC {
			c.stats.CCEvictions++
		}
	}
	c.tick++
	nb.Valid = true
	set[way] = refBlock{Block: nb, use: c.tick}
	c.stats.Fills++
	return victim
}

func (c *refCache) Insert(a addr.Addr, nb Block) Block {
	s := c.geom.Index(a)
	nb.Tag = c.geom.Tag(a)
	way, _ := c.victim(s)
	return c.fill(s, way, nb)
}

func (c *refCache) InsertAt(setIdx uint32, nb Block) Block {
	way, _ := c.victim(setIdx)
	return c.fill(setIdx, way, nb)
}

func (c *refCache) InvalidateWay(setIdx uint32, way int) Block {
	set := c.set(setIdx)
	old := set[way].Block
	if old.Valid {
		c.stats.Invalidations++
	}
	set[way] = refBlock{}
	return old
}

func (c *refCache) Invalidate(a addr.Addr) (Block, bool) {
	set := c.set(c.geom.Index(a))
	if w := c.matchWay(set, c.geom.Tag(a)); w >= 0 {
		old := set[w].Block
		c.stats.Invalidations++
		set[w] = refBlock{}
		return old, true
	}
	return Block{}, false
}

func (c *refCache) DropWhere(setIdx uint32, pred func(Block) bool) int {
	set := c.set(setIdx)
	n := 0
	for i := range set {
		if set[i].Valid && pred(set[i].Block) {
			set[i] = refBlock{}
			c.stats.Invalidations++
			n++
		}
	}
	return n
}

func (c *refCache) LRUOrder(setIdx uint32) []int {
	set := c.set(setIdx)
	type wu struct {
		way int
		use uint64
	}
	var order []wu
	for i := range set {
		if set[i].Valid {
			order = append(order, wu{i, set[i].use})
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].use > order[j-1].use; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]int, len(order))
	for i, o := range order {
		out[i] = o.way
	}
	return out
}

// splitmix64 is a self-contained RNG so the differential stream does not
// depend on other packages.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4794a45b3c6b0 // distinct odd constant
	return z ^ (z >> 31)
}

// checkOccupancyInvariant asserts the CC occupancy index of every set
// equals a brute-force SetView scan, and that ForEachCCSet visits exactly
// the sets with nonzero combined counts.
func checkOccupancyInvariant(t *testing.T, c *Cache) {
	t.Helper()
	nonzero := map[uint32]bool{}
	for s := uint32(0); s < uint32(c.Sets()); s++ {
		var want [2]int
		c.SetView(s, func(_ int, b Block) {
			if b.CC {
				if b.F {
					want[1]++
				} else {
					want[0]++
				}
			}
		})
		if got0, got1 := c.CCCount(s, false), c.CCCount(s, true); got0 != want[0] || got1 != want[1] {
			t.Fatalf("set %d: CC counts (%d,%d), brute-force scan (%d,%d)", s, got0, got1, want[0], want[1])
		}
		if want[0]+want[1] > 0 {
			nonzero[s] = true
		}
	}
	visited := map[uint32]bool{}
	c.ForEachCCSet(func(s uint32) { visited[s] = true })
	if len(visited) != len(nonzero) {
		t.Fatalf("ForEachCCSet visited %d sets, want %d", len(visited), len(nonzero))
	}
	for s := range nonzero {
		if !visited[s] {
			t.Fatalf("ForEachCCSet skipped set %d with cooperative blocks", s)
		}
	}
}

// diffRun drives both engines through n randomized mixed ops on the given
// geometry and fails on the first observable divergence.
func diffRun(t *testing.T, sets, ways int, n int, seed uint64) {
	t.Helper()
	geom := addr.MustGeometry(64, sets)
	packed := MustNew(geom, ways)
	ref := newRefCache(geom, ways)
	rng := seed

	tagSpace := uint64(4 * sets * ways) // enough reuse for hits and evictions
	randAddr := func() addr.Addr {
		tag := splitmix64(&rng) % tagSpace
		set := uint32(splitmix64(&rng)) % uint32(sets)
		return geom.Rebuild(tag, set)
	}
	randBlock := func() Block {
		r := splitmix64(&rng)
		b := Block{Dirty: r&1 != 0, Owner: int8(r >> 8 & 7)}
		if r&2 != 0 {
			b.CC = true
			b.F = r&4 != 0
		}
		return b
	}

	for i := 0; i < n; i++ {
		op := splitmix64(&rng) % 100
		switch {
		case op < 40: // Lookup
			a := randAddr()
			write := splitmix64(&rng)&1 != 0
			if gh, wh := packed.Lookup(a, write), ref.Lookup(a, write); gh != wh {
				t.Fatalf("op %d: Lookup(%x) packed=%v ref=%v", i, a, gh, wh)
			}
		case op < 60: // Insert
			a, b := randAddr(), randBlock()
			b.CC, b.F = false, false // Insert models local fills
			if gv, wv := packed.Insert(a, b), ref.Insert(a, b); gv != wv {
				t.Fatalf("op %d: Insert victim packed=%+v ref=%+v", i, gv, wv)
			}
		case op < 72: // InsertAt (cooperative fill at an explicit set)
			s := uint32(splitmix64(&rng)) % uint32(sets)
			b := randBlock()
			b.Tag = splitmix64(&rng) % tagSpace
			if gv, wv := packed.InsertAt(s, b), ref.InsertAt(s, b); gv != wv {
				t.Fatalf("op %d: InsertAt victim packed=%+v ref=%+v", i, gv, wv)
			}
		case op < 82: // FindCC
			s := uint32(splitmix64(&rng)) % uint32(sets)
			tag := splitmix64(&rng) % tagSpace
			fl := splitmix64(&rng)&1 != 0
			gf, gw := packed.FindCC(s, tag, fl)
			wf, ww := ref.FindCC(s, tag, fl)
			if gf != wf || (gf && gw != ww) {
				t.Fatalf("op %d: FindCC(%d,%d,%v) packed=(%v,%d) ref=(%v,%d)", i, s, tag, fl, gf, gw, wf, ww)
			}
		case op < 89: // Invalidate by address
			a := randAddr()
			gb, gok := packed.Invalidate(a)
			wb, wok := ref.Invalidate(a)
			if gok != wok || gb != wb {
				t.Fatalf("op %d: Invalidate(%x) packed=(%+v,%v) ref=(%+v,%v)", i, a, gb, gok, wb, wok)
			}
		case op < 93: // InvalidateWay
			s := uint32(splitmix64(&rng)) % uint32(sets)
			w := int(splitmix64(&rng)) % ways
			if w < 0 {
				w = -w
			}
			if gb, wb := packed.InvalidateWay(s, w), ref.InvalidateWay(s, w); gb != wb {
				t.Fatalf("op %d: InvalidateWay(%d,%d) packed=%+v ref=%+v", i, s, w, gb, wb)
			}
		case op < 96: // DropWhere
			s := uint32(splitmix64(&rng)) % uint32(sets)
			r := splitmix64(&rng)
			pred := func(b Block) bool { return b.CC == (r&1 != 0) && (r&2 == 0 || b.Dirty) }
			if gn, wn := packed.DropWhere(s, pred), ref.DropWhere(s, pred); gn != wn {
				t.Fatalf("op %d: DropWhere(%d) packed=%d ref=%d", i, s, gn, wn)
			}
		case op < 98: // Victim (pure read)
			s := uint32(splitmix64(&rng)) % uint32(sets)
			gw, gb := packed.Victim(s)
			ww, wb := ref.victim(s)
			if gw != ww || gb != wb {
				t.Fatalf("op %d: Victim(%d) packed=(%d,%+v) ref=(%d,%+v)", i, s, gw, gb, ww, wb)
			}
		default: // Peek (pure read)
			a := randAddr()
			gb, gok := packed.Peek(a)
			wb, wok := ref.Peek(a)
			if gok != wok || gb != wb {
				t.Fatalf("op %d: Peek(%x) packed=(%+v,%v) ref=(%+v,%v)", i, a, gb, gok, wb, wok)
			}
		}

		// Cross-checks at a sampling stride: full per-op checking would
		// dominate the run without adding coverage.
		if i%1024 == 0 {
			s := uint32(splitmix64(&rng)) % uint32(sets)
			if g, w := fmt.Sprint(packed.LRUOrder(s)), fmt.Sprint(ref.LRUOrder(s)); g != w {
				t.Fatalf("op %d: LRUOrder(%d) packed=%s ref=%s", i, s, g, w)
			}
			checkOccupancyInvariant(t, packed)
		}
	}

	if packed.Stats() != ref.stats {
		t.Fatalf("stats diverged: packed=%+v ref=%+v", packed.Stats(), ref.stats)
	}
	for s := uint32(0); s < uint32(sets); s++ {
		if g, w := fmt.Sprint(packed.LRUOrder(s)), fmt.Sprint(ref.LRUOrder(s)); g != w {
			t.Fatalf("final LRUOrder(%d) packed=%s ref=%s", s, g, w)
		}
	}
	checkOccupancyInvariant(t, packed)
}

// TestPackedEngineMatchesReference is the randomized differential bar for
// the struct-of-arrays rewrite: ~1M mixed ops across the simulator's real
// geometries (4-way L1-like, 16-way L2-like, odd widths) must be
// observably identical to the reference model.
func TestPackedEngineMatchesReference(t *testing.T) {
	n := 250_000
	if testing.Short() {
		n = 25_000
	}
	cases := []struct {
		sets, ways int
	}{
		{16, 4},  // L1-shaped
		{64, 16}, // test-scale L2 slice
		{8, 1},   // direct-mapped corner
		{4, 7},   // non-power-of-two associativity
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%dsx%dw", c.sets, c.ways), func(t *testing.T) {
			diffRun(t, c.sets, c.ways, n, 0x5eed+uint64(c.sets*31+c.ways))
		})
	}
}
