// Package cache implements the set-associative, write-back cache arrays
// used for the private L1/L2 caches and the shared-L2 banks. Blocks carry
// the metadata fields of the paper's Figure 4: tag, valid, dirty, the CC bit
// (cooperatively cached / foreign block) and the f bit (index-bit flipped),
// plus the owning core for accounting. Replacement is true LRU, which the
// paper relies on for its stack-property arguments (§2.1).
//
// The cache is a passive tag/state array: it performs lookups, victim
// selection, fills and invalidations, but the *policy* of what to do on a
// miss (fetch from DRAM, spill, retrieve from a peer) belongs to the scheme
// controllers in internal/schemes and internal/core.
//
// # Packed struct-of-arrays layout
//
// The array is stored as struct-of-arrays, sized for the simulator's
// per-access hot path (see DESIGN.md, "Performance"):
//
//   - tags:   one flat []uint64, row-major by set — the tag-match scan
//     walks dense tag memory instead of 32-byte block structs.
//   - meta:   one uint64 per set holding a 4-bit field per way
//     (bit 0 valid, bit 1 dirty, bit 2 CC, bit 3 F) — the Figure 4
//     metadata bits. Per-set predicates ("any invalid way", "valid CC
//     blocks with f=1") are single mask expressions over this word.
//   - lru:    one uint64 per set holding the true-LRU order as 4-bit rank
//     nibbles: nibble r stores the way at recency rank r (rank 0 = MRU,
//     rank ways-1 = LRU). Victim selection is a shift (no timestamp
//     scan, no global tick counter), and promotion to MRU is a
//     constant-time rotate of the ranks above the hit way.
//   - owners: one int8 per line (cold accounting state).
//
// The rank-nibble encoding caps associativity at 16 ways — exactly the
// paper's L2 slice — which New enforces.
//
// # CC occupancy index
//
// The array additionally maintains an exact per-(set, flip) count of the
// cooperatively cached blocks it holds, plus a bitmap of sets with any CC
// block. FindCC — the peer-side probe of every retrieval broadcast —
// consults the count first and answers "not here" in O(1), turning the
// cooperative schemes' per-miss O(cores × ways) broadcast scans into one
// counter check per peer; SNUG's stranded-block sweep (ForEachCCSet) visits
// only sets that hold cooperative blocks. The counts are exact, not
// conservative: every path that installs or removes a block (Fill,
// Invalidate, InvalidateWay, DropWhere, Flush) adjusts them, so a zero
// count proves the set holds no matching cooperative block.
package cache

import (
	"fmt"
	"math/bits"

	"snug/internal/addr"
)

// Block is one cache line's metadata. The data payload is not simulated;
// only tags and state matter for hit/miss behaviour and timing. Block is
// the cache's value-type API: the packed array assembles and consumes
// Blocks at its edges (fills, victims, views).
type Block struct {
	Tag   uint64
	Valid bool
	Dirty bool
	// CC marks a cooperatively cached (foreign) block: a block spilled into
	// this cache by a peer. CC==false means the line is owned by the local
	// core ("local line").
	CC bool
	// F is meaningful only when CC is set: the block was cooperatively
	// cached with the last bit of its original set index flipped (paper
	// §3.2). F==false means it sits at its original index.
	F bool
	// Owner is the core that owns the block's address space.
	Owner int8
}

// Per-way metadata bits within a set's 4-bit meta field.
const (
	bValid = 1 << 0
	bDirty = 1 << 1
	bCC    = 1 << 2
	bF     = 1 << 3

	nibbleMask = 0xf
	// maxWays is the associativity limit of the 4-bit rank-nibble LRU
	// word (16 ranks in a uint64).
	maxWays = 16
)

// lowBits has bit 0 of every nibble set; multiplying a nibble value by it
// broadcasts the value to all 16 nibble lanes.
const lowBits = 0x1111_1111_1111_1111

// highBits has bit 3 of every nibble set (the SWAR zero-nibble detector).
const highBits = 0x8888_8888_8888_8888

// Stats aggregates cache-array event counts.
type Stats struct {
	Hits          int64
	Misses        int64
	Fills         int64
	Evictions     int64
	DirtyEvicts   int64
	CCEvictions   int64 // cooperative blocks evicted (dropped, 1-chance rule)
	Invalidations int64
}

// Cache is a set-associative array with true-LRU replacement, stored as a
// packed struct-of-arrays (see the package comment for the layout).
type Cache struct {
	geom addr.Geometry
	ways int
	sets int

	tags   []uint64 // sets×ways row-major: dense tag memory
	owners []int8   // sets×ways row-major
	meta   []uint64 // per set: 4-bit valid/dirty/CC/F field per way
	lru    []uint64 // per set: rank→way nibbles, rank 0 = MRU

	// CC occupancy index: ccCnt packs the per-set cooperative-block counts
	// (f=0 in the low 16 bits, f=1 in the high 16); ccSets is a bitmap of
	// sets whose combined count is nonzero.
	ccCnt  []uint32
	ccSets []uint64

	stats Stats

	// Cached geometry arithmetic: Lookup sits on the simulator's
	// per-access hot path, so the index/tag shift and mask are flattened
	// out of the Geometry value into direct fields.
	offBits  uint
	tagShift uint
	idxMask  uint64

	// Precomputed way-window masks: waySel selects bit 0 of every real
	// way's meta nibble; lruShift is the LRU-rank nibble's bit position.
	waySel   uint64
	lruInit  uint64 // identity rank permutation (nibble r = r)
	lruShift uint

	// Single-entry hit memo: the (set, tag, way) of the last tag-match
	// scan that hit. It is valid only while the memoized set is untouched
	// — Fill, invalidation and Flush clear it — so a memo hit provably
	// resolves to the same way a fresh scan would, duplicate tags
	// included. Repeated accesses to a hot block (the dominant L1
	// pattern) skip the scan entirely.
	memoTag uint64
	memoSet uint32
	memoWay int32
	memoOK  bool
}

// New builds a cache with the given geometry and associativity.
func New(geom addr.Geometry, ways int) (*Cache, error) {
	if ways <= 0 {
		return nil, fmt.Errorf("cache: associativity must be positive, got %d", ways)
	}
	if ways > maxWays {
		return nil, fmt.Errorf("cache: associativity %d exceeds the rank-nibble LRU limit of %d ways", ways, maxWays)
	}
	sets := geom.Sets()
	c := &Cache{
		geom:     geom,
		ways:     ways,
		sets:     sets,
		tags:     make([]uint64, sets*ways),
		owners:   make([]int8, sets*ways),
		meta:     make([]uint64, sets),
		lru:      make([]uint64, sets),
		ccCnt:    make([]uint32, sets),
		ccSets:   make([]uint64, (sets+63)/64),
		offBits:  geom.OffsetBits(),
		tagShift: geom.OffsetBits() + geom.IndexBits(),
		idxMask:  uint64(sets - 1),
		lruShift: uint(ways-1) * 4,
	}
	for w := 0; w < ways; w++ {
		c.waySel |= uint64(1) << (uint(w) * 4)
		c.lruInit |= uint64(w) << (uint(w) * 4)
	}
	for s := range c.lru {
		c.lru[s] = c.lruInit
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(geom addr.Geometry, ways int) *Cache {
	c, err := New(geom, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's address mapping.
func (c *Cache) Geometry() addr.Geometry { return c.geom }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Index returns the set index for a under this cache's geometry.
func (c *Cache) Index(a addr.Addr) uint32 {
	return uint32((uint64(a) >> c.offBits) & c.idxMask)
}

// Tag returns the tag for a under this cache's geometry.
func (c *Cache) Tag(a addr.Addr) uint64 { return uint64(a) >> c.tagShift }

// blockAt assembles the Block value stored at (s, way); invalid ways
// assemble to the zero Block.
func (c *Cache) blockAt(s uint32, way int) Block {
	f := (c.meta[s] >> (uint(way) * 4)) & nibbleMask
	if f&bValid == 0 {
		return Block{}
	}
	i := int(s)*c.ways + way
	return Block{
		Tag:   c.tags[i],
		Valid: true,
		Dirty: f&bDirty != 0,
		CC:    f&bCC != 0,
		F:     f&bF != 0,
		Owner: c.owners[i],
	}
}

// matchWay returns the way of set s holding tag at its original index
// (local lines and CC blocks with F==false), or -1. It is the tag-match
// scan shared by Lookup, Probe, Peek and Invalidate: the per-set meta word
// yields the eligible ways (valid && !(CC && F)) in one mask expression,
// and only their tags — dense, row-major — are compared, in way order.
//
//snug:hotpath
//snug:inline
func (c *Cache) matchWay(s uint32, tag uint64) int {
	m := c.meta[s]
	elig := (m &^ ((m >> 2) & (m >> 3))) & c.waySel
	base := int(s) * c.ways
	for ; elig != 0; elig &= elig - 1 {
		w := bits.TrailingZeros64(elig) >> 2
		if c.tags[base+w] == tag {
			return w
		}
	}
	return -1
}

// rankShift returns the bit position (4 × rank) of way w's nibble in the
// rank→way order word: a SWAR broadcast-XOR turns the matching nibble into
// zero, the (x-1)&^x&8 zero-nibble detector flags it, and trailing zeros
// locate it. order's low nibbles are a permutation, so exactly one nibble
// matches; higher (unused) nibbles are zero and can only flag above the
// true match, which TrailingZeros64 ignores.
//
//snug:hotpath
//snug:inline
func rankShift(order uint64, w int) uint {
	x := order ^ (uint64(w) * lowBits)
	y := (x - lowBits) & ^x & highBits
	return uint(bits.TrailingZeros64(y)) - 3
}

// promote moves way w to rank 0 (MRU) in the order word: the ranks above
// it rotate up by one nibble — a constant-time operation, independent of
// associativity.
//
//snug:hotpath
//snug:inline
func promote(order uint64, w int) uint64 {
	p := rankShift(order, w)
	below := order & (uint64(1)<<p - 1)
	return order&^(uint64(1)<<(p+4)-1) | below<<4 | uint64(w)
}

// Lookup searches set-of(a) for a's tag among lines that sit at their
// original index (local lines and CC blocks with F==false). On a hit the
// block is promoted to MRU, the dirty bit is set for writes, and hit
// statistics are updated. On a miss only the miss counter is updated.
// Use Peek to inspect a resident block's state without side effects.
//
//snug:hotpath
func (c *Cache) Lookup(a addr.Addr, write bool) bool {
	s := uint32((uint64(a) >> c.offBits) & c.idxMask)
	tag := uint64(a) >> c.tagShift
	w := -1
	if c.memoOK && tag == c.memoTag && s == c.memoSet {
		w = int(c.memoWay)
	} else if w = c.matchWay(s, tag); w >= 0 {
		c.memoTag, c.memoSet, c.memoWay, c.memoOK = tag, s, int32(w), true
	}
	if w >= 0 {
		if order := c.lru[s]; int(order&nibbleMask) != w {
			c.lru[s] = promote(order, w)
		}
		if write {
			c.meta[s] |= uint64(bDirty) << (uint(w) * 4)
		}
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Probe reports whether a's tag is present at its original index, without
// updating LRU state or statistics.
func (c *Cache) Probe(a addr.Addr) bool {
	return c.matchWay(c.Index(a), c.Tag(a)) >= 0
}

// Peek returns the block holding a's tag at its original index, without
// updating LRU state or statistics. found is false when absent.
func (c *Cache) Peek(a addr.Addr) (blk Block, found bool) {
	s := c.Index(a)
	if w := c.matchWay(s, c.Tag(a)); w >= 0 {
		return c.blockAt(s, w), true
	}
	return Block{}, false
}

// ccInc counts a cooperative block entering set s with flip state flipped.
//
//snug:inline
func (c *Cache) ccInc(s uint32, flipped bool) {
	if c.ccCnt[s] == 0 {
		c.ccSets[s>>6] |= 1 << (s & 63)
	}
	if flipped {
		c.ccCnt[s] += 1 << 16
	} else {
		c.ccCnt[s]++
	}
}

// ccDec counts a cooperative block leaving set s with flip state flipped.
//
//snug:inline
func (c *Cache) ccDec(s uint32, flipped bool) {
	if flipped {
		c.ccCnt[s] -= 1 << 16
	} else {
		c.ccCnt[s]--
	}
	if c.ccCnt[s] == 0 {
		c.ccSets[s>>6] &^= 1 << (s & 63)
	}
}

// CCCount returns the exact number of valid cooperative blocks in set
// setIdx with the given flip state — the occupancy index behind FindCC's
// O(1) negative answer.
func (c *Cache) CCCount(setIdx uint32, flipped bool) int {
	if flipped {
		return int(c.ccCnt[setIdx] >> 16)
	}
	return int(c.ccCnt[setIdx] & 0xffff)
}

// ForEachCCSet calls fn for every set currently holding at least one
// cooperative block, in ascending set order. fn may invalidate blocks of
// the set it is given (the bitmap word is snapshotted per 64-set window);
// it must not install new cooperative blocks.
func (c *Cache) ForEachCCSet(fn func(setIdx uint32)) {
	for i, word := range c.ccSets {
		for w := word; w != 0; w &= w - 1 {
			fn(uint32(i<<6 + bits.TrailingZeros64(w)))
		}
	}
}

// FindCC searches set index setIdx for a cooperatively cached block with
// the given tag and flip state. It is the peer-side lookup of the SNUG
// retrieval protocol (§3.2): for a request with original index i, a peer
// searches set i for (CC, f=0) blocks or set i^1 for (CC, f=1) blocks.
// The occupancy index answers an empty candidate set in O(1), so a
// retrieval broadcast costs each non-holding peer one counter check
// instead of a set scan. It does not update LRU or statistics.
//
//snug:hotpath
func (c *Cache) FindCC(setIdx uint32, tag uint64, flipped bool) (found bool, way int) {
	if c.CCCount(setIdx, flipped) == 0 {
		return false, -1
	}
	m := c.meta[setIdx]
	sel := m & (m >> 2) & c.waySel // valid && CC
	f := (m >> 3) & c.waySel
	if flipped {
		sel &= f
	} else {
		sel &^= f
	}
	base := int(setIdx) * c.ways
	for ; sel != 0; sel &= sel - 1 {
		w := bits.TrailingZeros64(sel) >> 2
		if c.tags[base+w] == tag {
			return true, w
		}
	}
	return false, -1
}

// victimWay selects the fill target in set s: the lowest-index invalid way
// if one exists (one mask expression over the meta word), otherwise the
// way at LRU rank (one shift of the order word).
//
//snug:inline
func (c *Cache) victimWay(s uint32) int {
	if inv := ^c.meta[s] & c.waySel; inv != 0 {
		return bits.TrailingZeros64(inv) >> 2
	}
	return int(c.lru[s]>>c.lruShift) & nibbleMask
}

// Victim selects the fill target in set setIdx: an invalid way if one
// exists, otherwise the LRU way. It does not modify the set.
func (c *Cache) Victim(setIdx uint32) (way int, evicted Block) {
	w := c.victimWay(setIdx)
	return w, c.blockAt(setIdx, w)
}

// Fill installs a block into (setIdx, way) at MRU position, returning the
// displaced block (Valid==false if the way was empty). Eviction statistics
// are recorded for valid victims.
func (c *Cache) Fill(setIdx uint32, way int, nb Block) (victim Block) {
	victim = c.blockAt(setIdx, way)
	if victim.Valid {
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.DirtyEvicts++
		}
		if victim.CC {
			c.stats.CCEvictions++
			c.ccDec(setIdx, victim.F)
		}
	}
	i := int(setIdx)*c.ways + way
	c.tags[i] = nb.Tag
	c.owners[i] = nb.Owner
	f := uint64(bValid)
	if nb.Dirty {
		f |= bDirty
	}
	if nb.CC {
		f |= bCC
		c.ccInc(setIdx, nb.F)
	}
	if nb.F {
		f |= bF
	}
	shift := uint(way) * 4
	c.meta[setIdx] = c.meta[setIdx]&^(uint64(nibbleMask)<<shift) | f<<shift
	c.lru[setIdx] = promote(c.lru[setIdx], way)
	if setIdx == c.memoSet {
		c.memoOK = false
	}
	c.stats.Fills++
	return victim
}

// Insert is victim selection plus Fill: it installs a block for address a
// (with the given state) into its set, returning the evicted block if any.
func (c *Cache) Insert(a addr.Addr, nb Block) (victim Block) {
	s := uint32((uint64(a) >> c.offBits) & c.idxMask)
	nb.Tag = uint64(a) >> c.tagShift
	return c.Fill(s, c.victimWay(s), nb)
}

// InsertAt installs a block with an explicit tag into an explicit set —
// used for flipped-index cooperative fills, where the target set is not
// derived from the block's own address.
func (c *Cache) InsertAt(setIdx uint32, nb Block) (victim Block) {
	return c.Fill(setIdx, c.victimWay(setIdx), nb)
}

// clearWay invalidates (setIdx, way), maintaining the CC occupancy index.
// The caller has already read the block and knows it is valid.
func (c *Cache) clearWay(setIdx uint32, way int, old Block) {
	if old.CC {
		c.ccDec(setIdx, old.F)
	}
	c.meta[setIdx] &^= uint64(nibbleMask) << (uint(way) * 4)
	if setIdx == c.memoSet {
		c.memoOK = false
	}
	c.stats.Invalidations++
}

// InvalidateWay invalidates (setIdx, way) and returns the block that was
// there.
func (c *Cache) InvalidateWay(setIdx uint32, way int) Block {
	old := c.blockAt(setIdx, way)
	if old.Valid {
		c.clearWay(setIdx, way, old)
	}
	return old
}

// Invalidate removes a's block from its original index, returning it.
// found is false when the block was not present.
func (c *Cache) Invalidate(a addr.Addr) (old Block, found bool) {
	s := c.Index(a)
	if w := c.matchWay(s, c.Tag(a)); w >= 0 {
		old = c.blockAt(s, w)
		c.clearWay(s, w, old)
		return old, true
	}
	return Block{}, false
}

// SetView calls fn for each valid block of set setIdx, in way order. fn may
// not mutate the cache. It exists for the scheme controllers and tests to
// inspect set contents (e.g. dropping stranded CC blocks on a G/T flip).
func (c *Cache) SetView(setIdx uint32, fn func(way int, b Block)) {
	for v := c.meta[setIdx] & c.waySel; v != 0; v &= v - 1 {
		w := bits.TrailingZeros64(v) >> 2
		fn(w, c.blockAt(setIdx, w))
	}
}

// DropWhere invalidates every block in set setIdx matched by pred and
// returns how many were dropped.
func (c *Cache) DropWhere(setIdx uint32, pred func(b Block) bool) int {
	n := 0
	for v := c.meta[setIdx] & c.waySel; v != 0; v &= v - 1 {
		w := bits.TrailingZeros64(v) >> 2
		if b := c.blockAt(setIdx, w); pred(b) {
			c.clearWay(setIdx, w, b)
			n++
		}
	}
	return n
}

// LRUOrder returns the ways of set setIdx ordered from MRU to LRU,
// considering only valid lines — a read of the rank word. Used by tests
// asserting exact-LRU behaviour and by the stack-distance cross-checks.
func (c *Cache) LRUOrder(setIdx uint32) []int {
	m := c.meta[setIdx]
	order := c.lru[setIdx]
	out := make([]int, 0, c.ways)
	for r := 0; r < c.ways; r++ {
		w := int(order>>(uint(r)*4)) & nibbleMask
		if m>>(uint(w)*4)&bValid != 0 {
			out = append(out, w)
		}
	}
	return out
}

// ValidCount returns the number of valid lines in set setIdx.
func (c *Cache) ValidCount(setIdx uint32) int {
	return bits.OnesCount64(c.meta[setIdx] & c.waySel)
}

// Flush invalidates every line (without write-back side effects) and is
// used between characterization warm-up and measurement windows.
func (c *Cache) Flush() {
	for s := range c.meta {
		c.meta[s] = 0
		c.lru[s] = c.lruInit
		c.ccCnt[s] = 0
	}
	for i := range c.ccSets {
		c.ccSets[i] = 0
	}
	c.memoOK = false
}
