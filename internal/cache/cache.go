// Package cache implements the set-associative, write-back cache arrays
// used for the private L1/L2 caches and the shared-L2 banks. Blocks carry
// the metadata fields of the paper's Figure 4: tag, valid, dirty, the CC bit
// (cooperatively cached / foreign block) and the f bit (index-bit flipped),
// plus the owning core for accounting. Replacement is true LRU, which the
// paper relies on for its stack-property arguments (§2.1).
//
// The cache is a passive tag/state array: it performs lookups, victim
// selection, fills and invalidations, but the *policy* of what to do on a
// miss (fetch from DRAM, spill, retrieve from a peer) belongs to the scheme
// controllers in internal/schemes and internal/core.
package cache

import (
	"fmt"

	"snug/internal/addr"
)

// Block is one cache line's metadata. The data payload is not simulated;
// only tags and state matter for hit/miss behaviour and timing.
type Block struct {
	Tag   uint64
	Valid bool
	Dirty bool
	// CC marks a cooperatively cached (foreign) block: a block spilled into
	// this cache by a peer. CC==false means the line is owned by the local
	// core ("local line").
	CC bool
	// F is meaningful only when CC is set: the block was cooperatively
	// cached with the last bit of its original set index flipped (paper
	// §3.2). F==false means it sits at its original index.
	F bool
	// Owner is the core that owns the block's address space.
	Owner int8

	use uint64 // LRU timestamp: larger = more recently used
}

// Stats aggregates cache-array event counts.
type Stats struct {
	Hits          int64
	Misses        int64
	Fills         int64
	Evictions     int64
	DirtyEvicts   int64
	CCEvictions   int64 // cooperative blocks evicted (dropped, 1-chance rule)
	Invalidations int64
}

// Cache is a set-associative array with true-LRU replacement.
type Cache struct {
	geom  addr.Geometry
	ways  int
	sets  int
	lines []Block // sets*ways, row-major by set
	tick  uint64
	stats Stats

	// Cached geometry arithmetic: Lookup sits on the simulator's
	// per-access hot path, so the index/tag shift and mask are flattened
	// out of the Geometry value into direct fields.
	offBits  uint
	tagShift uint
	idxMask  uint64
}

// New builds a cache with the given geometry and associativity.
func New(geom addr.Geometry, ways int) (*Cache, error) {
	if ways <= 0 {
		return nil, fmt.Errorf("cache: associativity must be positive, got %d", ways)
	}
	return &Cache{
		geom:     geom,
		ways:     ways,
		sets:     geom.Sets(),
		lines:    make([]Block, geom.Sets()*ways),
		offBits:  geom.OffsetBits(),
		tagShift: geom.OffsetBits() + geom.IndexBits(),
		idxMask:  uint64(geom.Sets() - 1),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(geom addr.Geometry, ways int) *Cache {
	c, err := New(geom, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's address mapping.
func (c *Cache) Geometry() addr.Geometry { return c.geom }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Index returns the set index for a under this cache's geometry.
func (c *Cache) Index(a addr.Addr) uint32 {
	return uint32((uint64(a) >> c.offBits) & c.idxMask)
}

// Tag returns the tag for a under this cache's geometry.
func (c *Cache) Tag(a addr.Addr) uint64 { return uint64(a) >> c.tagShift }

// set returns the ways of set s.
func (c *Cache) set(s uint32) []Block {
	base := int(s) * c.ways
	return c.lines[base : base+c.ways]
}

// matchWay returns the way of set holding tag at its original index (local
// lines and CC blocks with F==false), or -1. It is the tag-match scan shared
// by Lookup, Probe and Invalidate: ways are visited in order, the tag
// compare leads (it is the discriminating test — valid non-matching lines
// dominate), and sets of up to four ways (the private L1s) are unrolled.
func matchWay(set []Block, tag uint64) int {
	if len(set) <= 4 {
		if b := &set[0]; b.Tag == tag && b.Valid && !(b.CC && b.F) {
			return 0
		}
		if len(set) > 1 {
			if b := &set[1]; b.Tag == tag && b.Valid && !(b.CC && b.F) {
				return 1
			}
		}
		if len(set) > 2 {
			if b := &set[2]; b.Tag == tag && b.Valid && !(b.CC && b.F) {
				return 2
			}
		}
		if len(set) > 3 {
			if b := &set[3]; b.Tag == tag && b.Valid && !(b.CC && b.F) {
				return 3
			}
		}
		return -1
	}
	for i := range set {
		b := &set[i]
		if b.Tag == tag && b.Valid && !(b.CC && b.F) {
			return i
		}
	}
	return -1
}

// Lookup searches set-of(a) for a's tag among lines that sit at their
// original index (local lines and CC blocks with F==false). On a hit the
// block is promoted to MRU, the dirty bit is set for writes, and hit
// statistics are updated. On a miss only the miss counter is updated.
// The tag-match scan (matchWay) is split from the LRU promotion so the
// scan stays a tight read-only loop.
func (c *Cache) Lookup(a addr.Addr, write bool) (hit bool, blk *Block) {
	s := uint32((uint64(a) >> c.offBits) & c.idxMask)
	tag := uint64(a) >> c.tagShift
	set := c.set(s)
	if w := matchWay(set, tag); w >= 0 {
		b := &set[w]
		c.tick++
		b.use = c.tick
		if write {
			b.Dirty = true
		}
		c.stats.Hits++
		return true, b
	}
	c.stats.Misses++
	return false, nil
}

// Probe reports whether a's tag is present at its original index, without
// updating LRU state or statistics.
func (c *Cache) Probe(a addr.Addr) bool {
	return matchWay(c.set(c.Index(a)), c.Tag(a)) >= 0
}

// FindCC searches set index setIdx for a cooperatively cached block with
// the given tag and flip state. It is the peer-side lookup of the SNUG
// retrieval protocol (§3.2): for a request with original index i, a peer
// searches set i for (CC, f=0) blocks or set i^1 for (CC, f=1) blocks.
// It does not update LRU or statistics.
func (c *Cache) FindCC(setIdx uint32, tag uint64, flipped bool) (found bool, way int) {
	set := c.set(setIdx)
	for i := range set {
		b := &set[i]
		if b.Valid && b.CC && b.F == flipped && b.Tag == tag {
			return true, i
		}
	}
	return false, -1
}

// Victim selects the fill target in set setIdx: an invalid way if one
// exists, otherwise the LRU way. It does not modify the set.
func (c *Cache) Victim(setIdx uint32) (way int, evicted Block) {
	set := c.set(setIdx)
	lru, lruUse := -1, ^uint64(0)
	for i := range set {
		b := &set[i]
		if !b.Valid {
			return i, Block{}
		}
		if b.use < lruUse {
			lru, lruUse = i, b.use
		}
	}
	return lru, set[lru]
}

// Fill installs a block into (setIdx, way) at MRU position, returning the
// displaced block (Valid==false if the way was empty). Eviction statistics
// are recorded for valid victims.
func (c *Cache) Fill(setIdx uint32, way int, nb Block) (victim Block) {
	set := c.set(setIdx)
	victim = set[way]
	if victim.Valid {
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.DirtyEvicts++
		}
		if victim.CC {
			c.stats.CCEvictions++
		}
	}
	c.tick++
	nb.Valid = true
	nb.use = c.tick
	set[way] = nb
	c.stats.Fills++
	return victim
}

// Insert is Victim+Fill: it installs a block for address a (with the given
// state) into its set, returning the evicted block if any.
func (c *Cache) Insert(a addr.Addr, nb Block) (victim Block) {
	s := c.Index(a)
	nb.Tag = c.Tag(a)
	way, _ := c.Victim(s)
	return c.Fill(s, way, nb)
}

// InsertAt installs a block with an explicit tag into an explicit set —
// used for flipped-index cooperative fills, where the target set is not
// derived from the block's own address.
func (c *Cache) InsertAt(setIdx uint32, nb Block) (victim Block) {
	way, _ := c.Victim(setIdx)
	return c.Fill(setIdx, way, nb)
}

// InvalidateWay invalidates (setIdx, way) and returns the block that was
// there.
func (c *Cache) InvalidateWay(setIdx uint32, way int) Block {
	set := c.set(setIdx)
	old := set[way]
	if old.Valid {
		c.stats.Invalidations++
	}
	set[way] = Block{}
	return old
}

// Invalidate removes a's block from its original index, returning it.
// found is false when the block was not present.
func (c *Cache) Invalidate(a addr.Addr) (old Block, found bool) {
	set := c.set(c.Index(a))
	if w := matchWay(set, c.Tag(a)); w >= 0 {
		old = set[w]
		c.stats.Invalidations++
		set[w] = Block{}
		return old, true
	}
	return Block{}, false
}

// SetView calls fn for each valid block of set setIdx, in way order. fn may
// not mutate the cache. It exists for the scheme controllers and tests to
// inspect set contents (e.g. dropping stranded CC blocks on a G/T flip).
func (c *Cache) SetView(setIdx uint32, fn func(way int, b Block)) {
	set := c.set(setIdx)
	for i := range set {
		if set[i].Valid {
			fn(i, set[i])
		}
	}
}

// DropWhere invalidates every block in set setIdx matched by pred and
// returns how many were dropped.
func (c *Cache) DropWhere(setIdx uint32, pred func(b Block) bool) int {
	set := c.set(setIdx)
	n := 0
	for i := range set {
		if set[i].Valid && pred(set[i]) {
			set[i] = Block{}
			c.stats.Invalidations++
			n++
		}
	}
	return n
}

// LRUOrder returns the ways of set setIdx ordered from MRU to LRU,
// considering only valid lines. Used by tests asserting exact-LRU behaviour
// and by the stack-distance cross-checks.
func (c *Cache) LRUOrder(setIdx uint32) []int {
	set := c.set(setIdx)
	type wu struct {
		way int
		use uint64
	}
	var order []wu
	for i := range set {
		if set[i].Valid {
			order = append(order, wu{i, set[i].use})
		}
	}
	// Insertion sort by descending use; associativity is small.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].use > order[j-1].use; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]int, len(order))
	for i, o := range order {
		out[i] = o.way
	}
	return out
}

// ValidCount returns the number of valid lines in set setIdx.
func (c *Cache) ValidCount(setIdx uint32) int {
	n := 0
	for _, b := range c.set(setIdx) {
		if b.Valid {
			n++
		}
	}
	return n
}

// Flush invalidates every line (without write-back side effects) and is
// used between characterization warm-up and measurement windows.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = Block{}
	}
}
