package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"snug/internal/cmp"
)

// writeStore runs a small checkpointed sweep and returns the store path
// and its results, for integrity tests to corrupt.
func writeStore(t *testing.T, n int) (string, map[string]cmp.RunResult) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	res, err := Run(context.Background(), Options{
		Parallelism: 1, BaseSeed: 7, Checkpoint: path, Fingerprint: "integrity-test/v1",
	}, fakeJobs(n))
	if err != nil {
		t.Fatal(err)
	}
	return path, res
}

// corruptLastOccurrence flips stored bytes by replacing the LAST occurrence
// of old in the file — inside an entry's result payload, past the key field
// — keeping the line valid JSON with an intact key, so only the CRC can
// catch it.
func corruptLastOccurrence(t *testing.T, path, old, new string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.LastIndex(data, []byte(old))
	if i < 0 {
		t.Fatalf("store does not contain %q", old)
	}
	copy(data[i:], new)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCRCDetectsCorruption: a bit-rotted line that still parses as
// JSON with a unique key — invisible to every structural check — is caught
// by the per-line CRC: OpenStore refuses, OpenStoreSalvage quarantines it
// and keeps the rest.
func TestStoreCRCDetectsCorruption(t *testing.T) {
	path, _ := writeStore(t, 3)
	corruptLastOccurrence(t, path, `"Scheme":"job-01"`, `"Scheme":"job-0X"`)

	if _, err := OpenStore(path); err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("OpenStore on a corrupt line returned %v, want a CRC mismatch refusal", err)
	}

	s, err := OpenStoreSalvage(path)
	if err != nil {
		t.Fatalf("OpenStoreSalvage: %v", err)
	}
	defer s.Close()
	if s.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d, want 1", s.Quarantined())
	}
	if s.Len() != 2 {
		t.Errorf("salvaged store holds %d results, want the 2 intact ones", s.Len())
	}
	if _, ok := s.Get("job-01"); ok {
		t.Error("the corrupt job-01 line was restored instead of quarantined")
	}
	q, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if !bytes.Contains(q, []byte(`"Scheme":"job-0X"`)) {
		t.Error("quarantine file does not preserve the corrupt line's bytes")
	}
	// The salvage rewrite leaves a store a normal open accepts, and the
	// quarantined job simply reruns on resume.
	s.Close()
	if _, err := OpenStore(path); err != nil {
		t.Errorf("OpenStore after salvage rewrite: %v", err)
	}
}

// TestStoreSalvageInteriorGarbage: a corrupt newline-terminated interior
// line (not a torn tail) is refused by OpenStore and quarantined by
// OpenStoreSalvage; resuming the sweep afterwards reruns exactly the lost
// job and converges to complete results.
func TestStoreSalvageInteriorGarbage(t *testing.T) {
	path, want := writeStore(t, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Replace the second result line (after the fingerprint header) with
	// garbage that is not even JSON.
	lines[2] = []byte("!!not json at all!!\n")
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenStore(path); err == nil {
		t.Fatal("OpenStore accepted a garbage interior line")
	}

	res, err := Run(context.Background(), Options{
		Parallelism: 1, BaseSeed: 7, Checkpoint: path,
		Fingerprint: "integrity-test/v1", Salvage: true,
	}, fakeJobs(4))
	if err != nil {
		t.Fatalf("salvage resume: %v", err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("salvage-resumed results differ from the original sweep")
	}
}

// TestStoreAbsentCRCBackcompat: a store written without CRC fields — the
// format of releases before this one — loads unchanged, resumes a sweep
// with zero reruns, and the resume writes nothing (byte-identical file),
// so existing long-running checkpoints survive the upgrade.
func TestStoreAbsentCRCBackcompat(t *testing.T) {
	path, want := writeStore(t, 5)
	// Strip the CRC field from every line, producing the previous release's
	// on-disk format (field order and encoding are otherwise identical).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var e storeEntry
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatal(err)
		}
		e.CRC = ""
		out, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		legacy.Write(append(out, '\n'))
	}
	legacyPath := filepath.Join(t.TempDir(), "legacy.jsonl")
	if err := os.WriteFile(legacyPath, legacy.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var last Progress
	res, err := Run(context.Background(), Options{
		Parallelism: 1, BaseSeed: 7, Checkpoint: legacyPath,
		Fingerprint: "integrity-test/v1",
		OnProgress:  func(p Progress) { last = p },
	}, fakeJobs(5))
	if err != nil {
		t.Fatalf("resume from legacy store: %v", err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("legacy-store results differ from the original sweep")
	}
	if last.Restored != 5 {
		t.Errorf("restored %d jobs from the legacy store, want all 5", last.Restored)
	}
	after, err := os.ReadFile(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, legacy.Bytes()) {
		t.Error("resuming a complete legacy store rewrote its bytes")
	}
}

// TestStoreSyncCadence: Options.Sync survives the round trip — entries
// written under a cadence read back complete, and a partial batch is
// flushed by Close.
func TestStoreSyncCadence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	res, err := Run(context.Background(), Options{
		Parallelism: 1, BaseSeed: 7, Checkpoint: path, Sync: 2,
	}, fakeJobs(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != len(res) {
		t.Errorf("store holds %d results, want %d", s.Len(), len(res))
	}
}

// TestStoreSalvageTornTail: salvage quarantines a torn tail's bytes (for
// forensics) where the normal open silently truncates them; both leave a
// clean, resumable store.
func TestStoreSalvageTornTail(t *testing.T) {
	path, _ := writeStore(t, 3)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","result":{"Sch`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := OpenStoreSalvage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 3 {
		t.Errorf("salvaged store holds %d results, want 3", s.Len())
	}
	if s.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d, want the torn tail", s.Quarantined())
	}
	q, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(q, []byte(`"key":"torn"`)) {
		t.Error("quarantine does not preserve the torn tail bytes")
	}
}

// TestProgressReportsQuarantined: the quarantine count reaches the
// progress stream, so an operator sees salvage happened.
func TestProgressReportsQuarantined(t *testing.T) {
	path, _ := writeStore(t, 3)
	corruptLastOccurrence(t, path, `"Scheme":"job-02"`, `"Scheme":"job-0X"`)
	var first Progress
	seen := false
	_, err := Run(context.Background(), Options{
		Parallelism: 1, BaseSeed: 7, Checkpoint: path,
		Fingerprint: "integrity-test/v1", Salvage: true,
		OnProgress: func(p Progress) {
			if !seen {
				first, seen = p, true
			}
		},
	}, fakeJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	if !seen || first.Quarantined != 1 {
		t.Errorf("first progress snapshot reports Quarantined=%d (seen=%v), want 1", first.Quarantined, seen)
	}
	if first.Restored != 2 {
		t.Errorf("first progress snapshot reports Restored=%d, want the 2 intact jobs", first.Restored)
	}
}
