package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"snug/internal/cmp"
)

// fakeJob builds a synthetic job whose result is a pure function of the
// derived seed, so engine bookkeeping can be tested without simulations.
func fakeJob(key, seedKey string) Job {
	return Job{Key: key, SeedKey: seedKey, Run: func(seed uint64) (cmp.RunResult, error) {
		return cmp.RunResult{Scheme: key, Cycles: int64(seed >> 1)}, nil
	}}
}

func fakeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = fakeJob(fmt.Sprintf("job-%02d", i), "")
	}
	return jobs
}

// TestRunDeterminism: results are bit-identical for every worker count.
func TestRunDeterminism(t *testing.T) {
	jobs := fakeJobs(23)
	var got []map[string]cmp.RunResult
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r, err := Run(context.Background(), Options{Parallelism: par, BaseSeed: 42}, jobs)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got[0], got[1]) || !reflect.DeepEqual(got[0], got[2]) {
		t.Error("results differ across Parallelism 1 / 4 / GOMAXPROCS")
	}
	if len(got[0]) != len(jobs) {
		t.Errorf("got %d results, want %d", len(got[0]), len(jobs))
	}
}

// TestJobSeedIdentity: seeds are a pure function of (base, seed key) —
// distinct per identity, shared when jobs share a SeedKey, and moved as one
// by the base seed.
func TestJobSeedIdentity(t *testing.T) {
	if JobSeed(1, "a") == JobSeed(1, "b") {
		t.Error("distinct seed keys produced the same seed")
	}
	if JobSeed(1, "a") != JobSeed(1, "a") {
		t.Error("JobSeed not deterministic")
	}
	if JobSeed(1, "a") == JobSeed(2, "a") {
		t.Error("base seed ignored")
	}

	seeds := make(map[string]uint64)
	jobs := []Job{
		{Key: "combo/L2P", SeedKey: "combo"},
		{Key: "combo/SNUG", SeedKey: "combo"},
		{Key: "other/SNUG"},
	}
	for i := range jobs {
		key := jobs[i].Key
		jobs[i].Run = func(seed uint64) (cmp.RunResult, error) {
			seeds[key] = seed
			return cmp.RunResult{}, nil
		}
	}
	if _, err := Run(context.Background(), Options{Parallelism: 1, BaseSeed: 7}, jobs); err != nil {
		t.Fatal(err)
	}
	if seeds["combo/L2P"] != seeds["combo/SNUG"] {
		t.Error("jobs sharing a SeedKey got different seeds (comparisons unpaired)")
	}
	if seeds["combo/L2P"] == seeds["other/SNUG"] {
		t.Error("distinct seed keys collided")
	}
	if want := JobSeed(7, "other/SNUG"); seeds["other/SNUG"] != want {
		t.Errorf("SeedKey default: got seed %#x, want Key-derived %#x", seeds["other/SNUG"], want)
	}
}

// TestResumeSkipsCompleted: a second sweep over the same checkpoint restores
// finished jobs instead of rerunning them.
func TestResumeSkipsCompleted(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	first, err := Run(context.Background(), Options{Parallelism: 2, Checkpoint: ckpt}, fakeJobs(6))
	if err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int64
	jobs := fakeJobs(8) // 6 checkpointed + 2 new
	for i := range jobs {
		inner := jobs[i].Run
		jobs[i].Run = func(seed uint64) (cmp.RunResult, error) {
			executed.Add(1)
			return inner(seed)
		}
	}
	var last Progress
	second, err := Run(context.Background(), Options{Parallelism: 2, Checkpoint: ckpt, OnProgress: func(p Progress) { last = p }}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != 2 {
		t.Errorf("resume executed %d jobs, want 2 (6 restored)", n)
	}
	if last.Restored != 6 || last.Done != 8 || last.Total != 8 {
		t.Errorf("final progress %+v, want restored=6 done=8 total=8", last)
	}
	for k, v := range first {
		if !reflect.DeepEqual(second[k], v) {
			t.Errorf("restored result %s differs from original", k)
		}
	}
}

// TestErrorCancels: a failing job surfaces as a JobError with its identity,
// stops new jobs from starting, and still returns completed work.
func TestErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	jobs := []Job{
		fakeJob("ok-0", ""),
		{Key: "bad", Run: func(uint64) (cmp.RunResult, error) { return cmp.RunResult{}, boom }},
	}
	for i := 0; i < 40; i++ {
		j := fakeJob(fmt.Sprintf("tail-%02d", i), "")
		inner := j.Run
		j.Run = func(seed uint64) (cmp.RunResult, error) {
			executed.Add(1)
			return inner(seed)
		}
		jobs = append(jobs, j)
	}
	res, err := Run(context.Background(), Options{Parallelism: 1}, jobs)
	if err == nil {
		t.Fatal("failing job did not surface an error")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Key != "bad" {
		t.Errorf("error %v, want JobError for key \"bad\"", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not unwrap to the job's error", err)
	}
	// With one worker the error lands before the tail is scheduled; allow a
	// couple of in-flight stragglers but not a full sweep.
	if n := executed.Load(); n > 3 {
		t.Errorf("%d tail jobs ran after the failure, want cancellation", n)
	}
	if _, ok := res["ok-0"]; !ok {
		t.Error("completed work discarded on error")
	}
}

// TestFingerprintGuard: a checkpoint produced under one configuration
// refuses to serve a sweep run under another, instead of silently mixing
// results; matching fingerprints resume normally.
func TestFingerprintGuard(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	if _, err := Run(context.Background(), Options{Checkpoint: ckpt, Fingerprint: "cfg-a"}, fakeJobs(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Options{Checkpoint: ckpt, Fingerprint: "cfg-b"}, fakeJobs(3)); err == nil {
		t.Error("mismatched fingerprint accepted — results from different configurations would mix")
	}
	var last Progress
	if _, err := Run(context.Background(), Options{Checkpoint: ckpt, Fingerprint: "cfg-a", OnProgress: func(p Progress) { last = p }}, fakeJobs(3)); err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
	if last.Restored != 3 {
		t.Errorf("matching resume restored %d, want 3", last.Restored)
	}

	// An old-format fingerprint listed in AcceptFingerprints resumes (a
	// format rename, not a configuration change); others still fail.
	var acc Progress
	if _, err := Run(context.Background(), Options{Checkpoint: ckpt, Fingerprint: "cfg-a/v2", AcceptFingerprints: []string{"cfg-a"},
		OnProgress: func(p Progress) { acc = p }}, fakeJobs(3)); err != nil {
		t.Fatalf("accepted legacy fingerprint rejected: %v", err)
	}
	if acc.Restored != 3 {
		t.Errorf("legacy-fingerprint resume restored %d, want 3", acc.Restored)
	}
	if _, err := Run(context.Background(), Options{Checkpoint: ckpt, Fingerprint: "cfg-a/v2", AcceptFingerprints: []string{"cfg-z"}}, fakeJobs(3)); err == nil {
		t.Error("unlisted fingerprint accepted")
	}

	// A store with results but no header cannot prove its provenance.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if _, err := Run(context.Background(), Options{Checkpoint: legacy}, fakeJobs(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Options{Checkpoint: legacy, Fingerprint: "cfg-a"}, fakeJobs(2)); err == nil {
		t.Error("fingerprint-less store with results accepted for a fingerprinted sweep")
	}
}

// TestJobValidation rejects duplicate and empty keys.
func TestJobValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{}, []Job{fakeJob("a", ""), fakeJob("a", "")}); err == nil {
		t.Error("duplicate key accepted")
	}
	if _, err := Run(context.Background(), Options{}, []Job{fakeJob("", "")}); err == nil {
		t.Error("empty key accepted")
	}
}

// TestStoreTornTail: a checkpoint whose final line was torn by an interrupt
// loads every intact entry; corruption elsewhere is an error.
func TestStoreTornTail(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	if _, err := Run(context.Background(), Options{Parallelism: 1, Checkpoint: ckpt}, fakeJobs(3)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","result":{"Sch`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := OpenStore(ckpt)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if s.Len() != 3 {
		t.Errorf("store has %d entries after torn tail, want 3", s.Len())
	}
	if _, ok := s.Get("torn"); ok {
		t.Error("torn entry surfaced")
	}
	// Appending after a torn tail must not glue onto the torn bytes: the
	// open truncates them, so a later open still parses every line.
	if err := s.Put("after-tear", cmp.RunResult{Scheme: "x"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenStore(ckpt)
	if err != nil {
		t.Fatalf("reopen after post-tear append: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 4 {
		t.Errorf("store has %d entries after post-tear append, want 4", s2.Len())
	}
	if _, ok := s2.Get("after-tear"); !ok {
		t.Error("post-tear entry lost")
	}

	mid := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(mid, []byte("not-json\n{\"key\":\"x\",\"result\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(mid); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

// TestPutFailureKeepsResultAndContext: a checkpoint write failure surfaces
// as a *JobError carrying the job's key (not a bare store error), and the
// successfully computed result stays in the returned map with its progress
// accounted — the simulation is done even if persisting it was not.
func TestPutFailureKeepsResultAndContext(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	// NaN is not representable in JSON, so the store's marshal — and hence
	// Put — fails for exactly this job while the job itself succeeds.
	poison := Job{Key: "poisoned", Run: func(uint64) (cmp.RunResult, error) {
		return cmp.RunResult{Scheme: "poisoned", Cores: []cmp.CoreResult{{IPC: math.NaN()}}}, nil
	}}
	var last Progress
	res, err := Run(context.Background(), Options{Parallelism: 1, Checkpoint: ckpt, OnProgress: func(p Progress) { last = p }},
		[]Job{fakeJob("ok", ""), poison})
	if err == nil {
		t.Fatal("Put failure did not surface an error")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Key != "poisoned" {
		t.Errorf("error %v, want *JobError for key \"poisoned\"", err)
	}
	if _, ok := res["poisoned"]; !ok {
		t.Error("computed result dropped on checkpoint failure")
	}
	if last.Done != 2 {
		t.Errorf("final progress done=%d, want 2 (the failed-to-persist job still completed)", last.Done)
	}
	// The store must still load: the failed Put wrote nothing (marshal
	// failed before the write), so only the ok job is checkpointed.
	s, err := OpenStore(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Errorf("store has %d entries, want 1", s.Len())
	}
}

// TestStoreDuplicateKey: a store holding two results under one key is
// corrupted (a single-writer sweep never rewrites a key); loading it must
// fail naming the offending line, not let the later line win silently.
func TestStoreDuplicateKey(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "dup.json")
	lines := `{"key":"a","result":{"Scheme":"x"}}
{"key":"b","result":{"Scheme":"y"}}
{"key":"a","result":{"Scheme":"z"}}
`
	if err := os.WriteFile(ckpt, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenStore(ckpt)
	if err == nil {
		t.Fatal("duplicate key accepted")
	}
	for _, want := range []string{"line 3", `"a"`, "duplicate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestReplicateKeyGrammar pins the replicate key grammar: replicate 0 IS
// the base key (no "@r0" anywhere, so single-replicate sweeps keep their
// historic store keys), r > 0 appends "@r<r>", and SplitReplicateKey
// inverts ReplicateKey.
func TestReplicateKeyGrammar(t *testing.T) {
	if got := ReplicateKey("4xammp/SNUG", 0); got != "4xammp/SNUG" {
		t.Errorf("replicate 0 key %q, want the unsuffixed base", got)
	}
	if got := ReplicateKey("4xammp/SNUG", 3); got != "4xammp/SNUG@r3" {
		t.Errorf("replicate 3 key %q", got)
	}
	for _, key := range []string{"4xammp/SNUG", "4xammp/CC(75%)", "plain"} {
		for _, r := range []int{0, 1, 7, 12} {
			base, rep := SplitReplicateKey(ReplicateKey(key, r))
			if base != key || rep != r {
				t.Errorf("round trip (%q, %d) -> (%q, %d)", key, r, base, rep)
			}
		}
	}
	// A base key that itself looks like a replicate cannot round-trip —
	// which is why Run rejects such keys when Replicates > 1.
	if base, rep := SplitReplicateKey("a@r3"); base != "a" || rep != 3 {
		t.Errorf(`SplitReplicateKey("a@r3") = (%q, %d)`, base, rep)
	}
	// Malformed suffixes are part of the base key, never replicate 0 aliases.
	for _, key := range []string{"a@r0", "a@r-1", "a@rx", "a@r"} {
		if base, rep := SplitReplicateKey(key); base != key || rep != 0 {
			t.Errorf("SplitReplicateKey(%q) = (%q, %d), want the key itself", key, base, rep)
		}
	}
}

// TestRunReplicates: Replicates expands every job into independently-seeded
// copies — replicate 0 byte-identical to an unreplicated sweep, jobs
// sharing a SeedKey paired within each replicate, replicates drawing
// distinct seeds — and stays deterministic across worker counts.
func TestRunReplicates(t *testing.T) {
	// Each job's result carries its derived seed out in the Cycles field,
	// keyed in the results map by the expanded replicate key.
	jobs := []Job{
		{Key: "combo/L2P", SeedKey: "combo"},
		{Key: "combo/SNUG", SeedKey: "combo"},
	}
	for i := range jobs {
		key := jobs[i].Key
		jobs[i].Run = func(seed uint64) (cmp.RunResult, error) {
			return cmp.RunResult{Scheme: key, Cycles: int64(seed >> 1)}, nil
		}
	}
	res, err := Run(context.Background(), Options{Parallelism: 1, BaseSeed: 9, Replicates: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("%d results, want 6 (2 jobs x 3 replicates)", len(res))
	}
	seedOf := func(key string) int64 { return res[key].Cycles }
	// Replicate 0 matches an unreplicated sweep exactly.
	if want := int64(JobSeed(9, "combo") >> 1); seedOf("combo/L2P") != want {
		t.Errorf("replicate 0 seed %#x, want the unreplicated JobSeed %#x", seedOf("combo/L2P"), want)
	}
	for r := 1; r < 3; r++ {
		l2p, snug := ReplicateKey("combo/L2P", r), ReplicateKey("combo/SNUG", r)
		if _, ok := res[l2p]; !ok {
			t.Fatalf("missing replicate key %s", l2p)
		}
		if seedOf(l2p) != seedOf(snug) {
			t.Errorf("replicate %d schemes unpaired: %#x vs %#x", r, seedOf(l2p), seedOf(snug))
		}
		if seedOf(l2p) == seedOf("combo/L2P") {
			t.Errorf("replicate %d reuses replicate 0's stream", r)
		}
	}

	// Determinism across worker counts, replicated.
	again, err := Run(context.Background(), Options{Parallelism: 4, BaseSeed: 9, Replicates: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("replicated results differ between Parallelism 1 and 4")
	}

	// A key that already looks like a replicate would collide with the
	// expansion; reject it up front.
	if _, err := Run(context.Background(), Options{Replicates: 2}, []Job{fakeJob("a@r1", "")}); err == nil {
		t.Error("replicate-suffixed job key accepted under Replicates > 1")
	}
}

// TestRunReplicatesResume: a store written by a single-replicate sweep
// seeds a replicated rerun of the same jobs — replicate 0 restores, only
// the new replicates simulate.
func TestRunReplicatesResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	jobs := fakeJobs(4)
	if _, err := Run(context.Background(), Options{Parallelism: 2, Checkpoint: ckpt}, jobs); err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	for i := range jobs {
		inner := jobs[i].Run
		jobs[i].Run = func(seed uint64) (cmp.RunResult, error) {
			executed.Add(1)
			return inner(seed)
		}
	}
	var last Progress
	res, err := Run(context.Background(), Options{Parallelism: 2, Checkpoint: ckpt, Replicates: 3,
		OnProgress: func(p Progress) { last = p }}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != 8 {
		t.Errorf("replicated resume executed %d jobs, want 8 (4 restored from the single-replicate store)", n)
	}
	if last.Restored != 4 || last.Done != 12 {
		t.Errorf("final progress %+v, want restored=4 done=12", last)
	}
	if len(res) != 12 {
		t.Errorf("%d results, want 12", len(res))
	}
}
