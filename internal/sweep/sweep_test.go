package sweep

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"snug/internal/cmp"
)

// fakeJob builds a synthetic job whose result is a pure function of the
// derived seed, so engine bookkeeping can be tested without simulations.
func fakeJob(key, seedKey string) Job {
	return Job{Key: key, SeedKey: seedKey, Run: func(seed uint64) (cmp.RunResult, error) {
		return cmp.RunResult{Scheme: key, Cycles: int64(seed >> 1)}, nil
	}}
}

func fakeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = fakeJob(fmt.Sprintf("job-%02d", i), "")
	}
	return jobs
}

// TestRunDeterminism: results are bit-identical for every worker count.
func TestRunDeterminism(t *testing.T) {
	jobs := fakeJobs(23)
	var got []map[string]cmp.RunResult
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r, err := Run(Options{Parallelism: par, BaseSeed: 42}, jobs)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got[0], got[1]) || !reflect.DeepEqual(got[0], got[2]) {
		t.Error("results differ across Parallelism 1 / 4 / GOMAXPROCS")
	}
	if len(got[0]) != len(jobs) {
		t.Errorf("got %d results, want %d", len(got[0]), len(jobs))
	}
}

// TestJobSeedIdentity: seeds are a pure function of (base, seed key) —
// distinct per identity, shared when jobs share a SeedKey, and moved as one
// by the base seed.
func TestJobSeedIdentity(t *testing.T) {
	if JobSeed(1, "a") == JobSeed(1, "b") {
		t.Error("distinct seed keys produced the same seed")
	}
	if JobSeed(1, "a") != JobSeed(1, "a") {
		t.Error("JobSeed not deterministic")
	}
	if JobSeed(1, "a") == JobSeed(2, "a") {
		t.Error("base seed ignored")
	}

	seeds := make(map[string]uint64)
	jobs := []Job{
		{Key: "combo/L2P", SeedKey: "combo"},
		{Key: "combo/SNUG", SeedKey: "combo"},
		{Key: "other/SNUG"},
	}
	for i := range jobs {
		key := jobs[i].Key
		jobs[i].Run = func(seed uint64) (cmp.RunResult, error) {
			seeds[key] = seed
			return cmp.RunResult{}, nil
		}
	}
	if _, err := Run(Options{Parallelism: 1, BaseSeed: 7}, jobs); err != nil {
		t.Fatal(err)
	}
	if seeds["combo/L2P"] != seeds["combo/SNUG"] {
		t.Error("jobs sharing a SeedKey got different seeds (comparisons unpaired)")
	}
	if seeds["combo/L2P"] == seeds["other/SNUG"] {
		t.Error("distinct seed keys collided")
	}
	if want := JobSeed(7, "other/SNUG"); seeds["other/SNUG"] != want {
		t.Errorf("SeedKey default: got seed %#x, want Key-derived %#x", seeds["other/SNUG"], want)
	}
}

// TestResumeSkipsCompleted: a second sweep over the same checkpoint restores
// finished jobs instead of rerunning them.
func TestResumeSkipsCompleted(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	first, err := Run(Options{Parallelism: 2, Checkpoint: ckpt}, fakeJobs(6))
	if err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int64
	jobs := fakeJobs(8) // 6 checkpointed + 2 new
	for i := range jobs {
		inner := jobs[i].Run
		jobs[i].Run = func(seed uint64) (cmp.RunResult, error) {
			executed.Add(1)
			return inner(seed)
		}
	}
	var last Progress
	second, err := Run(Options{Parallelism: 2, Checkpoint: ckpt, OnProgress: func(p Progress) { last = p }}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != 2 {
		t.Errorf("resume executed %d jobs, want 2 (6 restored)", n)
	}
	if last.Restored != 6 || last.Done != 8 || last.Total != 8 {
		t.Errorf("final progress %+v, want restored=6 done=8 total=8", last)
	}
	for k, v := range first {
		if !reflect.DeepEqual(second[k], v) {
			t.Errorf("restored result %s differs from original", k)
		}
	}
}

// TestErrorCancels: a failing job surfaces as a JobError with its identity,
// stops new jobs from starting, and still returns completed work.
func TestErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	jobs := []Job{
		fakeJob("ok-0", ""),
		{Key: "bad", Run: func(uint64) (cmp.RunResult, error) { return cmp.RunResult{}, boom }},
	}
	for i := 0; i < 40; i++ {
		j := fakeJob(fmt.Sprintf("tail-%02d", i), "")
		inner := j.Run
		j.Run = func(seed uint64) (cmp.RunResult, error) {
			executed.Add(1)
			return inner(seed)
		}
		jobs = append(jobs, j)
	}
	res, err := Run(Options{Parallelism: 1}, jobs)
	if err == nil {
		t.Fatal("failing job did not surface an error")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Key != "bad" {
		t.Errorf("error %v, want JobError for key \"bad\"", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not unwrap to the job's error", err)
	}
	// With one worker the error lands before the tail is scheduled; allow a
	// couple of in-flight stragglers but not a full sweep.
	if n := executed.Load(); n > 3 {
		t.Errorf("%d tail jobs ran after the failure, want cancellation", n)
	}
	if _, ok := res["ok-0"]; !ok {
		t.Error("completed work discarded on error")
	}
}

// TestFingerprintGuard: a checkpoint produced under one configuration
// refuses to serve a sweep run under another, instead of silently mixing
// results; matching fingerprints resume normally.
func TestFingerprintGuard(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	if _, err := Run(Options{Checkpoint: ckpt, Fingerprint: "cfg-a"}, fakeJobs(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{Checkpoint: ckpt, Fingerprint: "cfg-b"}, fakeJobs(3)); err == nil {
		t.Error("mismatched fingerprint accepted — results from different configurations would mix")
	}
	var last Progress
	if _, err := Run(Options{Checkpoint: ckpt, Fingerprint: "cfg-a", OnProgress: func(p Progress) { last = p }}, fakeJobs(3)); err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
	if last.Restored != 3 {
		t.Errorf("matching resume restored %d, want 3", last.Restored)
	}

	// A store with results but no header cannot prove its provenance.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if _, err := Run(Options{Checkpoint: legacy}, fakeJobs(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{Checkpoint: legacy, Fingerprint: "cfg-a"}, fakeJobs(2)); err == nil {
		t.Error("fingerprint-less store with results accepted for a fingerprinted sweep")
	}
}

// TestJobValidation rejects duplicate and empty keys.
func TestJobValidation(t *testing.T) {
	if _, err := Run(Options{}, []Job{fakeJob("a", ""), fakeJob("a", "")}); err == nil {
		t.Error("duplicate key accepted")
	}
	if _, err := Run(Options{}, []Job{fakeJob("", "")}); err == nil {
		t.Error("empty key accepted")
	}
}

// TestStoreTornTail: a checkpoint whose final line was torn by an interrupt
// loads every intact entry; corruption elsewhere is an error.
func TestStoreTornTail(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	if _, err := Run(Options{Parallelism: 1, Checkpoint: ckpt}, fakeJobs(3)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","result":{"Sch`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := OpenStore(ckpt)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if s.Len() != 3 {
		t.Errorf("store has %d entries after torn tail, want 3", s.Len())
	}
	if _, ok := s.Get("torn"); ok {
		t.Error("torn entry surfaced")
	}
	// Appending after a torn tail must not glue onto the torn bytes: the
	// open truncates them, so a later open still parses every line.
	if err := s.Put("after-tear", cmp.RunResult{Scheme: "x"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenStore(ckpt)
	if err != nil {
		t.Fatalf("reopen after post-tear append: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 4 {
		t.Errorf("store has %d entries after post-tear append, want 4", s2.Len())
	}
	if _, ok := s2.Get("after-tear"); !ok {
		t.Error("post-tear entry lost")
	}

	mid := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(mid, []byte("not-json\n{\"key\":\"x\",\"result\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(mid); err == nil {
		t.Error("mid-file corruption accepted")
	}
}
