package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"snug/internal/cmp"
)

// Store is the sweep's checkpointed results store: an append-only file of
// JSON entries, one completed job per line, preceded by an optional header
// line fingerprinting the sweep configuration. Append-only makes
// checkpointing crash-safe — a write torn by an interrupt corrupts only the
// final line, which OpenStore tolerates (that job simply reruns on resume).
type Store struct {
	path        string
	mu          sync.Mutex
	f           *os.File
	fingerprint string
	results     map[string]cmp.RunResult
}

// storeEntry is one persisted line: either a header (Fingerprint set) or a
// completed job (Key/Result set).
type storeEntry struct {
	Fingerprint string         `json:"fingerprint,omitempty"`
	Key         string         `json:"key,omitempty"`
	Result      *cmp.RunResult `json:"result,omitempty"`
}

// OpenStore opens (creating if absent) the results store at path and loads
// every previously completed result. An unterminated final line — the
// signature of an interrupted write — is truncated away so later appends
// start on a clean boundary; corruption of a newline-terminated line is an
// error, since a single-writer append can only tear the tail.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, results: make(map[string]cmp.RunResult)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: open checkpoint: %w", err)
	}
	keep := len(data) // length of the valid prefix to retain
	addNL := false    // last line parsed but lost its newline to a tear
	off, lineNo := 0, 0
	for off < len(data) {
		end, hasNL := len(data), false
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			end, hasNL = off+nl, true
		}
		line := bytes.TrimSpace(data[off:end])
		lineNo++
		if len(line) > 0 {
			var e storeEntry
			if err := json.Unmarshal(line, &e); err != nil {
				if !hasNL {
					keep = off // torn tail write from an interrupted run
					break
				}
				return nil, fmt.Errorf("sweep: checkpoint %s line %d: %w", path, lineNo, err)
			}
			if e.Fingerprint != "" {
				s.fingerprint = e.Fingerprint
			} else if e.Key != "" && e.Result != nil {
				// A single-writer sweep never writes a key twice (completed
				// jobs are restored, not rerun), so a duplicate means the
				// store is corrupted or was written by two sweeps at once —
				// loading it silently would let the later line shadow the
				// earlier result.
				if _, dup := s.results[e.Key]; dup {
					return nil, fmt.Errorf("sweep: checkpoint %s line %d: duplicate key %q", path, lineNo, e.Key)
				}
				s.results[e.Key] = *e.Result
			}
			addNL = !hasNL
		}
		if !hasNL {
			break
		}
		off = end + 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open checkpoint: %w", err)
	}
	// Repair the tail before anything is appended: a glued-on write would
	// corrupt the file mid-line, which a later open rejects.
	if keep < len(data) {
		err = f.Truncate(int64(keep))
	} else if addNL {
		_, err = f.Write([]byte{'\n'})
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: repair checkpoint tail: %w", err)
	}
	s.f = f
	return s, nil
}

// Fingerprint returns the stored configuration fingerprint ("" if the
// store has none).
func (s *Store) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fingerprint
}

// SetFingerprint writes the configuration header. It may only be called on
// a store that has no fingerprint yet.
func (s *Store) SetFingerprint(fp string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fingerprint != "" {
		return fmt.Errorf("sweep: checkpoint %s already has a fingerprint", s.path)
	}
	line, err := json.Marshal(storeEntry{Fingerprint: fp})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("sweep: checkpoint header write: %w", err)
	}
	s.fingerprint = fp
	return nil
}

// Get returns the stored result for key, if present.
func (s *Store) Get(key string) (cmp.RunResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[key]
	return r, ok
}

// Len returns the number of stored results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// Put appends one completed result to the store.
func (s *Store) Put(key string, r cmp.RunResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	line, err := json.Marshal(storeEntry{Key: key, Result: &r})
	if err != nil {
		return fmt.Errorf("sweep: marshal result %s: %w", key, err)
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("sweep: checkpoint write %s: %w", key, err)
	}
	s.results[key] = r
	return nil
}

// Close closes the underlying file. Get/Len remain usable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
