package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"snug/internal/cmp"
)

// Store is the sweep's checkpointed results store: an append-only file of
// JSON entries, one completed job per line, preceded by an optional header
// line fingerprinting the sweep configuration. Append-only makes
// checkpointing crash-safe — a write torn by an interrupt corrupts only the
// final line, which OpenStore tolerates (that job simply reruns on resume).
//
// Every line this release writes carries a CRC32 of its payload, so
// corruption that still parses as JSON (bit rot, a partial overwrite that
// happens to balance its braces) is detected instead of silently restored.
// Lines without a CRC — stores written by earlier releases — still load,
// so existing checkpoints resume unchanged.
type Store struct {
	path         string
	mu           sync.Mutex
	f            *os.File
	fingerprint  string
	results      map[string]cmp.RunResult
	quarantined  int // corrupt lines moved to <path>.quarantine by a salvage open
	syncEvery    int // fsync after every Nth Put (0 = never explicitly)
	putsUnsynced int
}

// storeEntry is one persisted line: either a header (Fingerprint set) or a
// completed job (Key/Result set). Result stays a raw message so the CRC is
// computed over the exact bytes on disk, immune to schema drift between
// the writing and reading release.
type storeEntry struct {
	Fingerprint string          `json:"fingerprint,omitempty"`
	Key         string          `json:"key,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	CRC         string          `json:"crc,omitempty"`
}

// entryCRC is the integrity checksum of one line's payload: CRC32 (IEEE)
// over the fingerprint, key and raw result bytes, NUL-separated so field
// boundaries cannot alias. The CRC field itself is excluded — verification
// recomputes from the raw bytes as stored, never from a re-marshal whose
// encoding could drift across releases.
func entryCRC(e storeEntry) string {
	h := crc32.NewIEEE()
	h.Write([]byte(e.Fingerprint))
	h.Write([]byte{0})
	h.Write([]byte(e.Key))
	h.Write([]byte{0})
	h.Write(e.Result)
	return fmt.Sprintf("%08x", h.Sum32())
}

// OpenStore opens (creating if absent) the results store at path and loads
// every previously completed result. An unterminated final line — the
// signature of an interrupted write — is truncated away so later appends
// start on a clean boundary; corruption of a newline-terminated line
// (unparseable JSON, a CRC mismatch, a duplicate key) is an error, since a
// single-writer append can only tear the tail. Use OpenStoreSalvage to
// quarantine such lines instead of refusing.
func OpenStore(path string) (*Store, error) {
	return openStore(path, false)
}

// OpenStoreSalvage opens the store in salvage mode: corrupt interior lines
// (unparseable JSON, CRC mismatches, duplicate keys) are moved to
// <path>.quarantine — preserved byte-for-byte for forensics — and the main
// file is rewritten atomically with only the intact lines, so a resumed
// sweep reruns exactly the quarantined jobs. Quarantined reports how many
// lines were set aside.
func OpenStoreSalvage(path string) (*Store, error) {
	return openStore(path, true)
}

func openStore(path string, salvage bool) (*Store, error) {
	s := &Store{path: path, results: make(map[string]cmp.RunResult)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: open checkpoint: %w", err)
	}
	keep := len(data) // length of the valid prefix to retain
	addNL := false    // last line parsed but lost its newline to a tear
	var good, bad [][]byte
	off, lineNo := 0, 0
	for off < len(data) {
		end, hasNL := len(data), false
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			end, hasNL = off+nl, true
		}
		line := bytes.TrimSpace(data[off:end])
		lineNo++
		if len(line) > 0 {
			if err := s.loadLine(line, path, lineNo); err != nil {
				if !hasNL {
					keep = off // torn tail write from an interrupted run
					break
				}
				if !salvage {
					return nil, err
				}
				bad = append(bad, line)
				off = end + 1
				continue
			}
			good = append(good, line)
			addNL = !hasNL
		}
		if !hasNL {
			break
		}
		off = end + 1
	}
	if salvage && keep < len(data) {
		// The torn tail is quarantined too: it reruns either way, but the
		// bytes may still identify which job the interrupt caught.
		if tail := bytes.TrimSpace(data[keep:]); len(tail) > 0 {
			bad = append(bad, tail)
		}
	}
	s.quarantined = len(bad)
	if len(bad) > 0 {
		if err := quarantine(path, bad); err != nil {
			return nil, err
		}
		// Rewrite the main file with only the intact lines, atomically: a
		// crash mid-rewrite leaves either the old file or the new one, never
		// a half-written store.
		if err := rewrite(path, good); err != nil {
			return nil, err
		}
		keep, addNL, data = 0, false, nil // the rewrite left a clean file
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open checkpoint: %w", err)
	}
	// Repair the tail before anything is appended: a glued-on write would
	// corrupt the file mid-line, which a later open rejects.
	if repaired := keep < len(data) || addNL; repaired {
		if keep < len(data) {
			err = f.Truncate(int64(keep))
		} else {
			_, err = f.Write([]byte{'\n'})
		}
		// Persist the repair itself: without the fsync a crash right after
		// could resurrect the torn line the truncate just removed, and the
		// next open would find appends glued onto it.
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: repair checkpoint tail: %w", err)
		}
	}
	s.f = f
	return s, nil
}

// loadLine parses and verifies one stored line into the in-memory state.
func (s *Store) loadLine(line []byte, path string, lineNo int) error {
	var e storeEntry
	if err := json.Unmarshal(line, &e); err != nil {
		return fmt.Errorf("sweep: checkpoint %s line %d: %w", path, lineNo, err)
	}
	if e.CRC != "" {
		if want := entryCRC(storeEntry{Fingerprint: e.Fingerprint, Key: e.Key, Result: e.Result}); e.CRC != want {
			return fmt.Errorf("sweep: checkpoint %s line %d: CRC mismatch (stored %s, computed %s): line is corrupt", path, lineNo, e.CRC, want)
		}
	}
	if e.Fingerprint != "" {
		s.fingerprint = e.Fingerprint
		return nil
	}
	if e.Key != "" && len(e.Result) > 0 {
		// A single-writer sweep never writes a key twice (completed jobs are
		// restored, not rerun), so a duplicate means the store is corrupted
		// or was written by two sweeps at once — loading it silently would
		// let the later line shadow the earlier result.
		if _, dup := s.results[e.Key]; dup {
			return fmt.Errorf("sweep: checkpoint %s line %d: duplicate key %q", path, lineNo, e.Key)
		}
		var r cmp.RunResult
		if err := json.Unmarshal(e.Result, &r); err != nil {
			return fmt.Errorf("sweep: checkpoint %s line %d: result for %q: %w", path, lineNo, e.Key, err)
		}
		s.results[e.Key] = r
	}
	return nil
}

// quarantine appends the corrupt lines to <path>.quarantine, one per line,
// byte-for-byte as found.
func quarantine(path string, lines [][]byte) error {
	q, err := os.OpenFile(path+".quarantine", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: open quarantine: %w", err)
	}
	for _, line := range lines {
		if _, err := q.Write(append(line, '\n')); err != nil {
			q.Close()
			return fmt.Errorf("sweep: quarantine write: %w", err)
		}
	}
	if err := q.Sync(); err != nil {
		q.Close()
		return fmt.Errorf("sweep: quarantine sync: %w", err)
	}
	if err := q.Close(); err != nil {
		return fmt.Errorf("sweep: quarantine close: %w", err)
	}
	return nil
}

// rewrite atomically replaces path with the given lines via a fsync'd
// temporary file and rename.
func rewrite(path string, lines [][]byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: salvage rewrite: %w", err)
	}
	for _, line := range lines {
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return fmt.Errorf("sweep: salvage rewrite: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sweep: salvage rewrite: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sweep: salvage rewrite: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sweep: salvage rewrite: %w", err)
	}
	return nil
}

// Quarantined returns the number of corrupt lines a salvage open moved to
// <path>.quarantine (0 for a clean store or a plain OpenStore).
func (s *Store) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// SyncEvery sets the fsync cadence: every Nth Put flushes the file to
// stable storage (and Close flushes the remainder). 0 — the default —
// restores the historic behavior of leaving durability to the OS; 1
// fsyncs every entry. A lost entry is never corruption either way (the
// job just reruns on resume); the cadence bounds how much completed work
// a power loss can cost.
func (s *Store) SyncEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncEvery = n
}

// Fingerprint returns the stored configuration fingerprint ("" if the
// store has none).
func (s *Store) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fingerprint
}

// SetFingerprint writes the configuration header. It may only be called on
// a store that has no fingerprint yet.
func (s *Store) SetFingerprint(fp string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fingerprint != "" {
		return fmt.Errorf("sweep: checkpoint %s already has a fingerprint", s.path)
	}
	e := storeEntry{Fingerprint: fp}
	e.CRC = entryCRC(e)
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("sweep: checkpoint header write: %w", err)
	}
	s.fingerprint = fp
	return nil
}

// Get returns the stored result for key, if present.
func (s *Store) Get(key string) (cmp.RunResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[key]
	return r, ok
}

// Len returns the number of stored results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// Put appends one completed result to the store, CRC-stamped, honoring the
// SyncEvery cadence.
func (s *Store) Put(key string, r cmp.RunResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := json.Marshal(&r)
	if err != nil {
		return fmt.Errorf("sweep: marshal result %s: %w", key, err)
	}
	e := storeEntry{Key: key, Result: raw}
	e.CRC = entryCRC(e)
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: marshal result %s: %w", key, err)
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("sweep: checkpoint write %s: %w", key, err)
	}
	if s.syncEvery > 0 {
		s.putsUnsynced++
		if s.putsUnsynced >= s.syncEvery {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("sweep: checkpoint sync %s: %w", key, err)
			}
			s.putsUnsynced = 0
		}
	}
	s.results[key] = r
	return nil
}

// Close flushes (under a SyncEvery cadence) and closes the underlying
// file. The returned error matters: a buffered write that only fails at
// close time is a checkpoint entry that never reached disk. Get/Len remain
// usable, and Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var syncErr error
	if s.syncEvery > 0 && s.putsUnsynced > 0 {
		syncErr = s.f.Sync()
	}
	err := s.f.Close()
	s.f = nil
	if syncErr != nil {
		return fmt.Errorf("sweep: checkpoint close sync: %w", syncErr)
	}
	if err != nil {
		return fmt.Errorf("sweep: checkpoint close: %w", err)
	}
	return nil
}
