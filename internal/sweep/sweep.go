// Package sweep is the reusable evaluation-sweep engine: it runs a batch of
// independent simulation jobs across a worker pool, checkpoints every
// completed result to a JSON results store so an interrupted sweep resumes
// without redoing finished work, and reports structured progress.
//
// Determinism is the package's core contract. Each job's RNG seed is derived
// from the job's identity (its SeedKey) via stats.Mix64, never from wall
// time or scheduling, so a sweep's results are bit-identical regardless of
// worker count or completion order. Jobs that must be compared pair-wise
// (the same workload under different schemes) share a SeedKey and therefore
// see identical instruction streams.
//
// The engine is the foundation under internal/experiments.Evaluate,
// cmd/experiments and cmd/snugsim; DESIGN.md §"Sweep engine" documents the
// architecture.
package sweep

import (
	"fmt"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"snug/internal/cmp"
	"snug/internal/cpubudget"
	"snug/internal/stats"
)

// Job is one unit of work: a deterministic simulation identified by Key.
type Job struct {
	// Key uniquely identifies the job inside a sweep and keys its
	// checkpointed result (e.g. "4xammp/SNUG"). Keys must be stable across
	// program runs for resumption to work.
	Key string
	// SeedKey selects the job's RNG seed; it defaults to Key. Jobs sharing
	// a SeedKey receive identical seeds — the evaluation uses this to run
	// every scheme of one workload combination over the same instruction
	// streams, keeping normalized comparisons paired.
	SeedKey string
	// Run executes the job with the derived seed.
	Run func(seed uint64) (cmp.RunResult, error)
}

// Progress is a point-in-time snapshot of a running sweep.
type Progress struct {
	Done     int    // jobs finished, including restored ones
	Total    int    // jobs in the sweep
	Restored int    // jobs satisfied from the checkpoint store
	Key      string // job that just finished ("" for the restore snapshot)
	Elapsed  time.Duration
	ETA      time.Duration // zero until at least one live job finished
}

// Options configures a sweep.
type Options struct {
	// Parallelism is the worker count; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// CPUBudget caps the process-wide number of concurrent simulation
	// goroutines for the duration of the sweep (0 keeps the current
	// process budget, default GOMAXPROCS). It is applied via
	// internal/cpubudget, the token pool both layers of parallelism draw
	// from: every sweep worker holds one token while it runs a job, and a
	// job's intra-run epoch engine asks the same pool for its extra
	// worker goroutines (falling back to the byte-identical serial engine
	// when none are free). Sweep-level and intra-run parallelism therefore
	// compose up to the budget instead of multiplying past the host:
	// Parallelism above the budget degrades to the budget, and
	// ScalingStudy's wide intra-run points stop oversubscribing a narrow
	// machine. Results and checkpoint bytes are identical at every
	// setting.
	CPUBudget int
	// BaseSeed is mixed into every job's derived seed, so one knob reseeds
	// the whole sweep without touching job identities.
	BaseSeed uint64
	// Checkpoint is the results-store path. When non-empty, previously
	// completed jobs found in the store are restored instead of rerun, and
	// every newly completed job is appended. Empty disables checkpointing.
	Checkpoint string
	// Fingerprint identifies the configuration behind this sweep's results
	// (run length, system config, base seed — whatever changes them). It is
	// written into a fresh checkpoint store and checked on resume: restoring
	// results produced under a different configuration is an error, not a
	// silent mix. Empty skips the check.
	Fingerprint string
	// AcceptFingerprints lists additional stored fingerprints to treat as
	// equivalent to Fingerprint on resume — for renames of the fingerprint
	// format itself (e.g. introducing a version token) where the underlying
	// results are unchanged. The store keeps its original header.
	AcceptFingerprints []string
	// Replicates expands every job into this many independently-seeded
	// replicates (0 and 1 both mean a single run). Replicate 0 keeps the
	// job's key and seed byte-identical to a non-replicated sweep, so
	// existing checkpoint stores keep resuming; replicate r > 0 runs under
	// key ReplicateKey(Key, r) ("key@r3") with a seed derived from the
	// suffixed seed key, so jobs sharing a SeedKey stay paired within each
	// replicate while replicates draw independent streams.
	Replicates int
	// OnProgress, when set, is called once after restoration and once per
	// completed job. It runs on the collector goroutine; callbacks must not
	// block for long.
	OnProgress func(Progress)
}

// JobError wraps a job failure with the identity of the job that produced
// it, so callers can surface which sweep unit went wrong.
type JobError struct {
	Key string
	Err error
}

func (e *JobError) Error() string { return fmt.Sprintf("sweep: job %s: %v", e.Key, e.Err) }

// Unwrap exposes the original job error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// JobSeed derives the RNG seed for a job identity: Mix64 over the base seed
// combined with the hashed identity. Pure function of (base, seedKey).
func JobSeed(base uint64, seedKey string) uint64 {
	return stats.Mix64(base ^ stats.HashString(seedKey))
}

// repSep introduces a replicate suffix in keys and seed keys. "@r0" never
// appears: replicate 0 IS the unsuffixed identity.
const repSep = "@r"

// ReplicateKey returns the key of replicate r of key. Replicate 0 is the
// key itself — byte-identical to a non-replicated sweep, so single-replicate
// runs resume today's checkpoint stores unchanged — and r > 0 appends
// "@r<r>" ("4xammp/SNUG@r3"). It panics on a negative replicate.
func ReplicateKey(key string, r int) string {
	if r < 0 {
		panic(fmt.Sprintf("sweep: negative replicate %d", r))
	}
	if r == 0 {
		return key
	}
	return key + repSep + strconv.Itoa(r)
}

// SplitReplicateKey splits a possibly replicate-suffixed key into its base
// key and replicate index: "4xammp/SNUG@r3" → ("4xammp/SNUG", 3), and a key
// without a well-formed suffix is replicate 0 of itself.
func SplitReplicateKey(key string) (string, int) {
	i := strings.LastIndex(key, repSep)
	if i < 0 {
		return key, 0
	}
	r, err := strconv.Atoi(key[i+len(repSep):])
	if err != nil || r <= 0 {
		return key, 0
	}
	return key[:i], r
}

// expandReplicates turns each job into reps independently-seeded copies,
// replicate-major (all of replicate 0, then replicate 1, ...) so a resumed
// single-replicate store satisfies a contiguous prefix.
func expandReplicates(jobs []Job, reps int) []Job {
	out := make([]Job, 0, len(jobs)*reps)
	for r := 0; r < reps; r++ {
		for _, j := range jobs {
			rj := j
			rj.Key = ReplicateKey(j.Key, r)
			if j.SeedKey != "" {
				// An explicit seed key gets the same suffix, keeping jobs
				// that share one (paired comparisons) paired per replicate.
				// An empty seed key needs nothing: it defaults to the
				// already-suffixed Key at run time.
				rj.SeedKey = ReplicateKey(j.SeedKey, r)
			}
			out = append(out, rj)
		}
	}
	return out
}

// Run executes the sweep and returns results keyed by Job.Key. On the first
// job failure it stops handing out new jobs, lets in-flight jobs finish
// (their results are still checkpointed), and returns a *JobError alongside
// the partial results.
func Run(opts Options, jobs []Job) (map[string]cmp.RunResult, error) {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if opts.CPUBudget > 0 {
		prev := cpubudget.SetLimit(opts.CPUBudget)
		defer cpubudget.SetLimit(prev)
	}
	reps := opts.Replicates
	if reps < 1 {
		reps = 1
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("sweep: job with empty key")
		}
		if seen[j.Key] {
			return nil, fmt.Errorf("sweep: duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
		if reps > 1 {
			// A key that already parses as a replicate would collide with an
			// expanded one ("a@r1" vs replicate 1 of "a").
			if base, r := SplitReplicateKey(j.Key); r != 0 {
				return nil, fmt.Errorf("sweep: job key %q looks like replicate %d of %q; replicate-suffixed keys are reserved under Replicates > 1", j.Key, r, base)
			}
		}
	}
	if reps > 1 {
		jobs = expandReplicates(jobs, reps)
	}

	results := make(map[string]cmp.RunResult, len(jobs))
	var store *Store
	if opts.Checkpoint != "" {
		var err error
		store, err = OpenStore(opts.Checkpoint)
		if err != nil {
			return nil, err
		}
		defer store.Close()
		if opts.Fingerprint != "" {
			switch fp := store.Fingerprint(); {
			case fp == "" && store.Len() > 0:
				return nil, fmt.Errorf("sweep: checkpoint %s has results but no configuration fingerprint; refusing to resume (use a fresh store)", opts.Checkpoint)
			case fp == "":
				if err := store.SetFingerprint(opts.Fingerprint); err != nil {
					return nil, err
				}
			case fp != opts.Fingerprint && !slices.Contains(opts.AcceptFingerprints, fp):
				return nil, fmt.Errorf("sweep: checkpoint %s was produced under a different configuration (%s, want %s); refusing to mix results", opts.Checkpoint, fp, opts.Fingerprint)
			}
		}
	}

	var pending []Job
	for _, j := range jobs {
		if store != nil {
			if r, ok := store.Get(j.Key); ok {
				results[j.Key] = r
				continue
			}
		}
		pending = append(pending, j)
	}
	restored := len(results)
	done := restored
	// The wall clock below feeds ONLY the Progress callback (Elapsed/ETA
	// shown to humans); job seeds, results and checkpoint bytes are pure
	// functions of job identity. TestElapsedNeverFeedsResults pins this.
	start := time.Now() //snug:allow wallclock progress/ETA reporting only, never feeds results
	emit := func(key string) {
		if opts.OnProgress == nil {
			return
		}
		p := Progress{
			Done: done, Total: len(jobs), Restored: restored,
			Key: key, Elapsed: time.Since(start), //snug:allow wallclock progress/ETA reporting only, never feeds results
		}
		if live := done - restored; live > 0 && done < len(jobs) {
			p.ETA = time.Duration(float64(p.Elapsed) / float64(live) * float64(len(jobs)-done))
		}
		opts.OnProgress(p)
	}
	emit("")

	type outcome struct {
		key string
		res cmp.RunResult
		err error
	}
	jobCh := make(chan Job)
	outCh := make(chan outcome)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				seedKey := j.SeedKey
				if seedKey == "" {
					seedKey = j.Key
				}
				// One budget token per in-flight job: the job's simulation —
				// and, under the epoch engine, its coordinator — runs on this
				// goroutine. Blocking here is the composition rule: worker
				// counts above the CPU budget degrade to the budget.
				cpubudget.Acquire()
				res, err := j.Run(JobSeed(opts.BaseSeed, seedKey))
				cpubudget.Release(1)
				outCh <- outcome{j.Key, res, err}
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for _, j := range pending {
			select {
			case jobCh <- j:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			close(stop)
		}
	}
	for o := range outCh {
		if o.err != nil {
			fail(&JobError{Key: o.key, Err: o.err})
			continue
		}
		// The job itself succeeded, so its result and progress accounting
		// stand even if checkpointing it below fails — the computation is
		// done and callers can still use it alongside the error.
		results[o.key] = o.res
		done++
		emit(o.key)
		if store != nil {
			if err := store.Put(o.key, o.res); err != nil {
				// Wrap with the job identity like any other job failure, so
				// callers (experiments.evalErr) keep combo/run context.
				fail(&JobError{Key: o.key, Err: err})
			}
		}
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}
