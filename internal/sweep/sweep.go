// Package sweep is the reusable evaluation-sweep engine: it runs a batch of
// independent simulation jobs across a worker pool, checkpoints every
// completed result to a JSON results store so an interrupted sweep resumes
// without redoing finished work, and reports structured progress.
//
// Determinism is the package's core contract. Each job's RNG seed is derived
// from the job's identity (its SeedKey) via stats.Mix64, never from wall
// time or scheduling, so a sweep's results are bit-identical regardless of
// worker count or completion order. Jobs that must be compared pair-wise
// (the same workload under different schemes) share a SeedKey and therefore
// see identical instruction streams.
//
// The engine is the foundation under internal/experiments.Evaluate,
// cmd/experiments and cmd/snugsim; DESIGN.md §"Sweep engine" documents the
// architecture.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"snug/internal/cmp"
	"snug/internal/stats"
)

// Job is one unit of work: a deterministic simulation identified by Key.
type Job struct {
	// Key uniquely identifies the job inside a sweep and keys its
	// checkpointed result (e.g. "4xammp/SNUG"). Keys must be stable across
	// program runs for resumption to work.
	Key string
	// SeedKey selects the job's RNG seed; it defaults to Key. Jobs sharing
	// a SeedKey receive identical seeds — the evaluation uses this to run
	// every scheme of one workload combination over the same instruction
	// streams, keeping normalized comparisons paired.
	SeedKey string
	// Run executes the job with the derived seed.
	Run func(seed uint64) (cmp.RunResult, error)
}

// Progress is a point-in-time snapshot of a running sweep.
type Progress struct {
	Done     int    // jobs finished, including restored ones
	Total    int    // jobs in the sweep
	Restored int    // jobs satisfied from the checkpoint store
	Key      string // job that just finished ("" for the restore snapshot)
	Elapsed  time.Duration
	ETA      time.Duration // zero until at least one live job finished
}

// Options configures a sweep.
type Options struct {
	// Parallelism is the worker count; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// BaseSeed is mixed into every job's derived seed, so one knob reseeds
	// the whole sweep without touching job identities.
	BaseSeed uint64
	// Checkpoint is the results-store path. When non-empty, previously
	// completed jobs found in the store are restored instead of rerun, and
	// every newly completed job is appended. Empty disables checkpointing.
	Checkpoint string
	// Fingerprint identifies the configuration behind this sweep's results
	// (run length, system config, base seed — whatever changes them). It is
	// written into a fresh checkpoint store and checked on resume: restoring
	// results produced under a different configuration is an error, not a
	// silent mix. Empty skips the check.
	Fingerprint string
	// OnProgress, when set, is called once after restoration and once per
	// completed job. It runs on the collector goroutine; callbacks must not
	// block for long.
	OnProgress func(Progress)
}

// JobError wraps a job failure with the identity of the job that produced
// it, so callers can surface which sweep unit went wrong.
type JobError struct {
	Key string
	Err error
}

func (e *JobError) Error() string { return fmt.Sprintf("sweep: job %s: %v", e.Key, e.Err) }

// Unwrap exposes the original job error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// JobSeed derives the RNG seed for a job identity: Mix64 over the base seed
// combined with the hashed identity. Pure function of (base, seedKey).
func JobSeed(base uint64, seedKey string) uint64 {
	return stats.Mix64(base ^ stats.HashString(seedKey))
}

// Run executes the sweep and returns results keyed by Job.Key. On the first
// job failure it stops handing out new jobs, lets in-flight jobs finish
// (their results are still checkpointed), and returns a *JobError alongside
// the partial results.
func Run(opts Options, jobs []Job) (map[string]cmp.RunResult, error) {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("sweep: job with empty key")
		}
		if seen[j.Key] {
			return nil, fmt.Errorf("sweep: duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
	}

	results := make(map[string]cmp.RunResult, len(jobs))
	var store *Store
	if opts.Checkpoint != "" {
		var err error
		store, err = OpenStore(opts.Checkpoint)
		if err != nil {
			return nil, err
		}
		defer store.Close()
		if opts.Fingerprint != "" {
			switch fp := store.Fingerprint(); {
			case fp == "" && store.Len() > 0:
				return nil, fmt.Errorf("sweep: checkpoint %s has results but no configuration fingerprint; refusing to resume (use a fresh store)", opts.Checkpoint)
			case fp == "":
				if err := store.SetFingerprint(opts.Fingerprint); err != nil {
					return nil, err
				}
			case fp != opts.Fingerprint:
				return nil, fmt.Errorf("sweep: checkpoint %s was produced under a different configuration (%s, want %s); refusing to mix results", opts.Checkpoint, fp, opts.Fingerprint)
			}
		}
	}

	var pending []Job
	for _, j := range jobs {
		if store != nil {
			if r, ok := store.Get(j.Key); ok {
				results[j.Key] = r
				continue
			}
		}
		pending = append(pending, j)
	}
	restored := len(results)
	done := restored
	start := time.Now()
	emit := func(key string) {
		if opts.OnProgress == nil {
			return
		}
		p := Progress{
			Done: done, Total: len(jobs), Restored: restored,
			Key: key, Elapsed: time.Since(start),
		}
		if live := done - restored; live > 0 && done < len(jobs) {
			p.ETA = time.Duration(float64(p.Elapsed) / float64(live) * float64(len(jobs)-done))
		}
		opts.OnProgress(p)
	}
	emit("")

	type outcome struct {
		key string
		res cmp.RunResult
		err error
	}
	jobCh := make(chan Job)
	outCh := make(chan outcome)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				seedKey := j.SeedKey
				if seedKey == "" {
					seedKey = j.Key
				}
				res, err := j.Run(JobSeed(opts.BaseSeed, seedKey))
				outCh <- outcome{j.Key, res, err}
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for _, j := range pending {
			select {
			case jobCh <- j:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			close(stop)
		}
	}
	for o := range outCh {
		if o.err != nil {
			fail(&JobError{Key: o.key, Err: o.err})
			continue
		}
		results[o.key] = o.res
		if store != nil {
			if err := store.Put(o.key, o.res); err != nil {
				fail(err)
				continue
			}
		}
		done++
		emit(o.key)
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}
