// Package sweep is the reusable evaluation-sweep engine: it runs a batch of
// independent simulation jobs across a worker pool, checkpoints every
// completed result to a JSON results store so an interrupted sweep resumes
// without redoing finished work, and reports structured progress.
//
// Determinism is the package's core contract. Each job's RNG seed is derived
// from the job's identity (its SeedKey) via stats.Mix64, never from wall
// time or scheduling, so a sweep's results are bit-identical regardless of
// worker count or completion order. Jobs that must be compared pair-wise
// (the same workload under different schemes) share a SeedKey and therefore
// see identical instruction streams.
//
// The engine also carries the failure model a long-running service needs
// (DESIGN.md §"Failure model"): job panics are recovered into errors
// instead of taking down the process, Options.FailurePolicy chooses between
// failing fast and running every job, Options.Retry re-runs failed jobs
// with the same identity-derived seed (retries only help transient faults —
// a deterministic failure fails identically every attempt), and
// cancellation through the Context drains and checkpoints in-flight work
// before returning.
//
// The engine is the foundation under internal/experiments.Evaluate,
// cmd/experiments and cmd/snugsim; DESIGN.md §"Sweep engine" documents the
// architecture.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"snug/internal/cmp"
	"snug/internal/cpubudget"
	"snug/internal/stats"
)

// Job is one unit of work: a deterministic simulation identified by Key.
type Job struct {
	// Key uniquely identifies the job inside a sweep and keys its
	// checkpointed result (e.g. "4xammp/SNUG"). Keys must be stable across
	// program runs for resumption to work.
	Key string
	// SeedKey selects the job's RNG seed; it defaults to Key. Jobs sharing
	// a SeedKey receive identical seeds — the evaluation uses this to run
	// every scheme of one workload combination over the same instruction
	// streams, keeping normalized comparisons paired.
	SeedKey string
	// Run executes the job with the derived seed.
	Run func(seed uint64) (cmp.RunResult, error)
}

// Progress is a point-in-time snapshot of a running sweep.
type Progress struct {
	Done     int    // jobs finished, including restored ones
	Total    int    // jobs in the sweep
	Restored int    // jobs satisfied from the checkpoint store
	Failed   int    // jobs that failed (after retries, under ContinueOnError)
	Key      string // job that just finished ("" for the restore snapshot)
	Elapsed  time.Duration
	// ETA estimates the remaining wall time from the live completion rate.
	// It is zero until a live job finishes, excludes restored jobs (they
	// cost no wall time), and is clamped against small-sample blowups: the
	// first few completions after a large restore are extrapolated at the
	// worker count's steady-state rate rather than the one-sample rate,
	// which would overestimate by up to Parallelism× (see etaFor).
	ETA time.Duration
	// Quarantined counts corrupt checkpoint lines a salvage open moved to
	// <checkpoint>.quarantine (0 outside Options.Salvage).
	Quarantined int
}

// FailurePolicy selects how a sweep responds to a failed job.
type FailurePolicy int

const (
	// FailFast — the default — stops dispatching new jobs at the first
	// failure, lets in-flight jobs finish (their results are still
	// checkpointed), and returns the failure alongside partial results.
	FailFast FailurePolicy = iota
	// ContinueOnError runs every job regardless of failures, checkpoints
	// every success, and returns all failures aggregated into one error
	// (errors.Join, sorted by job key for deterministic rendering). Use it
	// for long sweeps where one bad cell must not abandon the rest.
	ContinueOnError
)

// RetrySpec re-runs failed jobs before declaring them failed.
type RetrySpec struct {
	// Attempts is the number of re-runs after the first failure (0 — the
	// default — disables retry). Every attempt runs with the job's same
	// identity-derived seed, so retries cannot change results: they only
	// help transient faults (a flaky filesystem, an injected fault, an
	// external resource), never deterministic ones, which fail identically
	// every attempt.
	Attempts int
	// Backoff is the sleep before the first retry, doubling per attempt
	// and capped at BackoffCap. Zero retries immediately. The sleep delays
	// scheduling only; it never feeds results (the wallclock contract).
	Backoff time.Duration
}

// BackoffCap bounds the exponential retry backoff.
const BackoffCap = 30 * time.Second

// delay returns the capped exponential backoff before retry attempt a
// (0-based).
func (r RetrySpec) delay(a int) time.Duration {
	if r.Backoff <= 0 {
		return 0
	}
	d := r.Backoff
	for i := 0; i < a && d < BackoffCap; i++ {
		d *= 2
	}
	return min(d, BackoffCap)
}

// Options configures a sweep.
type Options struct {
	// Parallelism is the worker count; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// CPUBudget caps the process-wide number of concurrent simulation
	// goroutines for the duration of the sweep (0 keeps the current
	// process budget, default GOMAXPROCS). It is applied via
	// internal/cpubudget, the token pool both layers of parallelism draw
	// from: every sweep worker holds one token while it runs a job, and a
	// job's intra-run epoch engine asks the same pool for its extra
	// worker goroutines (falling back to the byte-identical serial engine
	// when none are free). Sweep-level and intra-run parallelism therefore
	// compose up to the budget instead of multiplying past the host:
	// Parallelism above the budget degrades to the budget, and
	// ScalingStudy's wide intra-run points stop oversubscribing a narrow
	// machine. Results and checkpoint bytes are identical at every
	// setting.
	CPUBudget int
	// BaseSeed is mixed into every job's derived seed, so one knob reseeds
	// the whole sweep without touching job identities.
	BaseSeed uint64
	// Checkpoint is the results-store path. When non-empty, previously
	// completed jobs found in the store are restored instead of rerun, and
	// every newly completed job is appended. Empty disables checkpointing.
	Checkpoint string
	// Salvage opens the checkpoint store in salvage mode (OpenStoreSalvage):
	// corrupt interior lines are quarantined to <Checkpoint>.quarantine and
	// their jobs rerun, instead of the open refusing. Progress.Quarantined
	// reports the count.
	Salvage bool
	// Sync is the checkpoint fsync cadence: every Nth completed job is
	// flushed to stable storage (0 leaves durability to the OS, the
	// historic behavior). It bounds how much finished work a power loss
	// can cost; results are identical at every setting.
	Sync int
	// Fingerprint identifies the configuration behind this sweep's results
	// (run length, system config, base seed — whatever changes them). It is
	// written into a fresh checkpoint store and checked on resume: restoring
	// results produced under a different configuration is an error, not a
	// silent mix. Empty skips the check.
	Fingerprint string
	// AcceptFingerprints lists additional stored fingerprints to treat as
	// equivalent to Fingerprint on resume — for renames of the fingerprint
	// format itself (e.g. introducing a version token) where the underlying
	// results are unchanged. The store keeps its original header.
	AcceptFingerprints []string
	// Replicates expands every job into this many independently-seeded
	// replicates (0 and 1 both mean a single run). Replicate 0 keeps the
	// job's key and seed byte-identical to a non-replicated sweep, so
	// existing checkpoint stores keep resuming; replicate r > 0 runs under
	// key ReplicateKey(Key, r) ("key@r3") with a seed derived from the
	// suffixed seed key, so jobs sharing a SeedKey stay paired within each
	// replicate while replicates draw independent streams.
	Replicates int
	// FailurePolicy selects the response to job failures (default FailFast).
	FailurePolicy FailurePolicy
	// Retry re-runs failed jobs (and failed checkpoint writes) before
	// declaring them failed. The zero value disables retry.
	Retry RetrySpec
	// PutHook, when set, runs before every checkpoint write with the job's
	// key; a non-nil return is treated as a checkpoint-write failure
	// (retried under Retry like a real one). It exists for deterministic
	// fault injection (internal/faults) and tests.
	PutHook func(key string) error
	// OnProgress, when set, is called once after restoration and once per
	// completed job. It runs on the collector goroutine; callbacks must not
	// block for long.
	OnProgress func(Progress)
}

// JobError wraps a job failure with the identity of the job that produced
// it, so callers can surface which sweep unit went wrong.
type JobError struct {
	Key string
	Err error
}

func (e *JobError) Error() string { return fmt.Sprintf("sweep: job %s: %v", e.Key, e.Err) }

// Unwrap exposes the original job error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PanicError is a job panic recovered by a sweep worker: the panicking job
// fails like any erroring one — carrying the panic value and stack for
// diagnosis — instead of taking down the process and every queued cell
// with it.
type PanicError struct {
	Value any
	Stack []byte // debug.Stack() captured at the recovery point
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", e.Value, e.Stack)
}

// JobErrors extracts every *JobError from a sweep failure — a single
// JobError, a ContinueOnError aggregate, or either wrapped further — in
// the order the aggregate carries them (sorted by job key).
func JobErrors(err error) []*JobError {
	var out []*JobError
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		if je, ok := err.(*JobError); ok {
			out = append(out, je)
			return
		}
		switch u := err.(type) {
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				walk(e)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

// JobSeed derives the RNG seed for a job identity: Mix64 over the base seed
// combined with the hashed identity. Pure function of (base, seedKey).
func JobSeed(base uint64, seedKey string) uint64 {
	return stats.Mix64(base ^ stats.HashString(seedKey))
}

// repSep introduces a replicate suffix in keys and seed keys. "@r0" never
// appears: replicate 0 IS the unsuffixed identity.
const repSep = "@r"

// ReplicateKey returns the key of replicate r of key. Replicate 0 is the
// key itself — byte-identical to a non-replicated sweep, so single-replicate
// runs resume today's checkpoint stores unchanged — and r > 0 appends
// "@r<r>" ("4xammp/SNUG@r3"). It panics on a negative replicate.
func ReplicateKey(key string, r int) string {
	if r < 0 {
		panic(fmt.Sprintf("sweep: negative replicate %d", r))
	}
	if r == 0 {
		return key
	}
	return key + repSep + strconv.Itoa(r)
}

// SplitReplicateKey splits a possibly replicate-suffixed key into its base
// key and replicate index: "4xammp/SNUG@r3" → ("4xammp/SNUG", 3), and a key
// without a well-formed suffix is replicate 0 of itself.
func SplitReplicateKey(key string) (string, int) {
	i := strings.LastIndex(key, repSep)
	if i < 0 {
		return key, 0
	}
	r, err := strconv.Atoi(key[i+len(repSep):])
	if err != nil || r <= 0 {
		return key, 0
	}
	return key[:i], r
}

// expandReplicates turns each job into reps independently-seeded copies,
// replicate-major (all of replicate 0, then replicate 1, ...) so a resumed
// single-replicate store satisfies a contiguous prefix.
func expandReplicates(jobs []Job, reps int) []Job {
	out := make([]Job, 0, len(jobs)*reps)
	for r := 0; r < reps; r++ {
		for _, j := range jobs {
			rj := j
			rj.Key = ReplicateKey(j.Key, r)
			if j.SeedKey != "" {
				// An explicit seed key gets the same suffix, keeping jobs
				// that share one (paired comparisons) paired per replicate.
				// An empty seed key needs nothing: it defaults to the
				// already-suffixed Key at run time.
				rj.SeedKey = ReplicateKey(j.SeedKey, r)
			}
			out = append(out, rj)
		}
	}
	return out
}

// etaFor estimates the remaining wall time of a sweep. The live completion
// rate — live jobs finished per elapsed wall second — is the estimator
// (restored jobs cost no wall time, so they are excluded from both sides).
// Before the worker pipeline fills, that rate undercounts: the first live
// completion arrives after one full job duration while up to par jobs have
// been running the whole time, so extrapolating from live alone
// overestimates the ETA by up to par× (the "wild first ETA" after a large
// restore). The denominator is therefore clamped from below to the number
// of jobs that must have been in flight, min(par, live+remaining), which
// equals the steady-state completion count per job duration; once live
// completions exceed it, the measured rate takes over.
func etaFor(elapsed time.Duration, done, restored, total, par int) time.Duration {
	live := done - restored
	remaining := total - done
	if live <= 0 || remaining <= 0 {
		return 0
	}
	denom := live
	if inFlight := min(par, live+remaining); inFlight > denom {
		denom = inFlight
	}
	eta := time.Duration(float64(elapsed) / float64(denom) * float64(remaining))
	if eta < 0 {
		return 0
	}
	return eta
}

// Run executes the sweep and returns results keyed by Job.Key. Failures
// follow Options.FailurePolicy: under FailFast (the default) the first job
// failure stops new dispatches, in-flight jobs finish and checkpoint, and
// the *JobError returns alongside the partial results; under
// ContinueOnError every job runs and all failures return aggregated.
// Canceling ctx stops dispatching, drains and checkpoints in-flight jobs,
// and returns an error wrapping context.Canceled alongside the partial
// results — a resumed run with the same Checkpoint continues where this
// one stopped.
func Run(ctx context.Context, opts Options, jobs []Job) (map[string]cmp.RunResult, error) {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if opts.CPUBudget > 0 {
		prev := cpubudget.SetLimit(opts.CPUBudget)
		defer cpubudget.SetLimit(prev)
	}
	reps := opts.Replicates
	if reps < 1 {
		reps = 1
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("sweep: job with empty key")
		}
		if seen[j.Key] {
			return nil, fmt.Errorf("sweep: duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
		if reps > 1 {
			// A key that already parses as a replicate would collide with an
			// expanded one ("a@r1" vs replicate 1 of "a").
			if base, r := SplitReplicateKey(j.Key); r != 0 {
				return nil, fmt.Errorf("sweep: job key %q looks like replicate %d of %q; replicate-suffixed keys are reserved under Replicates > 1", j.Key, r, base)
			}
		}
	}
	if reps > 1 {
		jobs = expandReplicates(jobs, reps)
	}

	results := make(map[string]cmp.RunResult, len(jobs))
	var store *Store
	if opts.Checkpoint != "" {
		var err error
		if opts.Salvage {
			store, err = OpenStoreSalvage(opts.Checkpoint)
		} else {
			store, err = OpenStore(opts.Checkpoint)
		}
		if err != nil {
			return nil, err
		}
		store.SyncEvery(opts.Sync)
		defer store.Close() // error paths; the happy path closes (and checks) below
		if opts.Fingerprint != "" {
			switch fp := store.Fingerprint(); {
			case fp == "" && store.Len() > 0:
				return nil, fmt.Errorf("sweep: checkpoint %s has results but no configuration fingerprint; refusing to resume (use a fresh store)", opts.Checkpoint)
			case fp == "":
				if err := store.SetFingerprint(opts.Fingerprint); err != nil {
					return nil, err
				}
			case fp != opts.Fingerprint && !slices.Contains(opts.AcceptFingerprints, fp):
				return nil, fmt.Errorf("sweep: checkpoint %s was produced under a different configuration (%s, want %s); refusing to mix results", opts.Checkpoint, fp, opts.Fingerprint)
			}
		}
	}

	var pending []Job
	for _, j := range jobs {
		if store != nil {
			if r, ok := store.Get(j.Key); ok {
				results[j.Key] = r
				continue
			}
		}
		pending = append(pending, j)
	}
	restored := len(results)
	done := restored
	failed := 0
	quarantined := 0
	if store != nil {
		quarantined = store.Quarantined()
	}
	// The wall clock below feeds ONLY the Progress callback (Elapsed/ETA
	// shown to humans); job seeds, results and checkpoint bytes are pure
	// functions of job identity. TestElapsedNeverFeedsResults pins this.
	start := time.Now() //snug:allow wallclock progress/ETA reporting only, never feeds results
	emit := func(key string) {
		if opts.OnProgress == nil {
			return
		}
		p := Progress{
			Done: done, Total: len(jobs), Restored: restored, Failed: failed,
			Quarantined: quarantined,
			Key:         key, Elapsed: time.Since(start), //snug:allow wallclock progress/ETA reporting only, never feeds results
		}
		p.ETA = etaFor(p.Elapsed, done, restored, len(jobs), par)
		opts.OnProgress(p)
	}
	emit("")

	type outcome struct {
		key string
		res cmp.RunResult
		err error
	}
	jobCh := make(chan Job)
	outCh := make(chan outcome)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				seedKey := j.SeedKey
				if seedKey == "" {
					seedKey = j.Key
				}
				// One budget token per in-flight job: the job's simulation —
				// and, under the epoch engine, its coordinator — runs on this
				// goroutine. Blocking here is the composition rule: worker
				// counts above the CPU budget degrade to the budget.
				cpubudget.Acquire()
				res, err := runJob(ctx, j, JobSeed(opts.BaseSeed, seedKey), opts.Retry)
				cpubudget.Release(1)
				outCh <- outcome{j.Key, res, err}
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for _, j := range pending {
			// An explicit pre-send check: select chooses randomly among ready
			// cases, so without it an already-canceled sweep could still
			// dispatch work.
			if ctx.Err() != nil {
				return
			}
			select {
			case jobCh <- j:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	var jobErrs []*JobError
	fail := func(e *JobError) {
		jobErrs = append(jobErrs, e)
		failed++
		if opts.FailurePolicy == FailFast {
			halt()
		}
	}
	for o := range outCh {
		if o.err != nil {
			fail(&JobError{Key: o.key, Err: o.err})
			emit(o.key)
			continue
		}
		// The job itself succeeded, so its result and progress accounting
		// stand even if checkpointing it below fails — the computation is
		// done and callers can still use it alongside the error.
		results[o.key] = o.res
		done++
		emit(o.key)
		if store != nil {
			if err := putJob(ctx, store, opts, o.key, o.res); err != nil {
				// Wrap with the job identity like any other job failure, so
				// callers (experiments.evalErr) keep combo/run context.
				fail(&JobError{Key: o.key, Err: err})
			}
		}
	}

	// Failures surface sorted by job key: completion order varies with
	// scheduling, and a deterministic aggregate is one more thing two runs
	// of the same sweep agree on.
	slices.SortFunc(jobErrs, func(a, b *JobError) int { return strings.Compare(a.Key, b.Key) })
	var errs []error
	if ctx.Err() != nil {
		errs = append(errs, fmt.Errorf("sweep: interrupted (in-flight jobs drained and checkpointed): %w", context.Cause(ctx)))
	}
	for _, e := range jobErrs {
		errs = append(errs, e)
	}
	if store != nil {
		// Surface the close error on the happy path: a buffered write that
		// only fails at close is a checkpoint entry that never hit disk.
		if err := store.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	switch len(errs) {
	case 0:
		return results, nil
	case 1:
		return results, errs[0]
	default:
		return results, errors.Join(errs...)
	}
}

// runJob executes one job — panics recovered into *PanicError — retrying
// failures per the RetrySpec with the job's same identity-derived seed.
// A canceled ctx abandons remaining retries and returns the last failure.
func runJob(ctx context.Context, j Job, seed uint64, retry RetrySpec) (cmp.RunResult, error) {
	attempt := func() (res cmp.RunResult, err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		return j.Run(seed)
	}
	res, err := attempt()
	for a := 0; err != nil && a < retry.Attempts; a++ {
		if !backoffSleep(ctx, retry.delay(a)) {
			break
		}
		res, err = attempt()
	}
	return res, err
}

// putJob checkpoints one result, routing it through the PutHook fault
// point and retrying failures (hook or real write) per the RetrySpec: a
// transient checkpoint-write failure costs a retry, not the sweep.
func putJob(ctx context.Context, store *Store, opts Options, key string, res cmp.RunResult) error {
	put := func() error {
		if opts.PutHook != nil {
			if err := opts.PutHook(key); err != nil {
				return err
			}
		}
		return store.Put(key, res)
	}
	err := put()
	for a := 0; err != nil && a < opts.Retry.Attempts; a++ {
		if !backoffSleep(ctx, opts.Retry.delay(a)) {
			break
		}
		err = put()
	}
	return err
}

// backoffSleep waits d before the next retry attempt, abandoning the wait
// (returning false) if ctx is canceled first. The sleep delays scheduling
// only — results are pure functions of job identity, retried or not — so
// the wall-clock timer is contract-clean.
func backoffSleep(ctx context.Context, d time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d) //snug:allow wallclock retry backoff sleep; delays scheduling only, never feeds results
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
