package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"snug/internal/cmp"
)

// TestElapsedNeverFeedsResults pins the justification behind the
// //snug:allow wallclock annotations in Run: the wall clock read for
// Progress.Elapsed/ETA must never reach results or checkpoint bytes.
// Two sweeps of the same jobs — one instant, one whose jobs stall on the
// wall clock long enough to move every Elapsed value — must produce
// deep-equal results and byte-identical stores.
func TestElapsedNeverFeedsResults(t *testing.T) {
	run := func(delay time.Duration, path string) (map[string]cmp.RunResult, []Progress) {
		var progress []Progress
		jobs := make([]Job, 6)
		for i := range jobs {
			key := fmt.Sprintf("job-%02d", i)
			jobs[i] = Job{Key: key, Run: func(seed uint64) (cmp.RunResult, error) {
				time.Sleep(delay)
				return cmp.RunResult{Scheme: key, Cycles: int64(seed >> 1)}, nil
			}}
		}
		res, err := Run(context.Background(), Options{
			Parallelism: 1, // keep store append order identical across runs
			BaseSeed:    7,
			Checkpoint:  path,
			Fingerprint: "elapsed-test/v1",
			OnProgress:  func(p Progress) { progress = append(progress, p) },
		}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res, progress
	}

	dir := t.TempDir()
	fastPath := filepath.Join(dir, "fast.jsonl")
	slowPath := filepath.Join(dir, "slow.jsonl")
	fast, fastProg := run(0, fastPath)
	slow, slowProg := run(3*time.Millisecond, slowPath)

	if !reflect.DeepEqual(fast, slow) {
		t.Error("results differ between instant and delayed sweeps: wall time leaked into results")
	}
	fastBytes, err := os.ReadFile(fastPath)
	if err != nil {
		t.Fatal(err)
	}
	slowBytes, err := os.ReadFile(slowPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fastBytes, slowBytes) {
		t.Error("checkpoint stores differ between instant and delayed sweeps: wall time leaked into checkpoint bytes")
	}

	// The wall clock is allowed to (and here, must) reach the progress
	// stream: the delayed sweep's total elapsed strictly exceeds the
	// instant sweep's, proving the sleep really moved the clock the
	// results were just shown not to observe.
	if len(fastProg) == 0 || len(slowProg) == 0 {
		t.Fatal("no progress snapshots")
	}
	if last := slowProg[len(slowProg)-1].Elapsed; last < 6*3*time.Millisecond {
		t.Errorf("delayed sweep elapsed %v, want >= 18ms: delay did not register", last)
	}
}

// TestResultSchemaCarriesNoWallClock walks the result and store record
// types and asserts no field is a time.Time or time.Duration: elapsed
// time cannot feed results structurally, not just in today's code paths.
func TestResultSchemaCarriesNoWallClock(t *testing.T) {
	var visit func(t *testing.T, typ reflect.Type, path string, seen map[reflect.Type]bool)
	timeTime := reflect.TypeOf(time.Time{})
	timeDur := reflect.TypeOf(time.Duration(0))
	visit = func(t *testing.T, typ reflect.Type, path string, seen map[reflect.Type]bool) {
		if typ == timeTime || typ == timeDur {
			t.Errorf("%s has wall-clock type %s", path, typ)
			return
		}
		switch typ.Kind() {
		case reflect.Struct:
			if seen[typ] {
				return
			}
			seen[typ] = true
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				visit(t, f.Type, path+"."+f.Name, seen)
			}
		case reflect.Ptr, reflect.Slice, reflect.Array, reflect.Map:
			visit(t, typ.Elem(), path+"[]", seen)
		}
	}
	visit(t, reflect.TypeOf(cmp.RunResult{}), "cmp.RunResult", map[reflect.Type]bool{})
}
