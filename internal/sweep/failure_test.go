package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"snug/internal/cmp"
)

// TestPanicRecovered: a panicking job fails like an erroring one — the
// process survives, the error carries the job key, the panic value and a
// stack — and under ContinueOnError every other job still completes.
func TestPanicRecovered(t *testing.T) {
	jobs := fakeJobs(5)
	jobs[2].Run = func(uint64) (cmp.RunResult, error) { panic("boom at job-02") }
	res, err := Run(context.Background(), Options{
		Parallelism: 2, FailurePolicy: ContinueOnError,
	}, jobs)
	if err == nil {
		t.Fatal("panicking job produced no error")
	}
	jes := JobErrors(err)
	if len(jes) != 1 || jes[0].Key != "job-02" {
		t.Fatalf("JobErrors = %v, want one failure for job-02", jes)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *PanicError", err)
	}
	if pe.Value != "boom at job-02" || len(pe.Stack) == 0 {
		t.Errorf("PanicError carries value %v and %d stack bytes, want the panic value and a stack", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(err.Error(), "job-02") || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error %q does not name the job and the panic", err)
	}
	if len(res) != 4 {
		t.Errorf("got %d results, want the 4 surviving jobs", len(res))
	}
}

// TestRetrySameSeed: every retry attempt runs with the job's same
// identity-derived seed — retries can rescue transient faults but can
// never change what a job computes.
func TestRetrySameSeed(t *testing.T) {
	var mu sync.Mutex
	var seeds []uint64
	job := Job{Key: "flaky", Run: func(seed uint64) (cmp.RunResult, error) {
		mu.Lock()
		seeds = append(seeds, seed)
		n := len(seeds)
		mu.Unlock()
		switch n {
		case 1:
			return cmp.RunResult{}, errors.New("transient error")
		case 2:
			panic("transient panic")
		}
		return cmp.RunResult{Scheme: "flaky", Cycles: int64(seed >> 1)}, nil
	}}
	res, err := Run(context.Background(), Options{
		BaseSeed: 42, Retry: RetrySpec{Attempts: 2},
	}, []Job{job})
	if err != nil {
		t.Fatalf("retried job still failed: %v", err)
	}
	if len(seeds) != 3 {
		t.Fatalf("job ran %d attempts, want 3", len(seeds))
	}
	want := JobSeed(42, "flaky")
	for i, s := range seeds {
		if s != want {
			t.Errorf("attempt %d ran with seed %#x, want the identity-derived %#x", i, s, want)
		}
	}
	if got := res["flaky"].Cycles; got != int64(want>>1) {
		t.Errorf("result Cycles = %d, want the same-seed %d", got, int64(want>>1))
	}
}

// TestRetryExhausted: a deterministic failure fails every attempt and
// surfaces after the retry budget, with the attempts counted.
func TestRetryExhausted(t *testing.T) {
	var attempts int
	job := Job{Key: "doomed", Run: func(uint64) (cmp.RunResult, error) {
		attempts++
		return cmp.RunResult{}, errors.New("deterministic failure")
	}}
	_, err := Run(context.Background(), Options{Retry: RetrySpec{Attempts: 3}}, []Job{job})
	if err == nil {
		t.Fatal("exhausted retries produced no error")
	}
	if attempts != 4 {
		t.Errorf("job ran %d attempts, want 1 + 3 retries", attempts)
	}
}

// TestContinueOnErrorAggregates: every job runs, successes checkpoint, and
// all failures return aggregated sorted by job key — deterministically,
// whatever the completion order.
func TestContinueOnErrorAggregates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jobs := fakeJobs(6)
	for _, i := range []int{4, 0, 2} {
		key := jobs[i].Key
		jobs[i].Run = func(uint64) (cmp.RunResult, error) {
			return cmp.RunResult{}, fmt.Errorf("%s failed", key)
		}
	}
	res, err := Run(context.Background(), Options{
		Parallelism: 3, FailurePolicy: ContinueOnError, Checkpoint: path,
	}, jobs)
	if err == nil {
		t.Fatal("failing jobs produced no error")
	}
	jes := JobErrors(err)
	var keys []string
	for _, je := range jes {
		keys = append(keys, je.Key)
	}
	if want := []string{"job-00", "job-02", "job-04"}; !reflect.DeepEqual(keys, want) {
		t.Errorf("aggregated failures %v, want %v sorted by key", keys, want)
	}
	if len(res) != 3 {
		t.Errorf("got %d results, want the 3 successes", len(res))
	}
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 3 {
		t.Errorf("store holds %d results, want every success checkpointed", store.Len())
	}
}

// TestFailFastStillSingleError: the default policy returns the lone
// *JobError directly, as before the aggregation existed.
func TestFailFastStillSingleError(t *testing.T) {
	jobs := fakeJobs(4)
	jobs[1].Run = func(uint64) (cmp.RunResult, error) { return cmp.RunResult{}, errors.New("boom") }
	_, err := Run(context.Background(), Options{Parallelism: 1}, jobs)
	if _, ok := err.(*JobError); !ok {
		t.Fatalf("FailFast error is %T (%v), want a bare *JobError", err, err)
	}
}

// TestCancellationDrains: canceling the context stops dispatch, drains and
// checkpoints in-flight jobs, returns an error wrapping context.Canceled —
// and a resumed run completes the sweep from the checkpoint.
func TestCancellationDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := fakeJobs(10)
	inner := jobs[3].Run
	jobs[3].Run = func(seed uint64) (cmp.RunResult, error) {
		cancel() // a SIGINT arriving while job-03 is in flight
		return inner(seed)
	}
	res, err := Run(ctx, Options{Parallelism: 1, Checkpoint: path}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep returned %v, want a context.Canceled error", err)
	}
	if len(res) < 4 {
		t.Errorf("canceled sweep kept %d results, want at least the 4 completed before and including the in-flight job", len(res))
	}
	if len(res) == 10 {
		t.Error("canceled sweep ran all 10 jobs — cancellation stopped nothing")
	}
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(res) {
		t.Errorf("store holds %d results, drained sweep returned %d — in-flight work was not checkpointed", store.Len(), len(res))
	}
	store.Close()

	resumed, err := Run(context.Background(), Options{Parallelism: 1, Checkpoint: path}, jobs)
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	if len(resumed) != 10 {
		t.Errorf("resumed sweep has %d results, want all 10", len(resumed))
	}
	fresh, err := Run(context.Background(), Options{Parallelism: 1}, fakeJobs(10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, fresh) {
		t.Error("resumed results differ from an uninterrupted sweep")
	}
}

// TestPutHookRetries: a transient checkpoint-write failure (the injected
// kind) costs a retry, not the sweep; a permanent one fails the job's
// checkpointing but keeps its computed result.
func TestPutHookRetries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	fails := map[string]int{"job-01": 1} // first put of job-01 fails
	var mu sync.Mutex
	hook := func(key string) error {
		mu.Lock()
		defer mu.Unlock()
		if fails[key] > 0 {
			fails[key]--
			return errors.New("injected put failure")
		}
		return nil
	}
	res, err := Run(context.Background(), Options{
		Parallelism: 1, Checkpoint: path, PutHook: hook,
		Retry: RetrySpec{Attempts: 1},
	}, fakeJobs(3))
	if err != nil {
		t.Fatalf("sweep with transient put failure: %v", err)
	}
	if len(res) != 3 {
		t.Errorf("got %d results, want 3", len(res))
	}
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 3 {
		t.Errorf("store holds %d results, want 3 — the put retry did not converge", store.Len())
	}
	store.Close()

	// Without retries a permanent put failure surfaces as the job's error,
	// but the computed result is still returned.
	path2 := filepath.Join(t.TempDir(), "sweep2.jsonl")
	_, err = os.Stat(path2)
	res, err = Run(context.Background(), Options{
		Parallelism: 1, Checkpoint: path2,
		PutHook: func(key string) error {
			if key == "job-02" {
				return errors.New("permanent put failure")
			}
			return nil
		},
	}, fakeJobs(3))
	jes := JobErrors(err)
	if len(jes) != 1 || jes[0].Key != "job-02" {
		t.Fatalf("permanent put failure returned %v, want a job-02 *JobError", err)
	}
	if _, ok := res["job-02"]; !ok {
		t.Error("job-02's computed result was dropped with its checkpoint failure")
	}
}

// TestBackoffDelay: the retry backoff doubles per attempt and caps.
func TestBackoffDelay(t *testing.T) {
	r := RetrySpec{Attempts: 10, Backoff: 100 * time.Millisecond}
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
	} {
		if got := r.delay(i); got != want {
			t.Errorf("delay(%d) = %v, want %v", i, got, want)
		}
	}
	if got := r.delay(40); got != BackoffCap {
		t.Errorf("delay(40) = %v, want the cap %v (and no shift overflow)", got, BackoffCap)
	}
	if got := (RetrySpec{Attempts: 3}).delay(2); got != 0 {
		t.Errorf("zero Backoff delay = %v, want immediate retry", got)
	}
}

// TestEtaFor: the ETA estimator excludes restored jobs, clamps the
// denominator to the in-flight count before the pipeline fills (the
// restored-store slow-start), and degrades to zero when nothing is live
// or nothing remains.
func TestEtaFor(t *testing.T) {
	cases := []struct {
		name                       string
		elapsed                    time.Duration
		done, restored, total, par int
		want                       time.Duration
	}{
		{"all restored, nothing live", time.Second, 100, 100, 200, 4, 0},
		{"sweep complete", time.Minute, 200, 0, 200, 4, 0},
		{"over-complete guard", time.Minute, 201, 0, 200, 4, 0},
		// Steady state: 10 live jobs over 100s, 10 remaining → 100s.
		{"steady state", 100 * time.Second, 10, 0, 20, 1, 100 * time.Second},
		// First live completion after a big restore: 1 live over 10s with 4
		// workers. The naive rate says 99 jobs × 10s = 990s; the in-flight
		// clamp divides by min(par, live+remaining) = 4.
		{"slow start after restore", 10 * time.Second, 101, 100, 200, 4, 10 * time.Second / 4 * 99},
		// Tail: live count exceeds the worker clamp, measured rate wins.
		{"tail", 90 * time.Second, 9, 0, 10, 4, 10 * time.Second},
	}
	for _, c := range cases {
		if got := etaFor(c.elapsed, c.done, c.restored, c.total, c.par); got != c.want {
			t.Errorf("%s: etaFor(%v, %d, %d, %d, %d) = %v, want %v",
				c.name, c.elapsed, c.done, c.restored, c.total, c.par, got, c.want)
		}
	}
}

// TestCanceledBeforeStart: an already-canceled context runs nothing and
// reports the interruption, but still restores from the checkpoint.
func TestCanceledBeforeStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jobs := fakeJobs(5)
	if _, err := Run(context.Background(), Options{Parallelism: 1, Checkpoint: path}, jobs[:2]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Options{Parallelism: 1, Checkpoint: path}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled sweep returned %v, want context.Canceled", err)
	}
	if len(res) != 2 {
		t.Errorf("pre-canceled sweep returned %d results, want the 2 restored", len(res))
	}
}
