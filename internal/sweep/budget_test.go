package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/cpubudget"
)

// intraJobs builds n real simulation jobs on an 8-core system driven by the
// intra-run epoch engine, so a sweep over them exercises both parallelism
// layers drawing from the shared CPU budget at once.
func intraJobs(t *testing.T, n int) []Job {
	t.Helper()
	base, err := config.TestScaleN(8)
	if err != nil {
		t.Fatal(err)
	}
	bench := []string{"ammp", "parser", "swim", "mesa", "mcf", "vortex", "ammp", "swim"}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Key: fmt.Sprintf("intra-%02d", i),
			Run: func(seed uint64) (cmp.RunResult, error) {
				cfg := base
				cfg.Seed = seed
				return cmp.RunWorkloadEngine(cfg, "SNUG", bench, 50_000,
					cmp.Engine{Intra: true})
			},
		}
	}
	return jobs
}

// TestSweepCPUBudgetNeverExceeded pins the composition rule: a sweep whose
// jobs spawn intra-run epoch engines keeps the process-wide concurrent
// simulation-goroutine count — the budget pool's token high-water mark, by
// the cpubudget accounting contract — at or under Options.CPUBudget, even
// with more sweep workers than tokens. The wide-budget control run proves
// the instrument observes engine grants (peak above the worker count), so
// the cap assertion is load-bearing, and results are identical across both
// budgets.
func TestSweepCPUBudgetNeverExceeded(t *testing.T) {
	jobs := intraJobs(t, 6)
	const budget = 3

	cpubudget.ResetPeak()
	capped, err := Run(context.Background(), Options{Parallelism: 4, CPUBudget: budget, BaseSeed: 7}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if p := cpubudget.Peak(); p > budget {
		t.Errorf("peak concurrent simulation goroutines = %d, budget %d", p, budget)
	}

	cpubudget.ResetPeak()
	wide, err := Run(context.Background(), Options{Parallelism: 2, CPUBudget: 32, BaseSeed: 7}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if p := cpubudget.Peak(); p <= 2 {
		t.Errorf("peak = %d with a wide budget and 2 workers; the intra-run engines drew no tokens, so the cap assertion above observes nothing", p)
	}

	if !reflect.DeepEqual(capped, wide) {
		t.Error("results differ between CPUBudget 3 and 32; the budget must change scheduling only")
	}
}

// TestSweepBudgetOneStoreByteIdentical: CPUBudget 1 starves every intra-run
// engine into the serial fallback, and the resulting checkpoint store must
// be byte-for-byte the store a wide budget writes (Parallelism 1 makes the
// append order, and therefore the file bytes, comparable).
func TestSweepBudgetOneStoreByteIdentical(t *testing.T) {
	jobs := intraJobs(t, 4)
	dir := t.TempDir()
	onePath := filepath.Join(dir, "one.jsonl")
	widePath := filepath.Join(dir, "wide.jsonl")

	one, err := Run(context.Background(), Options{Parallelism: 1, CPUBudget: 1, Checkpoint: onePath, BaseSeed: 7}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(context.Background(), Options{Parallelism: 1, CPUBudget: 16, Checkpoint: widePath, BaseSeed: 7}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, wide) {
		t.Error("results differ between CPUBudget 1 and 16")
	}
	oneBytes, err := os.ReadFile(onePath)
	if err != nil {
		t.Fatal(err)
	}
	wideBytes, err := os.ReadFile(widePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(oneBytes) != string(wideBytes) {
		t.Error("checkpoint stores differ between CPUBudget 1 and 16; budget leaked into result bytes")
	}
}
