package config

import "testing"

// TestTable4Defaults pins the default configuration to the paper's Table 4.
func TestTable4Defaults(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"cores", s.Cores, 4},
		{"issue width", s.Core.IssueWidth, 8},
		{"commit width", s.Core.CommitWidth, 8},
		{"I-fetch queue", s.Core.FetchQueue, 8},
		{"LSQ", s.Core.LSQSize, 64},
		{"RUU", s.Core.RUUSize, 128},
		{"int ALUs", s.Core.IntALUs, 4},
		{"FP ALUs", s.Core.FPALUs, 4},
		{"branch penalty", s.Core.BranchPenalty, 3},
		{"history length", s.Core.HistoryLength, 10},
		{"predictor entries", s.Core.PredictorSize, 1024},
		{"BTB sets", s.Core.BTBSets, 512},
		{"BTB ways", s.Core.BTBWays, 4},
		{"RAS", s.Core.RASEntries, 8},
		{"L1 latency", s.Mem.L1Lat, 1},
		{"L1D size", s.Mem.L1D.SizeBytes, 32 << 10},
		{"L1D ways", s.Mem.L1D.Ways, 4},
		{"L1D block", s.Mem.L1D.BlockBytes, 64},
		{"L2 latency", s.Mem.L2Lat, 10},
		{"L2 slice size", s.Mem.L2Slice.SizeBytes, 1 << 20},
		{"L2 ways", s.Mem.L2Slice.Ways, 16},
		{"L2 block", s.Mem.L2Slice.BlockBytes, 64},
		{"L2 sets", s.Mem.L2Slice.Sets(), 1024},
		{"remote latency", s.Mem.RemoteLat, 30},
		{"SNUG remote latency", s.Mem.SNUGRemote, 40},
		{"DRAM latency", s.Mem.DRAMLat, 300},
		{"bus width", s.Mem.BusWidthBytes, 16},
		{"bus ratio", s.Mem.BusSpeedRatio, 4},
		{"bus arbitration", s.Mem.BusArbCycles, 1},
		{"write buffer entries", s.Mem.WriteBufEntries, 16},
		{"address bits", s.Mem.AddressBits, 32},
		{"SNUG counter bits (k)", s.SNUG.CounterBits, 4},
		{"SNUG p", s.SNUG.PDivisor, 8},
		{"shadow ways", s.SNUG.ShadowWays, 16},
		{"DSR sample sets", s.DSR.SampleSets, 32},
		{"DSR PSEL bits", s.DSR.PSELBits, 10},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if s.SNUG.StageICycles != 5_000_000 {
		t.Errorf("Stage I = %d, want 5M cycles", s.SNUG.StageICycles)
	}
	if s.SNUG.StageIICycles != 100_000_000 {
		t.Errorf("Stage II = %d, want 100M cycles", s.SNUG.StageIICycles)
	}
	if !s.SNUG.IndexFlip {
		t.Error("index-bit flipping disabled by default")
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	s := Scaled(50)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.SNUG.StageICycles != 100_000 || s.SNUG.StageIICycles != 2_000_000 {
		t.Fatalf("scaled stages %d/%d", s.SNUG.StageICycles, s.SNUG.StageIICycles)
	}
	// The cache geometry must be untouched by scaling.
	if s.Mem.L2Slice != Default().Mem.L2Slice {
		t.Fatal("Scaled changed the cache geometry")
	}
}

func TestTestScaleValid(t *testing.T) {
	s := TestScale()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Mem.L2Slice.Sets() != 64 {
		t.Fatalf("test L2 sets = %d, want 64", s.Mem.L2Slice.Sets())
	}
}

// TestWithCoresScaleOut pins the scale-out presets: per-core structures
// replicate, the bus widens to keep per-core bandwidth constant, and the
// widened configurations validate.
func TestWithCoresScaleOut(t *testing.T) {
	quad, err := WithCores(Default(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if quad != Default() {
		t.Error("WithCores(Default(), 4) != Default()")
	}

	cases := []struct {
		cores    int
		busWidth int
		busRatio int
	}{
		{8, 32, 4},
		{16, 64, 4},
		{32, 64, 2}, // width caps at the 64 B block; clock ratio steps down
	}
	for _, c := range cases {
		s, err := DefaultN(c.cores)
		if err != nil {
			t.Fatalf("DefaultN(%d): %v", c.cores, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("DefaultN(%d) invalid: %v", c.cores, err)
		}
		if s.Cores != c.cores {
			t.Errorf("DefaultN(%d).Cores = %d", c.cores, s.Cores)
		}
		if s.Mem.BusWidthBytes != c.busWidth || s.Mem.BusSpeedRatio != c.busRatio {
			t.Errorf("DefaultN(%d) bus %dB ratio %d, want %dB ratio %d",
				c.cores, s.Mem.BusWidthBytes, s.Mem.BusSpeedRatio, c.busWidth, c.busRatio)
		}
		// Per-core structures are untouched by widening.
		if s.Mem.L2Slice != Default().Mem.L2Slice || s.Mem.WriteBufEntries != Default().Mem.WriteBufEntries {
			t.Errorf("DefaultN(%d) changed per-core geometry", c.cores)
		}
	}

	for _, n := range []int{8, 16} {
		s, err := TestScaleN(n)
		if err != nil {
			t.Fatalf("TestScaleN(%d): %v", n, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("TestScaleN(%d) invalid: %v", n, err)
		}
		if s.Cores != n || s.Mem.L2Slice.Sets() != 64 {
			t.Errorf("TestScaleN(%d): cores %d, sets %d", n, s.Cores, s.Mem.L2Slice.Sets())
		}
	}

	for _, bad := range []int{0, -4, 2, 6, 12, 20} {
		if _, err := WithCores(Default(), bad); err == nil {
			t.Errorf("WithCores(%d) accepted", bad)
		}
	}

	// The bus scaling is quad-relative: widening an already-widened system
	// would compound it, so only a 4-core base is accepted.
	wide, err := DefaultN(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WithCores(wide, 16); err == nil {
		t.Error("WithCores accepted an already-widened base")
	}

	// Beyond 64 cores neither the bus width (capped at the block size) nor
	// the 4:1 clock ratio can keep per-core bandwidth constant: refuse
	// rather than silently under-provision.
	if s, err := DefaultN(64); err != nil || s.Mem.BusSpeedRatio != 1 {
		t.Errorf("DefaultN(64) = ratio %d, %v; want ratio 1", s.Mem.BusSpeedRatio, err)
	}
	if _, err := DefaultN(128); err == nil {
		t.Error("DefaultN(128) accepted despite an unmeetable bus-bandwidth invariant")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*System){
		func(s *System) { s.Cores = 0 },
		func(s *System) { s.Mem.L2Slice.SizeBytes = 0 },
		func(s *System) { s.Mem.L1D.SizeBytes = 48 << 10 }, // 192 sets: not 2^n
		func(s *System) { s.SNUG.CounterBits = 1 },
		func(s *System) { s.SNUG.PDivisor = 6 },
		func(s *System) { s.SNUG.StageICycles = 0 },
		func(s *System) { s.DSR.SampleSets = 10_000 },
		func(s *System) { s.CC.SpillPercent = 30 },
		func(s *System) { s.Quantum = 0 },
	}
	for i, mut := range cases {
		s := Default()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
