// Package config defines the simulated system's configuration — the
// quad-core CMP of the paper's Table 4 — plus scaled presets used by the
// test suite and the benchmark harness, and N-core scale-out variants
// (WithCores, DefaultN, TestScaleN) behind the scaling study. Every
// latency, size and epoch constant in the simulator is sourced from here so
// that experiments can be scaled coherently.
package config

import "fmt"

// Core holds the out-of-order core parameters (Table 4, left column).
type Core struct {
	IssueWidth  int // instructions dispatched per cycle (8)
	CommitWidth int // instructions committed per cycle (8)
	FetchQueue  int // I-fetch queue entries (8)
	LSQSize     int // load/store queue entries (64)
	RUUSize     int // register update unit / window entries (128)

	IntALUs int // 4
	FPALUs  int // 4
	MultDiv int // 1 multiplier + 1 divider
	ALULat  int // integer op latency
	FPLat   int // floating-point op latency
	MultLat int // multiply latency
	DivLat  int // divide latency
	LoadLat int // address-generation + L1 pipeline latency component

	BranchPenalty int // misprediction penalty in cycles (3)
	HistoryLength int // global history bits of the 2-level predictor (10)
	PredictorSize int // pattern-history-table entries (1024)
	BTBSets       int // 512
	BTBWays       int // 4
	RASEntries    int // 8
}

// CacheGeom holds one cache array's geometry.
type CacheGeom struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c CacheGeom) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// Memory holds memory-hierarchy parameters (Table 4, right column).
type Memory struct {
	L1Lat      int       // L1 hit latency in cycles (1)
	L1D        CacheGeom // 32 KB, 4-way, 64 B
	L2Lat      int       // local L2 hit latency (10)
	L2Slice    CacheGeom // per-core slice: 1 MB, 16-way, 64 B
	RemoteLat  int       // remote L2 access latency for L2P/CC/DSR (30)
	SNUGRemote int       // remote latency for SNUG incl. G/T lookup (40)
	DRAMLat    int       // 300

	BusWidthBytes int // 16 B-wide split-transaction bus
	BusSpeedRatio int // core-to-bus clock ratio (4:1)
	BusArbCycles  int // arbitration, in bus cycles (1)

	WriteBufEntries int // 16 entries x 64 B, FIFO, mergeable, direct-read
	AddressBits     int // 32
}

// SNUG holds the SNUG mechanism parameters (paper §3).
type SNUG struct {
	CounterBits   int   // k, saturating-counter width (4)
	PDivisor      int   // p: decrement after every p hits; threshold σ > 1/p (8)
	StageICycles  int64 // G/T identification stage length (5,000,000)
	StageIICycles int64 // grouping/spill stage length (100,000,000)
	// ShadowWays is the shadow set associativity. The paper uses the same
	// associativity as the real set so that real+shadow form two buckets.
	ShadowWays int
	// IndexFlip enables the index-bit-flipping grouping scheme. Disabling it
	// restricts grouping to same-index peer sets (an ablation of §3.2).
	IndexFlip bool
	// DropOnFlip invalidates cooperatively cached blocks stranded in sets
	// whose status flips from giver to taker at a G/T re-latch, keeping
	// retrieval lookups (which consult the G/T vector) complete.
	DropOnFlip bool
}

// DSR holds Dynamic Spill-Receive parameters (Qureshi, HPCA'09).
type DSR struct {
	SampleSets int // dedicated spiller-sample and receiver-sample sets (32 each)
	PSELBits   int // policy-selector width (10)
}

// CC holds baseline Cooperative Caching parameters (Chang & Sohi).
type CC struct {
	SpillPercent int // 0, 25, 50, 75, 100 — CC(Best) picks the best
}

// System is the complete simulated-system configuration.
type System struct {
	Cores int // 4
	Core  Core
	Mem   Memory
	SNUG  SNUG
	DSR   DSR
	CC    CC
	// Quantum is the multi-core lock-step quantum in cycles: each core runs
	// to the next quantum boundary before cross-core state is advanced.
	Quantum int64
	Seed    uint64
}

// Default returns the paper's Table 4 configuration.
func Default() System {
	return System{
		Cores: 4,
		Core: Core{
			IssueWidth:    8,
			CommitWidth:   8,
			FetchQueue:    8,
			LSQSize:       64,
			RUUSize:       128,
			IntALUs:       4,
			FPALUs:        4,
			MultDiv:       1,
			ALULat:        1,
			FPLat:         4,
			MultLat:       3,
			DivLat:        20,
			LoadLat:       1,
			BranchPenalty: 3,
			HistoryLength: 10,
			PredictorSize: 1024,
			BTBSets:       512,
			BTBWays:       4,
			RASEntries:    8,
		},
		Mem: Memory{
			L1Lat:           1,
			L1D:             CacheGeom{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 64},
			L2Lat:           10,
			L2Slice:         CacheGeom{SizeBytes: 1 << 20, Ways: 16, BlockBytes: 64},
			RemoteLat:       30,
			SNUGRemote:      40,
			DRAMLat:         300,
			BusWidthBytes:   16,
			BusSpeedRatio:   4,
			BusArbCycles:    1,
			WriteBufEntries: 16,
			AddressBits:     32,
		},
		SNUG: SNUG{
			CounterBits:   4,
			PDivisor:      8,
			StageICycles:  5_000_000,
			StageIICycles: 100_000_000,
			ShadowWays:    16,
			IndexFlip:     true,
			DropOnFlip:    true,
		},
		DSR: DSR{SampleSets: 32, PSELBits: 10},
		CC:  CC{SpillPercent: 100},
		// The quantum bounds cross-core timestamp skew on the shared bus;
		// it must stay well below the DRAM latency or later-ordered cores
		// see artificially inflated queueing delays.
		Quantum: 100,
		Seed:    0x5eed_c0de,
	}
}

// TestScale returns a configuration shrunk for fast unit/integration tests:
// small caches (so working sets warm up within a few hundred thousand
// cycles) and short SNUG stages (so several epochs fit in a short run).
// The relative geometry — shadow associativity equals L2 associativity,
// A_threshold = 2×ways — matches the paper's.
func TestScale() System {
	s := Default()
	s.Mem.L1D = CacheGeom{SizeBytes: 4 << 10, Ways: 4, BlockBytes: 64}
	s.Mem.L2Slice = CacheGeom{SizeBytes: 64 << 10, Ways: 16, BlockBytes: 64} // 64 sets
	// Stage I must observe enough touches per set (~50+) for reliable G/T
	// classification, mirroring the paper's 5 M-cycle stage over 1024 sets.
	s.SNUG.StageICycles = 100_000
	s.SNUG.StageIICycles = 900_000
	// Keep the dedicated-sample fraction at the paper's ~3% of sets.
	s.DSR.SampleSets = 2
	return s
}

// WithCores returns the quad-core base s widened to n cores for the
// scale-out scenarios. Per-core structures — L2 slices, write buffers,
// L1s, DSR sample sets — replicate with the core count, so total LLC
// capacity grows linearly (the scale-out model: each added core brings its
// slice). The shared snoop bus widens in proportion to keep per-core
// bandwidth constant: the data-path width doubles with every core-count
// doubling up to the block size, after which the core-to-bus clock ratio
// steps down instead. The bus scaling is relative to the quad-core
// baseline, so s must have Cores == 4 (widening an already-widened system
// would compound it); n must be 4·2^k so the widened bus geometry stays a
// power of two. WithCores(s, 4) = s.
func WithCores(s System, n int) (System, error) {
	if s.Cores != 4 {
		return System{}, fmt.Errorf("config: WithCores needs the quad-core base, got %d cores", s.Cores)
	}
	if n <= 0 || n%4 != 0 || (n/4)&(n/4-1) != 0 {
		return System{}, fmt.Errorf("config: core count %d must be 4, 8, 16, ... (4 times a power of two)", n)
	}
	factor := n / 4
	s.Cores = n
	width := s.Mem.BusWidthBytes * factor
	if width > s.Mem.L2Slice.BlockBytes {
		// A data beat cannot exceed one block; convert the leftover factor
		// into a faster bus clock. When the clock ratio cannot absorb it
		// either, the constant-per-core-bandwidth invariant is unmeetable —
		// error out rather than silently under-provision the bus.
		leftover := width / s.Mem.L2Slice.BlockBytes
		width = s.Mem.L2Slice.BlockBytes
		if s.Mem.BusSpeedRatio%leftover != 0 || s.Mem.BusSpeedRatio/leftover < 1 {
			return System{}, fmt.Errorf(
				"config: cannot scale the bus to %d cores: width is capped at the %d B block and the %d:1 clock ratio cannot absorb the remaining x%d",
				n, s.Mem.L2Slice.BlockBytes, s.Mem.BusSpeedRatio, leftover)
		}
		s.Mem.BusSpeedRatio /= leftover
	}
	s.Mem.BusWidthBytes = width
	return s, nil
}

// DefaultN returns the Table 4 configuration widened to n cores; n = 4 is
// Default() itself.
func DefaultN(n int) (System, error) { return WithCores(Default(), n) }

// TestScaleN returns the scaled test configuration widened to n cores, the
// preset behind the 8- and 16-core test scenarios and the scaling study at
// test scale.
func TestScaleN(n int) (System, error) { return WithCores(TestScale(), n) }

// Scaled returns the Table 4 configuration with SNUG stage lengths divided
// by factor, for runs shorter than the paper's 3-billion-cycle simulations.
// All schemes see the same system; only the adaptation epochs shrink so that
// multiple Stage I/II alternations still occur within a scaled run.
func Scaled(factor int64) System {
	s := Default()
	if factor <= 0 {
		factor = 1
	}
	s.SNUG.StageICycles = maxI64(s.SNUG.StageICycles/factor, 2*s.Quantum)
	s.SNUG.StageIICycles = maxI64(s.SNUG.StageIICycles/factor, 4*s.Quantum)
	return s
}

// Validate reports configuration errors.
func (s System) Validate() error {
	if s.Cores <= 0 {
		return fmt.Errorf("config: cores must be positive, got %d", s.Cores)
	}
	for _, g := range []struct {
		name string
		g    CacheGeom
	}{{"L1D", s.Mem.L1D}, {"L2Slice", s.Mem.L2Slice}} {
		if g.g.SizeBytes <= 0 || g.g.Ways <= 0 || g.g.BlockBytes <= 0 {
			return fmt.Errorf("config: %s geometry has non-positive field: %+v", g.name, g.g)
		}
		sets := g.g.Sets()
		if sets <= 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s set count %d is not a power of two", g.name, sets)
		}
	}
	if s.Mem.L2Slice.Ways&(s.Mem.L2Slice.Ways-1) != 0 {
		return fmt.Errorf("config: L2 associativity %d is not a power of two (paper requires A_baseline to be one)", s.Mem.L2Slice.Ways)
	}
	if s.SNUG.CounterBits < 2 || s.SNUG.CounterBits > 16 {
		return fmt.Errorf("config: SNUG counter width %d out of range [2,16]", s.SNUG.CounterBits)
	}
	if s.SNUG.PDivisor <= 0 || s.SNUG.PDivisor&(s.SNUG.PDivisor-1) != 0 {
		return fmt.Errorf("config: SNUG p=%d must be a positive power of two", s.SNUG.PDivisor)
	}
	if s.SNUG.StageICycles <= 0 || s.SNUG.StageIICycles <= 0 {
		return fmt.Errorf("config: SNUG stage lengths must be positive")
	}
	if s.DSR.SampleSets*2 >= s.Mem.L2Slice.Sets() {
		return fmt.Errorf("config: DSR sample sets (2x%d) exceed L2 sets (%d)", s.DSR.SampleSets, s.Mem.L2Slice.Sets())
	}
	switch s.CC.SpillPercent {
	case 0, 25, 50, 75, 100:
	default:
		return fmt.Errorf("config: CC spill probability %d%% not one of the paper's {0,25,50,75,100}", s.CC.SpillPercent)
	}
	if s.Quantum <= 0 {
		return fmt.Errorf("config: quantum must be positive")
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
