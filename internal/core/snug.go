package core

import (
	"snug/internal/addr"
	"snug/internal/bus"
	"snug/internal/cache"
	"snug/internal/config"
	"snug/internal/schemes"
)

// Stage is the SNUG operating stage (Figure 5).
type Stage uint8

const (
	// StageIdentify is Stage I: per-set capacity-demand monitoring trains
	// the saturating counters; retrievals are served but no cache accepts
	// spills.
	StageIdentify Stage = iota
	// StageGroup is Stage II: the latched G/T vectors group peer sets for
	// spilling and receiving.
	StageGroup
)

// String names the stage.
func (s Stage) String() string {
	if s == StageIdentify {
		return "identify"
	}
	return "group"
}

// SNUGStats aggregates SNUG-specific activity.
type SNUGStats struct {
	Spills          int64
	SpillsCase1     int64 // placed at the same index (f=0)
	SpillsCase2     int64 // placed at the flipped index (f=1)
	SpillNoTaker    int64 // Case 3 at every peer: spill dropped
	Retrievals      int64
	RetrievalHits   int64
	StrandedDropped int64
	StageSwitches   int64
}

// SNUG is the paper's proposed L2 controller: per-set demand monitoring
// (Monitor), G/T classification, and index-bit-flipping grouped cooperative
// caching over the private-slice hierarchy. It implements
// schemes.Controller.
type SNUG struct {
	h   *schemes.Hierarchy
	mon []*Monitor

	stage      Stage
	stageStart int64
	nextHost   []int

	stats SNUGStats
}

// SNUG registers itself in the scheme-spec registry so that any package
// linking the controller can build it via schemes.Parse("SNUG"). The
// registration lives here rather than in internal/schemes because schemes
// cannot import core (core embeds schemes.Hierarchy).
func init() {
	schemes.Register(schemes.Family{
		Name: "SNUG",
		New: func(_ schemes.Spec, cfg config.System) (schemes.Controller, error) {
			return New(cfg), nil
		},
	})
}

// New builds the SNUG controller for cfg.
func New(cfg config.System) *SNUG {
	h := schemes.NewHierarchy(cfg)
	s := &SNUG{
		h:        h,
		mon:      make([]*Monitor, cfg.Cores),
		stage:    StageIdentify,
		nextHost: make([]int, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		s.mon[i] = NewMonitor(h.Geom, cfg.SNUG.ShadowWays, cfg.SNUG.CounterBits, cfg.SNUG.PDivisor)
		s.nextHost[i] = (i + 1) % cfg.Cores
	}
	return s
}

// Name implements schemes.Controller.
func (s *SNUG) Name() string { return "SNUG" }

// Stage returns the current operating stage.
func (s *SNUG) Stage() Stage { return s.stage }

// Monitor returns core's demand monitor (tests and reporting).
func (s *SNUG) Monitor(core int) *Monitor { return s.mon[core] }

// Stats returns SNUG-specific counters.
func (s *SNUG) Stats() SNUGStats { return s.stats }

// Access implements schemes.Controller.
//
//snug:coordinator
func (s *SNUG) Access(core int, now int64, a addr.Addr, write bool) int64 {
	h := s.h
	cfg := &h.Cfg
	l2Lat := int64(cfg.Mem.L2Lat)
	// The demand monitor trains continuously; the G/T vector is re-latched
	// only at Stage I -> II transitions (Figure 5). Stage I's distinct role
	// is that spilling is suspended while the new classification settles.
	const training = true

	if h.Slices[core].Lookup(a, write) {
		if training {
			s.mon[core].OnRealHit(a)
		}
		h.Record(core, schemes.SrcLocalL2)
		return now + l2Lat
	}

	// Shadow check: a revisit of a formerly evicted block invalidates the
	// shadow entry (exclusivity) and, in Stage I, trains the counter.
	s.mon[core].OnMissCheck(a, training)

	if ok, done := h.DirectReadProbe(core, now, a); ok {
		v := h.Slices[core].Insert(a, cache.Block{Dirty: true, Owner: int8(core)})
		s.handleVictim(core, now, v, h.Geom.Index(a))
		h.Record(core, schemes.SrcWriteBuffer)
		return done
	}

	// Retrieval broadcast (allowed in both stages): each peer consults its
	// G/T vector for the same-index and flipped-index entries and performs
	// at most one unambiguous set search (§3.2). FindCC checks the peer's
	// CC occupancy index first, so a peer whose candidate set holds no
	// cooperative block of the requested flip state answers in O(1) — the
	// broadcast costs a counter check per non-holding peer, not a set scan.
	s.stats.Retrievals++
	reqDone := h.Bus.Acquire(now+l2Lat, bus.KindSnoop)
	idx := h.Geom.Index(a)
	tag := h.Geom.Tag(a)
	flip := cfg.SNUG.IndexFlip
	for off := 1; off < cfg.Cores; off++ {
		peer := (core + off) % cfg.Cores
		pl, ok := ClassifyRetrieve(s.mon[peer].GT(), idx, flip)
		if !ok {
			continue
		}
		found, way := h.Slices[peer].FindCC(pl.SetIdx, tag, pl.Flipped)
		if !found {
			continue
		}
		// Forward and invalidate the cooperative copy (§3.3).
		h.Slices[peer].InvalidateWay(pl.SetIdx, way)
		s.stats.RetrievalHits++
		dataAt := h.Bus.Acquire(now+l2Lat, bus.KindData)
		done := maxI64(now+l2Lat+int64(cfg.Mem.SNUGRemote), dataAt)
		v := h.Slices[core].Insert(a, cache.Block{Dirty: write, Owner: int8(core)})
		s.handleVictim(core, now, v, idx)
		h.Record(core, schemes.SrcRemoteL2)
		return done
	}

	done := h.FetchDRAMAfterSnoop(reqDone, a)
	v := h.Slices[core].Insert(a, cache.Block{Dirty: write, Owner: int8(core)})
	s.handleVictim(core, now, v, idx)
	h.Record(core, schemes.SrcDRAM)
	return done
}

// handleVictim processes a block evicted from (core, setIdx): locally
// owned victims are shadowed; dirty ones drain through the write buffer;
// clean ones from taker sets spill during Stage II; cooperative victims
// vanish (one-chance rule).
func (s *SNUG) handleVictim(core int, now int64, v cache.Block, setIdx uint32) {
	if !v.Valid {
		return
	}
	if v.CC {
		return
	}
	s.mon[core].OnLocalEvict(setIdx, v.Tag)
	if v.Dirty {
		s.h.PostWriteback(core, now, s.h.VictimAddr(v, setIdx))
		return
	}
	if s.stage == StageGroup && s.mon[core].GT().Taker(setIdx) {
		s.spill(core, now, v, setIdx)
	}
}

// spill broadcasts a CC spilling request for a clean taker-set victim.
// Peers evaluate Figure 8's three cases against their G/T vectors in bus
// (round-robin) order; the first responder retains the block.
func (s *SNUG) spill(core int, now int64, v cache.Block, setIdx uint32) {
	h := s.h
	flip := h.Cfg.SNUG.IndexFlip
	start := s.nextHost[core]
	for off := 0; off < h.Cfg.Cores-1; off++ {
		peer := (start + off) % h.Cfg.Cores
		if peer == core {
			peer = (peer + 1) % h.Cfg.Cores
		}
		pl := ClassifySpill(s.mon[peer].GT(), setIdx, flip)
		if pl.Case == SpillNone {
			continue
		}
		s.nextHost[core] = (peer + 1) % h.Cfg.Cores
		h.Bus.Acquire(now, bus.KindSnoop)
		h.Bus.Acquire(now, bus.KindData)
		hv := h.Slices[peer].InsertAt(pl.SetIdx, cache.Block{
			Tag: v.Tag, CC: true, F: pl.Flipped, Owner: v.Owner,
		})
		s.stats.Spills++
		if pl.Case == SpillSameIndex {
			s.stats.SpillsCase1++
		} else {
			s.stats.SpillsCase2++
		}
		// Host-side victim: cooperative blocks vanish; local host victims
		// are shadowed by the host's monitor and drain if dirty. They are
		// not re-spilled (no cascades).
		if hv.Valid && !hv.CC {
			s.mon[peer].OnLocalEvict(pl.SetIdx, hv.Tag)
			if hv.Dirty {
				h.PostWriteback(peer, now, h.VictimAddr(hv, pl.SetIdx))
			}
		}
		return
	}
	s.stats.SpillNoTaker++
}

// WritebackL1 implements schemes.Controller.
//
//snug:coordinator
func (s *SNUG) WritebackL1(core int, now int64, a addr.Addr) {
	s.h.MarkDirtyOrBuffer(core, now, a)
}

// Tick implements schemes.Controller: drains write buffers and advances the
// two-stage schedule of Figure 5.
//
//snug:coordinator
func (s *SNUG) Tick(now int64) {
	s.h.DrainWriteBuffers(now)
	for now >= s.stageStart+s.stageLen() {
		s.stageStart += s.stageLen()
		if s.stage == StageIdentify {
			s.latch()
			s.stage = StageGroup
		} else {
			s.stage = StageIdentify
		}
		s.stats.StageSwitches++
	}
}

// stageLen returns the current stage's duration in cycles.
func (s *SNUG) stageLen() int64 {
	if s.stage == StageIdentify {
		return s.h.Cfg.SNUG.StageICycles
	}
	return s.h.Cfg.SNUG.StageIICycles
}

// latch re-latches every slice's G/T vector from its counters and, when
// configured, drops cooperative blocks stranded unreachable by the new
// classification (see DESIGN.md, "Spill rules"). The stranded sweep walks
// the CC occupancy index instead of every set: only sets actually holding
// cooperative blocks are scanned, and CC-free slices cost nothing.
func (s *SNUG) latch() {
	for core := range s.mon {
		s.mon[core].Latch()
	}
	if !s.h.Cfg.SNUG.DropOnFlip {
		return
	}
	flip := s.h.Cfg.SNUG.IndexFlip
	for core := range s.mon {
		gt := s.mon[core].GT()
		slice := s.h.Slices[core]
		slice.ForEachCCSet(func(setIdx uint32) {
			dropped := slice.DropWhere(setIdx, func(b cache.Block) bool {
				return b.CC && !Reachable(gt, setIdx, b.F, flip)
			})
			s.stats.StrandedDropped += int64(dropped)
		})
	}
}

// Report implements schemes.Controller.
func (s *SNUG) Report() schemes.Report {
	r := s.h.BaseReport(s.Name())
	r.Spills = s.stats.Spills
	r.SpillNoTaker = s.stats.SpillNoTaker
	r.Retrievals = s.stats.Retrievals
	r.RetrievalHits = s.stats.RetrievalHits
	r.StrandedDropped = s.stats.StrandedDropped
	return r
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EpochSafe implements the schemes.EpochSafe capability: all mutable state
// is confined to the Controller call surface, so the epoch engine may
// drive this scheme.
func (s *SNUG) EpochSafe() bool { return true }
