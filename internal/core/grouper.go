package core

import "snug/internal/addr"

// SpillCase is the outcome of the index-bit-flipping placement decision
// (paper Figure 8).
type SpillCase uint8

const (
	// SpillSameIndex — Case 1: the peer set with exactly the same index is
	// a giver; the block lands there with f=0.
	SpillSameIndex SpillCase = iota
	// SpillFlippedIndex — Case 2: the same-index peer set is a taker but
	// the set with the last index bit flipped is a giver; the block lands
	// there with f=1.
	SpillFlippedIndex
	// SpillNone — Case 3: both candidate sets are takers; the peer does not
	// respond to the spill request.
	SpillNone
)

// String names the case.
func (c SpillCase) String() string {
	switch c {
	case SpillSameIndex:
		return "case1-same-index"
	case SpillFlippedIndex:
		return "case2-flipped-index"
	default:
		return "case3-no-response"
	}
}

// Placement is a resolved spill target.
type Placement struct {
	Case    SpillCase
	SetIdx  uint32 // target set in the peer cache
	Flipped bool   // value of the f bit to store
}

// ClassifySpill evaluates Figure 8's three cases for a spill of a block
// with original set index idx against a peer's G/T vector. allowFlip
// disables Case 2 for the no-flipping ablation.
func ClassifySpill(gt *GTVector, idx uint32, allowFlip bool) Placement {
	if gt.Giver(idx) {
		return Placement{Case: SpillSameIndex, SetIdx: idx, Flipped: false}
	}
	if allowFlip {
		if fl := addr.FlipLastIndexBit(idx); gt.Giver(fl) {
			return Placement{Case: SpillFlippedIndex, SetIdx: fl, Flipped: true}
		}
	}
	return Placement{Case: SpillNone}
}

// ClassifyRetrieve resolves where a peer would search for a block with
// original set index idx (§3.2 retrieval): the same-index set if it is a
// giver, otherwise the flipped set if that is a giver — at most one
// unambiguous search. ok=false means the block cannot be cooperatively
// cached in this peer.
//
// Placement and retrieval consult the same (frozen) G/T vector within one
// grouping stage, so a block spilled under Case 1/2 is always found by the
// corresponding search path.
func ClassifyRetrieve(gt *GTVector, idx uint32, allowFlip bool) (p Placement, ok bool) {
	if gt.Giver(idx) {
		return Placement{Case: SpillSameIndex, SetIdx: idx, Flipped: false}, true
	}
	if allowFlip {
		if fl := addr.FlipLastIndexBit(idx); gt.Giver(fl) {
			return Placement{Case: SpillFlippedIndex, SetIdx: fl, Flipped: true}, true
		}
	}
	return Placement{Case: SpillNone}, false
}

// Reachable reports whether a cooperative block residing in set residence
// with flip state f would still be found by ClassifyRetrieve under gt.
// Used at G/T re-latch time to drop stranded blocks (a design decision the
// paper leaves open; see DESIGN.md).
func Reachable(gt *GTVector, residence uint32, flipped bool, allowFlip bool) bool {
	orig := residence
	if flipped {
		orig = addr.FlipLastIndexBit(residence)
	}
	p, ok := ClassifyRetrieve(gt, orig, allowFlip)
	return ok && p.SetIdx == residence && p.Flipped == flipped
}
