package core

import "fmt"

// GTVector is the per-cache giver/taker bit vector of §3.1: one bit per L2
// set, addressable independently of the data arrays. Takers spill; givers
// receive. Peers consult each other's vectors (modeled as a direct lookup,
// with the extra latency charged via the SNUG remote-access latency of
// §4.1) to resolve spill placement and retrieval searches.
type GTVector struct {
	bits []uint64
	n    int
}

// NewGTVector builds a vector for n sets, all initialized to giver.
func NewGTVector(n int) (*GTVector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: G/T vector size must be positive, got %d", n)
	}
	return &GTVector{bits: make([]uint64, (n+63)/64), n: n}, nil
}

// MustGTVector is NewGTVector but panics on error.
func MustGTVector(n int) *GTVector {
	v, err := NewGTVector(n)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the number of sets tracked.
func (v *GTVector) Len() int { return v.n }

// Taker reports whether set s is marked as a taker.
func (v *GTVector) Taker(s uint32) bool {
	return v.bits[s/64]&(1<<(s%64)) != 0
}

// Giver reports whether set s is marked as a giver.
func (v *GTVector) Giver(s uint32) bool { return !v.Taker(s) }

// Set marks set s as taker (true) or giver (false).
func (v *GTVector) Set(s uint32, taker bool) {
	if taker {
		v.bits[s/64] |= 1 << (s % 64)
	} else {
		v.bits[s/64] &^= 1 << (s % 64)
	}
}

// TakerCount returns how many sets are currently takers.
func (v *GTVector) TakerCount() int {
	n := 0
	for _, w := range v.bits {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
