package core

import (
	"snug/internal/addr"
	"snug/internal/cache"
)

// MonitorStats aggregates one slice's capacity-demand monitoring activity.
type MonitorStats struct {
	ShadowHits    int64
	ShadowInserts int64
	RealHitPulses int64
	Latches       int64 // G/T vector re-latches performed
}

// Monitor is one SNUG slice's per-set capacity-demand monitor (§3.1): the
// shadow L2 cache (a tag-only array with the same geometry and — by
// default — the same associativity as the real slice, its own LRU ranking,
// and strict tag exclusivity with the slice's local lines) plus the per-set
// saturating counters, and the G/T vector they latch into.
type Monitor struct {
	shadow   *cache.Cache
	counters []SatCounter
	gt       *GTVector
	stats    MonitorStats
}

// NewMonitor builds a monitor for a slice with the given geometry.
func NewMonitor(geom addr.Geometry, shadowWays, counterBits, p int) *Monitor {
	m := &Monitor{
		shadow:   cache.MustNew(geom, shadowWays),
		counters: make([]SatCounter, geom.Sets()),
		gt:       MustGTVector(geom.Sets()),
	}
	for i := range m.counters {
		m.counters[i] = MustSatCounter(counterBits, p)
	}
	return m
}

// GT returns the slice's G/T vector.
func (m *Monitor) GT() *GTVector { return m.gt }

// Stats returns a snapshot of monitoring counters.
func (m *Monitor) Stats() MonitorStats { return m.stats }

// Shadow exposes the shadow array (tests and reporting).
func (m *Monitor) Shadow() *cache.Cache { return m.shadow }

// Counter returns set s's saturating counter value (tests and reporting).
func (m *Monitor) Counter(s uint32) *SatCounter { return &m.counters[s] }

// OnRealHit accounts a hit in the real set containing a.
func (m *Monitor) OnRealHit(a addr.Addr) {
	m.counters[m.shadow.Index(a)].RealHit()
	m.stats.RealHitPulses++
}

// OnMissCheck checks the shadow set for a formerly evicted block being
// revisited (§3.1.1): on a shadow hit the entry is invalidated (the block
// re-enters the real set, and shadow entries are strictly exclusive with
// local lines) and, when train is set (Stage I), the saturating counter is
// bumped. Returns whether the shadow held the tag.
func (m *Monitor) OnMissCheck(a addr.Addr, train bool) bool {
	if _, found := m.shadow.Invalidate(a); !found {
		return false
	}
	if train {
		m.counters[m.shadow.Index(a)].ShadowHit()
		m.stats.ShadowHits++
	}
	return true
}

// OnLocalEvict retains the shadow of a locally owned victim evicted from
// set setIdx: its tag enters the shadow set at MRU, displacing the
// shadow's own LRU entry if full.
func (m *Monitor) OnLocalEvict(setIdx uint32, tag uint64) {
	m.shadow.InsertAt(setIdx, cache.Block{Tag: tag})
	m.stats.ShadowInserts++
}

// OnLocalFill enforces exclusivity when a local block enters the real set
// through any path that bypassed OnMiss (e.g. a direct read from the write
// buffer).
func (m *Monitor) OnLocalFill(a addr.Addr) {
	m.shadow.Invalidate(a)
}

// Latch copies every counter's MSB into the G/T vector — the Stage I → II
// transition of Figure 5. It returns the number of taker sets latched.
//
// The counters are NOT reset: the paper initializes them once (Figure 7),
// so classification confidence accumulates across identification stages
// while the saturating arithmetic still tracks demand shifts.
func (m *Monitor) Latch() int {
	takers := 0
	for s := range m.counters {
		taker := m.counters[s].Taker()
		m.gt.Set(uint32(s), taker)
		if taker {
			takers++
		}
	}
	m.stats.Latches++
	return takers
}
