package core

import (
	"testing"
	"testing/quick"

	"snug/internal/addr"
	"snug/internal/cache"
)

func TestSatCounterInitAndThreshold(t *testing.T) {
	c := MustSatCounter(4, 8)
	if c.Value() != 7 {
		t.Fatalf("init value %d, want 2^(k-1)-1 = 7 (Figure 7)", c.Value())
	}
	if c.Taker() {
		t.Fatal("fresh counter already signals taker")
	}
	c.ShadowHit()
	if !c.Taker() {
		t.Fatal("one net shadow hit must set the MSB (7+1 = 8)")
	}
}

func TestSatCounterSaturation(t *testing.T) {
	c := MustSatCounter(4, 8)
	for i := 0; i < 100; i++ {
		c.ShadowHit()
	}
	if c.Value() != 15 {
		t.Fatalf("value %d, want saturation at 15", c.Value())
	}
	// 100 shadow hits also produced 100/8 = 12 decrements along the way;
	// saturation must still hold afterwards.
	for i := 0; i < 200; i++ {
		c.RealHit()
	}
	if c.Value() != 0 {
		t.Fatalf("value %d, want floor at 0 after heavy real-hit decrements", c.Value())
	}
	c.RealHit()
	if c.Value() != 0 {
		t.Fatal("counter went below zero")
	}
}

func TestSatCounterSigmaThreshold(t *testing.T) {
	// σ > 1/p ⟺ counter drifts up. With p=8: 2 shadow hits out of 9 total
	// hits (σ=0.22 > 1/8) must classify taker; 1 of 17 (σ=0.06 < 1/8) must
	// not.
	up := MustSatCounter(4, 8)
	up.ShadowHit()
	up.ShadowHit()
	for i := 0; i < 7; i++ {
		up.RealHit()
	}
	if !up.Taker() {
		t.Fatalf("σ=2/9 > 1/8 not classified taker (value %d)", up.Value())
	}
	down := MustSatCounter(4, 8)
	down.ShadowHit()
	for i := 0; i < 16; i++ {
		down.RealHit()
	}
	if down.Taker() {
		t.Fatalf("σ=1/17 < 1/8 classified taker (value %d)", down.Value())
	}
}

func TestSatCounterRejectsBadParams(t *testing.T) {
	if _, err := NewSatCounter(1, 8); err == nil {
		t.Error("1-bit counter accepted")
	}
	if _, err := NewSatCounter(16, 8); err == nil {
		t.Error("16-bit counter accepted (max is 15)")
	}
	if _, err := NewSatCounter(4, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestGTVectorBasics(t *testing.T) {
	v := MustGTVector(130) // spans three words
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, s := range []uint32{0, 63, 64, 129} {
		if v.Taker(s) {
			t.Fatalf("set %d taker before any Set", s)
		}
		v.Set(s, true)
		if !v.Taker(s) || v.Giver(s) {
			t.Fatalf("set %d not taker after Set", s)
		}
	}
	if v.TakerCount() != 4 {
		t.Fatalf("TakerCount = %d", v.TakerCount())
	}
	v.Set(64, false)
	if v.Taker(64) || v.TakerCount() != 3 {
		t.Fatal("clearing failed")
	}
}

func TestGTVectorSetIdempotentProperty(t *testing.T) {
	v := MustGTVector(256)
	f := func(s uint16, taker bool) bool {
		idx := uint32(s) % 256
		v.Set(idx, taker)
		v.Set(idx, taker)
		return v.Taker(idx) == taker
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassifySpillCases(t *testing.T) {
	gt := MustGTVector(8)
	// Case 1: same index is giver.
	pl := ClassifySpill(gt, 4, true)
	if pl.Case != SpillSameIndex || pl.SetIdx != 4 || pl.Flipped {
		t.Fatalf("case1 placement %+v", pl)
	}
	// Case 2: same index taker, flipped giver.
	gt.Set(4, true)
	pl = ClassifySpill(gt, 4, true)
	if pl.Case != SpillFlippedIndex || pl.SetIdx != 5 || !pl.Flipped {
		t.Fatalf("case2 placement %+v", pl)
	}
	// Case 3: both takers.
	gt.Set(5, true)
	if pl = ClassifySpill(gt, 4, true); pl.Case != SpillNone {
		t.Fatalf("case3 placement %+v", pl)
	}
	// Flip disabled: case 2 degenerates to case 3.
	gt.Set(5, false)
	if pl = ClassifySpill(gt, 4, false); pl.Case != SpillNone {
		t.Fatalf("no-flip placement %+v", pl)
	}
}

func TestRetrieveMatchesSpillPlacement(t *testing.T) {
	// Invariant: wherever ClassifySpill puts a block, ClassifyRetrieve must
	// search, for every G/T configuration of the two candidate sets.
	f := func(sameT, flipT, allowFlip bool) bool {
		gt := MustGTVector(4)
		gt.Set(2, sameT)
		gt.Set(3, flipT)
		sp := ClassifySpill(gt, 2, allowFlip)
		if sp.Case == SpillNone {
			return true
		}
		rt, ok := ClassifyRetrieve(gt, 2, allowFlip)
		return ok && rt.SetIdx == sp.SetIdx && rt.Flipped == sp.Flipped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReachable(t *testing.T) {
	gt := MustGTVector(4)
	// Block at its own index (giver): reachable.
	if !Reachable(gt, 2, false, true) {
		t.Error("same-index block in giver set unreachable")
	}
	// Flipped block at 3 (original 2): reachable only when set 2 is taker
	// and 3 is giver.
	if Reachable(gt, 3, true, true) {
		t.Error("flipped block reachable although same-index search wins")
	}
	gt.Set(2, true)
	if !Reachable(gt, 3, true, true) {
		t.Error("flipped block unreachable in its intended configuration")
	}
	gt.Set(3, true)
	if Reachable(gt, 3, true, true) {
		t.Error("block in taker set still reachable")
	}
}

func testMonitor(t *testing.T) (*Monitor, addr.Geometry) {
	t.Helper()
	g := addr.MustGeometry(64, 16)
	return NewMonitor(g, 4, 4, 8), g
}

func TestMonitorShadowHitTrainsCounter(t *testing.T) {
	m, g := testMonitor(t)
	a := g.Rebuild(42, 3)
	m.OnLocalEvict(3, g.Tag(a))
	if !m.OnMissCheck(a, true) {
		t.Fatal("shadow missed a just-evicted tag")
	}
	if !m.Counter(3).Taker() {
		t.Fatal("shadow hit did not push counter over the MSB")
	}
	// Exclusivity: the entry must be gone.
	if m.OnMissCheck(a, true) {
		t.Fatal("shadow entry survived its own hit")
	}
	if m.Stats().ShadowHits != 1 {
		t.Fatalf("ShadowHits = %d", m.Stats().ShadowHits)
	}
}

func TestMonitorTrainingGate(t *testing.T) {
	m, g := testMonitor(t)
	a := g.Rebuild(7, 1)
	m.OnLocalEvict(1, g.Tag(a))
	if !m.OnMissCheck(a, false) {
		t.Fatal("untrained check must still report and invalidate the entry")
	}
	if m.Counter(1).Taker() {
		t.Fatal("counter trained although train=false")
	}
}

func TestMonitorShadowLRUDepth(t *testing.T) {
	m, g := testMonitor(t)
	// Shadow is 4-way here: evicting 5 tags pushes the first one out.
	for tag := uint64(1); tag <= 5; tag++ {
		m.OnLocalEvict(0, tag)
	}
	if m.OnMissCheck(g.Rebuild(1, 0), true) {
		t.Fatal("oldest shadow entry should have been displaced")
	}
	if !m.OnMissCheck(g.Rebuild(5, 0), true) {
		t.Fatal("newest shadow entry missing")
	}
}

func TestMonitorLatch(t *testing.T) {
	m, g := testMonitor(t)
	a := g.Rebuild(9, 2)
	m.OnLocalEvict(2, g.Tag(a))
	m.OnMissCheck(a, true)
	if m.GT().Taker(2) {
		t.Fatal("G/T vector updated before Latch")
	}
	if takers := m.Latch(); takers != 1 {
		t.Fatalf("Latch latched %d takers, want 1", takers)
	}
	if !m.GT().Taker(2) {
		t.Fatal("taker not latched")
	}
	// Counters persist across latches (initialized once, Figure 7).
	if !m.Counter(2).Taker() {
		t.Fatal("counter reset by Latch; the paper initializes once")
	}
}

func TestMonitorOnLocalFillExclusivity(t *testing.T) {
	m, g := testMonitor(t)
	a := g.Rebuild(11, 5)
	m.OnLocalEvict(5, g.Tag(a))
	m.OnLocalFill(a)
	if m.OnMissCheck(a, true) {
		t.Fatal("shadow entry survived a local fill (exclusivity violated)")
	}
}

// Ensure the shadow reuses the cache package faithfully: a shadow array is
// a tag-only cache.Cache and must never report dirty or CC state.
func TestMonitorShadowIsTagOnly(t *testing.T) {
	m, _ := testMonitor(t)
	m.OnLocalEvict(0, 3)
	m.Shadow().SetView(0, func(_ int, b cache.Block) {
		if b.Dirty || b.CC || b.F {
			t.Fatalf("shadow entry carries data-array state: %+v", b)
		}
	})
}
