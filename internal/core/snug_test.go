package core

import (
	"testing"

	"snug/internal/addr"
	"snug/internal/cache"
	"snug/internal/config"
)

func snugUnderTest(t *testing.T) (*SNUG, config.System) {
	t.Helper()
	cfg := config.TestScale()
	cfg.SNUG.StageICycles = 1000
	cfg.SNUG.StageIICycles = 9000
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(cfg), cfg
}

func TestSNUGStageSchedule(t *testing.T) {
	s, cfg := snugUnderTest(t)
	if s.Stage() != StageIdentify {
		t.Fatal("must start in Stage I (identification)")
	}
	s.Tick(cfg.SNUG.StageICycles)
	if s.Stage() != StageGroup {
		t.Fatal("Stage I did not end on schedule")
	}
	s.Tick(cfg.SNUG.StageICycles + cfg.SNUG.StageIICycles)
	if s.Stage() != StageIdentify {
		t.Fatal("Stage II did not end on schedule")
	}
	if got := s.Stats().StageSwitches; got != 2 {
		t.Fatalf("StageSwitches = %d, want 2", got)
	}
}

func TestSNUGNoSpillsDuringStageI(t *testing.T) {
	s, cfg := snugUnderTest(t)
	geom := addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())
	// Force core 0's set 0 to overflow repeatedly while still in Stage I.
	for tag := uint64(0); tag < 64; tag++ {
		a := addr.ForCore(0, geom.Rebuild(tag, 0))
		s.Access(0, 10, a, false)
	}
	if s.Stats().Spills != 0 {
		t.Fatalf("%d spills during Stage I; the paper allows none", s.Stats().Spills)
	}
}

func TestSNUGSpillAndRetrieve(t *testing.T) {
	s, cfg := snugUnderTest(t)
	geom := addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())

	// Mark core 0's set 0 as taker and latch; peers stay givers.
	s.mon[0].GT().Set(0, true)
	s.stage = StageGroup

	// Fill set 0 of core 0 beyond capacity with clean blocks: overflow
	// victims must spill into a peer's giver set 0 (Case 1, f=0).
	ways := cfg.Mem.L2Slice.Ways
	addrs := make([]addr.Addr, 0, ways+4)
	for tag := uint64(1); tag <= uint64(ways+4); tag++ {
		a := addr.ForCore(0, geom.Rebuild(tag, 0))
		addrs = append(addrs, a)
		s.Access(0, 100, a, false)
	}
	st := s.Stats()
	if st.Spills == 0 || st.SpillsCase1 != st.Spills {
		t.Fatalf("spill stats %+v, want only Case 1 spills", st)
	}

	// Re-access the first (evicted, spilled) block: the retrieval must hit
	// a peer, forward the block home, and invalidate the cooperative copy.
	before := s.Stats().RetrievalHits
	done := s.Access(0, 200, addrs[0], false)
	if s.Stats().RetrievalHits != before+1 {
		t.Fatal("retrieval did not hit the spilled block")
	}
	wantMin := int64(200) + int64(cfg.Mem.L2Lat) + int64(cfg.Mem.SNUGRemote)
	if done < wantMin {
		t.Fatalf("remote retrieval completed at %d, want >= %d (40-cycle SNUG remote latency)", done, wantMin)
	}
	// The copy must be gone from every peer now (invalidate-on-forward).
	tag := geom.Tag(addrs[0])
	for peer := 1; peer < cfg.Cores; peer++ {
		if found, _ := s.h.Slices[peer].FindCC(0, tag, false); found {
			t.Fatalf("peer %d still holds the forwarded block", peer)
		}
	}
	// And it must now hit locally at core 0.
	if done := s.Access(0, 300, addrs[0], false); done != 300+int64(cfg.Mem.L2Lat) {
		t.Fatalf("local re-access latency %d, want local L2 hit", done-300)
	}
}

func TestSNUGFlippedSpill(t *testing.T) {
	s, cfg := snugUnderTest(t)
	geom := addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())
	s.stage = StageGroup
	// Core 0 set 0 is a taker; every peer's set 0 is also a taker but set 1
	// is a giver — Case 2 placements with f=1.
	s.mon[0].GT().Set(0, true)
	for peer := 1; peer < cfg.Cores; peer++ {
		s.mon[peer].GT().Set(0, true)
	}
	ways := cfg.Mem.L2Slice.Ways
	var first addr.Addr
	for tag := uint64(1); tag <= uint64(ways+2); tag++ {
		a := addr.ForCore(0, geom.Rebuild(tag, 0))
		if tag == 1 {
			first = a
		}
		s.Access(0, 100, a, false)
	}
	st := s.Stats()
	if st.SpillsCase2 == 0 || st.SpillsCase1 != 0 {
		t.Fatalf("spill stats %+v, want only Case 2 (flipped) spills", st)
	}
	// Retrieval must find the block in the flipped set.
	before := s.Stats().RetrievalHits
	s.Access(0, 200, first, false)
	if s.Stats().RetrievalHits != before+1 {
		t.Fatal("flipped-index retrieval failed")
	}
}

func TestSNUGDirtyVictimsNeverSpill(t *testing.T) {
	s, cfg := snugUnderTest(t)
	geom := addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())
	s.stage = StageGroup
	s.mon[0].GT().Set(2, true)
	ways := cfg.Mem.L2Slice.Ways
	for tag := uint64(1); tag <= uint64(ways+8); tag++ {
		a := addr.ForCore(0, geom.Rebuild(tag, 2))
		s.Access(0, 100, a, true) // stores: every block dirty
	}
	if s.Stats().Spills != 0 {
		t.Fatalf("%d dirty blocks spilled; §3.3 allows only clean blocks", s.Stats().Spills)
	}
	if s.h.WB[0].Stats().Inserts == 0 {
		t.Fatal("dirty victims did not reach the write buffer")
	}
}

func TestSNUGStrandedDropOnLatch(t *testing.T) {
	s, cfg := snugUnderTest(t)
	geom := addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())
	s.stage = StageGroup
	s.mon[0].GT().Set(0, true)
	ways := cfg.Mem.L2Slice.Ways
	for tag := uint64(1); tag <= uint64(ways+4); tag++ {
		s.Access(0, 100, addr.ForCore(0, geom.Rebuild(tag, 0)), false)
	}
	if s.Stats().Spills == 0 {
		t.Fatal("setup produced no spills")
	}
	// Force the hosts' counters to classify set 0 as taker at the next
	// latch: cooperative copies there become unreachable and must drop.
	for peer := 1; peer < cfg.Cores; peer++ {
		for i := 0; i < 4; i++ {
			s.mon[peer].Counter(0).ShadowHit()
			s.mon[peer].Counter(1).ShadowHit()
		}
	}
	s.latch()
	if s.Stats().StrandedDropped == 0 {
		t.Fatal("stranded cooperative blocks not dropped at re-latch")
	}
	for peer := 1; peer < cfg.Cores; peer++ {
		if n := s.h.Slices[peer].DropWhere(0, func(b cache.Block) bool { return b.CC }); n != 0 {
			t.Fatalf("peer %d kept %d unreachable cooperative blocks in set 0", peer, n)
		}
	}
}

func TestSNUGImplementsController(t *testing.T) {
	s, _ := snugUnderTest(t)
	if s.Name() != "SNUG" {
		t.Fatalf("Name = %q", s.Name())
	}
	r := s.Report()
	if r.Scheme != "SNUG" || len(r.PerCore) == 0 {
		t.Fatalf("report %+v", r)
	}
}
