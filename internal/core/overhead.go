package core

import (
	"fmt"
	"math"
)

// OverheadParams describes one SNUG storage-overhead scenario for
// Formula (6) and Tables 2–3 of §3.4.
type OverheadParams struct {
	// AddressBits is the machine's address width (32, or 64 with
	// UsedAddressBits of them architecturally meaningful — the paper cites
	// UltraSPARC-III using 44 physical-address bits).
	AddressBits     int
	UsedAddressBits int // 0 means all AddressBits are used
	CacheBytes      int // private slice capacity (1 MB)
	Ways            int // associativity (16)
	BlockBytes      int // 64 or 128
	CounterBits     int // k (4)
	PDivisor        int // p (8) — mod-p counter is log2(p) bits
}

// DefaultOverheadParams returns the Table 2 configuration.
func DefaultOverheadParams() OverheadParams {
	return OverheadParams{
		AddressBits: 32,
		CacheBytes:  1 << 20,
		Ways:        16,
		BlockBytes:  64,
		CounterBits: 4,
		PDivisor:    8,
	}
}

// Overhead is the computed storage breakdown.
type Overhead struct {
	Sets          int
	TagBits       int // shadow/real tag width (Table 2 "length (tag field)")
	LRUBits       int // per-line LRU field width (Table 2: 4 for 16 ways)
	LineBits      int // one real L2 line: tag+v+d+CC+f+LRU+data
	L2SetBits     int // Ways real lines
	ShadowTagBits int // one shadow entry: tag+v+LRU
	ShadowSetBits int // Ways shadow entries + counter + mod-p + G/T bit
	Fraction      float64
}

// Percent returns the overhead as a percentage.
func (o Overhead) Percent() float64 { return o.Fraction * 100 }

// ComputeOverhead evaluates Formula (6):
//
//	overhead = shadowSet / (shadowSet + l2Set)
//
// with the field widths of Table 2 derived from the geometry.
func ComputeOverhead(p OverheadParams) (Overhead, error) {
	if p.CacheBytes <= 0 || p.Ways <= 0 || p.BlockBytes <= 0 {
		return Overhead{}, fmt.Errorf("core: invalid overhead geometry %+v", p)
	}
	sets := p.CacheBytes / (p.Ways * p.BlockBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		return Overhead{}, fmt.Errorf("core: set count %d is not a power of two", sets)
	}
	used := p.UsedAddressBits
	if used == 0 {
		used = p.AddressBits
	}
	offBits := ilog2(p.BlockBytes)
	idxBits := ilog2(sets)
	tagBits := used - offBits - idxBits
	if tagBits <= 0 {
		return Overhead{}, fmt.Errorf("core: geometry leaves no tag bits (used=%d off=%d idx=%d)", used, offBits, idxBits)
	}
	lruBits := ilog2(p.Ways)
	dataBits := p.BlockBytes * 8

	// Real line: tag + valid + dirty + CC + f + LRU + data (Figure 4).
	lineBits := tagBits + 4 + lruBits + dataBits
	l2SetBits := p.Ways * lineBits

	// Shadow entry: tag + valid + LRU. Per shadow set: the k-bit saturating
	// counter, the mod-p hit counter (log2 p bits) and the G/T vector bit.
	shadowTag := tagBits + 1 + lruBits
	shadowSetBits := p.Ways*shadowTag + p.CounterBits + ilog2(p.PDivisor) + 1

	frac := float64(shadowSetBits) / float64(shadowSetBits+l2SetBits)
	return Overhead{
		Sets:          sets,
		TagBits:       tagBits,
		LRUBits:       lruBits,
		LineBits:      lineBits,
		L2SetBits:     l2SetBits,
		ShadowTagBits: shadowTag,
		ShadowSetBits: shadowSetBits,
		Fraction:      frac,
	}, nil
}

// Table3Cell identifies one cell of Table 3.
type Table3Cell struct {
	AddressBits     int
	UsedAddressBits int
	BlockBytes      int
	Percent         float64
}

// Table3 computes the paper's Table 3 grid: {32-bit, 64-bit(44 used)} ×
// {64 B, 128 B lines} for a 1 MB 16-way slice. Expected values: 3.9 %,
// 5.8 %, 2.1 %, 3.1 %.
func Table3() ([]Table3Cell, error) {
	var out []Table3Cell
	for _, blk := range []int{64, 128} {
		for _, ab := range []struct{ bits, used int }{{32, 0}, {64, 44}} {
			p := DefaultOverheadParams()
			p.AddressBits = ab.bits
			p.UsedAddressBits = ab.used
			p.BlockBytes = blk
			o, err := ComputeOverhead(p)
			if err != nil {
				return nil, err
			}
			out = append(out, Table3Cell{
				AddressBits:     ab.bits,
				UsedAddressBits: ab.used,
				BlockBytes:      blk,
				Percent:         o.Percent(),
			})
		}
	}
	return out, nil
}

func ilog2(v int) int {
	return int(math.Round(math.Log2(float64(v))))
}
