// Package core implements the paper's contribution: the SNUG
// (Set-level Non-Uniformity identifier and Grouper) L2 cache design of §3.
//
// Per L2 set, SNUG keeps a shadow tag array (same associativity as the
// real set) recording locally evicted blocks, and a k-bit saturating
// counter estimating σ = shadowHits / (realHits + shadowHits) — the hit-rate
// gain available from doubling the set's capacity (§3.1.2). The counter's
// MSB classifies the set as a Giver or Taker; the G/T bits of all sets form
// the G/T vector (§3.1.3). During the Sets-Grouping stage, taker sets spill
// clean victims to peer giver sets selected by the index-bit-flipping
// scheme (§3.2), and misses broadcast retrievals resolved with at most one
// unambiguous peer-set search. Coherence follows §3.3: only clean blocks
// spill, and a forwarded cooperative block is invalidated at its host.
package core

import "fmt"

// SatCounter is the k-bit saturating counter of §3.1.2 (Figures 6–7),
// paired with a mod-p hit counter: every shadow-set hit increments the
// counter; after every p hits on the real or shadow set it decrements.
// The MSB then indicates whether σ > 1/p, i.e. whether doubling the set's
// capacity buys at least a 1/p hit-rate increase.
type SatCounter struct {
	v    uint16
	max  uint16
	msb  uint16
	p    uint16
	modp uint16
}

// NewSatCounter builds a k-bit counter with decrement divisor p,
// initialized to 2^(k-1)-1 (all bits below the MSB set — Figure 7).
func NewSatCounter(bits, p int) (SatCounter, error) {
	if bits < 2 || bits > 15 {
		return SatCounter{}, fmt.Errorf("core: counter width %d out of range [2,15]", bits)
	}
	if p <= 0 {
		return SatCounter{}, fmt.Errorf("core: p must be positive, got %d", p)
	}
	c := SatCounter{
		max: uint16(1)<<bits - 1,
		msb: uint16(1) << (bits - 1),
		p:   uint16(p),
	}
	c.Reset()
	return c, nil
}

// MustSatCounter is NewSatCounter but panics on error.
func MustSatCounter(bits, p int) SatCounter {
	c, err := NewSatCounter(bits, p)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset restores the initial value 2^(k-1)-1 and clears the mod-p counter.
func (c *SatCounter) Reset() {
	c.v = c.msb - 1
	c.modp = 0
}

// ShadowHit applies a shadow-set hit: +1 (saturating), plus the hit-pulse
// accounting shared with real-set hits.
func (c *SatCounter) ShadowHit() {
	if c.v < c.max {
		c.v++
	}
	c.hitPulse()
}

// RealHit applies a real-set hit: hit-pulse accounting only.
func (c *SatCounter) RealHit() { c.hitPulse() }

// hitPulse counts one hit on the real-or-shadow pair; every p-th hit
// decrements the counter (floored at 0).
func (c *SatCounter) hitPulse() {
	c.modp++
	if c.modp >= c.p {
		c.modp = 0
		if c.v > 0 {
			c.v--
		}
	}
}

// Taker reports the counter's MSB: true means the set demands more
// capacity than its slice provides (≥ 1/p hit-rate gain from doubling) and
// should spill; false marks a giver.
func (c *SatCounter) Taker() bool { return c.v&c.msb != 0 }

// Value returns the raw counter value (for tests and reporting).
func (c *SatCounter) Value() int { return int(c.v) }
