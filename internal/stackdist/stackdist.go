// Package stackdist implements the paper's §2.1 quantification of set-level
// capacity demand: a Mattson LRU stack-distance profiler with an
// A_threshold-deep stack per cache set, per-set hit-position histograms,
// the block_required(S, I) computation of Formula (3), and the bucket
// membership / bucket-size characterization of Formulas (4)–(5).
//
// Under LRU's stack (inclusion) property, the number of hits a set would see
// with associativity A equals the number of accesses whose LRU stack
// distance is <= A. block_required(S, I) is therefore the smallest A whose
// cumulative hit count equals the cumulative hit count at A_threshold —
// exactly Formula (3), which the paper prefers over Formula (2) because hit
// positions are cheap to observe.
package stackdist

import (
	"fmt"

	"snug/internal/addr"
	"snug/internal/stats"
)

// Profiler tracks, for every set of a cache geometry, an LRU stack of up to
// AThreshold tags and a histogram of hit positions (1-based LRU depth).
type Profiler struct {
	geom       addr.Geometry
	aThreshold int

	// stacks is a per-set MRU→LRU tag list; hitCounts[s][d] counts hits at
	// 1-based depth d+1 within the current sampling interval.
	stacks    [][]uint64
	hitCounts [][]int32
	accesses  int64 // accesses within the current interval
}

// NewProfiler builds a profiler for the given geometry with stacks
// aThreshold entries deep. The paper sets A_threshold to twice the baseline
// associativity (32 for the 16-way L2).
func NewProfiler(geom addr.Geometry, aThreshold int) (*Profiler, error) {
	if aThreshold <= 0 {
		return nil, fmt.Errorf("stackdist: A_threshold must be positive, got %d", aThreshold)
	}
	sets := geom.Sets()
	p := &Profiler{
		geom:       geom,
		aThreshold: aThreshold,
		stacks:     make([][]uint64, sets),
		hitCounts:  make([][]int32, sets),
	}
	for s := 0; s < sets; s++ {
		p.stacks[s] = make([]uint64, 0, aThreshold)
		p.hitCounts[s] = make([]int32, aThreshold)
	}
	return p, nil
}

// MustProfiler is NewProfiler but panics on error.
func MustProfiler(geom addr.Geometry, aThreshold int) *Profiler {
	p, err := NewProfiler(geom, aThreshold)
	if err != nil {
		panic(err)
	}
	return p
}

// AThreshold returns the stack depth.
func (p *Profiler) AThreshold() int { return p.aThreshold }

// Accesses returns the number of accesses observed in the current interval.
func (p *Profiler) Accesses() int64 { return p.accesses }

// Touch records one access to address a: if a's tag is within the top
// AThreshold stack positions of its set, the hit depth (1-based) is recorded
// and the tag moves to MRU; otherwise the access is a (capacity-at-threshold
// or compulsory) miss and the tag is pushed at MRU, shifting the rest down.
// It returns the 1-based hit depth, or 0 for a miss beyond the threshold.
func (p *Profiler) Touch(a addr.Addr) int {
	s := p.geom.Index(a)
	tag := p.geom.Tag(a)
	stack := p.stacks[s]
	p.accesses++

	for i, t := range stack {
		if t == tag {
			// Move to front: shift [0,i) down one.
			copy(stack[1:i+1], stack[0:i])
			stack[0] = tag
			p.hitCounts[s][i]++
			return i + 1
		}
	}
	// Miss: push at MRU, dropping the LRU entry if the stack is full.
	if len(stack) < p.aThreshold {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = tag
	p.stacks[s] = stack
	return 0
}

// HitCount returns hit_count(S, I, A): the number of hits set s would have
// seen during the current interval with associativity a (hits at depths
// <= a). a is clamped to [0, AThreshold].
func (p *Profiler) HitCount(s uint32, a int) int64 {
	if a < 0 {
		a = 0
	}
	if a > p.aThreshold {
		a = p.aThreshold
	}
	var sum int64
	hc := p.hitCounts[s]
	for d := 0; d < a; d++ {
		sum += int64(hc[d])
	}
	return sum
}

// BlockRequired returns block_required(S, I) per Formula (3): the minimum
// associativity A such that hit_count(S,I,A) == hit_count(S,I,A_threshold).
// A set with no hits at all requires 1 block (the range is [1, A_threshold],
// §2.1.2).
func (p *Profiler) BlockRequired(s uint32) int {
	hc := p.hitCounts[s]
	// Find the deepest position with a nonzero hit count; every A at or
	// beyond it satisfies the formula, so the minimum A is that depth.
	deepest := 0
	for d := p.aThreshold - 1; d >= 0; d-- {
		if hc[d] != 0 {
			deepest = d + 1
			break
		}
	}
	if deepest == 0 {
		return 1
	}
	return deepest
}

// IntervalResult is the characterization output for one sampling interval:
// the normalized size of each demand bucket (Formula 5).
type IntervalResult struct {
	Interval      int
	BucketSizes   []float64 // length M, sums to 1
	MeanDemand    float64   // mean block_required over all sets
	TakerFraction float64   // fraction of sets with demand > baseline ways
}

// EndInterval computes the per-set block_required values, folds them into M
// equal-width buckets over [1, A_threshold] (Formulas 4–5), resets the
// per-interval hit counters, and returns the interval's characterization.
// Stacks persist across intervals, matching the paper's continuous
// profiling; interval is an identifying sequence number.
func (p *Profiler) EndInterval(interval, m, baselineWays int) IntervalResult {
	h := stats.MustHistogram(p.aThreshold, m)
	sum := 0
	takers := 0
	for s := range p.hitCounts {
		br := p.BlockRequired(uint32(s))
		h.Observe(br)
		sum += br
		if br > baselineWays {
			takers++
		}
		for d := range p.hitCounts[s] {
			p.hitCounts[s][d] = 0
		}
	}
	p.accesses = 0
	sets := float64(len(p.hitCounts))
	return IntervalResult{
		Interval:      interval,
		BucketSizes:   h.Fractions(),
		MeanDemand:    float64(sum) / sets,
		TakerFraction: float64(takers) / sets,
	}
}

// Characterization accumulates interval results into per-bucket series — the
// series Figures 1–3 plot (x: sampling interval, y: stacked bucket sizes).
type Characterization struct {
	M          int
	AThreshold int
	Labels     []string
	BucketOver []stats.Series // one series per bucket, over intervals
	MeanDemand stats.Series
	TakerShare stats.Series
}

// NewCharacterization prepares an accumulator for M buckets over
// [1, aThreshold].
func NewCharacterization(aThreshold, m int) *Characterization {
	h := stats.MustHistogram(aThreshold, m)
	c := &Characterization{
		M:          m,
		AThreshold: aThreshold,
		Labels:     make([]string, m),
		BucketOver: make([]stats.Series, m),
	}
	for j := 0; j < m; j++ {
		c.Labels[j] = h.BucketLabel(j)
		c.BucketOver[j].Name = c.Labels[j]
	}
	c.MeanDemand.Name = "mean_demand"
	c.TakerShare.Name = "taker_fraction"
	return c
}

// Add folds one interval's result into the accumulated series.
func (c *Characterization) Add(r IntervalResult) {
	for j := 0; j < c.M; j++ {
		c.BucketOver[j].Append(r.BucketSizes[j])
	}
	c.MeanDemand.Append(r.MeanDemand)
	c.TakerShare.Append(r.TakerFraction)
}

// Intervals returns how many intervals have been accumulated.
func (c *Characterization) Intervals() int { return len(c.MeanDemand.Values) }

// MeanBucketSizes returns each bucket's average share across all intervals.
func (c *Characterization) MeanBucketSizes() []float64 {
	out := make([]float64, c.M)
	for j := 0; j < c.M; j++ {
		out[j] = c.BucketOver[j].MeanValue()
	}
	return out
}

// WindowBucketSizes returns each bucket's average share across the interval
// window [from, to) — used to check vortex's mid-run phase (Figure 2).
func (c *Characterization) WindowBucketSizes(from, to int) []float64 {
	out := make([]float64, c.M)
	for j := 0; j < c.M; j++ {
		out[j] = c.BucketOver[j].WindowMean(from, to)
	}
	return out
}
