package stackdist

import (
	"testing"
	"testing/quick"

	"snug/internal/addr"
)

func prof(t *testing.T, sets, depth int) (*Profiler, addr.Geometry) {
	t.Helper()
	g := addr.MustGeometry(64, sets)
	return MustProfiler(g, depth), g
}

func TestTouchDepths(t *testing.T) {
	p, g := prof(t, 4, 8)
	a := func(tag uint64) addr.Addr { return g.Rebuild(tag, 1) }
	if d := p.Touch(a(1)); d != 0 {
		t.Fatalf("first touch depth %d, want 0 (miss)", d)
	}
	if d := p.Touch(a(1)); d != 1 {
		t.Fatalf("immediate re-touch depth %d, want 1 (MRU)", d)
	}
	p.Touch(a(2))
	p.Touch(a(3))
	if d := p.Touch(a(1)); d != 3 {
		t.Fatalf("depth %d, want 3 (two blocks touched since)", d)
	}
}

func TestStackCapacity(t *testing.T) {
	p, g := prof(t, 2, 4)
	for tag := uint64(1); tag <= 5; tag++ {
		p.Touch(g.Rebuild(tag, 0))
	}
	// Tag 1 fell off the 4-deep stack.
	if d := p.Touch(g.Rebuild(1, 0)); d != 0 {
		t.Fatalf("evicted tag hit at depth %d", d)
	}
}

func TestHitCountMonotonicInA(t *testing.T) {
	// hit_count(S, I, A) is non-decreasing in A — the stack property the
	// paper's Formula (1) rests on. Exercise with a random stream.
	f := func(raw []uint8) bool {
		p, g := prof(t, 2, 16)
		for _, r := range raw {
			p.Touch(g.Rebuild(uint64(r%24), uint32(r)%2))
		}
		for s := uint32(0); s < 2; s++ {
			prev := int64(0)
			for a := 0; a <= 16; a++ {
				hc := p.HitCount(s, a)
				if hc < prev {
					return false
				}
				prev = hc
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRequiredFormula3(t *testing.T) {
	p, g := prof(t, 2, 16)
	// Cyclic MRU-biased touches over 5 distinct blocks: deepest hit depth
	// is 5, so block_required = 5.
	for round := 0; round < 6; round++ {
		for tag := uint64(1); tag <= 5; tag++ {
			p.Touch(g.Rebuild(tag, 0))
		}
	}
	if br := p.BlockRequired(0); br != 5 {
		t.Fatalf("block_required = %d, want 5", br)
	}
	// An untouched set requires 1 block by definition (§2.1.2).
	if br := p.BlockRequired(1); br != 1 {
		t.Fatalf("untouched set block_required = %d, want 1", br)
	}
}

func TestEndIntervalBuckets(t *testing.T) {
	p, g := prof(t, 4, 32)
	// Set 0: demand 3 (bucket 1~4); set 1: demand 20 (bucket 17~20);
	// sets 2,3 untouched (demand 1).
	for round := 0; round < 4; round++ {
		for tag := uint64(1); tag <= 3; tag++ {
			p.Touch(g.Rebuild(tag, 0))
		}
		for tag := uint64(1); tag <= 20; tag++ {
			p.Touch(g.Rebuild(tag, 1))
		}
	}
	r := p.EndInterval(1, 8, 16)
	if r.BucketSizes[0] != 0.75 { // sets 0, 2, 3
		t.Fatalf("bucket 1~4 share = %v, want 0.75", r.BucketSizes[0])
	}
	if r.BucketSizes[4] != 0.25 { // set 1 at depth 20
		t.Fatalf("bucket 17~20 share = %v, want 0.25", r.BucketSizes[4])
	}
	if r.TakerFraction != 0.25 {
		t.Fatalf("taker fraction = %v, want 0.25 (only set 1 exceeds 16 ways)", r.TakerFraction)
	}
	// Counters reset for the next interval; stacks persist.
	if p.HitCount(0, 32) != 0 {
		t.Fatal("hit counters not reset at interval end")
	}
	if d := p.Touch(g.Rebuild(1, 0)); d == 0 {
		t.Fatal("stack content lost at interval end")
	}
}

func TestCharacterizationAccumulation(t *testing.T) {
	c := NewCharacterization(32, 8)
	if c.Labels[0] != "1~4" || c.Labels[7] != ">=29" {
		t.Fatalf("labels %v", c.Labels)
	}
	r := IntervalResult{BucketSizes: []float64{1, 0, 0, 0, 0, 0, 0, 0}, MeanDemand: 2, TakerFraction: 0}
	c.Add(r)
	r2 := IntervalResult{BucketSizes: []float64{0, 1, 0, 0, 0, 0, 0, 0}, MeanDemand: 6, TakerFraction: 0}
	c.Add(r2)
	if c.Intervals() != 2 {
		t.Fatalf("Intervals = %d", c.Intervals())
	}
	mb := c.MeanBucketSizes()
	if mb[0] != 0.5 || mb[1] != 0.5 {
		t.Fatalf("mean bucket sizes %v", mb)
	}
	w := c.WindowBucketSizes(1, 2)
	if w[0] != 0 || w[1] != 1 {
		t.Fatalf("window bucket sizes %v", w)
	}
}

func TestProfilerRejectsBadThreshold(t *testing.T) {
	g := addr.MustGeometry(64, 4)
	if _, err := NewProfiler(g, 0); err == nil {
		t.Fatal("A_threshold=0 accepted")
	}
}
