// Package bench hosts the bodies of the repository's headline performance
// benchmarks, shared between the `go test -bench` harness (bench_test.go at
// the module root) and cmd/bench, which runs them standalone to write and
// check the machine-readable perf-trajectory baseline (BENCH_PR<n>.json).
// Keeping one body per benchmark guarantees the committed baseline and the
// -bench output measure exactly the same work.
package bench

import (
	"context"
	"testing"

	"snug/internal/addr"
	"snug/internal/bus"
	"snug/internal/cache"
	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/trace"
)

// Cycles keeps individual simulations short enough for -bench runs while
// spanning several SNUG epochs (the benchCycles of bench_test.go).
const Cycles = 1_200_000

// MixBench is the representative mixed workload (one benchmark per class)
// the simulator-speed and per-scheme benchmarks run.
var MixBench = []string{"ammp", "parser", "swim", "mesa"}

// SimulatorSpeed measures raw simulation throughput, in simulated cycles
// per wall-clock second, over recorded-and-replayed instruction streams —
// the sweep engine's steady-state shape, where every scheme after the first
// replays the combo's recording. Each iteration assembles a fresh system
// and replays the same recordings; the recording itself is captured before
// the timer starts.
func SimulatorSpeed(b *testing.B) {
	cfg := config.TestScale()
	streams, err := cmp.WorkloadStreams(cfg, MixBench, cmp.PhaseRefs(Cycles))
	if err != nil {
		b.Fatal(err)
	}
	recs := trace.RecordAll(streams)
	// One untimed replayed run extends the recordings to everything the
	// timed iterations will consume, so they measure pure replay.
	if _, err := cmp.RunStreams(cfg, "SNUG", trace.Replays(recs), Cycles); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.RunStreams(cfg, "SNUG", trace.Replays(recs), Cycles); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(Cycles)*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// SimulatorSpeedLive is SimulatorSpeed over live generators — each
// iteration synthesizes its instruction streams from scratch, the shape of
// a cell's first (recording) run. The gap between the two benchmarks is
// the stream-synthesis share the record/replay subsystem amortizes away.
func SimulatorSpeedLive(b *testing.B) {
	cfg := config.TestScale()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.RunWorkload(cfg, "SNUG", MixBench, Cycles); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(Cycles)*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// SchemeOnMix times one live simulation of the representative mix under
// scheme — the per-scheme cost of the simulator itself, generators
// included.
func SchemeOnMix(b *testing.B, scheme string) {
	var tput float64
	for i := 0; i < b.N; i++ {
		r, err := cmp.RunWorkload(config.TestScale(), scheme, MixBench, Cycles)
		if err != nil {
			b.Fatal(err)
		}
		tput = r.Throughput()
	}
	b.ReportMetric(tput, "throughput")
}

// SchemeSNUG is SchemeOnMix under the paper's controller, the variant the
// perf-trajectory baseline tracks.
func SchemeSNUG(b *testing.B) { SchemeOnMix(b, "SNUG") }

// SNUG16Core measures replayed simulation throughput of the 16-core
// scale-out SNUG system — the shape where the cooperative-caching
// broadcast cost used to grow as O(cores × ways) per miss and the CC
// occupancy index now answers non-holding peers in O(1). Tracked in the
// baseline next to the quad-core SimulatorSpeed so width-dependent
// regressions are caught separately.
func SNUG16Core(b *testing.B) { snug16Core(b, cmp.Engine{}) }

// SNUG16CoreParallel is SNUG16Core on the intra-run epoch engine: the same
// 16-core replayed simulation, stepped by one goroutine per simulated core.
// Results are byte-identical to SNUG16Core; only the wall-clock rate
// changes, and it scales with host parallelism — the benchmark is
// shape-sensitive, so cmd/bench gates it only against a baseline recorded
// at the same GOMAXPROCS.
func SNUG16CoreParallel(b *testing.B) { snug16Core(b, cmp.Engine{Intra: true}) }

// snug16Core is the shared body: both variants replay identical recordings
// through identical systems, so their sim-cycles/s rates are directly
// comparable — the gap is the epoch engine's speedup.
func snug16Core(b *testing.B, eng cmp.Engine) {
	cfg, err := config.TestScaleN(16)
	if err != nil {
		b.Fatal(err)
	}
	var mix []string
	for _, bench := range MixBench {
		for i := 0; i < 4; i++ {
			mix = append(mix, bench)
		}
	}
	streams, err := cmp.WorkloadStreams(cfg, mix, cmp.PhaseRefs(Cycles))
	if err != nil {
		b.Fatal(err)
	}
	recs := trace.RecordAll(streams)
	if _, err := cmp.RunStreamsEngine(cfg, "SNUG", trace.Replays(recs), Cycles, eng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.RunStreamsEngine(cfg, "SNUG", trace.Replays(recs), Cycles, eng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(Cycles)*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// CacheOps is the packed cache-array microbenchmark: a slice-shaped
// (64-set, 16-way) array driven through the hot-path op mix — lookups with
// occasional writes, miss fills, cooperative inserts, FindCC probes and
// invalidations — reporting raw ops/s. It pins the struct-of-arrays layout:
// a layout regression shows here before it is diluted by the full
// simulator.
func CacheOps(b *testing.B) {
	geom := addr.MustGeometry(64, 64)
	c := cache.MustNew(geom, 16)
	rng := uint64(0x5eed)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := next()
		a := geom.Rebuild(r%4096, uint32(r>>16)%64)
		switch i & 7 {
		case 0, 1, 2, 3, 4: // the dominant op: lookup, filling on a miss
			if !c.Lookup(a, i&16 == 0) {
				c.Insert(a, cache.Block{Dirty: i&32 == 0, Owner: int8(i & 3)})
			}
		case 5: // cooperative fill at an explicit (possibly flipped) set
			c.InsertAt(uint32(r)%64, cache.Block{Tag: r % 4096, CC: true, F: r&1 != 0})
		case 6: // peer-side retrieval probe
			c.FindCC(uint32(r)%64, r%4096, r&1 != 0)
		default:
			c.Invalidate(a)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BusContention is the calendar-placement microbenchmark behind the
// binary-search insertion in bus.place: current-time snoops racing
// far-future data phases and opportunistic write-back drains, reporting
// raw ops/s.
func BusContention(b *testing.B) {
	bu := bus.MustNew(16, 4, 1, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i) * 3
		skew := now - int64(i%7)*13
		bu.Acquire(skew, bus.KindSnoop)
		if i%2 == 0 {
			bu.Acquire(skew+300, bus.KindData)
		} else {
			bu.Acquire(skew, bus.KindData)
		}
		if i%4 == 0 {
			bu.TryAcquire(now, bus.KindWriteback)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// FigureMetric runs the full Table 8 evaluation once per iteration (all
// classes, all schemes, through the sweep engine with record/replay on)
// and reports each scheme's cross-class average for the chosen metric.
func FigureMetric(b *testing.B, metric metrics.MetricKind) {
	var avg map[string]float64
	for i := 0; i < b.N; i++ {
		// Parallelism 0 = GOMAXPROCS, via the sweep engine's default.
		ev, err := experiments.Evaluate(context.Background(), experiments.Options{
			Cfg: config.TestScale(), RunCycles: Cycles,
		})
		if err != nil {
			b.Fatal(err)
		}
		cs, err := ev.Figure(metric)
		if err != nil {
			b.Fatal(err)
		}
		avg = map[string]float64{}
		last := len(cs.Classes) - 1 // the AVG row
		for _, s := range experiments.FigureSchemes {
			avg[s] = cs.Values[s][last]
		}
	}
	for _, s := range experiments.FigureSchemes {
		b.ReportMetric(avg[s], s+"_avg")
	}
}

// Figure9Throughput is FigureMetric on normalized throughput, the figure
// the perf-trajectory baseline tracks.
func Figure9Throughput(b *testing.B) { FigureMetric(b, metrics.MetricThroughput) }

// ByName maps the exported benchmark names to their bodies, in the order
// cmd/bench runs and reports them. ShapeSensitive marks benchmarks whose
// rate scales with host parallelism (GOMAXPROCS): cmd/bench -check gates
// them only when the baseline was recorded at the host's GOMAXPROCS, since
// comparing a 2-thread run against an 8-thread baseline measures the
// runner, not the code.
//
// GateAllocs marks benchmarks whose allocs/op cmd/bench -check gates
// against the baseline (lower is better): allocation counts are stable
// across runs, so a regression there is code, not runner noise.
// Figure9Throughput carries the mark because the full-evaluation path's
// allocation behaviour (trace chunk pooling, stream-cache recycling) is a
// tracked optimization target.
var ByName = []struct {
	Name           string
	Fn             func(*testing.B)
	ShapeSensitive bool
	GateAllocs     bool
}{
	{Name: "SimulatorSpeed", Fn: SimulatorSpeed},
	{Name: "SimulatorSpeedLive", Fn: SimulatorSpeedLive},
	{Name: "SNUG16Core", Fn: SNUG16Core},
	{Name: "SNUG16CoreParallel", Fn: SNUG16CoreParallel, ShapeSensitive: true},
	{Name: "CacheOps", Fn: CacheOps},
	{Name: "BusContention", Fn: BusContention},
	{Name: "SchemeSNUG", Fn: SchemeSNUG},
	{Name: "Figure9Throughput", Fn: Figure9Throughput, GateAllocs: true},
}
