// Package metrics computes the paper's Table 5 evaluation metrics from
// simulation results: throughput (sum of IPCs), average weighted speedup
// (mean of per-application relative IPCs against the L2P baseline) and fair
// speedup (harmonic mean of relative IPCs), plus per-class geometric-mean
// aggregation.
package metrics

import (
	"fmt"

	"snug/internal/cmp"
	"snug/internal/stats"
)

// Comparison is one scheme's Table 5 metrics against the L2P baseline for
// the same workload combination.
type Comparison struct {
	Scheme string

	Throughput     float64 // Σ IPC_i(scheme)
	BaseThroughput float64 // Σ IPC_i(baseline)
	ThroughputNorm float64 // Throughput / BaseThroughput (Figure 9's y-axis)

	AWS float64 // (1/N) Σ IPC_i(scheme)/IPC_i(baseline)   (Figure 10)
	FS  float64 // N / Σ IPC_i(baseline)/IPC_i(scheme)     (Figure 11)
}

// Compare computes the Table 5 metrics of result against baseline. The two
// runs must cover the same workload combination (same core count and
// benchmark order).
func Compare(baseline, result cmp.RunResult) (Comparison, error) {
	if len(baseline.Cores) != len(result.Cores) {
		return Comparison{}, fmt.Errorf("metrics: core count mismatch %d vs %d", len(baseline.Cores), len(result.Cores))
	}
	n := len(baseline.Cores)
	c := Comparison{Scheme: result.Scheme}
	sumRel := 0.0
	sumInv := 0.0
	for i := 0; i < n; i++ {
		if baseline.Cores[i].Benchmark != result.Cores[i].Benchmark {
			return Comparison{}, fmt.Errorf("metrics: core %d runs %q under baseline but %q under %s",
				i, baseline.Cores[i].Benchmark, result.Cores[i].Benchmark, result.Scheme)
		}
		b, s := baseline.Cores[i].IPC, result.Cores[i].IPC
		if b <= 0 || s <= 0 {
			return Comparison{}, fmt.Errorf("metrics: non-positive IPC (base=%.4f scheme=%.4f) on core %d", b, s, i)
		}
		c.BaseThroughput += b
		c.Throughput += s
		sumRel += s / b
		sumInv += b / s
	}
	c.ThroughputNorm = c.Throughput / c.BaseThroughput
	c.AWS = sumRel / float64(n)
	c.FS = float64(n) / sumInv
	return c, nil
}

// MetricKind selects one of the three Table 5 metrics.
type MetricKind uint8

const (
	// MetricThroughput is normalized throughput (Figure 9).
	MetricThroughput MetricKind = iota
	// MetricAWS is average weighted speedup (Figure 10).
	MetricAWS
	// MetricFS is fair speedup (Figure 11).
	MetricFS
)

// String names the metric.
func (m MetricKind) String() string {
	switch m {
	case MetricThroughput:
		return "throughput"
	case MetricAWS:
		return "average-weighted-speedup"
	case MetricFS:
		return "fair-speedup"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Value extracts the selected metric from a comparison. Like String, it is
// exhaustive over the defined kinds: an unknown kind panics instead of
// silently reading as fair speedup.
func (m MetricKind) Value(c Comparison) float64 {
	switch m {
	case MetricThroughput:
		return c.ThroughputNorm
	case MetricAWS:
		return c.AWS
	case MetricFS:
		return c.FS
	default:
		panic(fmt.Sprintf("metrics: unknown MetricKind %d", int(m)))
	}
}

// ClassMean aggregates one metric over the combos of a class with the
// geometric mean, as the paper's §5 reports.
func ClassMean(m MetricKind, comparisons []Comparison) float64 {
	vals := make([]float64, len(comparisons))
	for i, c := range comparisons {
		vals[i] = m.Value(c)
	}
	return stats.GeoMean(vals)
}
