package metrics

import (
	"math"
	"testing"

	"snug/internal/cmp"
)

func mkResult(scheme string, ipcs ...float64) cmp.RunResult {
	r := cmp.RunResult{Scheme: scheme}
	for i, ipc := range ipcs {
		r.Cores = append(r.Cores, cmp.CoreResult{
			Benchmark: []string{"a", "b", "c", "d"}[i], IPC: ipc,
		})
	}
	return r
}

func TestCompareTable5Metrics(t *testing.T) {
	base := mkResult("L2P", 1.0, 2.0, 0.5, 1.0)
	res := mkResult("SNUG", 1.2, 2.0, 0.6, 0.9)
	c, err := Compare(base, res)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput = ΣIPC.
	if math.Abs(c.Throughput-4.7) > 1e-12 || math.Abs(c.BaseThroughput-4.5) > 1e-12 {
		t.Fatalf("throughputs %v / %v", c.Throughput, c.BaseThroughput)
	}
	if math.Abs(c.ThroughputNorm-4.7/4.5) > 1e-12 {
		t.Fatalf("norm %v", c.ThroughputNorm)
	}
	// AWS = mean of relative IPCs = (1.2 + 1.0 + 1.2 + 0.9)/4.
	if math.Abs(c.AWS-(1.2+1.0+1.2+0.9)/4) > 1e-12 {
		t.Fatalf("AWS %v", c.AWS)
	}
	// FS = 4 / Σ(base/scheme).
	wantFS := 4 / (1/1.2 + 1.0 + 1/1.2 + 1/0.9)
	if math.Abs(c.FS-wantFS) > 1e-12 {
		t.Fatalf("FS %v, want %v", c.FS, wantFS)
	}
}

func TestCompareIdentityIsOne(t *testing.T) {
	base := mkResult("L2P", 0.8, 1.1, 0.4, 2.0)
	c, err := Compare(base, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{c.ThroughputNorm, c.AWS, c.FS} {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("self-comparison metric %v != 1", v)
		}
	}
}

func TestFSPenalizesUnfairness(t *testing.T) {
	base := mkResult("L2P", 1, 1, 1, 1)
	// Same throughput, unfairly distributed: FS < AWS.
	skewed := mkResult("X", 1.9, 0.1, 1, 1)
	c, _ := Compare(base, skewed)
	if c.FS >= c.AWS {
		t.Fatalf("FS %v >= AWS %v for an unfair outcome", c.FS, c.AWS)
	}
}

func TestCompareErrors(t *testing.T) {
	base := mkResult("L2P", 1, 1, 1, 1)
	if _, err := Compare(base, mkResult("X", 1, 1)); err == nil {
		t.Error("core-count mismatch accepted")
	}
	bad := mkResult("X", 1, 0, 1, 1)
	if _, err := Compare(base, bad); err == nil {
		t.Error("zero IPC accepted")
	}
	swapped := mkResult("X", 1, 1, 1, 1)
	swapped.Cores[0].Benchmark = "zzz"
	if _, err := Compare(base, swapped); err == nil {
		t.Error("benchmark mismatch accepted")
	}
}

func TestMetricKindSelection(t *testing.T) {
	c := Comparison{ThroughputNorm: 1.1, AWS: 1.2, FS: 1.3}
	if MetricThroughput.Value(c) != 1.1 || MetricAWS.Value(c) != 1.2 || MetricFS.Value(c) != 1.3 {
		t.Fatal("metric selection wrong")
	}
	if MetricThroughput.String() != "throughput" {
		t.Fatal("metric name wrong")
	}
}

func TestClassMeanIsGeometric(t *testing.T) {
	comps := []Comparison{{ThroughputNorm: 2}, {ThroughputNorm: 8}}
	if got := ClassMean(MetricThroughput, comps); math.Abs(got-4) > 1e-12 {
		t.Fatalf("ClassMean = %v, want geometric mean 4", got)
	}
}

// TestMetricKindExhaustive: Value must be exhaustive over the defined
// kinds — an unknown kind panics (mirroring String's fallback name) rather
// than silently reading as fair speedup.
func TestMetricKindExhaustive(t *testing.T) {
	c := Comparison{ThroughputNorm: 1.1, AWS: 1.2, FS: 1.3}
	if got := MetricFS.Value(c); got != 1.3 {
		t.Errorf("MetricFS.Value = %v, want the FS field", got)
	}
	unknown := MetricKind(99)
	if got := unknown.String(); got != "metric(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown MetricKind.Value did not panic")
		}
	}()
	unknown.Value(c)
}
