package cmp_test

import (
	"math/rand"
	"testing"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/cpubudget"
	"snug/internal/isa"
	"snug/internal/schemes"
	"snug/internal/trace"
)

// forceBudget raises the process CPU budget for one test so the epoch
// engine gets real worker-goroutine grants even on a single-CPU host
// (where the GOMAXPROCS default budget is 1 and every epoch run would
// silently take the serial fallback, testing nothing). Tests in this
// package never run in parallel, so the grant shapes are deterministic.
func forceBudget(t *testing.T, n int) {
	t.Helper()
	prev := cpubudget.SetLimit(n)
	t.Cleanup(func() { cpubudget.SetLimit(prev) })
}

// TestGoldenSNUGDigestEpoch pins the epoch engine to the exact digest of
// TestGoldenSNUGDigest: the intra-run parallel engine must reproduce the
// serial golden run bit for bit, at any host parallelism. CI runs this
// under -race at GOMAXPROCS 2 and 8.
func TestGoldenSNUGDigestEpoch(t *testing.T) {
	const want = "fb8ac38b40b7bdf7"
	forceBudget(t, 32) // full grant: one goroutine per simulated core
	cfg := config.TestScale()
	res, err := cmp.RunWorkloadEngine(cfg, "SNUG", goldenBench, goldenCycles,
		cmp.Engine{Intra: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenDigest(res); got != want {
		t.Fatalf("epoch-engine golden SNUG digest = %s, want %s\n"+
			"The epoch engine diverged from the serial engine. This is an engine bug,\n"+
			"never a digest to update: fix the coordinator's replay order instead.",
			got, want)
	}
}

// epochWindows is the run-ahead sweep of the differential suite: the
// degenerate one-cycle window (floors to one quantum), exactly one quantum,
// a non-multiple of the quantum (rounds down), a deep window, 0 (the
// adaptive window), and a negative value (the fixed default). Results must
// be identical across all of them.
var epochWindows = []int64{1, 100, 250, 800, 0, -1}

// TestEpochSerialDifferential runs randomized configurations — core count,
// seed, benchmark mix, run length drawn from a fixed-seed generator — under
// every scheme family, and requires the epoch engine's RunResult digest to
// be byte-identical to the serial engine's at every epoch window. This is
// the test that fails if the coordinator's drain order ever deviates from
// the serial engine's core-major arbitration.
func TestEpochSerialDifferential(t *testing.T) {
	forceBudget(t, 16)                           // full grant at every core count in the sweep
	rng := rand.New(rand.NewSource(0x5eed_e90c)) // fixed: the sweep must be reproducible
	pool := []string{"ammp", "parser", "swim", "mesa", "mcf", "vortex"}
	coreChoices := []int{2, 4, 8}
	for _, scheme := range []string{"L2P", "L2S", "CC(75%)", "DSR", "SNUG"} {
		cores := coreChoices[rng.Intn(len(coreChoices))]
		cfg, err := config.TestScaleN(cores)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = 0x5eed_0000 + uint64(rng.Uint32())
		cycles := 100_000 + rng.Int63n(3)*25_000
		benchmarks := make([]string, cores)
		for i := range benchmarks {
			benchmarks[i] = pool[rng.Intn(len(pool))]
		}

		serial, err := cmp.RunWorkload(cfg, scheme, benchmarks, cycles)
		if err != nil {
			t.Fatal(err)
		}
		want := goldenDigest(serial)
		for _, window := range epochWindows {
			par, err := cmp.RunWorkloadEngine(cfg, scheme, benchmarks, cycles,
				cmp.Engine{Intra: true, EpochCycles: window})
			if err != nil {
				t.Fatal(err)
			}
			if got := goldenDigest(par); got != want {
				t.Errorf("%s cores=%d seed=%#x cycles=%d epoch=%d: digest %s != serial %s",
					scheme, cores, cfg.Seed, cycles, window, got, want)
			}
		}

		// Grant shapes: the CPU budget maps the cores onto fewer worker
		// goroutines (contiguous groups) when the pool is short. Every
		// group count — including partial grants that fold several cores
		// onto one goroutine — must reproduce the serial digest too.
		for _, budget := range []int{2, 3, cores} {
			cpubudget.SetLimit(budget)
			par, err := cmp.RunWorkloadEngine(cfg, scheme, benchmarks, cycles,
				cmp.Engine{Intra: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := goldenDigest(par); got != want {
				t.Errorf("%s cores=%d seed=%#x cycles=%d budget=%d: digest %s != serial %s",
					scheme, cores, cfg.Seed, cycles, budget, got, want)
			}
		}
		cpubudget.SetLimit(16)
	}
}

// TestEpochRingWraparound pins the ring-index arithmetic across many full
// wraps of both SPSC rings: a one-quantum window over a multi-thousand-
// quantum run pushes far more boundary tokens than the message ring holds
// (capacity ≲ 128 slots at TestScale's 64-entry LSQ), and the miss replies
// likewise lap the reply ring repeatedly, so any masked-cursor bug — wrong
// mask, missed publication, head/tail confusion after uint wrap of the
// buffer — breaks the serial digest.
func TestEpochRingWraparound(t *testing.T) {
	forceBudget(t, 16)
	cfg := config.TestScale()
	const cycles = 400_000 // 4000 quanta per core
	serial, err := cmp.RunWorkload(cfg, "SNUG", goldenBench, cycles)
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int64{1, 0} { // lock-step and adaptive
		par, err := cmp.RunWorkloadEngine(cfg, "SNUG", goldenBench, cycles,
			cmp.Engine{Intra: true, EpochCycles: window})
		if err != nil {
			t.Fatal(err)
		}
		if sg, pg := goldenDigest(serial), goldenDigest(par); sg != pg {
			t.Errorf("epoch=%d: wraparound digest %s != serial %s", window, pg, sg)
		}
	}
}

// TestEpochReplayDifferential drives the epoch engine over recorded-and-
// replayed streams: replay cursors are extended lazily under concurrent
// core goroutines, so this exercises the recording's thread safety as well
// as the engine (CI runs it under -race).
func TestEpochReplayDifferential(t *testing.T) {
	forceBudget(t, 32)
	cfg := config.TestScale()
	const cycles = 150_000
	streams, err := cmp.WorkloadStreams(cfg, goldenBench, cmp.PhaseRefs(cycles))
	if err != nil {
		t.Fatal(err)
	}
	recs := trace.RecordAll(streams)
	serial, err := cmp.RunStreams(cfg, "SNUG", trace.Replays(recs), cycles)
	if err != nil {
		t.Fatal(err)
	}
	par, err := cmp.RunStreamsEngine(cfg, "SNUG", trace.Replays(recs), cycles,
		cmp.Engine{Intra: true})
	if err != nil {
		t.Fatal(err)
	}
	if sg, pg := goldenDigest(serial), goldenDigest(par); sg != pg {
		t.Errorf("epoch replay digest %s != serial replay digest %s", pg, sg)
	}
}

// noEpochController strips the EpochSafe capability from a real controller:
// embedding the interface promotes only Controller's methods, so the
// wrapper does not implement schemes.EpochSafe.
type noEpochController struct{ schemes.Controller }

func init() {
	schemes.Register(schemes.Family{
		Name: "NOEPOCH",
		New: func(_ schemes.Spec, cfg config.System) (schemes.Controller, error) {
			inner, err := schemes.Build("L2P", cfg)
			if err != nil {
				return nil, err
			}
			return &noEpochController{inner}, nil
		},
	})
}

// TestEpochFallsBackWithoutCapability checks the safety valve: a controller
// that does not declare epoch safety is driven by the serial engine even
// when the caller asks for the intra-run engine, and the result is the one
// the serial engine produces.
func TestEpochFallsBackWithoutCapability(t *testing.T) {
	cfg := config.TestScale()
	const cycles = 60_000
	build := func() []isa.Stream {
		streams, err := cmp.WorkloadStreams(cfg, goldenBench, cmp.PhaseRefs(cycles))
		if err != nil {
			t.Fatal(err)
		}
		return streams
	}
	sys, err := cmp.NewSystem(cfg, "NOEPOCH", build())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EpochCapable(sys.Controller()) {
		t.Fatal("NOEPOCH wrapper unexpectedly declares epoch safety")
	}
	intra := sys.RunEngine(cycles, cmp.Engine{Intra: true})

	ref, err := cmp.RunStreams(cfg, "NOEPOCH", build(), cycles)
	if err != nil {
		t.Fatal(err)
	}
	if ig, rg := goldenDigest(intra), goldenDigest(ref); ig != rg {
		t.Errorf("fallback digest %s != serial digest %s", ig, rg)
	}
}
