package cmp

import (
	"testing"

	"snug/internal/config"
	"snug/internal/schemes"
)

// TestAllSchemesRun drives every scheme over a mixed workload and checks
// basic sanity: instructions retire, IPC stays within the machine's width,
// and accounting is conserved.
func TestAllSchemesRun(t *testing.T) {
	cfg := config.TestScale()
	bench := []string{"ammp", "parser", "swim", "mesa"}
	for _, scheme := range []string{"L2P", "L2S", "CC", "DSR", "SNUG"} {
		r, err := RunWorkload(cfg, scheme, bench, 500_000)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if r.Cycles != 500_000 {
			t.Errorf("%s: cycles %d", scheme, r.Cycles)
		}
		for i, c := range r.Cores {
			if c.Instructions == 0 {
				t.Errorf("%s core %d retired nothing", scheme, i)
			}
			if c.IPC <= 0 || c.IPC > float64(cfg.Core.IssueWidth) {
				t.Errorf("%s core %d IPC %.3f out of (0, %d]", scheme, i, c.IPC, cfg.Core.IssueWidth)
			}
			// L2-level accesses cannot exceed L1 misses.
			if got := r.Report.PerCore[i].Total(); got > c.L1Misses {
				t.Errorf("%s core %d: %d L2 accesses > %d L1 misses", scheme, i, got, c.L1Misses)
			}
		}
	}
}

// TestDeterminism verifies bit-identical results across runs with the same
// seed and diverging results with a different seed.
func TestDeterminism(t *testing.T) {
	cfg := config.TestScale()
	bench := []string{"ammp", "mcf", "gzip", "apsi"}
	r1, err := RunWorkload(cfg, "SNUG", bench, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunWorkload(cfg, "SNUG", bench, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Cores {
		if r1.Cores[i].Instructions != r2.Cores[i].Instructions {
			t.Fatalf("core %d: %d vs %d instructions across identical runs",
				i, r1.Cores[i].Instructions, r2.Cores[i].Instructions)
		}
	}
	if r1.Report.Spills != r2.Report.Spills || r1.Report.RetrievalHits != r2.Report.RetrievalHits {
		t.Fatal("scheme activity diverged across identical runs")
	}

	cfg.Seed++
	r3, err := RunWorkload(cfg, "SNUG", bench, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Cores {
		if r1.Cores[i].Instructions != r3.Cores[i].Instructions {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical instruction counts")
	}
}

// TestSNUGHelpsNonUniformMix is the paper's headline claim in miniature:
// on a mix of set-level non-uniform (class A) and light (class D)
// applications, SNUG must beat the private baseline, and the
// capacity-hungry applications must individually improve.
func TestSNUGHelpsNonUniformMix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	cfg := config.TestScale()
	bench := []string{"ammp", "parser", "swim", "mesa"}
	const cycles = 2_000_000
	base, err := RunWorkload(cfg, "L2P", bench, cycles)
	if err != nil {
		t.Fatal(err)
	}
	snug, err := RunWorkload(cfg, "SNUG", bench, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := snug.Throughput() / base.Throughput(); ratio <= 1.0 {
		t.Errorf("SNUG throughput ratio %.4f on a giver-rich mix, want > 1", ratio)
	}
	for i := 0; i < 2; i++ { // the class A cores
		if snug.Cores[i].IPC <= base.Cores[i].IPC {
			t.Errorf("%s IPC %.4f under SNUG <= %.4f under L2P",
				bench[i], snug.Cores[i].IPC, base.Cores[i].IPC)
		}
	}
	if snug.Report.Spills == 0 || snug.Report.RetrievalHits == 0 {
		t.Error("SNUG cooperated nothing on a cooperative-friendly mix")
	}
}

// TestStressTestNoSpills: on the all-taker C2 stress test, SNUG must
// identify that no capacity is spare and spill (almost) nothing, landing
// within noise of the baseline.
func TestStressTestNoSpills(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	cfg := config.TestScale()
	bench := []string{"mcf", "mcf", "mcf", "mcf"}
	const cycles = 2_000_000
	base, err := RunWorkload(cfg, "L2P", bench, cycles)
	if err != nil {
		t.Fatal(err)
	}
	snug, err := RunWorkload(cfg, "SNUG", bench, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if float64(snug.Report.Spills) > 0.02*float64(snug.Report.Retrievals) {
		t.Errorf("SNUG spilled %d times among all-taker applications", snug.Report.Spills)
	}
	if ratio := snug.Throughput() / base.Throughput(); ratio < 0.97 || ratio > 1.03 {
		t.Errorf("C2 stress ratio %.4f, want ~1.0", ratio)
	}
}

// TestControllerFactory checks name resolution.
func TestControllerFactory(t *testing.T) {
	cfg := config.TestScale()
	for _, name := range []string{"L2P", "L2S", "CC", "DSR", "SNUG"} {
		c, err := NewController(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var _ schemes.Controller = c
	}
	if _, err := NewController("victim-cache", cfg); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestWorkloadStreams checks stream construction errors.
func TestWorkloadStreams(t *testing.T) {
	cfg := config.TestScale()
	if _, err := WorkloadStreams(cfg, []string{"ammp"}, 1000); err == nil {
		t.Error("wrong stream count accepted")
	}
	if _, err := WorkloadStreams(cfg, []string{"ammp", "x", "y", "z"}, 1000); err == nil {
		t.Error("unknown benchmark accepted")
	}
	streams, err := WorkloadStreams(cfg, []string{"ammp", "ammp", "gzip", "mesa"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 4 {
		t.Fatalf("%d streams", len(streams))
	}
}

// TestRunResumable: System.Run accumulates across calls.
func TestRunResumable(t *testing.T) {
	cfg := config.TestScale()
	streams, err := WorkloadStreams(cfg, []string{"gzip", "gzip", "gzip", "gzip"}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, "L2P", streams)
	if err != nil {
		t.Fatal(err)
	}
	r1 := sys.Run(100_000)
	r2 := sys.Run(100_000)
	if r2.Cycles != 200_000 {
		t.Fatalf("cumulative cycles %d", r2.Cycles)
	}
	if r2.Cores[0].Instructions <= r1.Cores[0].Instructions {
		t.Fatal("second quantum retired nothing")
	}
}
