// The epoch/barrier intra-run execution engine: core goroutines plus a
// coordinator, producing results byte-identical to the serial engine at
// every host parallelism.
//
// # Why this parallelizes
//
// A core's timing model and its private L1 are pure per-core state: the
// instruction stream is a fixed sequence (generators take no timing
// feedback), so everything a core computes between controller calls
// depends only on the completion times the controller returned for its own
// earlier misses — never on *when*, in wall-clock terms, other cores were
// simulated. All cross-core state (L2 slices, the snoop bus, write
// buffers, DRAM, scheme metadata) is mutated exclusively through
// schemes.Controller calls. The engine therefore lets every core run
// freely through its L1-hit stretches on a worker goroutine and funnels
// the controller calls — the only order-sensitive work — through a single
// coordinator goroutine that replays them in exactly the serial engine's
// order.
//
// # The park/drain protocol (ring coordinator)
//
// The serial engine's arbitration order within one quantum is core-major:
// all of core 0's controller calls, then all of core 1's, ..., then
// Controller.Tick at the boundary. The epoch engine reproduces it over a
// pair of cache-line-padded single-producer/single-consumer ring buffers
// per core (PR 7 used a channel pair; the rings make the common case
// wait-free):
//
//   - a core goroutine that misses in its L1 *parks*: it writes an access
//     message (timestamp, address, write flag, and the L1 victim
//     writeback, if any) into its message ring. A store's completion time
//     feeds nothing but its LSQ slot (cpu.DeferredDone), so a store park
//     is a plain ring write — no publication, no blocking — and the core
//     runs straight ahead. A load park publishes the ring (one atomic
//     store, carrying every store park batched behind it) and consumes its
//     reply, spinning briefly and then parking on a wake channel if the
//     coordinator has not produced it yet;
//   - at each quantum boundary it pushes a boundary token, publishes, and
//     runs into the next quantum as long as it is within the epoch window;
//   - the coordinator drains core 0's ring up to its boundary token,
//     calling Controller.Access / WritebackL1 with the parked arguments —
//     the same calls, same arguments, same order as the serial loop — and
//     writes completion times into core 0's reply ring, publishing the
//     whole batch in one atomic store at the next load reply, boundary, or
//     before blocking; then core 1's, and so on, then calls Tick and
//     starts the next quantum.
//
// Each parked access carries at most one L1 writeback because the L1
// insert that evicts the victim happens at the same miss that parks; the
// coordinator applies Access before WritebackL1, matching corePath.access.
//
// # Deferred store replies
//
// The serial core model consumes a store's completion time only when the
// LSQ fills (cpu.Core.reserveLSQ): commit posts through the store buffer
// regardless. The epoch worker exploits that: store misses return
// cpu.DeferredDone and the worker keeps running through the following
// L1-hit stretch — and through further store misses — without a
// handshake. The replies are consumed lazily, in park order, when the
// core's LSQ actually reads them (cpu.DrainFunc) or when a later load
// reply needs to get past them. Byte-identity is untouched: the
// controller-call order is unchanged, and the deferred values reach the
// LSQ before any pass reads LSQ values, so every timing decision sees the
// exact numbers the serial engine had in hand (see DESIGN.md §"Intra-run
// parallelism" for the extended induction).
//
// # The window
//
// The epoch window bounds how many quanta a core may run ahead of the
// coordinator. It bounds memory and skew only — results are identical for
// every window ≥ 1 quantum, which the differential tests pin down to the
// degenerate Engine{EpochCycles: 1} case. Engine.EpochCycles == 0 selects
// the adaptive window: the coordinator widens the window while the park
// rate is low (misses rarely synchronize, so deeper run-ahead is free)
// and narrows it when parks flood the rings, adjusting only *when*
// workers block at boundaries — drain order, and therefore every result
// byte, is unchanged by construction.
//
// # CPU budget and worker groups
//
// The engine draws its goroutines from the process-wide
// internal/cpubudget token pool, so intra-run parallelism composes with
// sweep-level parallelism instead of multiplying it. It asks for one
// token per core, maps the cores onto as many worker goroutines as it was
// granted (each group steps its cores in index order, exactly the serial
// engine's schedule within the group), and falls back to the serial
// engine when fewer than two tokens are free — results are identical in
// every case, so the budget trades wall-clock shape only.
//
// # Why results are byte-identical
//
// By induction over the global controller-call sequence: the k-th call the
// coordinator issues has the same arguments as the serial engine's k-th
// call, because the issuing core computed them from its stream prefix and
// the replies to its own earlier calls — both equal by induction (deferred
// store replies are consumed before any LSQ read, so LSQ-driven stalls use
// the same values) — and the controller, serving the same calls in the
// same order from the same initial state, returns the same reply.
// Core-local state (cpu.Core, L1, stream cursors) evolves identically for
// the same reason. The golden digest and the randomized differential suite
// verify this end to end under -race.
package cmp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"snug/internal/addr"
	"snug/internal/cache"
	"snug/internal/cpu"
	"snug/internal/cpubudget"
	"snug/internal/isa"
)

// coreMsg is one parked unit of coordinator work from a core goroutine:
// either a memory access (with an optional piggybacked L1 writeback) or a
// quantum-boundary token.
type coreMsg struct {
	accessAt int64     // Controller.Access timestamp (miss time + L1 latency)
	wbAt     int64     // Controller.WritebackL1 timestamp (the raw access time)
	a        addr.Addr // private-rebased miss address
	wb       addr.Addr // L1 victim writeback address (valid when hasWB)
	write    bool
	hasWB    bool
	boundary bool // quantum-boundary token: no controller work, ends the core's drain
}

// msgRing is the worker→coordinator SPSC queue of parked work. The worker
// writes slots and publishes batches by storing tail; the coordinator
// consumes slots and frees them by storing head. The padding keeps the two
// cursors (and the worker-hot buf/mask words) on separate cache lines so
// publication never false-shares with consumption.
type msgRing struct {
	buf  []coreMsg
	mask uint64
	_    [32]byte
	tail atomic.Uint64 // published messages; worker-owned stores
	_    [56]byte
	head atomic.Uint64 // consumed messages; coordinator-owned stores
	_    [56]byte
}

// replyRing is the coordinator→worker SPSC queue of completion times,
// same discipline with the roles swapped.
type replyRing struct {
	buf  []int64
	mask uint64
	_    [32]byte
	tail atomic.Uint64 // published replies; coordinator-owned stores
	_    [56]byte
	head atomic.Uint64 // consumed replies; worker-owned stores
	_    [56]byte
}

// epochWorker is one core's side of the protocol. It owns the core's
// private state (cpu.Core, L1, stream) for the duration of a run. Fields
// are segregated by owning goroutine; only the rings, the sleep flag and
// quantaDone cross between them, all via atomics.
type epochWorker struct {
	core   *cpu.Core
	stream isa.Stream
	path   *corePath
	mem    cpu.MemFunc
	eng    *epochEngine

	msgs    msgRing
	replies replyRing

	// Worker-goroutine-owned bookkeeping.
	msgTail    uint64  // messages written (≥ the published msgs.tail)
	msgPub     uint64  // published prefix, mirrors msgs.tail to skip dead stores
	repHead    uint64  // replies consumed, mirrors replies.head
	owed       int     // deferred-store replies not yet consumed from the ring
	stash      []int64 // consumed-but-undrained store completion times (FIFO)
	stashMask  uint64
	stashH     uint64
	stashT     uint64
	boundaries int64 // quanta this worker has finished

	// Coordinator-goroutine-owned bookkeeping.
	coordHead uint64 // messages consumed, mirrors msgs.head
	repTail   uint64 // replies written (≥ the published replies.tail)
	repPub    uint64 // published prefix, mirrors replies.tail

	// Park/wake for the worker side: the worker publishes sleeping=1
	// before blocking and rechecks its condition; the coordinator clears
	// the flag and signals after every action that could unblock it.
	sleeping atomic.Uint32
	wake     chan struct{}

	// quantaDone counts this worker's boundary tokens the coordinator has
	// consumed; the worker reads it for the run-ahead window check.
	quantaDone atomic.Int64
}

// epochGroup is the set of cores one goroutine steps. Within a group the
// cores advance in index order quantum by quantum — the serial engine's
// schedule — so any grant from one goroutine for all cores (the budget
// floor) up to one goroutine per core (the full-parallel shape) drains in
// the identical order.
type epochGroup struct {
	workers []*epochWorker
}

// epochEngine is the shared run state: the worker set, the adaptive
// window, and the coordinator's park/wake pair.
type epochEngine struct {
	workers []*epochWorker
	depth   atomic.Int64 // current run-ahead window, in quanta
	spin    int          // consume-side spin budget before parking

	sleeping atomic.Uint32 // coordinator parked; workers clear and signal
	wake     chan struct{}
}

const (
	// defaultEpochQuanta is the fixed window for Engine.EpochCycles < 0 and
	// the adaptive window's starting point: deep enough that a miss-free
	// core keeps its goroutine busy while the coordinator drains other
	// cores, shallow enough that parked-work queues stay a few cache lines
	// per core.
	defaultEpochQuanta = 8
	// maxAutoQuanta bounds the adaptive window; maxFixedQuanta bounds an
	// explicit Engine.EpochCycles so ring memory stays proportional to the
	// window a core can actually exploit. Both bound memory and skew only,
	// never results.
	maxAutoQuanta  = 64
	maxFixedQuanta = 1024
	// adaptPeriod is how many quanta the adaptive window observes between
	// adjustments; its inputs (park counts) are deterministic, so the
	// window trajectory is too.
	adaptPeriod = 16
	// spinYieldEvery interleaves runtime.Gosched into consume-side spins so
	// a spinning goroutine cannot starve the one it waits on.
	spinYieldEvery = 64
)

// spinIters picks the consume-side spin budget: with real parallelism a
// short spin beats a park/unpark round trip; at GOMAXPROCS=1 spinning can
// only delay the goroutine that would produce the awaited value, so park
// immediately (the channel handoff is the scheduler's cheapest switch).
func spinIters() int {
	if runtime.GOMAXPROCS(0) > 1 {
		return 256
	}
	return 0
}

// nextPow2 returns the smallest power of two ≥ n (rings index with masks).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// signal wakes the goroutine parked behind the sleeping/wake pair, if any.
// The CAS guarantees at most one token per park; the non-blocking send
// makes a racing stale token harmless (the parked side always rechecks its
// condition after waking).
func signal(sleeping *atomic.Uint32, wake chan struct{}) {
	if sleeping.Load() != 0 && sleeping.CompareAndSwap(1, 0) {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
}

// access is the epoch engine's cpu.MemFunc: the core-goroutine half of the
// park/drain protocol. L1 hits complete locally; misses perform the L1
// insert (private state, invisible to the controller) to discover the
// victim and park the access+writeback at the coordinator. Store misses
// run ahead with a deferred reply; load misses publish the batch and block
// for their completion time. It must never touch the controller or
// anything behind it — that is the coordinator's, and snuglint's
// coordinator analyzer checks it stays that way.
//
//snug:coreside
//snug:hotpath
func (w *epochWorker) access(now int64, a addr.Addr, write bool) int64 {
	p := w.path
	pa := a | p.base
	if p.l1.Lookup(pa, write) {
		return now + p.l1Lat
	}
	m := coreMsg{accessAt: now + p.l1Lat, wbAt: now, a: pa, write: write}
	// The serial engine calls Controller.Access before the L1 insert, but
	// the two commute: the controller never reads L1 state and the insert
	// never reads controller state, so discovering the victim first lets
	// one park carry both calls.
	v := p.l1.Insert(pa, cache.Block{Dirty: write, Owner: int8(p.core)})
	if v.Valid && v.Dirty {
		m.hasWB = true
		m.wb = p.geom.Rebuild(v.Tag, p.geom.Index(pa))
	}
	if write {
		// A store's completion time feeds only its LSQ slot: park without
		// publishing and run ahead. The reply is consumed lazily, in park
		// order, by drainDeferred or by a later load getting past it.
		w.pushMsg(&m, false)
		w.owed++
		return cpu.DeferredDone
	}
	// A load's completion time is needed now, and its reply sits behind
	// every still-unconsumed store reply in the FIFO: stash those for the
	// LSQ drain, then take ours.
	w.pushMsg(&m, true)
	for w.owed > 0 {
		w.stashPush(w.popReply()) //snug:allow gcbounds inlined stash slot index is masked to the power-of-two capacity
		w.owed--
	}
	return w.popReply()
}

// pushMsg appends one park to the message ring, blocking (rare: the ring
// out-sizes the window plus the LSQ) when the coordinator has fallen a
// full ring behind. publish=false leaves the message unpublished so a
// store burst rides out on the next load, boundary, or pre-block flush in
// a single atomic store.
//
//snug:coreside
//snug:hotpath
func (w *epochWorker) pushMsg(m *coreMsg, publish bool) {
	r := &w.msgs
	if w.msgTail-r.head.Load() == uint64(len(r.buf)) {
		w.flushMsgs()
		w.awaitMsgSpace()
	}
	r.buf[w.msgTail&r.mask] = *m //snug:allow gcbounds ring slot index is masked to the power-of-two capacity
	w.msgTail++
	if publish {
		w.flushMsgs()
	}
}

// flushMsgs publishes every written-but-unpublished message in one atomic
// store and pokes the coordinator if it is parked.
//
//snug:coreside
//snug:hotpath
func (w *epochWorker) flushMsgs() {
	if w.msgPub != w.msgTail {
		w.msgPub = w.msgTail
		w.msgs.tail.Store(w.msgTail)
		signal(&w.eng.sleeping, w.eng.wake)
	}
}

// popReply consumes the next completion time from the reply ring,
// publishing any pending parks first (the coordinator cannot produce the
// reply without seeing the park) and spin-then-parking until it is
// published.
//
//snug:coreside
//snug:hotpath
func (w *epochWorker) popReply() int64 {
	r := &w.replies
	h := w.repHead
	if r.tail.Load() == h {
		w.flushMsgs()
		w.awaitReply(h)
	}
	v := r.buf[h&r.mask] //snug:allow gcbounds ring slot index is masked to the power-of-two capacity
	w.repHead = h + 1
	r.head.Store(w.repHead)
	return v
}

// awaitReply blocks the worker until the coordinator publishes reply h.
//
//snug:coreside
func (w *epochWorker) awaitReply(h uint64) {
	r := &w.replies
	for i := 0; i < w.eng.spin; i++ {
		if r.tail.Load() != h {
			return
		}
		if i%spinYieldEvery == spinYieldEvery-1 {
			runtime.Gosched()
		}
	}
	for r.tail.Load() == h {
		w.sleeping.Store(1)
		if r.tail.Load() != h {
			w.sleeping.Store(0)
			return
		}
		<-w.wake
	}
}

// awaitMsgSpace blocks the worker until the coordinator frees a message
// slot.
//
//snug:coreside
func (w *epochWorker) awaitMsgSpace() {
	r := &w.msgs
	full := uint64(len(r.buf))
	for i := 0; i < w.eng.spin; i++ {
		if w.msgTail-r.head.Load() < full {
			return
		}
		if i%spinYieldEvery == spinYieldEvery-1 {
			runtime.Gosched()
		}
	}
	for w.msgTail-r.head.Load() == full {
		w.sleeping.Store(1)
		if w.msgTail-r.head.Load() < full {
			w.sleeping.Store(0)
			return
		}
		<-w.wake
	}
}

// awaitWindow blocks the worker while it is a full epoch window ahead of
// the coordinator. Both operands are reloaded on every check: the
// coordinator advances quantaDone as it consumes boundary tokens, and the
// adaptive window may widen mid-wait.
//
//snug:coreside
func (w *epochWorker) awaitWindow() {
	b := w.boundaries
	e := w.eng
	for i := 0; i < e.spin; i++ {
		if b-w.quantaDone.Load() < e.depth.Load() {
			return
		}
		if i%spinYieldEvery == spinYieldEvery-1 {
			runtime.Gosched()
		}
	}
	for b-w.quantaDone.Load() >= e.depth.Load() {
		w.sleeping.Store(1)
		if b-w.quantaDone.Load() < e.depth.Load() {
			w.sleeping.Store(0)
			return
		}
		<-w.wake
	}
}

// stashPush holds a consumed-but-undrained store completion time. The
// stash cannot overflow: stashed plus still-owed replies equal the LSQ's
// deferred sentinels, which the core caps at its LSQ size.
//
//snug:coreside
func (w *epochWorker) stashPush(v int64) {
	w.stash[w.stashT&w.stashMask] = v
	w.stashT++
}

// drainDeferred is the worker's cpu.DrainFunc: it delivers the oldest
// len(dst) deferred-store completion times in park order — stashed values
// first, then straight off the reply ring.
//
//snug:coreside
func (w *epochWorker) drainDeferred(dst []int64) {
	for i := range dst {
		if w.stashH != w.stashT {
			dst[i] = w.stash[w.stashH&w.stashMask]
			w.stashH++
			continue
		}
		dst[i] = w.popReply()
		w.owed--
	}
}

// finishQuantum publishes the boundary token and holds the worker inside
// the epoch window.
//
//snug:coreside
func (w *epochWorker) finishQuantum() {
	m := coreMsg{boundary: true}
	w.pushMsg(&m, true)
	w.boundaries++
	w.awaitWindow()
}

// run advances the group's cores through every quantum in [start, end),
// each quantum stepping the cores in index order — the serial schedule —
// and resolves any still-deferred store replies before the goroutine
// exits, so no sentinel outlives the run.
//
//snug:coreside
func (g *epochGroup) run(start, end, quantum int64) {
	for clock := start; clock < end; {
		boundary := clock + quantum
		if boundary > end {
			boundary = end
		}
		for _, w := range g.workers {
			w.core.Run(boundary, w.stream, w.mem)
			w.finishQuantum()
		}
		clock = boundary
	}
	for _, w := range g.workers {
		w.core.ResolveDeferred()
	}
}

// popMsg consumes the next parked message from w, publishing any batched
// replies first (a worker blocked in an LSQ drain may be waiting on them)
// and spin-then-parking until the worker publishes.
//
//snug:coordinator
func (e *epochEngine) popMsg(w *epochWorker) coreMsg {
	r := &w.msgs
	h := w.coordHead
	if r.tail.Load() == h {
		e.flushReplies(w)
		e.awaitMsg(w, h)
	}
	m := r.buf[h&r.mask]
	w.coordHead = h + 1
	r.head.Store(w.coordHead)
	signal(&w.sleeping, w.wake) // freed a slot: a worker parked on a full ring resumes
	return m
}

// awaitMsg blocks the coordinator until worker w publishes message h.
//
//snug:coordinator
func (e *epochEngine) awaitMsg(w *epochWorker, h uint64) {
	r := &w.msgs
	for i := 0; i < e.spin; i++ {
		if r.tail.Load() != h {
			return
		}
		if i%spinYieldEvery == spinYieldEvery-1 {
			runtime.Gosched()
		}
	}
	for r.tail.Load() == h {
		e.sleeping.Store(1)
		if r.tail.Load() != h {
			e.sleeping.Store(0)
			return
		}
		<-e.wake
	}
}

// pushReply appends one completion time to w's reply ring. publish=false
// batches it behind the next load reply, boundary, or pre-block flush.
// The ring out-sizes the worst-case outstanding replies (LSQ size + 1),
// so a full ring is a protocol bug, not a wait state.
//
//snug:coordinator
func (e *epochEngine) pushReply(w *epochWorker, v int64, publish bool) {
	r := &w.replies
	if w.repTail-r.head.Load() == uint64(len(r.buf)) {
		panic("cmp: epoch reply ring overflow (deferred replies exceed LSQ bound)")
	}
	r.buf[w.repTail&r.mask] = v
	w.repTail++
	if publish {
		e.flushReplies(w)
	}
}

// flushReplies publishes every written-but-unpublished reply for w in one
// atomic store and pokes the worker if it is parked.
//
//snug:coordinator
func (e *epochEngine) flushReplies(w *epochWorker) {
	if w.repPub != w.repTail {
		w.repPub = w.repTail
		w.replies.tail.Store(w.repTail)
		signal(&w.sleeping, w.wake)
	}
}

// adaptDepth is the adaptive window policy, applied every adaptPeriod
// quanta: fewer than one park per core per period means cores are running
// hit-dominated stretches and deeper run-ahead is free; more than one park
// per core per quantum means run-ahead only piles parks into the rings, so
// back toward lock-step. Inputs are park counts — deterministic — so the
// window trajectory is reproducible, and the window never changes results
// regardless (only when boundary pushes block).
func adaptDepth(depth, parks, cores int64) int64 {
	switch {
	case parks < cores:
		if depth*2 <= maxAutoQuanta {
			return depth * 2
		}
	case parks > cores*adaptPeriod:
		if depth > 1 {
			return depth / 2
		}
	}
	return depth
}

// runEpoch is the coordinator: it drives the same quantum loop as the
// serial Run, but instead of stepping cores inline it drains their parked
// controller work, core-major per quantum, and Ticks the controller at
// each boundary. All shared below-L1 state is touched only here.
//
// epochCycles == 0 selects the adaptive window, < 0 the fixed default;
// any positive value is rounded down to whole quanta with a floor of one.
// The engine draws worker-goroutine tokens from internal/cpubudget and
// falls back to the serial engine when fewer than two are free.
//
//snug:coordinator
func (s *System) runEpoch(cycles, epochCycles int64) RunResult {
	q := s.cfg.Quantum
	auto := epochCycles == 0
	var depth, maxDepth int64
	switch {
	case auto:
		depth, maxDepth = defaultEpochQuanta, maxAutoQuanta
	case epochCycles < 0:
		depth, maxDepth = defaultEpochQuanta, defaultEpochQuanta
	default:
		depth = epochCycles / q
		if depth < 1 {
			depth = 1
		}
		if depth > maxFixedQuanta {
			depth = maxFixedQuanta
		}
		maxDepth = depth
	}

	// One token per core, coordinator riding the caller's share (a sweep
	// worker's job token, or the process main goroutine). With fewer than
	// two grants the "parallel" engine could only serialize through extra
	// goroutines — run the serial engine, which is byte-identical.
	granted := cpubudget.TryAcquire(len(s.cores))
	if granted < 2 {
		cpubudget.Release(granted)
		return s.Run(cycles)
	}
	defer cpubudget.Release(granted)

	lsq := s.cfg.Core.LSQSize
	// The message ring holds at most: one boundary token per window
	// quantum, plus the unconsumed parks of the run-ahead stretch — the
	// LSQ-bounded deferred stores and one blocking load — plus slack.
	msgCap := nextPow2(int(maxDepth) + lsq + 2)
	// Outstanding replies are bounded by the same LSQ argument.
	repCap := nextPow2(lsq + 2)
	stashCap := nextPow2(lsq + 1)

	e := &epochEngine{
		workers: make([]*epochWorker, len(s.cores)),
		spin:    spinIters(),
		wake:    make(chan struct{}, 1),
	}
	e.depth.Store(depth)
	for i := range e.workers {
		w := &epochWorker{
			core:   s.cores[i],
			stream: s.streams[i],
			path:   &s.paths[i],
			eng:    e,
			wake:   make(chan struct{}, 1),
		}
		w.msgs.buf = make([]coreMsg, msgCap)
		w.msgs.mask = uint64(msgCap - 1)
		w.replies.buf = make([]int64, repCap)
		w.replies.mask = uint64(repCap - 1)
		w.stash = make([]int64, stashCap)
		w.stashMask = uint64(stashCap - 1)
		w.mem = w.access
		w.core.SetDrain(w.drainDeferred)
		e.workers[i] = w
	}

	start := s.clock
	end := start + cycles

	// Split the cores into one contiguous group per granted token.
	groups := make([]epochGroup, granted)
	per, extra := len(e.workers)/granted, len(e.workers)%granted
	lo := 0
	for gi := range groups {
		n := per
		if gi < extra {
			n++
		}
		groups[gi].workers = e.workers[lo : lo+n]
		lo += n
	}

	var wg sync.WaitGroup
	for gi := range groups {
		wg.Add(1)
		go func(g *epochGroup) {
			defer wg.Done()
			g.run(start, end, q)
		}(&groups[gi])
	}

	var parks, quanta int64
	for s.clock < end {
		boundary := s.clock + q
		if boundary > end {
			boundary = end
		}
		for i, w := range e.workers {
			for {
				m := e.popMsg(w)
				if m.boundary {
					w.quantaDone.Add(1)
					signal(&w.sleeping, w.wake) // window slack opened
					break
				}
				done := s.ctrl.Access(i, m.accessAt, m.a, m.write)
				if m.hasWB {
					s.ctrl.WritebackL1(i, m.wbAt, m.wb)
				}
				// Load replies publish the batch immediately — the worker
				// is blocked on this one; store replies ride along.
				e.pushReply(w, done, !m.write)
				parks++
			}
			e.flushReplies(w)
		}
		s.ctrl.Tick(boundary)
		s.clock = boundary
		if auto {
			quanta++
			if quanta == adaptPeriod {
				d := adaptDepth(e.depth.Load(), parks, int64(len(e.workers)))
				e.depth.Store(d)
				parks, quanta = 0, 0
			}
		}
	}
	wg.Wait()
	return s.result()
}
