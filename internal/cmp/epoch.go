// The epoch/barrier intra-run execution engine: one goroutine per
// simulated core plus a coordinator, producing results byte-identical to
// the serial engine at every host parallelism.
//
// # Why this parallelizes
//
// A core's timing model and its private L1 are pure per-core state: the
// instruction stream is a fixed sequence (generators take no timing
// feedback), so everything a core computes between controller calls
// depends only on the completion times the controller returned for its own
// earlier misses — never on *when*, in wall-clock terms, other cores were
// simulated. All cross-core state (L2 slices, the snoop bus, write
// buffers, DRAM, scheme metadata) is mutated exclusively through
// schemes.Controller calls. The engine therefore lets every core run
// freely through its L1-hit stretches on its own goroutine and funnels the
// controller calls — the only order-sensitive work — through a single
// coordinator goroutine that replays them in exactly the serial engine's
// order.
//
// # The park/drain protocol
//
// The serial engine's arbitration order within one quantum is core-major:
// all of core 0's controller calls, then all of core 1's, ..., then
// Controller.Tick at the boundary. The epoch engine reproduces it with a
// per-core message channel:
//
//   - a core goroutine that misses in its L1 *parks*: it pushes an access
//     message (timestamp, address, write flag, and the L1 victim
//     writeback, if any) and blocks until the coordinator replies with the
//     data-available cycle;
//   - at each quantum boundary it pushes a boundary token and immediately
//     continues into the next quantum — the run-ahead that overlaps its
//     compute with other cores' draining;
//   - the coordinator drains core 0's channel up to its boundary token,
//     calling Controller.Access / WritebackL1 with the parked arguments —
//     the same calls, same arguments, same order as the serial loop — then
//     core 1's, and so on, then calls Tick and starts the next quantum.
//
// Each parked access carries at most one L1 writeback because the L1
// insert that evicts the victim happens at the same miss that parks; the
// coordinator applies Access before WritebackL1, matching corePath.access.
//
// The channel capacity is the epoch: a core can buffer at most
// epochQuanta boundary tokens before its next push blocks, so no core
// runs more than the epoch window ahead of the coordinator. The window
// bounds memory and skew only — results are identical for every window
// ≥ 1 quantum, which the differential tests pin down to the degenerate
// Engine{EpochCycles: 1} case.
//
// # Why results are byte-identical
//
// By induction over the global controller-call sequence: the k-th call the
// coordinator issues has the same arguments as the serial engine's k-th
// call, because the issuing core computed them from its stream prefix and
// the replies to its own earlier calls — both equal by induction — and the
// controller, serving the same calls in the same order from the same
// initial state, returns the same reply. Core-local state (cpu.Core, L1,
// stream cursors) evolves identically for the same reason. The golden
// digest and the randomized differential suite verify this end to end
// under -race.
package cmp

import (
	"sync"

	"snug/internal/addr"
	"snug/internal/cache"
	"snug/internal/cpu"
	"snug/internal/isa"
)

// coreMsg is one parked unit of coordinator work from a core goroutine:
// either a memory access (with an optional piggybacked L1 writeback) or a
// quantum-boundary token.
type coreMsg struct {
	accessAt int64     // Controller.Access timestamp (miss time + L1 latency)
	wbAt     int64     // Controller.WritebackL1 timestamp (the raw access time)
	a        addr.Addr // private-rebased miss address
	wb       addr.Addr // L1 victim writeback address (valid when hasWB)
	write    bool
	hasWB    bool
	boundary bool // quantum-boundary token: no controller work, ends the core's drain
}

// epochWorker is one core goroutine's side of the protocol. It owns the
// core's private state (cpu.Core, L1, stream) for the duration of a run;
// the reply channel gives each park its happens-before edge back from the
// coordinator.
type epochWorker struct {
	core   *cpu.Core
	stream isa.Stream
	path   *corePath
	mem    cpu.MemFunc
	req    chan coreMsg
	reply  chan int64
}

// access is the epoch engine's cpu.MemFunc: the core-goroutine half of the
// park/drain handshake. L1 hits complete locally; misses perform the L1
// insert (private state, invisible to the controller) to discover the
// victim, park the access+writeback at the coordinator and block for the
// completion time. It must never touch the controller or anything behind
// it — that is the coordinator's, and snuglint's coordinator analyzer
// checks it stays that way.
//
//snug:coreside
//snug:hotpath
func (w *epochWorker) access(now int64, a addr.Addr, write bool) int64 {
	p := w.path
	pa := a | p.base
	if p.l1.Lookup(pa, write) {
		return now + p.l1Lat
	}
	m := coreMsg{accessAt: now + p.l1Lat, wbAt: now, a: pa, write: write}
	// The serial engine calls Controller.Access before the L1 insert, but
	// the two commute: the controller never reads L1 state and the insert
	// never reads controller state, so discovering the victim first lets
	// one park carry both calls.
	v := p.l1.Insert(pa, cache.Block{Dirty: write, Owner: int8(p.core)})
	if v.Valid && v.Dirty {
		m.hasWB = true
		m.wb = p.geom.Rebuild(v.Tag, p.geom.Index(pa))
	}
	w.req <- m
	return <-w.reply
}

// runQuanta advances the worker's core through every quantum boundary in
// [start, end), pushing a boundary token after each one. The token send
// doubles as the epoch barrier: once the channel holds a full epoch of
// tokens the send blocks until the coordinator catches up.
//
//snug:coreside
func (w *epochWorker) runQuanta(start, end, quantum int64) {
	for clock := start; clock < end; {
		boundary := clock + quantum
		if boundary > end {
			boundary = end
		}
		w.core.Run(boundary, w.stream, w.mem)
		w.req <- coreMsg{boundary: true}
		clock = boundary
	}
}

// runEpoch is the coordinator: it drives the same quantum loop as the
// serial Run, but instead of stepping cores inline it drains their parked
// controller work, core-major per quantum, and ticks the controller at
// each boundary. All shared below-L1 state is touched only here.
//
// epochCycles ≤ 0 selects the default window; any positive value is
// rounded down to whole quanta with a floor of one.
//
//snug:coordinator
func (s *System) runEpoch(cycles, epochCycles int64) RunResult {
	q := s.cfg.Quantum
	depth := epochCycles / q
	if epochCycles <= 0 {
		depth = defaultEpochQuanta
	}
	if depth < 1 {
		depth = 1
	}
	start := s.clock
	end := start + cycles

	workers := make([]*epochWorker, len(s.cores))
	var wg sync.WaitGroup
	for i := range workers {
		w := &epochWorker{
			core:   s.cores[i],
			stream: s.streams[i],
			path:   &s.paths[i],
			// depth boundary tokens plus the in-flight access a worker may
			// park before its next token: the buffer is the epoch window.
			req:   make(chan coreMsg, depth+1),
			reply: make(chan int64, 1),
		}
		w.mem = w.access
		workers[i] = w
		wg.Add(1)
		go func(w *epochWorker) {
			defer wg.Done()
			w.runQuanta(start, end, q)
		}(w)
	}

	for s.clock < end {
		boundary := s.clock + q
		if boundary > end {
			boundary = end
		}
		for i, w := range workers {
			for {
				m := <-w.req
				if m.boundary {
					break
				}
				done := s.ctrl.Access(i, m.accessAt, m.a, m.write)
				if m.hasWB {
					s.ctrl.WritebackL1(i, m.wbAt, m.wb)
				}
				w.reply <- done
			}
		}
		s.ctrl.Tick(boundary)
		s.clock = boundary
	}
	wg.Wait()
	return s.result()
}
