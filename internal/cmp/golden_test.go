package cmp_test

import (
	"fmt"
	"testing"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/stats"
	"snug/internal/trace"
)

// goldenBench is the representative mixed workload of the scheme benchmarks.
var goldenBench = []string{"ammp", "parser", "swim", "mesa"}

const goldenCycles = 1_200_000

// goldenDigest hashes everything a run reports — per-core stats, cache and
// bus counters, scheme events — into one value.
func goldenDigest(r cmp.RunResult) string {
	return fmt.Sprintf("%016x", stats.HashString(fmt.Sprintf("%+v", r)))
}

// TestGoldenSNUGDigest pins the exact simulation outcome of the default
// test-scale SNUG run. The digest was captured before the record/replay
// subsystem and the hot-path rework (LSQ heap, cache lookup split, memFunc
// flattening) landed, so it guards the whole refactor: any change to what
// the simulator computes — not just how fast — fails here. Bump the digest
// only for an intentional model change, together with the checkpoint-store
// fingerprint version in internal/experiments.
func TestGoldenSNUGDigest(t *testing.T) {
	const want = "fb8ac38b40b7bdf7"
	cfg := config.TestScale()
	res, err := cmp.RunWorkload(cfg, "SNUG", goldenBench, goldenCycles)
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenDigest(res); got != want {
		t.Fatalf("golden SNUG digest = %s, want %s (seed %d)\n"+
			"The simulator's output changed. If intentional, update the digest AND bump\n"+
			"experiments.fingerprintVersion so stale checkpoint stores are refused.",
			got, want, cfg.Seed)
	}
}

// TestReplayBitExact is the record/replay correctness bar: simulating over
// recorded-and-replayed streams must produce results identical to the live
// generators, for every scheme family (schemes consume different stream
// prefixes, exercising lazy extension at different depths).
func TestReplayBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("15 full simulations; skipped in -short (the -race job) — the full suite runs it")
	}
	cfg := config.TestScale()
	for _, scheme := range []string{"L2P", "L2S", "CC(75%)", "DSR", "SNUG"} {
		live, err := cmp.RunWorkload(cfg, scheme, goldenBench, goldenCycles)
		if err != nil {
			t.Fatal(err)
		}
		streams, err := cmp.WorkloadStreams(cfg, goldenBench, cmp.PhaseRefs(goldenCycles))
		if err != nil {
			t.Fatal(err)
		}
		recs := trace.RecordAll(streams)
		replayed, err := cmp.RunStreams(cfg, scheme, trace.Replays(recs), goldenCycles)
		if err != nil {
			t.Fatal(err)
		}
		if lg, rg := goldenDigest(live), goldenDigest(replayed); lg != rg {
			t.Errorf("%s: replay digest %s != live digest %s", scheme, rg, lg)
		}
		// A second set of cursors over the same recordings must reproduce
		// the run again (cursor independence at system level).
		again, err := cmp.RunStreams(cfg, scheme, trace.Replays(recs), goldenCycles)
		if err != nil {
			t.Fatal(err)
		}
		if goldenDigest(again) != goldenDigest(live) {
			t.Errorf("%s: second replay diverged", scheme)
		}
	}
}
