// Package cmp assembles and drives the simulated CMP — the paper's
// quad-core system or a scaled-out N-core variant: per-core out-of-order
// cores and private L1 data caches on top of one of the registered LLC
// scheme controllers (L2P, L2S, CC, DSR, SNUG). Cores advance in lock-step
// quanta; cross-core structures (bus, peer slices, DRAM) are
// timestamp-arbitrated inside the controller. For a fixed configuration,
// seed and core order the simulation is deterministic.
package cmp

import (
	"fmt"

	"snug/internal/addr"
	"snug/internal/cache"
	"snug/internal/config"
	"snug/internal/cpu"
	"snug/internal/isa"
	"snug/internal/schemes"
	"snug/internal/trace"

	// Link the SNUG controller: internal/core registers the "SNUG" family
	// in the scheme-spec registry from its package init.
	_ "snug/internal/core"
)

// NewController builds the controller for a scheme spec string — a
// registered scheme name with optional parameters, e.g. "L2P", "SNUG" or
// "CC(75%)" (see schemes.Parse for the grammar).
func NewController(spec string, cfg config.System) (schemes.Controller, error) {
	return schemes.Build(spec, cfg)
}

// SchemeNames returns the registered scheme family names, sorted.
func SchemeNames() []string { return schemes.Names() }

// CoreResult summarizes one core's execution.
type CoreResult struct {
	Benchmark    string
	Instructions int64
	Cycles       int64
	IPC          float64
	L1Hits       int64
	L1Misses     int64
	CPUStats     cpu.Stats
}

// L1MissRate returns the core's L1 data miss rate.
func (c CoreResult) L1MissRate() float64 {
	t := c.L1Hits + c.L1Misses
	if t == 0 {
		return 0
	}
	return float64(c.L1Misses) / float64(t)
}

// RunResult is a full simulation outcome.
type RunResult struct {
	Scheme string
	Cycles int64
	Cores  []CoreResult
	Report schemes.Report
}

// Throughput returns the sum of per-core IPCs (Table 5).
func (r RunResult) Throughput() float64 {
	t := 0.0
	for _, c := range r.Cores {
		t += c.IPC
	}
	return t
}

// System is an assembled CMP ready to run.
type System struct {
	cfg     config.System
	ctrl    schemes.Controller
	cores   []*cpu.Core
	l1      []*cache.Cache
	paths   []corePath
	mem     []cpu.MemFunc // per-core hierarchy path, built once
	streams []isa.Stream
	names   []string
	clock   int64
}

// NewSystem assembles a CMP running the named scheme with one instruction
// stream per core.
func NewSystem(cfg config.System, scheme string, streams []isa.Stream) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(streams) != cfg.Cores {
		return nil, fmt.Errorf("cmp: %d streams for %d cores", len(streams), cfg.Cores)
	}
	ctrl, err := NewController(scheme, cfg)
	if err != nil {
		return nil, err
	}
	l1Geom := addr.MustGeometry(cfg.Mem.L1D.BlockBytes, cfg.Mem.L1D.Sets())
	s := &System{
		cfg:     cfg,
		ctrl:    ctrl,
		cores:   make([]*cpu.Core, cfg.Cores),
		l1:      make([]*cache.Cache, cfg.Cores),
		streams: streams,
		names:   make([]string, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		s.cores[i] = cpu.NewCore(cfg.Core)
		s.l1[i] = cache.MustNew(l1Geom, cfg.Mem.L1D.Ways)
		s.names[i] = streams[i].Name()
	}
	s.paths = make([]corePath, cfg.Cores)
	s.mem = make([]cpu.MemFunc, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		s.paths[i] = corePath{
			ctrl:  ctrl,
			l1:    s.l1[i],
			geom:  l1Geom,
			core:  i,
			base:  addr.ForCore(i, 0),
			l1Lat: int64(cfg.Mem.L1Lat),
		}
		s.mem[i] = s.paths[i].access
	}
	return s, nil
}

// Controller exposes the scheme controller (tests, reporting).
func (s *System) Controller() schemes.Controller { return s.ctrl }

// corePath is one core's flattened path into the hierarchy: private-address
// rebasing, L1 lookup, then the scheme controller. The rebase offset, L1
// hit latency and writeback geometry are precomputed at assembly so the
// per-access path dereferences one struct instead of walking a closure
// chain back through the System.
type corePath struct {
	ctrl  schemes.Controller
	l1    *cache.Cache
	geom  addr.Geometry // L1 geometry, hoisted for the writeback rebuild
	core  int
	base  addr.Addr // addr.ForCore(core, 0): OR-able private-space rebase
	l1Lat int64
}

// access resolves one data-memory access; it is the serial engine's
// cpu.MemFunc. It calls straight into the shared controller, so it may
// only run on the driving goroutine — the epoch engine's core goroutines
// use epochWorker.access, which parks the same call at the coordinator
// instead (see epoch.go).
//
//snug:coordinator
func (p *corePath) access(now int64, a addr.Addr, write bool) int64 {
	pa := a | p.base
	if p.l1.Lookup(pa, write) {
		return now + p.l1Lat
	}
	done := p.ctrl.Access(p.core, now+p.l1Lat, pa, write)
	v := p.l1.Insert(pa, cache.Block{Dirty: write, Owner: int8(p.core)})
	if v.Valid && v.Dirty {
		p.ctrl.WritebackL1(p.core, now, p.geom.Rebuild(v.Tag, p.geom.Index(pa)))
	}
	return done
}

// Engine selects how a System advances: the serial engine steps every core
// on the calling goroutine (the default), the intra-run epoch engine runs
// one goroutine per simulated core with shared-state arbitration confined
// to a coordinator. Both produce byte-identical results; the choice is
// purely a wall-clock/runtime trade (see DESIGN.md §"Epoch execution
// model").
type Engine struct {
	// Intra enables the epoch engine. It takes effect only when the system
	// has more than one core and the scheme controller declares epoch
	// safety (schemes.EpochSafe); otherwise the serial engine runs —
	// results are identical either way.
	Intra bool
	// EpochCycles bounds how far a core may run ahead of the coordinator,
	// in cycles; positive values are rounded down to whole quanta with a
	// floor of one quantum. 0 selects the adaptive window (the coordinator
	// widens it while the park rate is low and narrows it when parks flood
	// the rings); negative values pin the fixed default of eight quanta.
	// The value changes scheduling and memory footprint only, never
	// results.
	EpochCycles int64
}

// RunEngine advances the system by cycles under the selected engine and
// returns the cumulative result. RunEngine(c, Engine{}) == Run(c).
func (s *System) RunEngine(cycles int64, eng Engine) RunResult {
	if eng.Intra && len(s.cores) > 1 && EpochCapable(s.ctrl) {
		return s.runEpoch(cycles, eng.EpochCycles)
	}
	return s.Run(cycles)
}

// EpochCapable reports whether ctrl declares the coordinator-confinement
// contract the epoch engine needs (the schemes.EpochSafe capability).
func EpochCapable(ctrl schemes.Controller) bool {
	es, ok := ctrl.(schemes.EpochSafe)
	return ok && es.EpochSafe()
}

// Run advances the system by cycles on the serial engine and returns the
// result. It may be called repeatedly; results are cumulative from
// construction. Each quantum steps the cores in index order and then ticks
// the controller — the arbitration order the epoch engine reproduces
// exactly.
func (s *System) Run(cycles int64) RunResult {
	end := s.clock + cycles
	q := s.cfg.Quantum
	for s.clock < end {
		boundary := s.clock + q
		if boundary > end {
			boundary = end
		}
		for i, c := range s.cores {
			c.Run(boundary, s.streams[i], s.mem[i])
		}
		s.ctrl.Tick(boundary)
		s.clock = boundary
	}
	return s.result()
}

// result snapshots the current state into a RunResult.
func (s *System) result() RunResult {
	r := RunResult{
		Scheme: s.ctrl.Name(),
		Cycles: s.clock,
		Report: s.ctrl.Report(),
		Cores:  make([]CoreResult, len(s.cores)),
	}
	for i, c := range s.cores {
		st := c.Stats()
		l1 := s.l1[i].Stats()
		r.Cores[i] = CoreResult{
			Benchmark:    s.names[i],
			Instructions: st.Instructions,
			Cycles:       s.clock,
			IPC:          float64(st.Instructions) / float64(s.clock),
			L1Hits:       l1.Hits,
			L1Misses:     l1.Misses,
			CPUStats:     st,
		}
	}
	return r
}

// WorkloadStreams builds one generator per core for the named benchmarks.
// totalRefs is the per-generator phase-cycle length; each core gets a
// distinct seed derived from cfg.Seed.
func WorkloadStreams(cfg config.System, benchmarks []string, totalRefs int64) ([]isa.Stream, error) {
	if len(benchmarks) != cfg.Cores {
		return nil, fmt.Errorf("cmp: %d benchmarks for %d cores", len(benchmarks), cfg.Cores)
	}
	geom := addr.MustGeometry(cfg.Mem.L2Slice.BlockBytes, cfg.Mem.L2Slice.Sets())
	streams := make([]isa.Stream, len(benchmarks))
	for i, name := range benchmarks {
		prof, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		gen, err := trace.NewGenerator(prof, geom, cfg.Seed+uint64(i)*0x1000_0001, totalRefs)
		if err != nil {
			return nil, err
		}
		// Each instance gets its own physical page mapping: identical
		// benchmarks share a demand distribution but not concrete hot-set
		// indexes (see Generator.WithDemandSalt).
		gen.WithDemandSalt(uint64(i) + 1)
		streams[i] = gen
	}
	return streams, nil
}

// PhaseRefs is the generator phase-cycle length RunWorkload derives from a
// run length. It is exported so callers that build streams themselves (the
// record/replay cache in internal/experiments, the benchmark harness) stay
// byte-compatible with RunWorkload's streams: roughly one distinct touch
// per L2Every instructions at IPC ~1 means cycles/40 touches; cycles/32
// lets multi-phase workloads (vortex) rotate through all phases about once
// per run.
func PhaseRefs(cycles int64) int64 {
	totalRefs := cycles / 32
	if totalRefs < 1000 {
		totalRefs = 1000
	}
	return totalRefs
}

// RunStreams assembles the system under scheme over pre-built streams
// (live generators or trace replays) and runs it for cycles on the serial
// engine.
func RunStreams(cfg config.System, scheme string, streams []isa.Stream, cycles int64) (RunResult, error) {
	return RunStreamsEngine(cfg, scheme, streams, cycles, Engine{})
}

// RunStreamsEngine is RunStreams under an explicit engine selection.
func RunStreamsEngine(cfg config.System, scheme string, streams []isa.Stream, cycles int64, eng Engine) (RunResult, error) {
	sys, err := NewSystem(cfg, scheme, streams)
	if err != nil {
		return RunResult{}, err
	}
	return sys.RunEngine(cycles, eng), nil
}

// RunWorkload is the one-call convenience used by the CLI tools, examples
// and benchmarks: build streams, assemble the system under scheme, run for
// cycles on the serial engine.
func RunWorkload(cfg config.System, scheme string, benchmarks []string, cycles int64) (RunResult, error) {
	return RunWorkloadEngine(cfg, scheme, benchmarks, cycles, Engine{})
}

// RunWorkloadEngine is RunWorkload under an explicit engine selection.
func RunWorkloadEngine(cfg config.System, scheme string, benchmarks []string, cycles int64, eng Engine) (RunResult, error) {
	streams, err := WorkloadStreams(cfg, benchmarks, PhaseRefs(cycles))
	if err != nil {
		return RunResult{}, err
	}
	return RunStreamsEngine(cfg, scheme, streams, cycles, eng)
}
