// Command snuglint runs the determinism-and-hot-path analyzer suite
// (internal/lint) over this module. It machine-checks the invariants the
// golden digest only samples: no map-iteration-order dependence, no
// wall-clock reads, identity-derived RNG seeds, allocation- and
// dispatch-free //snug:hotpath functions, and live //snug:allow
// directives. With -compiler it also verifies the compiler's half of the
// hot-path bargain: //snug:hotpath bodies compile with zero heap escapes
// and zero bounds checks, and //snug:inline functions provably inline.
//
// Two modes:
//
//	snuglint [flags] [packages]         standalone; defaults to ./...
//	go vet -vettool=$(which snuglint) ./...
//
// The vet form integrates with the go command's build cache and package
// graph but runs the AST suite only (the compiler contract needs a whole-
// module compile the per-unit vet protocol cannot drive); the standalone
// form needs only a go toolchain on PATH. Exit status is 0 when clean, 2
// when findings fail the run, 1 on errors. See DESIGN.md §"Statically-
// checked invariants" for the analyzer list and the //snug:hotpath /
// //snug:inline / //snug:allow annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snug/internal/lint"
)

func main() {
	// The vet protocol (-V=full / -flags / *.cfg) exits internally.
	if lint.VetEntry(os.Args[1:]) {
		return
	}
	var opts lint.Options
	flag.BoolVar(&opts.Compiler, "compiler", false,
		"also verify the compiler contract: gcescape/gcbounds on //snug:hotpath bodies, gcinline on //snug:inline functions")
	flag.BoolVar(&opts.JSON, "json", false,
		"emit every finding (active, allowed, baselined) as one JSON object per line on stdout")
	flag.StringVar(&opts.Baseline, "baseline", "",
		"diff findings against this committed baseline `file`; only new findings fail the run")
	flag.BoolVar(&opts.UpdateBaseline, "update-baseline", false,
		"rewrite the baseline file (default LINT_BASELINE.json) from current findings instead of failing on them")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: snuglint [flags] [packages]\n       go vet -vettool=$(which snuglint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	sum, err := lint.Main(os.Stdout, os.Stderr, flag.Args(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snuglint: %v\n", err)
		os.Exit(1)
	}
	summarize(sum)
	if len(sum.Failing) > 0 {
		os.Exit(2)
	}
}

// summarize prints the per-analyzer finding counts (the line the CI job
// summary scrapes) and the baseline bookkeeping to stderr.
func summarize(sum *lint.Summary) {
	if len(sum.Findings) == 0 {
		fmt.Fprintln(os.Stderr, "snuglint: clean")
		return
	}
	fmt.Fprintf(os.Stderr, "snuglint: %d finding(s), %d failing — %s\n",
		len(sum.Findings), len(sum.Failing), strings.Join(lint.CountByAnalyzer(sum.Findings), " "))
	if sum.Tracked > 0 || sum.Resolved > 0 {
		fmt.Fprintf(os.Stderr, "snuglint: baseline tracked %d finding(s), %d resolved (refresh with -update-baseline)\n",
			sum.Tracked, sum.Resolved)
	}
}
