// Command snuglint runs the determinism-and-hot-path analyzer suite
// (internal/lint) over this module. It machine-checks the invariants the
// golden digest only samples: no map-iteration-order dependence, no
// wall-clock reads, identity-derived RNG seeds, and allocation-free
// //snug:hotpath functions.
//
// Two modes:
//
//	snuglint [packages]         standalone; defaults to ./...
//	go vet -vettool=$(which snuglint) ./...
//
// The vet form integrates with the go command's build cache and package
// graph; the standalone form needs only a go toolchain on PATH. Exit
// status is nonzero when any diagnostic is reported. See DESIGN.md
// §"Statically-checked invariants" for the analyzer list and the
// //snug:hotpath / //snug:allow annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"

	"snug/internal/lint"
)

func main() {
	// The vet protocol (-V=full / -flags / *.cfg) exits internally.
	if lint.VetEntry(os.Args[1:]) {
		return
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: snuglint [packages]\n       go vet -vettool=$(which snuglint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	n, err := lint.Main(os.Stderr, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "snuglint: %v\n", err)
		os.Exit(1)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "snuglint: %d finding(s)\n", n)
		os.Exit(2)
	}
}
