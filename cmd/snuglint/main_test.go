package main

import (
	"bytes"
	"testing"

	"snug/internal/lint"
)

// TestRepoIsClean is the self-gate: the analyzer suite must exit clean on
// this repository. Any new range-over-map, wall-clock read, undisciplined
// seed, hot-path allocation or dispatch, or stale //snug:allow in a
// result-affecting package fails this test (and the CI snuglint step)
// until it is fixed or carries a //snug:allow justification.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	sum, err := lint.Main(&stdout, &stderr, []string{"snug/..."}, lint.Options{})
	if err != nil {
		t.Fatalf("snuglint: %v", err)
	}
	if len(sum.Failing) != 0 {
		t.Fatalf("snuglint reported %d failing finding(s) on the repo:\n%s", len(sum.Failing), stderr.String())
	}
}

// TestRepoCompilerContract is the compiler-side self-gate: with -compiler
// the repo's //snug:hotpath bodies must compile escape- and bounds-check
// free and its //snug:inline functions must inline, modulo the justified
// //snug:allow directives and the committed LINT_BASELINE.json. Finding
// paths are module-root relative, so the baseline applies no matter which
// directory the test (or CI's compiler-contract step) runs from.
func TestRepoCompilerContract(t *testing.T) {
	if testing.Short() {
		t.Skip("compiler contract recompiles the module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	opts := lint.Options{Compiler: true, Baseline: "../../LINT_BASELINE.json"}
	sum, err := lint.Main(&stdout, &stderr, []string{"snug/..."}, opts)
	if err != nil {
		t.Fatalf("snuglint -compiler: %v", err)
	}
	if len(sum.Failing) != 0 {
		t.Fatalf("snuglint -compiler reported %d finding(s) not in LINT_BASELINE.json:\n%s", len(sum.Failing), stderr.String())
	}
	if sum.Resolved > 0 {
		t.Logf("baseline has %d resolved entr(ies); refresh with -update-baseline", sum.Resolved)
	}
}
