package main

import (
	"bytes"
	"testing"

	"snug/internal/lint"
)

// TestRepoIsClean is the self-gate: the analyzer suite must exit clean on
// this repository. Any new range-over-map, wall-clock read, undisciplined
// seed or hot-path allocation in a result-affecting package fails this
// test (and the CI snuglint step) until it is fixed or carries a
// //snug:allow justification.
func TestRepoIsClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := lint.Main(&buf, []string{"snug/..."})
	if err != nil {
		t.Fatalf("snuglint: %v", err)
	}
	if n != 0 {
		t.Fatalf("snuglint reported %d finding(s) on the repo:\n%s", n, buf.String())
	}
}
