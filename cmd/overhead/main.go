// Command overhead regenerates the paper's storage-overhead analysis
// (§3.4): the Table 2 field-length breakdown and Formula (6) result for the
// base configuration, and the Table 3 grid over address widths and cache
// line sizes.
//
// Usage:
//
//	overhead          # Table 2 breakdown (expect 3.9%)
//	overhead -table3  # Table 3 grid (expect 3.9 / 5.8 / 2.1 / 3.1 %)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"snug/internal/core"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h/-help: usage already printed, a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhead:", err)
		os.Exit(1)
	}
}

// run executes the command with the given arguments; main is a thin
// wrapper so tests can drive the full flag-to-output path.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("overhead", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table3 := fs.Bool("table3", false, "print the Table 3 grid")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	if *table3 {
		cells, err := core.Table3()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "Table 3 — SNUG storage overhead by address width and line size")
		fmt.Fprintf(stdout, "%-14s %-22s %s\n", "line size", "32-bit address", "64-bit address (44 used)")
		for _, blk := range []int{64, 128} {
			row := fmt.Sprintf("%dB/line", blk)
			var cols []string
			for _, c := range cells {
				if c.BlockBytes == blk {
					cols = append(cols, fmt.Sprintf("%.1f%%", c.Percent))
				}
			}
			fmt.Fprintf(stdout, "%-14s %-22s %s\n", row, cols[0], cols[1])
		}
		return nil
	}

	p := core.DefaultOverheadParams()
	o, err := core.ComputeOverhead(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "Table 2 — SNUG storage fields (1 MB, 16-way, 64 B lines, 32-bit addresses)")
	fmt.Fprintf(stdout, "  sets                    %d\n", o.Sets)
	fmt.Fprintf(stdout, "  tag field               %d bits\n", o.TagBits)
	fmt.Fprintf(stdout, "  LRU field               %d bits\n", o.LRUBits)
	fmt.Fprintf(stdout, "  L2 line (tag+v+d+CC+f+LRU+data) %d bits\n", o.LineBits)
	fmt.Fprintf(stdout, "  L2 set                  %d bits\n", o.L2SetBits)
	fmt.Fprintf(stdout, "  shadow entry (tag+v+LRU) %d bits\n", o.ShadowTagBits)
	fmt.Fprintf(stdout, "  shadow set (+k-bit counter, mod-p, G/T) %d bits\n", o.ShadowSetBits)
	fmt.Fprintf(stdout, "  storage overhead (Formula 6) = %.1f%%\n", o.Percent())
	return nil
}
