// Command overhead regenerates the paper's storage-overhead analysis
// (§3.4): the Table 2 field-length breakdown and Formula (6) result for the
// base configuration, and the Table 3 grid over address widths and cache
// line sizes.
//
// Usage:
//
//	overhead          # Table 2 breakdown (expect 3.9%)
//	overhead -table3  # Table 3 grid (expect 3.9 / 5.8 / 2.1 / 3.1 %)
package main

import (
	"flag"
	"fmt"
	"os"

	"snug/internal/core"
)

func main() {
	table3 := flag.Bool("table3", false, "print the Table 3 grid")
	flag.Parse()

	if *table3 {
		cells, err := core.Table3()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 3 — SNUG storage overhead by address width and line size")
		fmt.Printf("%-14s %-22s %s\n", "line size", "32-bit address", "64-bit address (44 used)")
		for _, blk := range []int{64, 128} {
			row := fmt.Sprintf("%dB/line", blk)
			var cols []string
			for _, c := range cells {
				if c.BlockBytes == blk {
					cols = append(cols, fmt.Sprintf("%.1f%%", c.Percent))
				}
			}
			fmt.Printf("%-14s %-22s %s\n", row, cols[0], cols[1])
		}
		return
	}

	p := core.DefaultOverheadParams()
	o, err := core.ComputeOverhead(p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Table 2 — SNUG storage fields (1 MB, 16-way, 64 B lines, 32-bit addresses)")
	fmt.Printf("  sets                    %d\n", o.Sets)
	fmt.Printf("  tag field               %d bits\n", o.TagBits)
	fmt.Printf("  LRU field               %d bits\n", o.LRUBits)
	fmt.Printf("  L2 line (tag+v+d+CC+f+LRU+data) %d bits\n", o.LineBits)
	fmt.Printf("  L2 set                  %d bits\n", o.L2SetBits)
	fmt.Printf("  shadow entry (tag+v+LRU) %d bits\n", o.ShadowTagBits)
	fmt.Printf("  shadow set (+k-bit counter, mod-p, G/T) %d bits\n", o.ShadowSetBits)
	fmt.Printf("  storage overhead (Formula 6) = %.1f%%\n", o.Percent())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overhead:", err)
	os.Exit(1)
}
