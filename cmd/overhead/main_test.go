package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRunTable2 prints the Formula (6) breakdown with the paper's 3.9%.
func TestRunTable2(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "storage overhead (Formula 6) = 3.9%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunTable3 prints the address-width / line-size grid.
func TestRunTable3(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 3", "64B/line", "128B/line", "3.9%", "5.8%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunFlagErrors covers CLI error paths.
func TestRunFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad flag":        {"-nope"},
		"positional args": {"extra"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}
