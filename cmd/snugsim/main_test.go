package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestRunSingleScheme drives one tiny simulation end to end.
func TestRunSingleScheme(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-scheme", "L2P", "-workload", "4xgzip", "-cycles", "50000"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheme=L2P", "core 0 gzip", "dram:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunComparisonWithSpecs compares schemes given as full specs,
// including a parameterized CC, on an 8-core scale-out workload.
func TestRunComparisonWithSpecs(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-scheme", "L2P,CC(75%)", "-workload", "8xgzip", "-cycles", "50000"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cores=8", "L2P", "CC(75%)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunProfileFlags: -cpuprofile/-memprofile write non-empty pprof files
// around a run, and an uncreatable profile path is a flag-time error.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.out", dir+"/mem.out"
	err := run(context.Background(), []string{"-scheme", "L2P", "-workload", "4xgzip", "-cycles", "50000",
		"-cpuprofile", cpu, "-memprofile", mem}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := run(context.Background(), []string{"-cycles", "1000", "-cpuprofile", dir + "/no/such/dir/cpu.out"},
		io.Discard, io.Discard); err == nil {
		t.Error("uncreatable -cpuprofile path accepted")
	}
}

// TestRunList prints the registry-backed scheme list.
func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchmarks:", "CC DSR L2P L2S SNUG", "4xammp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestHelpIsNotAnError: -h surfaces flag.ErrHelp, which main maps to a
// successful exit (usage is not a failure).
func TestHelpIsNotAnError(t *testing.T) {
	if err := run(context.Background(), []string{"-h"}, io.Discard, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("run(-h) = %v, want flag.ErrHelp", err)
	}
}

func TestSplitSpecs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SNUG", []string{"SNUG"}},
		{"L2P, CC(75%) ,SNUG", []string{"L2P", "CC(75%)", "SNUG"}},
		{"X(a,b),SNUG", []string{"X(a,b)", "SNUG"}}, // commas inside args survive
	}
	for _, c := range cases {
		if got := splitSpecs(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitSpecs(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestResolveWorkload(t *testing.T) {
	got, err := resolveWorkload("8xammp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 || got[0] != "ammp" || got[7] != "ammp" {
		t.Fatalf("8xammp resolved to %v", got)
	}
	got, err = resolveWorkload("ammp+parser+bzip2+mcf")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"ammp", "parser", "bzip2", "mcf"}) {
		t.Fatalf("combo name resolved to %v", got)
	}
	// "vortex" contains an 'x' but is a plain benchmark name.
	got, err = resolveWorkload("vortex,vortex,vortex,vortex")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != "vortex" {
		t.Fatalf("vortex list resolved to %v", got)
	}
	for _, bad := range []string{"nope", "0xammp", "4xnope"} {
		if _, err := resolveWorkload(bad); err == nil {
			t.Errorf("resolveWorkload(%q) accepted", bad)
		}
	}
}

// TestRunFlagErrors covers CLI error paths, including non-scalable widths.
func TestRunFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"bad flag":        {"-nope"},
		"positional args": {"extra"},
		"bad scheme":      {"-scheme", "victim-cache", "-cycles", "1000"},
		"bad benchmark":   {"-workload", "nope", "-cycles", "1000"},
		"bad width":       {"-workload", "gzip,gzip", "-cycles", "1000"},
	}
	for name, args := range cases {
		if err := run(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}

// TestRunReplicates: -reps N summarizes each scheme as mean ±95% CI over
// independently-seeded replicates; -reps 0 is rejected.
func TestRunReplicates(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-scheme", "L2P,SNUG", "-workload", "4xgzip", "-cycles", "50000", "-reps", "3"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reps=3", "mean ±95% CI", "L2P", "SNUG", "±", "avgSpills=", "Δ SNUG vs L2P:", "(paired)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := run(context.Background(), []string{"-reps", "0"}, io.Discard, io.Discard); err == nil {
		t.Error("-reps 0 accepted")
	}
}
