// Command snugsim runs one workload combination under one or more LLC
// management schemes and reports per-core and scheme-level statistics.
// Runs go through the sweep engine (internal/sweep): every scheme of one
// workload sees the same seed-derived instruction streams, so side-by-side
// scheme numbers are paired — even across separate invocations.
//
// Schemes are full spec strings (see schemes.Parse): "SNUG", "L2P" or
// parameterized specs like "CC(75%)". Workloads are a per-core benchmark
// list, a Table 8 combo name, or "Nx<bench>" for an N-core stress test; the
// system widens to the workload's core count automatically.
//
// Usage:
//
//	snugsim -scheme SNUG -workload ammp,parser,swim,mesa -cycles 2000000
//	snugsim -scheme L2P,CC(75%),SNUG -workload 4xammp  # paired comparison
//	snugsim -scheme L2P,SNUG -workload 4xammp -reps 5  # mean ±95% CI
//	snugsim -scheme SNUG -workload 8xammp              # 8-core scale-out
//	snugsim -replay=false ...                          # regenerate streams live per scheme
//	snugsim -scheme L2P,SNUG -workload 4xammp -out runs.jsonl  # checkpoint completed runs
//	snugsim ... -out runs.jsonl -resume                # continue an interrupted sweep
//	snugsim ... -failpolicy continue -retries 3        # run everything, retry failures
//	snugsim ... -out runs.jsonl -resume -salvage       # quarantine corrupt checkpoint lines
//	snugsim ... -inject panic:0.02,err:0.05,putfail:0.01  # deterministic chaos testing
//	snugsim -list
//
// Scheme comparisons record the workload's instruction streams once and
// replay them to every scheme (-replay, default on) — the same streams the
// live generators would produce, so results are bit-identical either way.
//
// On SIGINT/SIGTERM the sweep stops dispatching, drains and checkpoints
// in-flight runs, prints a resume hint, and exits 130; a second signal
// exits immediately. Exit codes: 0 success, 1 error, 3 completed with job
// failures under -failpolicy continue, 130 interrupted. See DESIGN.md
// "Failure model".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"snug/internal/cli"
	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/faults"
	"snug/internal/prof"
	"snug/internal/stats"
	"snug/internal/sweep"
	"snug/internal/trace"
	"snug/internal/workloads"
)

func main() {
	ctx, stop := cli.SignalContext("snugsim", os.Stderr)
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if errors.Is(err, flag.ErrHelp) {
		return // -h/-help: usage already printed, a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "snugsim:", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run executes the command with the given arguments; main is a thin
// wrapper so tests can drive the full flag-to-output path. Canceling ctx
// (main wires it to SIGINT/SIGTERM) drains and checkpoints in-flight runs
// before run returns.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("snugsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scheme := fs.String("scheme", "SNUG",
		"L2 scheme spec (L2P, L2S, CC, CC(75%), DSR or SNUG), or a comma-separated list to compare")
	workload := fs.String("workload", "ammp,parser,swim,mesa",
		"comma-separated benchmark per core, a Table 8 combo name, or Nx<bench>")
	cycles := fs.Int64("cycles", 5_000_000, "cycles to simulate")
	ccpct := fs.Int("ccpct", 100, "spill probability for bare \"CC\" specs, in percent (0,25,50,75,100)")
	par := fs.Int("par", 0, "concurrent simulations when comparing schemes (0 = GOMAXPROCS)")
	reps := fs.Int("reps", 1, "independently-seeded replicates per scheme; >1 reports mean ±95% CI")
	scale := fs.Bool("testscale", true, "use the scaled test system (64-set slices); false = full Table 4 system")
	replay := fs.Bool("replay", true, "record the workload's instruction streams once and replay them to every compared scheme (bit-identical results); false regenerates streams live per run")
	intra := fs.Bool("intra", false, "run each simulation on the intra-run epoch engine: one goroutine per simulated core, bit-identical results (see DESIGN.md)")
	epoch := fs.Int64("epoch", 0, "epoch-engine run-ahead window in cycles (0 = adaptive, negative = fixed default); affects scheduling only, never results")
	budget := fs.Int("cpubudget", 0, "cap on concurrent simulation goroutines shared by -par workers and the -intra engine (0 = GOMAXPROCS); affects scheduling only, never results")
	seed := fs.Uint64("seed", 0, "override simulation seed (0 = default)")
	out := fs.String("out", "", "sweep results store: completed runs are checkpointed here as JSON lines")
	resume := fs.Bool("resume", false, "resume from -out, skipping runs already checkpointed")
	failpolicy := fs.String("failpolicy", "fast", "response to failed runs: \"fast\" stops at the first failure, \"continue\" runs every scheme and aggregates failures (exit code 3)")
	retries := fs.Int("retries", 0, "re-run a failed run up to this many times with the same seed (transient faults only; deterministic failures repeat)")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "initial delay before a retry, doubling per attempt (capped)")
	salvage := fs.Bool("salvage", false, "open the -out checkpoint in salvage mode: quarantine corrupt lines to <out>.quarantine and rerun their jobs instead of refusing to resume")
	syncEvery := fs.Int("sync", 0, "fsync the checkpoint every N completed runs (0 = leave durability to the OS)")
	inject := fs.String("inject", "", "deterministic fault injection spec, e.g. \"panic:0.02,err:0.05,putfail:0.01\" (chaos testing; results are unaffected)")
	list := fs.Bool("list", false, "list benchmarks, combos and schemes, then exit")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	if *list {
		fmt.Fprintln(stdout, "benchmarks:", strings.Join(trace.Names(), " "))
		fmt.Fprintln(stdout, "schemes:   ", strings.Join(cmp.SchemeNames(), " "))
		fmt.Fprintln(stdout, "combos (Table 8):")
		for _, c := range workloads.Table8() {
			fmt.Fprintf(stdout, "  %-3s %s\n", c.Class, c.Name)
		}
		return nil
	}

	if *reps < 1 {
		return fmt.Errorf("-reps %d: replicate count must be at least 1", *reps)
	}
	policy, err := cli.ParseFailurePolicy(*failpolicy)
	if err != nil {
		return err
	}
	if *retries < 0 {
		return fmt.Errorf("-retries %d: retry count must be non-negative", *retries)
	}
	injectSpec, err := faults.ParseSpec(*inject)
	if err != nil {
		return err
	}
	if *resume && *out == "" {
		return fmt.Errorf("-resume requires -out")
	}
	if *salvage && *out == "" {
		return fmt.Errorf("-salvage requires -out")
	}
	if *out != "" && !*resume {
		// Never silently destroy prior results (same contract as
		// cmd/experiments).
		if st, err := os.Stat(*out); err == nil && st.Size() > 0 {
			return fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or delete it for a fresh sweep", *out)
		}
	}
	cfg := config.Default()
	if *scale {
		cfg = config.TestScale()
	}
	cfg.CC.SpillPercent = *ccpct
	if *seed != 0 {
		cfg.Seed = *seed
	}

	bench, err := resolveWorkload(*workload)
	if err != nil {
		return err
	}
	// Widen the system to the workload: "8xammp" runs on the 8-core
	// scale-out configuration without further flags.
	if len(bench) != cfg.Cores {
		if cfg, err = config.WithCores(cfg, len(bench)); err != nil {
			return fmt.Errorf("workload %q: %w", *workload, err)
		}
	}

	specs := splitSpecs(*scheme)
	seedKey := strings.Join(bench, "+") // one stream per workload, shared by every scheme

	// Record/replay across the compared schemes: every scheme of one
	// replicate sees the same seed (shared SeedKey), so its streams are
	// synthesized once and replayed. Seeds are derivable up front — the
	// sweep engine's seed derivation is a pure function of the replicate-
	// suffixed seed key — so the recordings are simply keyed by seed.
	// A single run has nothing to share, so it stays on the live path
	// (identical streams either way).
	recordings := map[uint64][]*trace.Recording{}
	if *replay && len(specs)*(*reps) > 1 {
		for r := 0; r < *reps; r++ {
			seed := sweep.JobSeed(cfg.Seed, sweep.ReplicateKey(seedKey, r))
			c := cfg
			c.Seed = seed
			streams, err := cmp.WorkloadStreams(c, bench, cmp.PhaseRefs(*cycles))
			if err != nil {
				return err
			}
			recordings[seed] = trace.RecordAll(streams)
		}
	}

	var jobs []sweep.Job
	for _, s := range specs {
		s := s
		jobs = append(jobs, sweep.Job{
			Key:     s,
			SeedKey: seedKey,
			Run: func(jobSeed uint64) (cmp.RunResult, error) {
				c := cfg
				c.Seed = jobSeed
				eng := cmp.Engine{Intra: *intra, EpochCycles: *epoch}
				if recs, ok := recordings[jobSeed]; ok {
					return cmp.RunStreamsEngine(c, s, trace.Replays(recs), *cycles, eng)
				}
				return cmp.RunWorkloadEngine(c, s, bench, *cycles, eng)
			},
		})
	}
	fp, err := storeFingerprint(cfg, bench, *cycles)
	if err != nil {
		return err
	}
	results, err := sweep.Run(ctx, sweep.Options{
		Parallelism: *par, CPUBudget: *budget, BaseSeed: cfg.Seed, Replicates: *reps,
		Checkpoint: *out, Salvage: *salvage, Sync: *syncEvery, Fingerprint: fp,
		FailurePolicy: policy,
		Retry:         sweep.RetrySpec{Attempts: *retries, Backoff: *backoff},
		PutHook:       injectSpec.PutHook(cfg.Seed),
	}, injectSpec.Wrap(cfg.Seed, jobs))
	if err != nil {
		cli.ResumeHint(err, stderr, "snugsim", *out)
		return cli.WrapCompleted(err, policy == sweep.ContinueOnError)
	}

	if *reps > 1 {
		// Replicated runs summarize to interval statistics: per-core detail
		// of a single stream would misrepresent the sample.
		fmt.Fprintf(stdout, "workload=%s cores=%d cycles=%d reps=%d (mean ±95%% CI)\n",
			*workload, len(bench), *cycles, *reps)
		puts := make(map[string][]float64, len(specs))
		for _, s := range specs {
			puts[s] = make([]float64, *reps)
			var spills, retrHits int64
			for r := 0; r < *reps; r++ {
				res := results[sweep.ReplicateKey(s, r)]
				puts[s][r] = res.Throughput()
				spills += res.Report.Spills
				retrHits += res.Report.RetrievalHits
			}
			n := float64(*reps)
			fmt.Fprintf(stdout, "  %-9s throughput=%s avgSpills=%.1f avgRetrHits=%.1f\n",
				s, stats.MeanCI(puts[s]), float64(spills)/n, float64(retrHits)/n)
		}
		// Schemes share streams within each replicate, so the per-replicate
		// throughput deltas against the first scheme cancel the common
		// stream noise — usually a far tighter interval than the marginals.
		for _, s := range specs[1:] {
			delta, err := stats.PairedDelta(puts[s], puts[specs[0]])
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  Δ %s vs %s: %s (paired)\n", s, specs[0], delta)
		}
		return nil
	}

	if len(specs) > 1 {
		fmt.Fprintf(stdout, "workload=%s cores=%d cycles=%d\n", *workload, len(bench), *cycles)
		for _, s := range specs {
			r := results[s]
			fmt.Fprintf(stdout, "  %-9s throughput=%.4f spills=%-7d retrHits=%-7d dram=%d\n",
				s, r.Throughput(), r.Report.Spills, r.Report.RetrievalHits, r.Report.DRAM.Reads)
		}
		return nil
	}

	res := results[specs[0]]
	fmt.Fprintf(stdout, "scheme=%s cycles=%d throughput=%.4f\n", res.Scheme, res.Cycles, res.Throughput())
	for i, c := range res.Cores {
		src := res.Report.PerCore[i]
		fmt.Fprintf(stdout, "core %d %-8s IPC=%.4f instr=%-9d L1miss=%.2f%%  L2[local=%d remote=%d wb=%d dram=%d]\n",
			i, c.Benchmark, c.IPC, c.Instructions, c.L1MissRate()*100,
			src.BySource[0], src.BySource[1], src.BySource[2], src.BySource[3])
	}
	r := res.Report
	fmt.Fprintf(stdout, "spills=%d (dropped=%d) retrievals=%d hits=%d stranded=%d\n",
		r.Spills, r.SpillNoTaker, r.Retrievals, r.RetrievalHits, r.StrandedDropped)
	fmt.Fprintf(stdout, "bus: snoop=%d data=%d writeback=%d busy=%d wait=%d\n",
		r.Bus.Count(0), r.Bus.Count(1), r.Bus.Count(2), r.Bus.BusyCycles, r.Bus.WaitCycles)
	fmt.Fprintf(stdout, "dram: reads=%d writes=%d\n", r.DRAM.Reads, r.DRAM.Writes)
	return nil
}

// storeFingerprint identifies everything that changes a run's stored
// result — the system configuration (seed, geometry, spill percent), the
// workload and the run length — so a -out checkpoint refuses to mix
// results across configurations on -resume. Scheme specs are checkpoint
// keys, not fingerprint material: a store warmed with some schemes serves
// a later comparison adding more.
func storeFingerprint(cfg config.System, bench []string, cycles int64) (string, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("fingerprint config: %w", err)
	}
	return fmt.Sprintf("snugsim/v1/cycles=%d/workload=%s/cfg=%016x",
		cycles, strings.Join(bench, "+"), stats.HashString(string(cfgJSON))), nil
}

// splitSpecs splits a comma-separated scheme list into trimmed spec
// strings without breaking inside a spec's argument list: "CC(75%),SNUG"
// is two specs, and a future multi-argument "X(a,b),SNUG" stays intact
// (the spec grammar allows NAME(arg,arg,...)).
func splitSpecs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	return append(out, strings.TrimSpace(s[start:]))
}

// resolveWorkload accepts "a,b,c,d", a Table 8 combo name, or "Nxbench"
// (e.g. "4xammp", "8xmcf") for an N-core stress test.
func resolveWorkload(w string) ([]string, error) {
	for _, c := range workloads.Table8() {
		if c.Name == w {
			return c.Cores, nil
		}
	}
	if pre, bench, ok := strings.Cut(w, "x"); ok && !strings.Contains(w, ",") {
		if n, err := strconv.Atoi(pre); err == nil {
			if n <= 0 {
				return nil, fmt.Errorf("workload %q: core count must be positive", w)
			}
			if _, err := trace.ByName(bench); err != nil {
				return nil, err
			}
			out := make([]string, n)
			for i := range out {
				out[i] = bench
			}
			return out, nil
		}
	}
	parts := strings.Split(w, ",")
	for _, p := range parts {
		if _, err := trace.ByName(p); err != nil {
			return nil, err
		}
	}
	return parts, nil
}
