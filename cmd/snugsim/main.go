// Command snugsim runs one quad-core workload combination under one or more
// LLC management schemes and reports per-core and scheme-level statistics.
// Runs go through the sweep engine (internal/sweep): every scheme of one
// workload sees the same seed-derived instruction streams, so side-by-side
// scheme numbers are paired — even across separate invocations.
//
// Usage:
//
//	snugsim -scheme SNUG -workload ammp,parser,swim,mesa -cycles 2000000
//	snugsim -scheme L2P,CC,SNUG -workload 4xammp   # paired comparison table
//	snugsim -scheme CC -ccpct 75 -workload 4xammp
//	snugsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/sweep"
	"snug/internal/trace"
	"snug/internal/workloads"
)

func main() {
	scheme := flag.String("scheme", "SNUG",
		"L2 scheme (L2P, L2S, CC, DSR or SNUG), or a comma-separated list to compare")
	workload := flag.String("workload", "ammp,parser,swim,mesa",
		"comma-separated benchmark per core, a Table 8 combo name, or 4x<bench>")
	cycles := flag.Int64("cycles", 5_000_000, "cycles to simulate")
	ccpct := flag.Int("ccpct", 100, "CC spill probability in percent (0,25,50,75,100)")
	par := flag.Int("par", 0, "concurrent simulations when comparing schemes (0 = GOMAXPROCS)")
	scale := flag.Bool("testscale", true, "use the scaled test system (64-set slices); false = full Table 4 system")
	seed := flag.Uint64("seed", 0, "override simulation seed (0 = default)")
	list := flag.Bool("list", false, "list benchmarks, combos and schemes, then exit")
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(trace.Names(), " "))
		fmt.Println("schemes:   ", strings.Join(cmp.SchemeNames(), " "))
		fmt.Println("combos (Table 8):")
		for _, c := range workloads.Table8() {
			fmt.Printf("  %-3s %s\n", c.Class, c.Name)
		}
		return
	}

	cfg := config.Default()
	if *scale {
		cfg = config.TestScale()
	}
	cfg.CC.SpillPercent = *ccpct
	if *seed != 0 {
		cfg.Seed = *seed
	}

	bench, err := resolveWorkload(*workload, cfg.Cores)
	if err != nil {
		fatal(err)
	}
	schemes := strings.Split(*scheme, ",")
	var jobs []sweep.Job
	for _, s := range schemes {
		s := s
		jobs = append(jobs, sweep.Job{
			Key:     s,
			SeedKey: strings.Join(bench, "+"), // one stream per workload, shared by every scheme
			Run: func(jobSeed uint64) (cmp.RunResult, error) {
				c := cfg
				c.Seed = jobSeed
				return cmp.RunWorkload(c, s, bench, *cycles)
			},
		})
	}
	results, err := sweep.Run(sweep.Options{Parallelism: *par, BaseSeed: cfg.Seed}, jobs)
	if err != nil {
		fatal(err)
	}

	if len(schemes) > 1 {
		fmt.Printf("workload=%s cycles=%d\n", *workload, *cycles)
		for _, s := range schemes {
			r := results[s]
			fmt.Printf("  %-5s throughput=%.4f spills=%-7d retrHits=%-7d dram=%d\n",
				s, r.Throughput(), r.Report.Spills, r.Report.RetrievalHits, r.Report.DRAM.Reads)
		}
		return
	}

	res := results[schemes[0]]
	fmt.Printf("scheme=%s cycles=%d throughput=%.4f\n", res.Scheme, res.Cycles, res.Throughput())
	for i, c := range res.Cores {
		src := res.Report.PerCore[i]
		fmt.Printf("core %d %-8s IPC=%.4f instr=%-9d L1miss=%.2f%%  L2[local=%d remote=%d wb=%d dram=%d]\n",
			i, c.Benchmark, c.IPC, c.Instructions, c.L1MissRate()*100,
			src.BySource[0], src.BySource[1], src.BySource[2], src.BySource[3])
	}
	r := res.Report
	fmt.Printf("spills=%d (dropped=%d) retrievals=%d hits=%d stranded=%d\n",
		r.Spills, r.SpillNoTaker, r.Retrievals, r.RetrievalHits, r.StrandedDropped)
	fmt.Printf("bus: snoop=%d data=%d writeback=%d busy=%d wait=%d\n",
		r.Bus.Count(0), r.Bus.Count(1), r.Bus.Count(2), r.Bus.BusyCycles, r.Bus.WaitCycles)
	fmt.Printf("dram: reads=%d writes=%d\n", r.DRAM.Reads, r.DRAM.Writes)
}

// resolveWorkload accepts "a,b,c,d", a Table 8 combo name, or "4xbench".
func resolveWorkload(w string, cores int) ([]string, error) {
	for _, c := range workloads.Table8() {
		if c.Name == w {
			return c.Cores, nil
		}
	}
	if strings.HasPrefix(w, "4x") {
		b := strings.TrimPrefix(w, "4x")
		if _, err := trace.ByName(b); err != nil {
			return nil, err
		}
		out := make([]string, cores)
		for i := range out {
			out[i] = b
		}
		return out, nil
	}
	parts := strings.Split(w, ",")
	if len(parts) != cores {
		return nil, fmt.Errorf("workload %q has %d entries, want %d", w, len(parts), cores)
	}
	for _, p := range parts {
		if _, err := trace.ByName(p); err != nil {
			return nil, err
		}
	}
	return parts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snugsim:", err)
	os.Exit(1)
}
