package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke characterizes a benchmark on a tiny interval budget and
// checks the table plus CSV output.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "fig1.csv")
	var out bytes.Buffer
	err := run([]string{"-bench", "ammp", "-intervals", "5", "-accesses", "2000", "-csv", csv}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "ammp", "mean", "wrote"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != 6 { // header + 5 intervals
		t.Errorf("CSV has %d lines, want 6", lines)
	}
}

// TestRunFlagErrors covers CLI error paths.
func TestRunFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"bad flag":        {"-nope"},
		"positional args": {"extra"},
		"bad benchmark":   {"-bench", "nope", "-intervals", "2", "-accesses", "100"},
		"zero intervals":  {"-intervals", "0"},
	}
	for name, args := range cases {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}
