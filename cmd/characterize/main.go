// Command characterize regenerates the paper's Figures 1–3: the
// distribution of set-level capacity demand (block_required bucketed into
// M ranges) over consecutive sampling intervals, for a single benchmark.
//
// Usage:
//
//	characterize -bench ammp                    # Figure 1, scaled run
//	characterize -bench vortex -full            # paper-scale: 1000 x 100K
//	characterize -bench applu -csv out.csv      # per-interval CSV
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"snug/internal/config"
	"snug/internal/experiments"
	"snug/internal/report"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h/-help: usage already printed, a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

// run executes the command with the given arguments; main is a thin
// wrapper so tests can drive the full flag-to-output path.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "ammp", "benchmark to characterize (see snugsim -list)")
	intervals := fs.Int("intervals", 200, "number of sampling intervals")
	accesses := fs.Int64("accesses", 20_000, "L2 accesses per interval")
	full := fs.Bool("full", false, "paper-scale methodology: 1000 intervals x 100K accesses on the Table 4 system")
	testscale := fs.Bool("testscale", true, "use the 64-set test system (ignored with -full)")
	csvPath := fs.String("csv", "", "also write the per-interval series as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	// The library treats 0 as "paper default" (1000 x 100K); from the CLI
	// that silent upgrade would be surprising, so require explicit values.
	if *intervals <= 0 || *accesses <= 0 {
		return fmt.Errorf("-intervals and -accesses must be positive")
	}

	opt := experiments.CharacterizeOptions{
		Benchmark:           *bench,
		Cfg:                 config.Default(),
		Intervals:           *intervals,
		AccessesPerInterval: *accesses,
	}
	if *full {
		opt.Intervals = 1000
		opt.AccessesPerInterval = 100_000
	} else if *testscale {
		opt.Cfg = config.TestScale()
	}

	chz, err := experiments.Characterize(opt)
	if err != nil {
		return err
	}

	title := fmt.Sprintf("Set-level capacity demand distribution: %s", *bench)
	if fig := experiments.FigureFor(*bench); fig != 0 {
		title = fmt.Sprintf("Figure %d — %s", fig, title)
	}
	if err := report.WriteCharacterization(stdout, title, chz); err != nil {
		return err
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := report.WriteCharacterizationCSV(f, chz); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *csvPath)
	}
	return nil
}
