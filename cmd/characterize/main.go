// Command characterize regenerates the paper's Figures 1–3: the
// distribution of set-level capacity demand (block_required bucketed into
// M ranges) over consecutive sampling intervals, for a single benchmark.
//
// Usage:
//
//	characterize -bench ammp                    # Figure 1, scaled run
//	characterize -bench vortex -full            # paper-scale: 1000 x 100K
//	characterize -bench applu -csv out.csv      # per-interval CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"snug/internal/config"
	"snug/internal/experiments"
	"snug/internal/report"
)

func main() {
	bench := flag.String("bench", "ammp", "benchmark to characterize (see snugsim -list)")
	intervals := flag.Int("intervals", 200, "number of sampling intervals")
	accesses := flag.Int64("accesses", 20_000, "L2 accesses per interval")
	full := flag.Bool("full", false, "paper-scale methodology: 1000 intervals x 100K accesses on the Table 4 system")
	testscale := flag.Bool("testscale", true, "use the 64-set test system (ignored with -full)")
	csvPath := flag.String("csv", "", "also write the per-interval series as CSV")
	flag.Parse()

	opt := experiments.CharacterizeOptions{
		Benchmark:           *bench,
		Cfg:                 config.Default(),
		Intervals:           *intervals,
		AccessesPerInterval: *accesses,
	}
	if *full {
		opt.Intervals = 1000
		opt.AccessesPerInterval = 100_000
	} else if *testscale {
		opt.Cfg = config.TestScale()
	}

	chz, err := experiments.Characterize(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}

	title := fmt.Sprintf("Set-level capacity demand distribution: %s", *bench)
	if fig := experiments.FigureFor(*bench); fig != 0 {
		title = fmt.Sprintf("Figure %d — %s", fig, title)
	}
	if err := report.WriteCharacterization(os.Stdout, title, chz); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.WriteCharacterizationCSV(f, chz); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
