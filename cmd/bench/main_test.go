package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestWriteAndCheckBaseline writes a one-benchmark baseline and then
// checks the machine against it: a freshly measured machine must be within
// tolerance of itself. SimulatorSpeed (the gated benchmark) would take
// seconds, so the round trip uses the same code path end to end but is
// validated again at full scale by CI's regression gate.
func TestWriteAndCheckBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "base.json")
	var out bytes.Buffer
	if err := run([]string{"-out", path, "-bench", "SimulatorSpeed"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	res, ok := base.Benchmarks["SimulatorSpeed"]
	if !ok {
		t.Fatalf("baseline missing SimulatorSpeed: %s", raw)
	}
	if res.NsPerOp <= 0 || res.Metrics["sim-cycles/s"] <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}

	out.Reset()
	if err := run([]string{"-check", path, "-tolerance", "0.5"}, &out, io.Discard); err != nil {
		t.Fatalf("self-check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "benchmark check passed") {
		t.Errorf("check output missing pass line:\n%s", out.String())
	}
}

// TestCheckDetectsRegression feeds -check a baseline faster than any real
// machine and expects failure.
func TestCheckDetectsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "fast.json")
	base := Baseline{Benchmarks: map[string]Result{
		"SimulatorSpeed": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 1e15}},
	}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", path}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("check passed against an impossibly fast baseline")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error %q does not name the regression", err)
	}
}

// TestCheckGatesOpsMetric: the microbenchmarks report ops/s rather than
// sim-cycles/s and must be gated through the same comparison.
func TestCheckGatesOpsMetric(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "ops.json")
	base := Baseline{Benchmarks: map[string]Result{
		"CacheOps": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"ops/s": 1e18}},
	}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", path, "-bench", "CacheOps"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("check passed against an impossibly fast ops/s baseline")
	}
	if !strings.Contains(err.Error(), "ops/s") {
		t.Errorf("error %q does not name the ops/s metric", err)
	}
}

// TestCheckRefusesEmptyComparison guards the gate against becoming a
// silent no-op: a baseline that names none of the measured benchmarks
// (schema or name drift) must fail the check, not pass it.
func TestCheckRefusesEmptyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "drifted.json")
	base := Baseline{Benchmarks: map[string]Result{
		"RenamedBenchmark": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 1}},
	}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", path}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("check passed while comparing nothing")
	}
	if !strings.Contains(err.Error(), "checked nothing") {
		t.Errorf("error %q does not explain the empty comparison", err)
	}
}

// TestCheckShapeMismatchSkipsParallel: under a GOMAXPROCS mismatch a
// shape-sensitive benchmark must not be gated — even against a baseline it
// could never beat — and with nothing else selected the empty-comparison
// guard turns the check into a refusal rather than a silent pass.
func TestCheckShapeMismatchSkipsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "shape.json")
	base := Baseline{
		GOMAXPROCS: runtime.GOMAXPROCS(0) + 1,
		Benchmarks: map[string]Result{
			"SNUG16CoreParallel": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 1e15}},
		},
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	err = run([]string{"-check", path, "-bench", "SNUG16CoreParallel"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "checked nothing") {
		t.Fatalf("err = %v, want the empty-comparison refusal", err)
	}
	if !strings.Contains(errOut.String(), "WARNING") {
		t.Errorf("stderr missing the GOMAXPROCS warning:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "NOT gated") {
		t.Errorf("stdout does not say the benchmark was skipped:\n%s", out.String())
	}
}

// TestCheckStrictShapeRefuses: -strict-shape turns a GOMAXPROCS mismatch
// into an immediate error, before any benchmark time is spent.
func TestCheckStrictShapeRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "strict.json")
	base := Baseline{
		GOMAXPROCS: runtime.GOMAXPROCS(0) + 1,
		Benchmarks: map[string]Result{
			"SimulatorSpeed": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 1}},
		},
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", path, "-strict-shape"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Fatalf("err = %v, want a GOMAXPROCS mismatch refusal", err)
	}
}

// TestRunFlagErrors covers CLI error paths without running benchmarks.
func TestRunFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"bad flag":          {"-nope"},
		"positional args":   {"-out", "x.json", "extra"},
		"neither mode":      {},
		"both modes":        {"-out", "a.json", "-check", "b.json"},
		"unknown benchmark": {"-out", os.DevNull, "-bench", "NoSuchBench"},
		"missing baseline":  {"-check", "definitely-missing.json", "-bench", "SimulatorSpeedDoesNotRun"},
	}
	for name, args := range cases {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}
