package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestWriteAndCheckBaseline writes a one-benchmark baseline and then
// checks the machine against it: a freshly measured machine must be within
// tolerance of itself. SimulatorSpeed (the gated benchmark) would take
// seconds, so the round trip uses the same code path end to end but is
// validated again at full scale by CI's regression gate.
func TestWriteAndCheckBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "base.json")
	var out bytes.Buffer
	if err := run([]string{"-out", path, "-bench", "SimulatorSpeed"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	res, ok := base.Benchmarks["SimulatorSpeed"]
	if !ok {
		t.Fatalf("baseline missing SimulatorSpeed: %s", raw)
	}
	if res.NsPerOp <= 0 || res.Metrics["sim-cycles/s"] <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}

	out.Reset()
	if err := run([]string{"-check", path, "-tolerance", "0.5"}, &out, io.Discard); err != nil {
		t.Fatalf("self-check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "benchmark check passed") {
		t.Errorf("check output missing pass line:\n%s", out.String())
	}
}

// TestCheckDetectsRegression feeds -check a baseline faster than any real
// machine and expects failure.
func TestCheckDetectsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "fast.json")
	base := Baseline{Benchmarks: map[string]Result{
		"SimulatorSpeed": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 1e15}},
	}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", path}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("check passed against an impossibly fast baseline")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error %q does not name the regression", err)
	}
}

// TestCheckGatesOpsMetric: the microbenchmarks report ops/s rather than
// sim-cycles/s and must be gated through the same comparison.
func TestCheckGatesOpsMetric(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "ops.json")
	base := Baseline{Benchmarks: map[string]Result{
		"CacheOps": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"ops/s": 1e18}},
	}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", path, "-bench", "CacheOps"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("check passed against an impossibly fast ops/s baseline")
	}
	if !strings.Contains(err.Error(), "ops/s") {
		t.Errorf("error %q does not name the ops/s metric", err)
	}
}

// TestCheckRefusesEmptyComparison guards the gate against becoming a
// silent no-op: a baseline that names none of the measured benchmarks
// (schema or name drift) must fail the check, not pass it.
func TestCheckRefusesEmptyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "drifted.json")
	base := Baseline{Benchmarks: map[string]Result{
		"RenamedBenchmark": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 1}},
	}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", path}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("check passed while comparing nothing")
	}
	if !strings.Contains(err.Error(), "checked nothing") {
		t.Errorf("error %q does not explain the empty comparison", err)
	}
}

// TestCheckShapeMismatchSkipsParallel: under a GOMAXPROCS mismatch a
// shape-sensitive benchmark must not be gated — even against a baseline it
// could never beat — and with nothing else selected the empty-comparison
// guard turns the check into a refusal rather than a silent pass.
func TestCheckShapeMismatchSkipsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "shape.json")
	base := Baseline{
		GOMAXPROCS: runtime.GOMAXPROCS(0) + 1,
		Benchmarks: map[string]Result{
			"SNUG16CoreParallel": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 1e15}},
		},
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	err = run([]string{"-check", path, "-bench", "SNUG16CoreParallel"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "checked nothing") {
		t.Fatalf("err = %v, want the empty-comparison refusal", err)
	}
	if !strings.Contains(errOut.String(), "WARNING") {
		t.Errorf("stderr missing the GOMAXPROCS warning:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "NOT gated") {
		t.Errorf("stdout does not say the benchmark was skipped:\n%s", out.String())
	}
}

// TestCheckStrictShapeRefuses: -strict-shape turns a GOMAXPROCS mismatch
// into an immediate error, before any benchmark time is spent.
func TestCheckStrictShapeRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "strict.json")
	base := Baseline{
		GOMAXPROCS: runtime.GOMAXPROCS(0) + 1,
		Benchmarks: map[string]Result{
			"SimulatorSpeed": {Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 1}},
		},
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", path, "-strict-shape"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Fatalf("err = %v, want a GOMAXPROCS mismatch refusal", err)
	}
}

// TestBaselineSectionRoundTrip pins the sectioned file schema: extra
// shapes marshal as "benchmarks@gomaxprocs=<n>" siblings of the primary
// section, survive a JSON round trip, and setSection merges rather than
// replaces.
func TestBaselineSectionRoundTrip(t *testing.T) {
	b := Baseline{
		GoVersion:  "go0.0",
		GOARCH:     "amd64",
		GOMAXPROCS: 1,
		Benchmarks: map[string]Result{"SimulatorSpeed": {Iterations: 1, NsPerOp: 2}},
		Shapes: map[int]map[string]Result{
			4: {"SNUG16CoreParallel": {Iterations: 3, NsPerOp: 4}},
		},
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"benchmarks@gomaxprocs=4"`) {
		t.Fatalf("marshal lacks the section key: %s", raw)
	}
	var back Baseline
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if sec, ok := back.section(4); !ok || sec["SNUG16CoreParallel"].Iterations != 3 {
		t.Fatalf("section(4) = %v, %v", sec, ok)
	}
	if sec, ok := back.section(1); !ok || sec["SimulatorSpeed"].NsPerOp != 2 {
		t.Fatalf("section(1) = %v, %v", sec, ok)
	}
	if _, ok := back.section(2); ok {
		t.Fatal("section(2) exists for an unrecorded shape")
	}

	back.setSection(4, map[string]Result{"SNUG16Core": {Iterations: 9}})
	sec, _ := back.section(4)
	if sec["SNUG16Core"].Iterations != 9 || sec["SNUG16CoreParallel"].Iterations != 3 {
		t.Fatalf("setSection did not merge: %v", sec)
	}

	if err := json.Unmarshal([]byte(`{"benchmarks@gomaxprocs=zero":{}}`), &back); err == nil {
		t.Fatal("malformed section key unmarshaled successfully")
	}
}

// TestParsePairs covers the -require-faster grammar.
func TestParsePairs(t *testing.T) {
	got, err := parsePairs("SNUG16CoreParallel:SNUG16Core,CacheOps:BusContention")
	if err != nil {
		t.Fatal(err)
	}
	want := []pair{
		{fast: "SNUG16CoreParallel", slow: "SNUG16Core"},
		{fast: "CacheOps", slow: "BusContention"},
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("parsePairs = %v, want %v", got, want)
	}
	for _, bad := range []string{"OnlyOne", "A:", ":B", "NoSuchBench:SNUG16Core", "SNUG16Core:NoSuchBench"} {
		if _, err := parsePairs(bad); err == nil {
			t.Errorf("parsePairs(%q) succeeded", bad)
		}
	}
}

// TestCheckPairs drives the require-faster comparison on fabricated
// results: a slower "fast" side must fail, a tie or win must pass, and a
// pair sharing no gated metric must refuse rather than silently pass.
func TestCheckPairs(t *testing.T) {
	ps := []pair{{fast: "SNUG16CoreParallel", slow: "SNUG16Core"}}
	mk := func(fast, slow float64) map[string]Result {
		return map[string]Result{
			"SNUG16CoreParallel": {Metrics: map[string]float64{"sim-cycles/s": fast}},
			"SNUG16Core":         {Metrics: map[string]float64{"sim-cycles/s": slow}},
		}
	}
	if err := checkPairs(io.Discard, ps, mk(200, 100)); err != nil {
		t.Errorf("faster pair failed: %v", err)
	}
	if err := checkPairs(io.Discard, ps, mk(100, 100)); err != nil {
		t.Errorf("tied pair failed: %v", err)
	}
	err := checkPairs(io.Discard, ps, mk(99, 100))
	if err == nil || !strings.Contains(err.Error(), "slower than") {
		t.Errorf("slower pair: err = %v, want a slower-than failure", err)
	}
	err = checkPairs(io.Discard, ps, map[string]Result{
		"SNUG16CoreParallel": {}, "SNUG16Core": {},
	})
	if err == nil || !strings.Contains(err.Error(), "share no gated rate metric") {
		t.Errorf("metric-free pair: err = %v, want the no-shared-metric refusal", err)
	}
}

// TestCheckBaselineGatesAllocs: registry-marked benchmarks gate allocs/op
// against the baseline — a regression beyond tolerance fails even when the
// rate metrics are fine, and improvement passes.
func TestCheckBaselineGatesAllocs(t *testing.T) {
	base := map[string]Result{
		"Figure9Throughput": {AllocsPerOp: 1000, Metrics: map[string]float64{"sim-cycles/s": 100}},
	}
	measure := func(allocs int64) map[string]Result {
		return map[string]Result{
			"Figure9Throughput": {AllocsPerOp: allocs, Metrics: map[string]float64{"sim-cycles/s": 100}},
		}
	}
	if err := checkBaseline(io.Discard, "base.json", base, measure(500), 0.30, false); err != nil {
		t.Errorf("improved allocs failed the gate: %v", err)
	}
	err := checkBaseline(io.Discard, "base.json", base, measure(2000), 0.30, false)
	if err == nil || !strings.Contains(err.Error(), "allocation regression") {
		t.Errorf("doubled allocs: err = %v, want an allocation regression", err)
	}
	// An unmarked benchmark's allocs are not gated, however bad.
	unmarked := map[string]Result{
		"SimulatorSpeed": {AllocsPerOp: 1000, Metrics: map[string]float64{"sim-cycles/s": 100}},
	}
	bloated := map[string]Result{
		"SimulatorSpeed": {AllocsPerOp: 1 << 40, Metrics: map[string]float64{"sim-cycles/s": 100}},
	}
	if err := checkBaseline(io.Discard, "base.json", unmarked, bloated, 0.30, false); err != nil {
		t.Errorf("unmarked benchmark's allocs were gated: %v", err)
	}
}

// TestRunFlagErrors covers CLI error paths without running benchmarks.
func TestRunFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"bad flag":          {"-nope"},
		"positional args":   {"-out", "x.json", "extra"},
		"neither mode":      {},
		"both modes":        {"-out", "a.json", "-check", "b.json"},
		"unknown benchmark": {"-out", os.DevNull, "-bench", "NoSuchBench"},
		"missing baseline":  {"-check", "definitely-missing.json", "-bench", "SimulatorSpeedDoesNotRun"},
	}
	for name, args := range cases {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}
