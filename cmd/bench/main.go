// Command bench runs the repository's headline performance benchmarks
// (internal/bench: SimulatorSpeed, SimulatorSpeedLive, SNUG16Core, the
// CacheOps/BusContention layout microbenchmarks, SchemeSNUG,
// Figure9Throughput) outside `go test`, writing a machine-readable
// baseline so the perf trajectory across PRs lives in version control —
// BENCH_PR4.json is the first point, BENCH_PR5.json the current gate —
// and checking the current machine against a committed baseline as a CI
// regression gate over the rate metrics (sim-cycles/s, ops/s).
//
// Usage:
//
//	bench -out BENCH_PR7.json                      # write a new baseline (all benchmarks)
//	bench -out quick.json -bench SimulatorSpeed    # subset
//	bench -check BENCH_PR7.json -tolerance 0.30    # fail if a rate metric regressed >30%
//
// Baselines record the recording host's GOMAXPROCS. Shape-sensitive
// benchmarks (internal/bench marks them; today SNUG16CoreParallel) scale
// with host parallelism, so when the checking host's GOMAXPROCS differs
// from the baseline's they are reported but not gated — a loud warning
// says so — and -strict-shape upgrades the mismatch to a hard refusal.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"testing"

	"snug/internal/bench"
)

// Result is one benchmark's measurement in the baseline file.
type Result struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // ReportMetric extras, e.g. sim-cycles/s
}

// Baseline is the file schema. Benchmarks is the primary section, keyed by
// internal/bench name and recorded at GOMAXPROCS; Shapes holds additional
// per-GOMAXPROCS sections, serialized as "benchmarks@gomaxprocs=<n>" keys,
// so one committed file carries the perf trajectory at several host shapes
// and shape-sensitive benchmarks are *checked* on a matching host instead
// of warn-and-skipped. -out merges: re-recording at a new shape updates
// that shape's section and preserves the others. JSON map keys marshal
// sorted, so output is stable for version control.
type Baseline struct {
	GoVersion  string
	GOARCH     string
	GOMAXPROCS int // host shape of the primary Benchmarks section
	Benchmarks map[string]Result
	Shapes     map[int]map[string]Result // extra sections; never keyed by GOMAXPROCS
}

// shapePrefix introduces a per-GOMAXPROCS section key in the file schema.
const shapePrefix = "benchmarks@gomaxprocs="

// MarshalJSON flattens the shape sections into "benchmarks@gomaxprocs=<n>"
// siblings of the primary section.
func (b Baseline) MarshalJSON() ([]byte, error) {
	m := map[string]any{
		"go_version": b.GoVersion,
		"goarch":     b.GOARCH,
		"gomaxprocs": b.GOMAXPROCS,
		"benchmarks": b.Benchmarks,
	}
	for g, sec := range b.Shapes {
		m[shapePrefix+strconv.Itoa(g)] = sec
	}
	return json.Marshal(m)
}

// UnmarshalJSON accepts both the flat pre-shape schema and the sectioned
// one.
func (b *Baseline) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	fields := map[string]any{
		"go_version": &b.GoVersion,
		"goarch":     &b.GOARCH,
		"gomaxprocs": &b.GOMAXPROCS,
		"benchmarks": &b.Benchmarks,
	}
	for key, dst := range fields {
		if msg, ok := raw[key]; ok {
			if err := json.Unmarshal(msg, dst); err != nil {
				return fmt.Errorf("field %s: %w", key, err)
			}
		}
	}
	for key, msg := range raw {
		rest, ok := strings.CutPrefix(key, shapePrefix)
		if !ok {
			continue
		}
		g, err := strconv.Atoi(rest)
		if err != nil || g < 1 {
			return fmt.Errorf("malformed section key %q", key)
		}
		var sec map[string]Result
		if err := json.Unmarshal(msg, &sec); err != nil {
			return fmt.Errorf("section %s: %w", key, err)
		}
		if b.Shapes == nil {
			b.Shapes = make(map[int]map[string]Result)
		}
		b.Shapes[g] = sec
	}
	return nil
}

// section returns the benchmark section recorded at the given host shape
// and whether one exists: the primary section when the shape matches it,
// else the matching "benchmarks@gomaxprocs=" section.
func (b *Baseline) section(gomaxprocs int) (map[string]Result, bool) {
	if gomaxprocs == b.GOMAXPROCS {
		return b.Benchmarks, true
	}
	sec, ok := b.Shapes[gomaxprocs]
	return sec, ok
}

// setSection merges results into the section for the given host shape,
// creating it if needed and preserving entries the run did not re-measure.
func (b *Baseline) setSection(gomaxprocs int, results map[string]Result) {
	sec, ok := b.section(gomaxprocs)
	if !ok || sec == nil {
		sec = make(map[string]Result, len(results))
		if gomaxprocs == b.GOMAXPROCS {
			b.Benchmarks = sec
		} else {
			if b.Shapes == nil {
				b.Shapes = make(map[int]map[string]Result)
			}
			b.Shapes[gomaxprocs] = sec
		}
	}
	for name, r := range results {
		sec[name] = r
	}
}

// simCyclesMetric is the headline regression-gated metric; opsMetric gates
// the layout microbenchmarks (CacheOps, BusContention). Both are rates —
// higher is better — and -check compares whichever a benchmark reports.
const (
	simCyclesMetric = "sim-cycles/s"
	opsMetric       = "ops/s"
)

// gateMetrics lists the rate metrics -check compares, in display order.
var gateMetrics = []string{simCyclesMetric, opsMetric}

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h/-help: usage already printed, a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// run executes the command with the given arguments; main is a thin
// wrapper so tests can drive the full flag-to-output path.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write a baseline JSON file with every selected benchmark's results")
	check := fs.String("check", "", "baseline JSON file to check the current machine against")
	names := fs.String("bench", "", "comma-separated benchmark subset (default: all for -out, SimulatorSpeed for -check)")
	tolerance := fs.Float64("tolerance", 0.30, "allowed fractional sim-cycles/s regression in -check mode (runner noise)")
	strictShape := fs.Bool("strict-shape", false, "in -check mode, refuse to run when no baseline section matches the host GOMAXPROCS instead of skipping shape-sensitive benchmarks")
	requireFaster := fs.String("require-faster", "",
		"comma-separated A:B benchmark pairs; after running, fail unless A's gated rate is at least B's (e.g. SNUG16CoreParallel:SNUG16Core)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *out != "" && *check != "" {
		return fmt.Errorf("at most one of -out or -check is allowed")
	}
	if *out == "" && *check == "" && *requireFaster == "" {
		return fmt.Errorf("one of -out, -check or -require-faster is required")
	}
	pairs, err := parsePairs(*requireFaster)
	if err != nil {
		return err
	}

	host := runtime.GOMAXPROCS(0)

	// In check mode, load the baseline before spending benchmark time, so
	// a missing or corrupt file fails immediately.
	var base Baseline
	var baseSection map[string]Result
	shapeMismatch := false
	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse %s: %w", *check, err)
		}
		// A parallel (shape-sensitive) benchmark's rate scales with host
		// threads, so its baseline comparison needs a section recorded at
		// the host's GOMAXPROCS — comparing across shapes measures the
		// runner, not the code.
		var ok bool
		if baseSection, ok = base.section(host); !ok {
			if *strictShape {
				return fmt.Errorf("baseline %s has no section for host GOMAXPROCS %d (primary is %d; -strict-shape)", *check, host, base.GOMAXPROCS)
			}
			shapeMismatch = true
			baseSection = base.Benchmarks
			fmt.Fprintf(stderr, "bench: WARNING: baseline %s has no benchmarks@gomaxprocs=%d section; checking against the GOMAXPROCS=%d primary, shape-sensitive benchmarks will run but NOT be gated (record this shape with -out, or pass -strict-shape to refuse)\n",
				*check, host, base.GOMAXPROCS)
		} else if base.GOMAXPROCS != host {
			fmt.Fprintf(stdout, "checking against the benchmarks@gomaxprocs=%d section of %s\n", host, *check)
		}
	}

	selected := strings.Split(*names, ",")
	if *names == "" {
		switch {
		case *check != "":
			selected = []string{"SimulatorSpeed"}
		case *out != "":
			selected = nil
			for _, e := range bench.ByName {
				selected = append(selected, e.Name)
			}
		default:
			selected = nil // -require-faster alone: just the pair members below
		}
	}
	// Every -require-faster pair member must actually run.
	for _, p := range pairs {
		for _, name := range []string{p.fast, p.slow} {
			if !slices.Contains(selected, name) {
				selected = append(selected, name)
			}
		}
	}

	results := make(map[string]Result, len(selected))
	for _, name := range selected {
		fn, err := lookup(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "running %s...\n", name)
		r := testing.Benchmark(fn)
		res := Result{
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		results[name] = res
		fmt.Fprintf(stdout, "  %s\n", format(res))
	}

	if err := checkPairs(stdout, pairs, results); err != nil {
		return err
	}

	if *out != "" {
		b := Baseline{
			GoVersion:  runtime.Version(),
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: host,
		}
		if data, err := os.ReadFile(*out); err == nil {
			// Re-recording merges: the host's section is updated, sections
			// recorded at other shapes are preserved.
			if err := json.Unmarshal(data, &b); err != nil {
				return fmt.Errorf("merge into %s: %w", *out, err)
			}
			b.GoVersion = runtime.Version()
		}
		b.setSection(host, results)
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *out)
		return nil
	}
	if *check == "" {
		return nil // -require-faster alone: the pair check above was the gate
	}

	return checkBaseline(stdout, *check, baseSection, results, *tolerance, shapeMismatch)
}

// pair is one -require-faster constraint: fast's rate must be >= slow's.
type pair struct{ fast, slow string }

// parsePairs parses the -require-faster grammar ("A:B[,C:D...]").
func parsePairs(s string) ([]pair, error) {
	if s == "" {
		return nil, nil
	}
	var pairs []pair
	for _, field := range strings.Split(s, ",") {
		fast, slow, ok := strings.Cut(field, ":")
		if !ok || fast == "" || slow == "" {
			return nil, fmt.Errorf("malformed -require-faster pair %q (want A:B)", field)
		}
		if _, err := lookup(fast); err != nil {
			return nil, err
		}
		if _, err := lookup(slow); err != nil {
			return nil, err
		}
		pairs = append(pairs, pair{fast: fast, slow: slow})
	}
	return pairs, nil
}

// checkPairs enforces the -require-faster constraints on the measured
// results: each pair's first benchmark must achieve at least the second's
// rate on a shared gated metric. This is the CI smoke that proves the
// intra-run engine actually beats the serial engine on a multi-core host.
func checkPairs(stdout io.Writer, pairs []pair, results map[string]Result) error {
	for _, p := range pairs {
		fast, slow := results[p.fast], results[p.slow]
		compared := false
		for _, metric := range gateMetrics {
			fr, ok := fast.Metrics[metric]
			sr, ok2 := slow.Metrics[metric]
			if !ok || !ok2 {
				continue
			}
			compared = true
			fmt.Fprintf(stdout, "require-faster %s: %.0f %s vs %s: %.0f (%.2fx)\n",
				p.fast, fr, metric, p.slow, sr, fr/sr)
			if fr < sr {
				return fmt.Errorf("%s (%.0f %s) is slower than %s (%.0f) at GOMAXPROCS=%d",
					p.fast, fr, metric, p.slow, sr, runtime.GOMAXPROCS(0))
			}
		}
		if !compared {
			return fmt.Errorf("require-faster %s:%s share no gated rate metric", p.fast, p.slow)
		}
	}
	return nil
}

// shapeSensitive reports whether the named benchmark's rate scales with
// host parallelism (the internal/bench registry's ShapeSensitive mark).
func shapeSensitive(name string) bool {
	for _, e := range bench.ByName {
		if e.Name == name {
			return e.ShapeSensitive
		}
	}
	return false
}

// gateAllocs reports whether the named benchmark's allocs/op is regression-
// gated (the internal/bench registry's GateAllocs mark).
func gateAllocs(name string) bool {
	for _, e := range bench.ByName {
		if e.Name == name {
			return e.GateAllocs
		}
	}
	return false
}

// lookup resolves a benchmark name against the internal/bench registry.
func lookup(name string) (func(*testing.B), error) {
	for _, e := range bench.ByName {
		if e.Name == name {
			return e.Fn, nil
		}
	}
	var known []string
	for _, e := range bench.ByName {
		known = append(known, e.Name)
	}
	return nil, fmt.Errorf("unknown benchmark %q (want a subset of %s)", name, strings.Join(known, ","))
}

// checkBaseline compares the measured rate metrics (sim-cycles/s, ops/s)
// against the host-matching baseline section, failing on a regression
// beyond the tolerance; registry-marked benchmarks additionally gate
// allocs/op (lower is better), catching allocation regressions that rate
// noise would hide. Benchmarks without any gated metric (or absent from
// the baseline) are reported but not gated, and when no section matches
// the host shape neither are the shape-sensitive ones.
func checkBaseline(stdout io.Writer, path string, baseSection map[string]Result, results map[string]Result, tolerance float64, shapeMismatch bool) error {
	var failures []string
	compared := 0
	for name, res := range results {
		want, ok := baseSection[name]
		if !ok {
			fmt.Fprintf(stdout, "%s: not in baseline %s; skipping\n", name, path)
			continue
		}
		if shapeMismatch && shapeSensitive(name) {
			fmt.Fprintf(stdout, "%s: shape-sensitive and host GOMAXPROCS differs from baseline; NOT gated\n", name)
			continue
		}
		matched := false
		for _, metric := range gateMetrics {
			baseRate, ok := want.Metrics[metric]
			rate, ok2 := res.Metrics[metric]
			if !ok || !ok2 {
				continue
			}
			matched = true
			compared++
			ratio := rate / baseRate
			fmt.Fprintf(stdout, "%s: %.0f %s vs baseline %.0f (%.2fx)\n", name, rate, metric, baseRate, ratio)
			if ratio < 1-tolerance {
				failures = append(failures, fmt.Sprintf(
					"%s regressed: %.0f %s vs baseline %.0f (%.1f%% below, tolerance %.0f%%)",
					name, rate, metric, baseRate, (1-ratio)*100, tolerance*100))
			}
		}
		if gateAllocs(name) && want.AllocsPerOp > 0 {
			matched = true
			compared++
			ratio := float64(res.AllocsPerOp) / float64(want.AllocsPerOp)
			fmt.Fprintf(stdout, "%s: %d allocs/op vs baseline %d (%.2fx)\n", name, res.AllocsPerOp, want.AllocsPerOp, ratio)
			if ratio > 1+tolerance {
				failures = append(failures, fmt.Sprintf(
					"%s allocation regression: %d allocs/op vs baseline %d (%.1f%% above, tolerance %.0f%%)",
					name, res.AllocsPerOp, want.AllocsPerOp, (ratio-1)*100, tolerance*100))
			}
		}
		if !matched {
			fmt.Fprintf(stdout, "%s: no gated metric to compare; skipping\n", name)
		}
	}
	if len(failures) > 0 {
		return errors.New(strings.Join(failures, "; "))
	}
	if compared == 0 {
		// Name or schema drift must not degrade the gate into a green no-op.
		return fmt.Errorf("no benchmark was compared against %s — the gate checked nothing (name or metric drift?)", path)
	}
	fmt.Fprintln(stdout, "benchmark check passed")
	return nil
}

// format renders one result's headline numbers.
func format(r Result) string {
	s := fmt.Sprintf("%d iterations, %.0f ns/op, %d B/op, %d allocs/op", r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	if v, ok := r.Metrics[simCyclesMetric]; ok {
		s += fmt.Sprintf(", %.0f %s", v, simCyclesMetric)
	}
	return s
}
