// Command bench runs the repository's headline performance benchmarks
// (internal/bench: SimulatorSpeed, SimulatorSpeedLive, SNUG16Core, the
// CacheOps/BusContention layout microbenchmarks, SchemeSNUG,
// Figure9Throughput) outside `go test`, writing a machine-readable
// baseline so the perf trajectory across PRs lives in version control —
// BENCH_PR4.json is the first point, BENCH_PR5.json the current gate —
// and checking the current machine against a committed baseline as a CI
// regression gate over the rate metrics (sim-cycles/s, ops/s).
//
// Usage:
//
//	bench -out BENCH_PR7.json                      # write a new baseline (all benchmarks)
//	bench -out quick.json -bench SimulatorSpeed    # subset
//	bench -check BENCH_PR7.json -tolerance 0.30    # fail if a rate metric regressed >30%
//
// Baselines record the recording host's GOMAXPROCS. Shape-sensitive
// benchmarks (internal/bench marks them; today SNUG16CoreParallel) scale
// with host parallelism, so when the checking host's GOMAXPROCS differs
// from the baseline's they are reported but not gated — a loud warning
// says so — and -strict-shape upgrades the mismatch to a hard refusal.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"snug/internal/bench"
)

// Result is one benchmark's measurement in the baseline file.
type Result struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // ReportMetric extras, e.g. sim-cycles/s
}

// Baseline is the file schema. Benchmarks is keyed by internal/bench name;
// json.Marshal sorts map keys, so output is stable for version control.
type Baseline struct {
	GoVersion  string            `json:"go_version"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// simCyclesMetric is the headline regression-gated metric; opsMetric gates
// the layout microbenchmarks (CacheOps, BusContention). Both are rates —
// higher is better — and -check compares whichever a benchmark reports.
const (
	simCyclesMetric = "sim-cycles/s"
	opsMetric       = "ops/s"
)

// gateMetrics lists the rate metrics -check compares, in display order.
var gateMetrics = []string{simCyclesMetric, opsMetric}

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h/-help: usage already printed, a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// run executes the command with the given arguments; main is a thin
// wrapper so tests can drive the full flag-to-output path.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write a baseline JSON file with every selected benchmark's results")
	check := fs.String("check", "", "baseline JSON file to check the current machine against")
	names := fs.String("bench", "", "comma-separated benchmark subset (default: all for -out, SimulatorSpeed for -check)")
	tolerance := fs.Float64("tolerance", 0.30, "allowed fractional sim-cycles/s regression in -check mode (runner noise)")
	strictShape := fs.Bool("strict-shape", false, "in -check mode, refuse to run when the host GOMAXPROCS differs from the baseline's instead of skipping shape-sensitive benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if (*out == "") == (*check == "") {
		return fmt.Errorf("exactly one of -out or -check is required")
	}

	// In check mode, load the baseline before spending benchmark time, so
	// a missing or corrupt file fails immediately.
	var base Baseline
	shapeMismatch := false
	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse %s: %w", *check, err)
		}
		// A parallel (shape-sensitive) benchmark's rate scales with host
		// threads, so a GOMAXPROCS mismatch makes its baseline comparison
		// measure the runner, not the code.
		if host := runtime.GOMAXPROCS(0); base.GOMAXPROCS != host {
			if *strictShape {
				return fmt.Errorf("host GOMAXPROCS %d != baseline %s GOMAXPROCS %d (-strict-shape)", host, *check, base.GOMAXPROCS)
			}
			shapeMismatch = true
			fmt.Fprintf(stderr, "bench: WARNING: host GOMAXPROCS %d != baseline GOMAXPROCS %d; shape-sensitive benchmarks will run but NOT be gated (pass -strict-shape to refuse instead)\n",
				host, base.GOMAXPROCS)
		}
	}

	selected := strings.Split(*names, ",")
	if *names == "" {
		if *check != "" {
			selected = []string{"SimulatorSpeed"}
		} else {
			selected = nil
			for _, e := range bench.ByName {
				selected = append(selected, e.Name)
			}
		}
	}

	results := make(map[string]Result, len(selected))
	for _, name := range selected {
		fn, err := lookup(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "running %s...\n", name)
		r := testing.Benchmark(fn)
		res := Result{
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		results[name] = res
		fmt.Fprintf(stdout, "  %s\n", format(res))
	}

	if *out != "" {
		b := Baseline{
			GoVersion:  runtime.Version(),
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Benchmarks: results,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *out)
		return nil
	}

	return checkBaseline(stdout, *check, base, results, *tolerance, shapeMismatch)
}

// shapeSensitive reports whether the named benchmark's rate scales with
// host parallelism (the internal/bench registry's ShapeSensitive mark).
func shapeSensitive(name string) bool {
	for _, e := range bench.ByName {
		if e.Name == name {
			return e.ShapeSensitive
		}
	}
	return false
}

// lookup resolves a benchmark name against the internal/bench registry.
func lookup(name string) (func(*testing.B), error) {
	for _, e := range bench.ByName {
		if e.Name == name {
			return e.Fn, nil
		}
	}
	var known []string
	for _, e := range bench.ByName {
		known = append(known, e.Name)
	}
	return nil, fmt.Errorf("unknown benchmark %q (want a subset of %s)", name, strings.Join(known, ","))
}

// checkBaseline compares the measured rate metrics (sim-cycles/s, ops/s)
// against the baseline, failing on a regression beyond the tolerance.
// Benchmarks without any gated metric (or absent from the baseline) are
// reported but not gated, and under a GOMAXPROCS mismatch neither are the
// shape-sensitive ones.
func checkBaseline(stdout io.Writer, path string, base Baseline, results map[string]Result, tolerance float64, shapeMismatch bool) error {
	var failures []string
	compared := 0
	for name, res := range results {
		want, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(stdout, "%s: not in baseline %s; skipping\n", name, path)
			continue
		}
		if shapeMismatch && shapeSensitive(name) {
			fmt.Fprintf(stdout, "%s: shape-sensitive and host GOMAXPROCS differs from baseline; NOT gated\n", name)
			continue
		}
		matched := false
		for _, metric := range gateMetrics {
			baseRate, ok := want.Metrics[metric]
			rate, ok2 := res.Metrics[metric]
			if !ok || !ok2 {
				continue
			}
			matched = true
			compared++
			ratio := rate / baseRate
			fmt.Fprintf(stdout, "%s: %.0f %s vs baseline %.0f (%.2fx)\n", name, rate, metric, baseRate, ratio)
			if ratio < 1-tolerance {
				failures = append(failures, fmt.Sprintf(
					"%s regressed: %.0f %s vs baseline %.0f (%.1f%% below, tolerance %.0f%%)",
					name, rate, metric, baseRate, (1-ratio)*100, tolerance*100))
			}
		}
		if !matched {
			fmt.Fprintf(stdout, "%s: no gated rate metric to compare; skipping\n", name)
		}
	}
	if len(failures) > 0 {
		return errors.New(strings.Join(failures, "; "))
	}
	if compared == 0 {
		// Name or schema drift must not degrade the gate into a green no-op.
		return fmt.Errorf("no benchmark was compared against %s — the gate checked nothing (name or metric drift?)", path)
	}
	fmt.Fprintln(stdout, "benchmark check passed")
	return nil
}

// format renders one result's headline numbers.
func format(r Result) string {
	s := fmt.Sprintf("%d iterations, %.0f ns/op, %d B/op, %d allocs/op", r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	if v, ok := r.Metrics[simCyclesMetric]; ok {
		s += fmt.Sprintf(", %.0f %s", v, simCyclesMetric)
	}
	return s
}
