package main

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFiguresSmoke drives the full flag-to-table path on a tiny subset.
func TestRunFiguresSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-classes", "C1", "-schemes", "SNUG", "-cycles", "120000", "-quiet",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 9", "Figure 10", "Figure 11", "SNUG", "4xammp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunScalingSmoke: -scaling -cores 4,8 produces a per-scheme table with
// one row per core count, plus CSV output.
func TestRunScalingSmoke(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-scaling", "-cores", "4,8", "-classes", "C1", "-schemes", "SNUG",
		"-cycles", "60000", "-quiet", "-csv", dir,
		"-out", filepath.Join(dir, "scaling.sweep.json"),
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Scaling — throughput", "cores", "SNUG", "scaling_throughput.csv"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// One row per core count.
	for _, row := range []string{"\n4 ", "\n8 "} {
		if !strings.Contains(text, row) {
			t.Errorf("scaling table missing row %q:\n%s", strings.TrimSpace(row), text)
		}
	}
}

// TestRunAblationCores: -ablation honors -cores (the widened system, not a
// silently ignored flag).
func TestRunAblationCores(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-ablation", "-cores", "8", "-cycles", "40000"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ammp ammp parser parser") {
		t.Errorf("ablation did not widen the workload:\n%s", out.String())
	}
	if err := run(context.Background(), []string{"-ablation", "-cores", "4,8"}, io.Discard, io.Discard); err == nil {
		t.Error("ablation accepted a core-count list")
	}
}

// TestRunFlagErrors covers option validation through the CLI surface.
func TestRunFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"bad flag":           {"-nope"},
		"positional args":    {"extra"},
		"resume without out": {"-resume"},
		"bad cores":          {"-cores", "five"},
		"figures core list":  {"-cores", "4,8"},
		"invalid width":      {"-cores", "6", "-cycles", "1000"},
		"bad class":          {"-classes", "C9", "-cycles", "1000"},
		"bad scheme":         {"-schemes", "NOPE", "-cycles", "1000"},
	}
	for name, args := range cases {
		if err := run(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}

// TestRunFiguresReps: -reps N produces interval-qualified tables; -reps 0
// is rejected.
func TestRunFiguresReps(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-classes", "C1", "-schemes", "SNUG", "-cycles", "60000", "-reps", "2", "-quiet",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"±95% CI over 2 replicates", "±"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := run(context.Background(), []string{"-reps", "0"}, io.Discard, io.Discard); err == nil {
		t.Error("-reps 0 accepted")
	}
	if err := run(context.Background(), []string{"-ablation", "-reps", "2"}, io.Discard, io.Discard); err == nil {
		t.Error("-ablation silently accepted -reps (no replication support there)")
	}
}
