// Command experiments runs the paper's full evaluation (Figures 9, 10 and
// 11 over the 21 Table 8 workload combinations), the SNUG ablation sweep,
// and the N-core scaling study, printing figure-shaped tables and optional
// CSV.
//
// Usage:
//
//	experiments                         # all classes, all three figures
//	experiments -classes C1,C5          # subset
//	experiments -cycles 4000000 -par 4  # longer runs, fixed worker count
//	experiments -reps 5                 # replicated runs, mean ±95% CI cells
//	experiments -cores 8                # the figures on the 8-core system
//	experiments -scaling -cores 4,8,16  # per-scheme scaling study
//	experiments -out sweep.json         # checkpoint completed runs
//	experiments -out sweep.json -resume # continue an interrupted sweep
//	experiments -failpolicy continue -retries 3   # run everything, retry failures
//	experiments -out sweep.json -resume -salvage  # quarantine corrupt checkpoint lines
//	experiments -inject panic:0.02,err:0.05       # deterministic chaos testing
//	experiments -ablation               # SNUG design-choice ablations
//
// On SIGINT/SIGTERM the sweep stops dispatching, drains and checkpoints
// in-flight runs, prints a resume hint, and exits 130; a second signal
// exits immediately. Exit codes: 0 success, 1 error, 3 completed with job
// failures under -failpolicy continue, 130 interrupted. See DESIGN.md
// "Failure model".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"snug/internal/cli"
	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/experiments"
	"snug/internal/faults"
	"snug/internal/metrics"
	"snug/internal/prof"
	"snug/internal/report"
	"snug/internal/sweep"
	"snug/internal/trace"
)

// figures are the three evaluation metrics in paper order.
var figures = []struct {
	num    int
	metric metrics.MetricKind
	title  string
}{
	{9, metrics.MetricThroughput, "Figure 9 — Throughput normalized to L2P"},
	{10, metrics.MetricAWS, "Figure 10 — Average Weighted Speedup"},
	{11, metrics.MetricFS, "Figure 11 — Fair Speedup"},
}

func main() {
	ctx, stop := cli.SignalContext("experiments", os.Stderr)
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if errors.Is(err, flag.ErrHelp) {
		return // -h/-help: usage already printed, a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run executes the command with the given arguments; main is a thin
// wrapper so tests can drive the full flag-to-output path. Canceling ctx
// (main wires it to SIGINT/SIGTERM) drains and checkpoints in-flight runs
// before run returns.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cycles := fs.Int64("cycles", 2_000_000, "cycles per simulation")
	par := fs.Int("par", 0, "concurrent simulations (0 = GOMAXPROCS)")
	reps := fs.Int("reps", 1, "independently-seeded replicates per run; >1 reports mean ±95% CI")
	classes := fs.String("classes", "", "comma-separated class subset (C1..C6); empty = all")
	schemes := fs.String("schemes", "", "comma-separated scheme subset (L2S,CC,DSR,SNUG); empty = all; L2P always runs")
	cores := fs.String("cores", "4", "core count for the figures, or a comma-separated list for -scaling (e.g. 4,8,16)")
	scaling := fs.Bool("scaling", false, "run the per-scheme scaling study across the -cores list instead of the figures")
	csvDir := fs.String("csv", "", "directory for CSV output (empty = none)")
	out := fs.String("out", "", "sweep results store: completed runs are checkpointed here as JSON lines")
	resume := fs.Bool("resume", false, "resume from -out, skipping runs already checkpointed")
	quiet := fs.Bool("quiet", false, "suppress per-run progress on stderr")
	replay := fs.Bool("replay", true, "record each cell's instruction streams once and replay them to every scheme (bit-identical results); false regenerates streams live per run")
	ablation := fs.Bool("ablation", false, "run the SNUG ablation sweep instead of the figures")
	intra := fs.Bool("intra", false, "run each simulation on the intra-run epoch engine: one goroutine per simulated core, bit-identical results (see DESIGN.md)")
	epoch := fs.Int64("epoch", 0, "epoch-engine run-ahead window in cycles (0 = adaptive, negative = fixed default); affects scheduling only, never results")
	budget := fs.Int("cpubudget", 0, "cap on concurrent simulation goroutines shared by -par workers and the -intra engine (0 = GOMAXPROCS); affects scheduling only, never results")
	fullScale := fs.Bool("fullscale", false, "Table 4 full-size system (slow; default is the scaled test system)")
	failpolicy := fs.String("failpolicy", "fast", "response to failed runs: \"fast\" stops at the first failure, \"continue\" runs every cell and aggregates failures (exit code 3)")
	retries := fs.Int("retries", 0, "re-run a failed run up to this many times with the same seed (transient faults only; deterministic failures repeat)")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "initial delay before a retry, doubling per attempt (capped)")
	salvage := fs.Bool("salvage", false, "open the -out checkpoint in salvage mode: quarantine corrupt lines to <out>.quarantine and rerun their jobs instead of refusing to resume")
	syncEvery := fs.Int("sync", 0, "fsync the checkpoint every N completed runs (0 = leave durability to the OS)")
	inject := fs.String("inject", "", "deterministic fault injection spec, e.g. \"panic:0.02,err:0.05,putfail:0.01\" (chaos testing; results are unaffected)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	cfg := config.TestScale()
	if *fullScale {
		cfg = config.Scaled(50)
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d: replicate count must be at least 1", *reps)
	}
	coreCounts, err := parseCores(*cores)
	if err != nil {
		return err
	}
	policy, err := cli.ParseFailurePolicy(*failpolicy)
	if err != nil {
		return err
	}
	if *retries < 0 {
		return fmt.Errorf("-retries %d: retry count must be non-negative", *retries)
	}
	retry := sweep.RetrySpec{Attempts: *retries, Backoff: *backoff}
	injectSpec, err := faults.ParseSpec(*inject)
	if err != nil {
		return err
	}
	if *salvage && *out == "" {
		return fmt.Errorf("-salvage requires -out")
	}

	if *ablation {
		if len(coreCounts) != 1 {
			return fmt.Errorf("the ablation runs at one core count (got -cores %s)", *cores)
		}
		if *reps > 1 {
			return fmt.Errorf("the ablation does not support -reps yet; drop the flag for its single-seed comparison")
		}
		cfg, err := config.WithCores(cfg, coreCounts[0])
		if err != nil {
			return err
		}
		return runAblation(ctx, stdout, cfg, *cycles, *par, *budget, *replay,
			cmp.Engine{Intra: *intra, EpochCycles: *epoch})
	}

	if *resume && *out == "" {
		return fmt.Errorf("-resume requires -out")
	}
	if *out != "" && !*resume {
		// Never silently destroy prior results: a completed checkpoint may
		// represent hours of simulation.
		if st, err := os.Stat(*out); err == nil && st.Size() > 0 {
			return fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or delete it for a fresh sweep", *out)
		}
	}

	var cls []string
	if *classes != "" {
		cls = strings.Split(*classes, ",")
	}
	var sch []string
	if *schemes != "" {
		sch = strings.Split(*schemes, ",")
	}
	var progress func(sweep.Progress)
	if !*quiet {
		progress = func(p sweep.Progress) { fmt.Fprintln(stderr, report.ProgressLine(p)) }
	}

	if *scaling {
		err := runScaling(ctx, stdout, experiments.ScalingOptions{
			BaseCfg: cfg, CoreCounts: coreCounts, RunCycles: *cycles,
			Parallelism: *par, Classes: cls, Schemes: sch,
			Checkpoint: *out, Progress: progress, Replicates: *reps,
			NoReplay:      !*replay,
			Engine:        cmp.Engine{Intra: *intra, EpochCycles: *epoch},
			CPUBudget:     *budget,
			FailurePolicy: policy, Retry: retry,
			Salvage: *salvage, Sync: *syncEvery, Faults: injectSpec,
		}, *csvDir)
		cli.ResumeHint(err, stderr, "experiments", *out)
		return cli.WrapCompleted(err, policy == sweep.ContinueOnError)
	}

	if len(coreCounts) != 1 {
		return fmt.Errorf("the figures run at one core count (got -cores %s); pass -scaling for the multi-width study", *cores)
	}
	cfg, err = config.WithCores(cfg, coreCounts[0])
	if err != nil {
		return err
	}
	ev, err := experiments.Evaluate(ctx, experiments.Options{
		Cfg: cfg, RunCycles: *cycles, Parallelism: *par, Classes: cls,
		Schemes: sch, Checkpoint: *out, Progress: progress, Replicates: *reps,
		NoReplay:      !*replay,
		Engine:        cmp.Engine{Intra: *intra, EpochCycles: *epoch},
		CPUBudget:     *budget,
		FailurePolicy: policy, Retry: retry,
		Salvage: *salvage, Sync: *syncEvery, Faults: injectSpec,
	})
	if err != nil {
		cli.ResumeHint(err, stderr, "experiments", *out)
		return cli.WrapCompleted(err, policy == sweep.ContinueOnError)
	}

	for _, f := range figures {
		cs, err := ev.Figure(f.metric)
		if err != nil {
			return err
		}
		if err := report.WriteFigure(stdout, f.title, cs); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if *csvDir != "" {
			path := fmt.Sprintf("%s/figure%d.csv", *csvDir, f.num)
			if err := writeCSV(path, func(w io.Writer) error { return report.WriteFigureCSV(w, cs) }); err != nil {
				return err
			}
			fmt.Fprintln(stdout, "wrote", path)
		}
	}
	fmt.Fprintln(stdout, "Per-combination detail (normalized throughput):")
	return report.WriteCombos(stdout, ev)
}

// runScaling executes the scaling study and prints one table per metric.
func runScaling(ctx context.Context, stdout io.Writer, opt experiments.ScalingOptions, csvDir string) error {
	res, err := experiments.ScalingStudy(ctx, opt)
	if err != nil {
		return err
	}
	for _, f := range figures {
		s, err := res.Series(f.metric)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Scaling — %s vs core count (cross-class average)", f.metric)
		if err := report.WriteScaling(stdout, title, s); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if csvDir != "" {
			path := fmt.Sprintf("%s/scaling_%s.csv", csvDir, f.metric)
			if err := writeCSV(path, func(w io.Writer) error { return report.WriteScalingCSV(w, s) }); err != nil {
				return err
			}
			fmt.Fprintln(stdout, "wrote", path)
		}
	}
	return nil
}

// parseCores parses the -cores list.
func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-cores %q: %v", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeCSV creates path and streams one CSV writer into it.
func writeCSV(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runAblation compares SNUG variants on the C1 stress tests plus one mixed
// combo per class — the design choices DESIGN.md calls out.
func runAblation(ctx context.Context, stdout io.Writer, base config.System, cycles int64, par, budget int, replay bool, eng cmp.Engine) error {
	// The quad-core A+A+D+D mix, replicated to the configured width the
	// same way workloads.ScaleOut widens Table 8.
	var bench []string
	for _, b := range []string{"ammp", "parser", "swim", "mesa"} {
		for r := 0; r < base.Cores/4; r++ {
			bench = append(bench, b)
		}
	}
	type variant struct {
		name string
		mut  func(*config.System)
	}
	variants := []variant{
		{"SNUG (paper config)", func(c *config.System) {}},
		{"no index-bit flipping", func(c *config.System) { c.SNUG.IndexFlip = false }},
		{"keep stranded CC blocks", func(c *config.System) { c.SNUG.DropOnFlip = false }},
		{"p=4 (threshold 1/4)", func(c *config.System) { c.SNUG.PDivisor = 4 }},
		{"p=16 (threshold 1/16)", func(c *config.System) { c.SNUG.PDivisor = 16 }},
		{"k=3 counter", func(c *config.System) { c.SNUG.CounterBits = 3 }},
		{"shadow 8-way", func(c *config.System) { c.SNUG.ShadowWays = 8 }},
		{"stage I x2", func(c *config.System) { c.SNUG.StageICycles *= 2 }},
	}
	// All jobs share one seed key so every variant sees the same instruction
	// streams as the L2P baseline it is normalized against.
	seedKey := "ablation/" + strings.Join(bench, "+")
	// With replay, record those shared streams once and replay them to
	// every variant: the variants mutate only controller parameters, never
	// the seed or the L2 geometry the streams derive from. The shared seed
	// is derivable up front, exactly as in cmd/snugsim.
	var recordings []*trace.Recording
	if replay {
		c := base
		c.Seed = sweep.JobSeed(base.Seed, seedKey)
		streams, err := cmp.WorkloadStreams(c, bench, cmp.PhaseRefs(cycles))
		if err != nil {
			return err
		}
		recordings = trace.RecordAll(streams)
	}
	job := func(key, scheme string, mut func(*config.System)) sweep.Job {
		return sweep.Job{Key: key, SeedKey: seedKey, Run: func(seed uint64) (cmp.RunResult, error) {
			cfg := base
			cfg.Seed = seed
			mut(&cfg)
			if recordings != nil {
				return cmp.RunStreamsEngine(cfg, scheme, trace.Replays(recordings), cycles, eng)
			}
			return cmp.RunWorkloadEngine(cfg, scheme, bench, cycles, eng)
		}}
	}
	jobs := []sweep.Job{job("L2P", "L2P", func(*config.System) {})}
	for _, v := range variants {
		jobs = append(jobs, job(v.name, "SNUG", v.mut))
	}
	results, err := sweep.Run(ctx, sweep.Options{Parallelism: par, CPUBudget: budget, BaseSeed: base.Seed}, jobs)
	if err != nil {
		return err
	}
	baseline := results["L2P"]
	fmt.Fprintf(stdout, "SNUG ablations on %v (normalized throughput vs L2P %.4f):\n", bench, baseline.Throughput())
	for _, v := range variants {
		r := results[v.name]
		fmt.Fprintf(stdout, "  %-26s %.4f  (spills=%d case2=%d retrHits=%d)\n",
			v.name, r.Throughput()/baseline.Throughput(),
			r.Report.Spills, 0, r.Report.RetrievalHits)
	}
	return nil
}
