// Command experiments runs the paper's full evaluation (Figures 9, 10 and
// 11 over the 21 Table 8 workload combinations) and the SNUG ablation
// sweep, printing figure-shaped tables and optional CSV.
//
// Usage:
//
//	experiments                         # all classes, all three figures
//	experiments -classes C1,C5          # subset
//	experiments -cycles 4000000 -par 4  # longer runs, fixed worker count
//	experiments -out sweep.json         # checkpoint completed runs
//	experiments -out sweep.json -resume # continue an interrupted sweep
//	experiments -ablation               # SNUG design-choice ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snug/internal/cmp"
	"snug/internal/config"
	"snug/internal/experiments"
	"snug/internal/metrics"
	"snug/internal/report"
	"snug/internal/sweep"
)

func main() {
	cycles := flag.Int64("cycles", 2_000_000, "cycles per simulation")
	par := flag.Int("par", 0, "concurrent simulations (0 = GOMAXPROCS)")
	classes := flag.String("classes", "", "comma-separated class subset (C1..C6); empty = all")
	schemes := flag.String("schemes", "", "comma-separated scheme subset (L2S,CC,DSR,SNUG); empty = all; L2P always runs")
	csvDir := flag.String("csv", "", "directory for CSV output (empty = none)")
	out := flag.String("out", "", "sweep results store: completed runs are checkpointed here as JSON lines")
	resume := flag.Bool("resume", false, "resume from -out, skipping runs already checkpointed")
	quiet := flag.Bool("quiet", false, "suppress per-run progress on stderr")
	ablation := flag.Bool("ablation", false, "run the SNUG ablation sweep instead of the figures")
	fullScale := flag.Bool("fullscale", false, "Table 4 full-size system (slow; default is the scaled test system)")
	flag.Parse()

	cfg := config.TestScale()
	if *fullScale {
		cfg = config.Scaled(50)
	}

	if *ablation {
		runAblation(cfg, *cycles, *par)
		return
	}

	if *resume && *out == "" {
		fatal(fmt.Errorf("-resume requires -out"))
	}
	if *out != "" && !*resume {
		// Never silently destroy prior results: a completed checkpoint may
		// represent hours of simulation.
		if st, err := os.Stat(*out); err == nil && st.Size() > 0 {
			fatal(fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or delete it for a fresh sweep", *out))
		}
	}

	var cls []string
	if *classes != "" {
		cls = strings.Split(*classes, ",")
	}
	var sch []string
	if *schemes != "" {
		sch = strings.Split(*schemes, ",")
	}
	var progress func(sweep.Progress)
	if !*quiet {
		progress = func(p sweep.Progress) { fmt.Fprintln(os.Stderr, report.ProgressLine(p)) }
	}
	ev, err := experiments.Evaluate(experiments.Options{
		Cfg: cfg, RunCycles: *cycles, Parallelism: *par, Classes: cls,
		Schemes: sch, Checkpoint: *out, Progress: progress,
	})
	if err != nil {
		fatal(err)
	}

	figs := []struct {
		num    int
		metric metrics.MetricKind
		title  string
	}{
		{9, metrics.MetricThroughput, "Figure 9 — Throughput normalized to L2P"},
		{10, metrics.MetricAWS, "Figure 10 — Average Weighted Speedup"},
		{11, metrics.MetricFS, "Figure 11 — Fair Speedup"},
	}
	for _, f := range figs {
		cs := ev.Figure(f.metric)
		if err := report.WriteFigure(os.Stdout, f.title, cs); err != nil {
			fatal(err)
		}
		fmt.Println()
		if *csvDir != "" {
			path := fmt.Sprintf("%s/figure%d.csv", *csvDir, f.num)
			w, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := report.WriteFigureCSV(w, cs); err != nil {
				fatal(err)
			}
			w.Close()
			fmt.Println("wrote", path)
		}
	}
	fmt.Println("Per-combination detail (normalized throughput):")
	if err := report.WriteCombos(os.Stdout, ev); err != nil {
		fatal(err)
	}
}

// runAblation compares SNUG variants on the C1 stress tests plus one mixed
// combo per class — the design choices DESIGN.md calls out.
func runAblation(base config.System, cycles int64, par int) {
	bench := []string{"ammp", "parser", "swim", "mesa"}
	type variant struct {
		name string
		mut  func(*config.System)
	}
	variants := []variant{
		{"SNUG (paper config)", func(c *config.System) {}},
		{"no index-bit flipping", func(c *config.System) { c.SNUG.IndexFlip = false }},
		{"keep stranded CC blocks", func(c *config.System) { c.SNUG.DropOnFlip = false }},
		{"p=4 (threshold 1/4)", func(c *config.System) { c.SNUG.PDivisor = 4 }},
		{"p=16 (threshold 1/16)", func(c *config.System) { c.SNUG.PDivisor = 16 }},
		{"k=3 counter", func(c *config.System) { c.SNUG.CounterBits = 3 }},
		{"shadow 8-way", func(c *config.System) { c.SNUG.ShadowWays = 8 }},
		{"stage I x2", func(c *config.System) { c.SNUG.StageICycles *= 2 }},
	}
	// All jobs share one seed key so every variant sees the same instruction
	// streams as the L2P baseline it is normalized against.
	seedKey := "ablation/" + strings.Join(bench, "+")
	job := func(key, scheme string, mut func(*config.System)) sweep.Job {
		return sweep.Job{Key: key, SeedKey: seedKey, Run: func(seed uint64) (cmp.RunResult, error) {
			cfg := base
			cfg.Seed = seed
			mut(&cfg)
			return cmp.RunWorkload(cfg, scheme, bench, cycles)
		}}
	}
	jobs := []sweep.Job{job("L2P", "L2P", func(*config.System) {})}
	for _, v := range variants {
		jobs = append(jobs, job(v.name, "SNUG", v.mut))
	}
	results, err := sweep.Run(sweep.Options{Parallelism: par, BaseSeed: base.Seed}, jobs)
	if err != nil {
		fatal(err)
	}
	baseline := results["L2P"]
	fmt.Printf("SNUG ablations on %v (normalized throughput vs L2P %.4f):\n", bench, baseline.Throughput())
	for _, v := range variants {
		r := results[v.name]
		fmt.Printf("  %-26s %.4f  (spills=%d case2=%d retrHits=%d)\n",
			v.name, r.Throughput()/baseline.Throughput(),
			r.Report.Spills, 0, r.Report.RetrievalHits)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
